"""Figure 6: bandwidth limit study with a zero-latency ideal interconnect.

The paper finds ~93 % of infinite-bandwidth throughput at the baseline
mesh's bisection (x = 0.816 of DRAM bandwidth) and a throughput-per-area
optimum around 0.7-0.8."""

from common import MEASURE, SEED, WARMUP, bench_profiles, once, report
from repro.system.limit_study import BALANCED_FRACTION, run_limit_study

FRACTIONS = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, BALANCED_FRACTION, 1.0, 1.2, 1.6]


def _experiment():
    points = run_limit_study(FRACTIONS, profiles=bench_profiles(),
                             warmup=WARMUP, measure=MEASURE, seed=SEED)
    rows = [f"{'fraction':>8s} {'HM IPC':>8s} {'norm thr':>9s} "
            f"{'area mm2':>9s} {'norm thr/area':>13s}"]
    for p in points:
        mark = "  <- balanced mesh (16B channels)" \
            if abs(p.fraction - BALANCED_FRACTION) < 1e-9 else ""
        rows.append(f"{p.fraction:8.3f} {p.hm_ipc:8.2f} "
                    f"{p.normalized_throughput:9.3f} {p.chip_area:9.1f} "
                    f"{p.normalized_per_area:13.3f}{mark}")
    best = max(points, key=lambda p: p.normalized_per_area)
    rows.append(f"throughput/area optimum at fraction {best.fraction:.3f} "
                "(paper: 0.7-0.8)")
    balanced = next(p for p in points
                    if abs(p.fraction - BALANCED_FRACTION) < 1e-9)
    rows.append(f"normalized throughput at balanced point = "
                f"{balanced.normalized_throughput:.3f} (paper: 0.93)")
    return rows


def test_fig06_limit_study(benchmark):
    report("fig06_limit_study", once(benchmark, _experiment))
