"""Tests for packets, flits and segmentation."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.packet import (READ_REPLY_BYTES, READ_REQUEST_BYTES,
                              WRITE_REQUEST_BYTES, Packet, RouteGroup,
                              TrafficClass, read_reply, read_request,
                              write_request)
from repro.noc.topology import Coord

SRC, DST = Coord(0, 0), Coord(3, 2)


class TestPacketSizes:
    def test_paper_packet_sizes(self):
        assert READ_REQUEST_BYTES == 8
        assert WRITE_REQUEST_BYTES == 64
        assert READ_REPLY_BYTES == 64

    def test_read_request_is_one_flit_at_16b(self):
        assert read_request(SRC, DST).num_flits(16) == 1

    def test_read_reply_is_four_flits_at_16b(self):
        assert read_reply(SRC, DST).num_flits(16) == 4

    def test_write_request_is_four_flits_at_16b(self):
        assert write_request(SRC, DST).num_flits(16) == 4

    def test_channel_slicing_doubles_large_packets(self):
        assert read_reply(SRC, DST).num_flits(8) == 8

    def test_small_requests_still_single_flit_when_sliced(self):
        assert read_request(SRC, DST).num_flits(8) == 1

    def test_double_width_halves_flits(self):
        assert read_reply(SRC, DST).num_flits(32) == 2

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            read_request(SRC, DST).num_flits(0)

    @given(st.integers(1, 512), st.integers(1, 64))
    def test_flit_count_covers_bytes(self, size, width):
        p = Packet(SRC, DST, size, TrafficClass.REQUEST)
        n = p.num_flits(width)
        assert (n - 1) * width < size <= n * width


class TestFlits:
    def test_make_flits_structure(self):
        flits = read_reply(SRC, DST).make_flits(16)
        assert len(flits) == 4
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_is_head_and_tail(self):
        (flit,) = read_request(SRC, DST).make_flits(16)
        assert flit.is_head and flit.is_tail

    def test_flits_share_packet(self):
        p = read_reply(SRC, DST)
        assert all(f.packet is p for f in p.make_flits(16))

    def test_flit_indices_sequential(self):
        flits = read_reply(SRC, DST).make_flits(8)
        assert [f.index for f in flits] == list(range(8))

    def test_flit_dest_mirrors_packet(self):
        (flit,) = read_request(SRC, DST).make_flits(16)
        assert flit.dest == DST


class TestPacketClasses:
    def test_requests_and_replies(self):
        assert read_request(SRC, DST).traffic_class is TrafficClass.REQUEST
        assert write_request(SRC, DST).traffic_class is TrafficClass.REQUEST
        assert read_reply(SRC, DST).traffic_class is TrafficClass.REPLY

    def test_pids_unique(self):
        pids = {read_request(SRC, DST).pid for _ in range(100)}
        assert len(pids) == 100

    def test_default_route_state(self):
        p = read_request(SRC, DST)
        assert p.group is RouteGroup.ANY
        assert p.intermediate is None
        assert p.phase == 1

    def test_payload_carried(self):
        token = object()
        assert read_reply(SRC, DST, payload=token).payload is token


class TestLatency:
    def test_latency_requires_ejection(self):
        p = read_request(SRC, DST, created=5)
        with pytest.raises(ValueError):
            _ = p.latency

    def test_latency_computation(self):
        p = read_request(SRC, DST, created=5)
        p.injected, p.ejected = 8, 25
        assert p.latency == 20
        assert p.network_latency == 17

    def test_network_latency_requires_injection(self):
        p = read_request(SRC, DST)
        p.ejected = 10
        with pytest.raises(ValueError):
            _ = p.network_latency
