"""Simulation configuration: Tables II and III as one dataclass tree."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..gpu.core import CoreConfig
from ..mem.controller import McConfig
from ..mem.dram import DramTiming
from .clocks import ClockConfig


@dataclass(frozen=True)
class ChipConfig:
    """Machine parameters of the modelled accelerator (Table II)."""

    num_compute_cores: int = 28
    num_memory_channels: int = 8
    mesh_cols: int = 6
    mesh_rows: int = 6
    core: CoreConfig = field(default_factory=CoreConfig)
    mc: McConfig = field(default_factory=McConfig)
    clocks: ClockConfig = field(default_factory=ClockConfig)

    def __post_init__(self) -> None:
        nodes = self.mesh_cols * self.mesh_rows
        if self.num_compute_cores + self.num_memory_channels != nodes:
            raise ValueError(
                f"{self.num_compute_cores} cores + "
                f"{self.num_memory_channels} MCs != {nodes} mesh nodes")

    @property
    def peak_scalar_ipc(self) -> float:
        """Peak scalar instructions per core clock, chip wide."""
        return self.num_compute_cores * self.core.simd_width

    def peak_dram_bytes_per_icnt_cycle(self) -> float:
        """Aggregate DRAM data bandwidth expressed per interconnect cycle —
        the denominator of Figure 6's bandwidth-limit axis."""
        per_mclk = self.num_memory_channels * self.mc.dram.bytes_per_cycle
        return per_mclk * self.clocks.dram_per_icnt


def paper_config() -> ChipConfig:
    """The configuration of Table II."""
    return ChipConfig()


def scaled_config(num_cores: int, num_mcs: int, cols: int,
                  rows: int) -> ChipConfig:
    """A scaled machine for sensitivity studies (keeps per-node parameters)."""
    return replace(paper_config(), num_compute_cores=num_cores,
                   num_memory_channels=num_mcs, mesh_cols=cols,
                   mesh_rows=rows)
