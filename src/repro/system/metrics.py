"""Aggregate metrics used by the evaluation (harmonic means, speedups)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """The paper aggregates IPC across benchmarks with the harmonic mean."""
    vals = list(values)
    if not vals:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean needs positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    vals = list(values)
    if not vals:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def hm_speedup(ipc_new: Dict[str, float], ipc_base: Dict[str, float]) -> float:
    """Speedup of the harmonic-mean IPC over matched benchmark sets."""
    keys = sorted(ipc_new)
    if keys != sorted(ipc_base):
        raise ValueError("benchmark sets differ")
    new = harmonic_mean([ipc_new[k] for k in keys])
    base = harmonic_mean([ipc_base[k] for k in keys])
    return new / base - 1.0


def per_benchmark_speedups(ipc_new: Dict[str, float],
                           ipc_base: Dict[str, float]) -> Dict[str, float]:
    """Per-benchmark relative speedups over a matched baseline set."""
    if sorted(ipc_new) != sorted(ipc_base):
        raise ValueError("benchmark sets differ")
    return {k: ipc_new[k] / ipc_base[k] - 1.0 for k in ipc_new}


def classify(speedup: float, traffic_bytes_per_cycle: float,
             speedup_threshold: float = 0.30,
             traffic_threshold: float = 1.0) -> str:
    """The two-letter benchmark classification of Section III-B: first
    letter = perfect-NoC speedup high/low (30 %), second = accepted traffic
    heavy/light (1 byte/cycle/node)."""
    first = "H" if speedup > speedup_threshold else "L"
    second = "H" if traffic_bytes_per_cycle > traffic_threshold else "L"
    return first + second
