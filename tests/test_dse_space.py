"""Search-space enumeration and the up-front constraint pass.

The acceptance bar: every illegal axis combination is rejected with a
*named* rule before any simulation starts — pinned here by checking the
rule name per combination and by asserting the in-process execution
counter never moves during enumeration (or during an exploration whose
space is entirely illegal)."""

import dataclasses

import pytest

from repro.core.builder import (BASELINE, CP_CR, ConstraintViolation,
                                design_by_name,
                                design_constraint_violations,
                                materialize_design)
from repro.dse import (Axis, ExplorationSpec, FidelityLadder, SearchSpace,
                       design_label, explore, preset)
from repro.noc.topology import Coord, Mesh
from repro.parallel import EXECUTION_COUNTER


def rules_of(design, mesh=None, num_mcs=8):
    return [v.rule for v in
            design_constraint_violations(design, mesh, num_mcs)]


class TestConstraintRules:
    """Each named rule fires on its illegal combination (and only then)."""

    def test_legal_designs_have_no_violations(self):
        for name in ("TB-DOR", "CP-DOR", "CP-CR-4VC", "CP-ROMM-4VC",
                     "Double-CP-CR", "Throughput-Effective"):
            assert rules_of(design_by_name(name), Mesh(6, 6)) == []

    @pytest.mark.parametrize("overrides,rule", [
        ({"placement": "diagonal"}, "unknown-placement"),
        ({"routing": "adaptive"}, "unknown-routing"),
        ({"double_network": True, "slice_mode": "striped"},
         "unknown-slice-mode"),
        ({"cr_intermediate": "nearest"}, "unknown-cr-intermediate"),
        ({"routing": "cr", "placement": "checkerboard",
          "vcs_per_class": 2}, "cr-requires-half-routers"),
        ({"routing": "cr", "placement": "checkerboard",
          "half_routers": True}, "cr-needs-two-routing-vcs"),
        ({"routing": "romm", "placement": "checkerboard",
          "half_routers": True, "vcs_per_class": 2},
         "romm-needs-full-routers"),
        ({"routing": "romm"}, "romm-needs-two-routing-vcs"),
        ({"half_routers": True, "routing": "cr", "vcs_per_class": 2},
         "half-routers-need-checkerboard-placement"),
        ({"half_routers": True, "placement": "checkerboard"},
         "half-routers-need-checkerboard-routing"),
        ({"half_routers": True, "placement": "checkerboard",
          "routing": "dor_yx"}, "half-routers-need-checkerboard-routing"),
        ({"double_network": True, "channel_width": 15},
         "slicing-needs-even-channel-width"),
        ({"channel_width": 0}, "positive-channel-width"),
        ({"vcs_per_class": 0}, "positive-vc-count"),
        ({"vc_buffer_depth": 0}, "positive-vc-buffer-depth"),
        ({"mc_inject_ports": 0}, "positive-mc-ports"),
        ({"mc_eject_ports": 0}, "positive-mc-ports"),
        ({"router_latency": 0}, "positive-router-latency"),
        ({"half_router_latency": 0}, "positive-router-latency"),
        ({"channel_latency": -1}, "non-negative-channel-latency"),
        ({"source_queue_flits": 0}, "positive-source-queue"),
    ])
    def test_rule_fires(self, overrides, rule):
        design = materialize_design("bad", BASELINE, **overrides)
        assert rule in rules_of(design)

    def test_sliced_single_wide_channel_is_double_violation(self):
        design = materialize_design("bad", BASELINE, double_network=True,
                                    channel_width=1)
        rules = rules_of(design)
        assert "slicing-needs-even-channel-width" in rules
        assert "positive-channel-width" in rules

    def test_violations_carry_reasons(self):
        design = materialize_design("bad", BASELINE, routing="cr")
        violations = design_constraint_violations(design)
        assert all(isinstance(v, ConstraintViolation) for v in violations)
        assert all(v.reason for v in violations)
        assert "half-routers" in violations[0].reason

    def test_validate_raises_first_reason(self):
        design = materialize_design("bad", BASELINE, vcs_per_class=0)
        with pytest.raises(ValueError, match="at least one VC"):
            design.validate()


class TestMeshRules:
    def test_mesh_too_small_for_cores(self):
        assert "mesh-too-small-for-cores" in rules_of(
            BASELINE, Mesh(2, 2), num_mcs=8)

    def test_mc_outside_mesh(self):
        design = dataclasses.replace(BASELINE, mc_coords=(Coord(9, 9),))
        assert "mc-outside-mesh" in rules_of(design, Mesh(6, 6), num_mcs=1)

    def test_mc_on_full_router_tile(self):
        # a full-router tile (parity 0) may not host an MC when the
        # checkerboard organisation puts MCs at half-routers
        tile = next(c for c in Mesh(6, 6).coords() if c.parity() == 0)
        design = dataclasses.replace(design_by_name("CP-CR-4VC"),
                                     mc_coords=(tile,))
        rules = rules_of(design, Mesh(6, 6), num_mcs=1)
        assert "mc-on-full-router-tile" in rules

    def test_duplicate_mc(self):
        design = dataclasses.replace(BASELINE,
                                     mc_coords=(Coord(0, 0), Coord(0, 0)))
        assert "duplicate-mc" in rules_of(design, Mesh(6, 6), num_mcs=2)

    def test_checkerboard_capacity(self):
        assert "checkerboard-placement-capacity" in rules_of(
            design_by_name("CP-CR-4VC"), Mesh(3, 3), num_mcs=5)

    def test_top_bottom_capacity(self):
        assert "top-bottom-placement-capacity" in rules_of(
            BASELINE, Mesh(3, 6), num_mcs=8)

    def test_no_simulation_during_constraint_pass(self):
        EXECUTION_COUNTER.reset()
        for mesh in (Mesh(2, 2), Mesh(6, 6), Mesh(8, 8)):
            design_constraint_violations(design_by_name("CP-CR-4VC"), mesh)
        assert EXECUTION_COUNTER.executed == 0


class TestAxis:
    def test_rejects_empty_values(self):
        with pytest.raises(ValueError, match="no values"):
            Axis("routing", ())

    def test_rejects_repeated_values(self):
        with pytest.raises(ValueError, match="repeats"):
            Axis("routing", ("dor", "dor"))

    def test_rejects_unknown_field_with_hint(self):
        with pytest.raises(ValueError, match="vcs_per_class"):
            Axis("vcs_per_clas", (1, 2))

    def test_rejects_name_axis(self):
        with pytest.raises(ValueError):
            Axis("name", ("a", "b"))

    def test_mesh_axis_checks_shape(self):
        with pytest.raises(ValueError, match="bad mesh"):
            Axis("mesh", ((6, 0),))


class TestSearchSpace:
    def test_empty_space_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SearchSpace(name="nothing")

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            SearchSpace(name="dup",
                        axes=(Axis("routing", ("dor",)),
                              Axis("routing", ("cr",))))

    def test_size_counts_raw_points(self):
        space = SearchSpace(
            name="s", designs=(CP_CR,),
            axes=(Axis("placement", ("top_bottom", "checkerboard")),
                  Axis("vcs_per_class", (1, 2, 4))))
        assert space.size() == 1 + 2 * 3

    def test_enumerate_is_deterministic_and_constraint_checked(self):
        space = SearchSpace(
            name="s",
            axes=(Axis("placement", ("top_bottom", "checkerboard")),
                  Axis("routing", ("dor", "cr")),
                  Axis("vcs_per_class", (1, 2))))
        EXECUTION_COUNTER.reset()
        candidates, rejected = space.enumerate()
        again = space.enumerate()
        assert EXECUTION_COUNTER.executed == 0
        assert [c.name for c in candidates] == [c.name for c in again[0]]
        assert len(candidates) + len(rejected) == space.size()
        # every cr point without half-routers is rejected, with the rule
        for point in rejected:
            assert point.rules
            assert "cr-requires-half-routers" in point.rules
        # and every candidate is genuinely legal
        for c in candidates:
            assert rules_of(c.design, c.mesh, c.num_mcs) == []

    def test_mesh_axis_scales_candidates(self):
        space = SearchSpace(
            name="s", axes=(Axis("mesh", ((6, 6), (8, 8), (2, 2))),))
        candidates, rejected = space.enumerate()
        assert [c.name for c in candidates] == [
            "tb-dor-w16-v1-b8", "tb-dor-w16-v1-b8-8x8"]
        assert candidates[0].chip_config() is None
        config = candidates[1].chip_config()
        assert (config.mesh_cols, config.mesh_rows) == (8, 8)
        (small,) = rejected
        assert "mesh-too-small-for-cores" in small.rules

    def test_duplicate_labels_rejected(self):
        space = SearchSpace(name="s", designs=(BASELINE, BASELINE))
        with pytest.raises(ValueError, match="duplicate point"):
            space.enumerate()

    def test_labels_encode_distinguishing_fields(self):
        label = design_label(design_by_name("Throughput-Effective"))
        assert label == "cp-cr-w16-v2-b8-half-dblbal-i2"
        assert design_label(BASELINE, 8, 8).endswith("-8x8")
        slow = materialize_design("p", BASELINE, router_latency=3)
        assert design_label(slow, extra_fields=("router_latency",)) \
            == "tb-dor-w16-v1-b8-routerlatency-3"


class TestMaterialize:
    def test_unknown_field_did_you_mean(self):
        with pytest.raises(TypeError, match="did you mean 'vcs_per_class'"):
            materialize_design("p", BASELINE, vcs_per_clas=2)

    def test_does_not_validate(self):
        # materialization is schema-checked but not legality-checked;
        # the constraint pass owns legality so spaces can *report* illegal
        # points instead of crashing on them
        design = materialize_design("p", BASELINE, vcs_per_class=0)
        assert design.vcs_per_class == 0

    def test_design_by_name_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean 'TB-DOR'"):
            design_by_name("TB-DORR")


class TestExploreRejectsBeforeSimulating:
    def test_fully_illegal_space_runs_nothing(self):
        space = SearchSpace(
            name="illegal",
            axes=(Axis("routing", ("cr",)),
                  Axis("vcs_per_class", (1,)),
                  Axis("placement", ("top_bottom", "checkerboard"))))
        spec = ExplorationSpec(name="illegal", space=space, mix=("RD",),
                               round_mix=("RD",),
                               ladder=FidelityLadder(min_survivors=1))
        EXECUTION_COUNTER.reset()
        result = explore(spec, jobs=1)
        assert EXECUTION_COUNTER.executed == 0
        assert result.candidates == [] and result.ranking == []
        assert result.frontier == []
        assert len(result.rejected) == 2
        for point in result.rejected:
            rules = [v["rule"] for v in point["violations"]]
            assert "cr-requires-half-routers" in rules
            assert "cr-needs-two-routing-vcs" in rules


class TestPresets:
    def test_unknown_preset_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean 'figure2'"):
            preset("figur2")

    def test_figure2_is_the_papers_seven_points(self):
        spec = preset("figure2")
        candidates, rejected = spec.space.enumerate()
        assert [c.name for c in candidates] == [
            "TB-DOR", "TB-DOR-1cyc", "2x-TB-DOR", "CP-DOR", "CP-CR-4VC",
            "Double-CP-CR", "Throughput-Effective"]
        assert rejected == []
        assert spec.seed_policy == "fixed" and spec.seed == 11
        assert not spec.ladder.screen and spec.ladder.halving_rounds == 0
        assert (spec.ladder.confirm_warmup,
                spec.ladder.confirm_measure) == (400, 1000)

    def test_smoke_and_extended_enumerate(self):
        for name, legal, total in (("smoke", 9, 17),
                                   ("extended", 176, 512)):
            spec = preset(name)
            candidates, rejected = spec.space.enumerate()
            assert (len(candidates), spec.space.size()) == (legal, total)
            assert len(candidates) + len(rejected) == total

    def test_spec_validates_seed_policy_and_mix(self):
        with pytest.raises(ValueError, match="seed_policy"):
            ExplorationSpec(name="x", space=preset("smoke").space,
                            mix=("RD",), round_mix=(),
                            seed_policy="random")
        with pytest.raises(KeyError):
            ExplorationSpec(name="x", space=preset("smoke").space,
                            mix=("NOPE",), round_mix=())
