"""Figure 8: perfect-NoC speedup versus MC injection rate.

The paper observes that speedups correlate with the memory-controller
injection rate (the MC output bandwidth of Figure 1), pointing at a
read-reply-path bottleneck."""

import math

from common import bench_profiles, fmt_pct, once, report, run_design, \
    run_perfect
from repro.core.builder import BASELINE


def _experiment():
    xs, ys, rows = [], [], []
    for prof in bench_profiles():
        base = run_design(prof, BASELINE)
        perfect = run_perfect(prof)
        speedup = perfect.ipc / base.ipc - 1
        rate = perfect.mc_injection_rate_flits
        xs.append(rate)
        ys.append(speedup)
        rows.append(f"{prof.abbr:4s} mc_inj={rate:6.3f} flits/cyc/node  "
                    f"speedup={fmt_pct(speedup)}  class={prof.expected_group}")
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    sy = math.sqrt(sum((y - my) ** 2 for y in ys))
    corr = cov / (sx * sy) if sx and sy else float("nan")
    rows.append(f"Pearson correlation(speedup, MC injection rate) = "
                f"{corr:.3f} (paper: strongly positive)")
    return rows


def test_fig08_injection_correlation(benchmark):
    report("fig08_injection_correlation", once(benchmark, _experiment))
