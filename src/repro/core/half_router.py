"""Half-router structural description (Section IV-A, Figure 13).

The cycle-level connectivity restriction itself lives in
``repro.noc.router.half_connectivity``; this module captures the *structural*
side used for area estimation: a full-router needs a 4x5 crossbar (a packet
never leaves through the port it arrived on), while a half-router needs only
four 2x1 muxes (straight-through on each dimension, selectable against the
injection port) and one 4x1 ejection mux — roughly half the datapath.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..noc.router import full_connectivity, half_connectivity
from ..noc.topology import Direction, ejection_port, injection_port


@dataclass(frozen=True)
class CrossbarShape:
    """Datapath complexity of a router's switch, counted in mux inputs
    (crosspoints) at a given channel width."""

    name: str
    mux_inputs: int

    def crosspoints(self) -> int:
        return self.mux_inputs


def crossbar_shape(half: bool, num_inject_ports: int = 1,
                   num_eject_ports: int = 1) -> CrossbarShape:
    """Count mux inputs from the connectivity function itself so the area
    model and the simulated connectivity can never diverge."""
    connectivity = half_connectivity if half else full_connectivity
    in_ports = list(Direction.__members__.values())[:4] + [
        injection_port(k) for k in range(num_inject_ports)]
    out_ports = list(Direction.__members__.values())[:4] + [
        ejection_port(k) for k in range(num_eject_ports)]
    inputs = 0
    for out_port in out_ports:
        fan_in = sum(1 for in_port in in_ports
                     if connectivity(in_port, out_port))
        if fan_in > 1:
            inputs += fan_in
    name = "half" if half else "full"
    if num_inject_ports > 1 or num_eject_ports > 1:
        name += f"-{num_inject_ports}inj{num_eject_ports}ej"
    return CrossbarShape(name, inputs)
