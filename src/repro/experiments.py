"""Programmatic experiment harness.

The benchmarks under ``benchmarks/`` regenerate the paper's figures; this
module is the library API underneath them, so downstream users can run the
same studies without pytest:

* :func:`compare_designs` — run a set of NoC design points over a benchmark
  suite, closed loop, and aggregate speedups (the shape of Figures 9, 16,
  17, 18, 19 and 20).
* :func:`classify_benchmarks` — the Section III-B characterization
  (perfect-NoC speedup x accepted traffic -> LL/LH/HH; Figures 7 and 8).
* :func:`load_latency_curves` — open-loop latency-versus-load sweeps for a
  set of designs and traffic patterns (Figure 21).

Everything returns plain dataclasses that are trivially serialisable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .core.builder import NetworkDesign, build, open_loop_variant
from .noc.openloop import LoadLatencyPoint, OpenLoopRunner
from .noc.traffic import DestinationPattern
from .system.accelerator import SimulationResult, build_chip, perfect_chip
from .system.config import ChipConfig
from .system.metrics import classify, harmonic_mean
from .workloads.profiles import PROFILES, BenchmarkProfile


@dataclass
class DesignComparison:
    """Closed-loop results for several designs over one benchmark suite."""

    #: results[design name][benchmark abbr]
    results: Dict[str, Dict[str, SimulationResult]]
    baseline: str

    def ipc(self, design: str) -> Dict[str, float]:
        return {abbr: r.ipc for abbr, r in self.results[design].items()}

    def speedups(self, design: str) -> Dict[str, float]:
        base = self.ipc(self.baseline)
        return {abbr: ipc / base[abbr] - 1.0
                for abbr, ipc in self.ipc(design).items()}

    def hm_speedup(self, design: str) -> float:
        base = harmonic_mean(list(self.ipc(self.baseline).values()))
        return harmonic_mean(list(self.ipc(design).values())) / base - 1.0

    def summary(self) -> Dict[str, float]:
        return {name: self.hm_speedup(name) for name in self.results
                if name != self.baseline}


def compare_designs(designs: Sequence[NetworkDesign],
                    profiles: Optional[Sequence[BenchmarkProfile]] = None,
                    baseline: Optional[NetworkDesign] = None,
                    config: Optional[ChipConfig] = None,
                    warmup: int = 400, measure: int = 800,
                    seed: int = 11) -> DesignComparison:
    """Run each design over the suite; the first design (or ``baseline``)
    anchors the speedups."""
    profiles = list(profiles) if profiles is not None else list(PROFILES)
    designs = list(designs)
    if baseline is not None and baseline not in designs:
        designs.insert(0, baseline)
    base_name = (baseline or designs[0]).name
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for design in designs:
        per_bench = {}
        for prof in profiles:
            chip = build_chip(prof, design=design, config=config, seed=seed)
            per_bench[prof.abbr] = chip.run(warmup=warmup, measure=measure)
        results[design.name] = per_bench
    return DesignComparison(results=results, baseline=base_name)


@dataclass
class BenchmarkClass:
    """One benchmark's Section III-B characterization."""

    abbr: str
    expected_group: str
    measured_group: str
    perfect_speedup: float
    traffic_bytes_per_cycle_node: float
    baseline: SimulationResult
    perfect: SimulationResult

    @property
    def matches_paper(self) -> bool:
        return self.measured_group == self.expected_group


@dataclass
class Characterization:
    benchmarks: List[BenchmarkClass]

    @property
    def agreement(self) -> float:
        if not self.benchmarks:
            return 0.0
        return sum(b.matches_paper for b in self.benchmarks) / \
            len(self.benchmarks)

    def hm_perfect_speedup(self, group: Optional[str] = None) -> float:
        rows = [b for b in self.benchmarks
                if group is None or b.expected_group == group]
        if not rows:
            raise ValueError(f"no benchmarks in group {group!r}")
        base = harmonic_mean([b.baseline.ipc for b in rows])
        perf = harmonic_mean([b.perfect.ipc for b in rows])
        return perf / base - 1.0


def classify_benchmarks(
        baseline_design: NetworkDesign,
        profiles: Optional[Sequence[BenchmarkProfile]] = None,
        config: Optional[ChipConfig] = None,
        warmup: int = 400, measure: int = 800,
        seed: int = 11) -> Characterization:
    """Figure 7's study: perfect network versus the baseline mesh."""
    profiles = list(profiles) if profiles is not None else list(PROFILES)
    rows = []
    for prof in profiles:
        base = build_chip(prof, design=baseline_design, config=config,
                          seed=seed).run(warmup=warmup, measure=measure)
        perfect = perfect_chip(prof, config=config, seed=seed).run(
            warmup=warmup, measure=measure)
        speedup = perfect.ipc / base.ipc - 1.0
        traffic = perfect.accepted_bytes_per_cycle_per_node
        rows.append(BenchmarkClass(
            abbr=prof.abbr,
            expected_group=prof.expected_group,
            measured_group=classify(speedup, traffic),
            perfect_speedup=speedup,
            traffic_bytes_per_cycle_node=traffic,
            baseline=base,
            perfect=perfect,
        ))
    return Characterization(rows)


@dataclass
class LoadLatencyCurve:
    design: str
    pattern: str
    points: List[LoadLatencyPoint]

    def saturation_rate(self) -> float:
        """First offered rate at which the network saturates."""
        for point in self.points:
            if point.saturated:
                return point.offered_rate
        return float("inf")


def load_latency_curves(
        designs: Sequence[NetworkDesign],
        rates: Sequence[float],
        pattern_factory: Callable[[List], DestinationPattern],
        pattern_name: str = "uniform",
        warmup: int = 1000, measure: int = 3000,
        seed: int = 7) -> List[LoadLatencyCurve]:
    """Figure 21's open-loop study over a set of designs."""
    curves = []
    for design in designs:
        points = []
        for rate in rates:
            system = build(open_loop_variant(design), seed=seed)
            runner = OpenLoopRunner(system, system.compute_nodes,
                                    system.mc_nodes,
                                    pattern_factory(system.mc_nodes),
                                    rate, seed=seed)
            points.append(runner.run(warmup=warmup, measure=measure))
        curves.append(LoadLatencyCurve(design.name, pattern_name, points))
    return curves
