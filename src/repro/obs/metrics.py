"""Metrics registry: counters, gauges, and exact-percentile histograms.

The serving stack needs the same discipline the simulator got in PR 3 —
numbers you can trust, collected at a cost you can ignore.  This module
is the host-side half of that: a small, dependency-free registry of

* :class:`Counter` — monotone totals with optional label dimensions
  (``jobs_submitted_total{kind="sweep",client="cli"}``);
* :class:`Gauge` — point-in-time values, either set explicitly or read
  lazily from a callback at scrape time (queue depth, cache bytes), so
  the hot path never pays for values nobody is looking at;
* :class:`Histogram` — latency distributions backed by
  :class:`repro.noc.histogram.StreamingHistogram`, the same bounded
  structure the simulator uses for packet latency, so p50/p95/p99 are
  exact below the linear limit and bucket-resolution beyond it.  An
  exact running sum is kept alongside for rate/mean arithmetic.

Two render targets, both deterministic (registration order, then sorted
label values):

* :meth:`MetricsRegistry.render` — Prometheus text exposition
  (``# HELP`` / ``# TYPE`` / sample lines; histograms render as
  summaries with ``quantile`` labels plus ``_sum`` / ``_count``);
* :meth:`MetricsRegistry.snapshot` — a JSON-compatible dict for the
  ``metrics`` protocol command's structured consumers (``repro top``).

Thread-safety: every mutation and read takes the registry lock, so
asyncio workers, executor threads, and scrapes can interleave freely.
The process-wide :data:`REGISTRY` holds library-level series (the
``run_tasks`` task throughput); servers own their own instances so two
servers in one process never double-count.  :func:`enabled` is the
global escape hatch — ``REPRO_OBS=0`` turns every instrumentation site
into a single attribute test, mirroring the simulator's branch-free
telemetry contract: observability never changes results, only whether
anyone was watching.
"""

from __future__ import annotations

import os
import re
import threading
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..noc.histogram import StreamingHistogram

#: Prometheus metric- and label-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Quantiles exposed for every histogram, as (label value, percentile).
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0))


def enabled() -> bool:
    """Global observability switch: ``REPRO_OBS=0`` (or ``false``/``off``)
    disables every library-level instrumentation site."""
    return os.environ.get("REPRO_OBS", "").strip().lower() not in (
        "0", "false", "off", "no")


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: Union[int, float]) -> str:
    """Render a sample value: integers without a trailing ``.0``, floats
    with full ``repr`` precision (round-trip exact)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class Metric:
    """Shared naming/label plumbing for one metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labels: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        names = self.label_names
        if len(labels) == len(names):     # fast path: no set building
            try:
                return tuple(str(labels[name]) for name in names)
            except KeyError:
                pass
        raise ValueError(
            f"{self.name} takes labels {list(names)}, "
            f"got {sorted(labels)}")

    def _render_labels(self, key: Tuple[str, ...],
                       extra: Sequence[Tuple[str, str]] = ()) -> str:
        pairs = [(name, value)
                 for name, value in zip(self.label_names, key)]
        pairs.extend(extra)
        if not pairs:
            return ""
        body = ",".join(f'{name}="{escape_label_value(value)}"'
                        for name, value in pairs)
        return "{" + body + "}"

    # Subclasses provide series() -> ordered [(key, payload)] and the
    # per-series exposition lines.


class Counter(Metric):
    """Monotonically increasing total, optionally labeled.

    ``fn`` (unlabeled counters only) reads the value lazily at scrape
    time — used for totals another component already tracks, like the
    result cache's lifetime counters.
    """

    kind = "counter"

    def __init__(self, name: str, help: str, labels: Sequence[str] = (),
                 fn: Optional[Callable[[], Union[int, float]]] = None
                 ) -> None:
        super().__init__(name, help, labels)
        if fn is not None and labels:
            raise ValueError("callback counters cannot be labeled")
        self._fn = fn
        self._series: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: Union[int, float] = 1, **labels: Any) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed")
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return float(self._series.get(self._key(labels), 0))

    def series(self) -> List[Tuple[Tuple[str, ...], float]]:
        if self._fn is not None:
            return [((), float(self._fn()))]
        with self._lock:
            return sorted(self._series.items())


class Gauge(Metric):
    """Point-in-time value; set explicitly or read from ``fn`` at scrape
    time.  A labeled callback returns ``{(label values...): value}``."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Sequence[str] = (),
                 fn: Optional[Callable[[], Any]] = None) -> None:
        super().__init__(name, help, labels)
        self._fn = fn
        self._series: Dict[Tuple[str, ...], float] = {}

    def set(self, value: Union[int, float], **labels: Any) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed")
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def value(self, **labels: Any) -> float:
        return dict(self.series()).get(self._key(labels), 0.0)

    def series(self) -> List[Tuple[Tuple[str, ...], float]]:
        if self._fn is not None:
            result = self._fn()
            if isinstance(result, dict):
                return sorted((tuple(str(part) for part in key),
                               float(value))
                              for key, value in result.items())
            return [((), float(result))]
        with self._lock:
            return sorted(self._series.items())


class Histogram(Metric):
    """Distribution metric with exact tail percentiles.

    Samples are floats in natural units (seconds); internally each is
    recorded as ``round(value * scale)`` into a
    :class:`StreamingHistogram` (default ``scale=1000``: millisecond
    buckets, exact percentiles below ~4.1 s), and an exact float sum is
    kept alongside.  Exposed as a Prometheus summary: ``quantile``
    series plus ``_sum`` and ``_count``.
    """

    kind = "summary"

    def __init__(self, name: str, help: str, labels: Sequence[str] = (),
                 scale: int = 1000) -> None:
        super().__init__(name, help, labels)
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        self.scale = scale
        self._series: Dict[Tuple[str, ...],
                           Tuple[StreamingHistogram, List[float]]] = {}

    def observe(self, value: Union[int, float], **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, "
                             f"got {value}")
        key = self._key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = (StreamingHistogram(), [0.0])
                self._series[key] = cell
            cell[0].add(int(round(value * self.scale)))
            cell[1][0] += float(value)

    def summary(self, **labels: Any) -> Dict[str, float]:
        """count/sum/min/max/p50/p95/p99 in natural units."""
        key = self._key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}
            hist, total = cell
            return {
                "count": hist.total,
                "sum": total[0],
                "min": hist.min / self.scale,
                "max": hist.max / self.scale,
                "p50": hist.percentile(50) / self.scale,
                "p95": hist.percentile(95) / self.scale,
                "p99": hist.percentile(99) / self.scale,
            }

    def series(self) -> List[Tuple[Tuple[str, ...],
                                   Tuple[StreamingHistogram, float]]]:
        with self._lock:
            return sorted((key, (hist.copy(), total[0]))
                          for key, (hist, total) in self._series.items())


class MetricsRegistry:
    """Ordered collection of metrics with deterministic rendering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}    # insertion-ordered

    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(
                    f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labels: Sequence[str] = (),
                fn: Optional[Callable[[], Union[int, float]]] = None
                ) -> Counter:
        return self._register(Counter(name, help, labels, fn))  # type: ignore[return-value]

    def gauge(self, name: str, help: str, labels: Sequence[str] = (),
              fn: Optional[Callable[[], Any]] = None) -> Gauge:
        return self._register(Gauge(name, help, labels, fn))  # type: ignore[return-value]

    def histogram(self, name: str, help: str,
                  labels: Sequence[str] = (), scale: int = 1000
                  ) -> Histogram:
        return self._register(Histogram(name, help, labels, scale))  # type: ignore[return-value]

    def metrics(self) -> List[Metric]:
        with self._lock:
            return list(self._metrics.values())

    def render(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: List[str] = []
        for metric in self.metrics():
            lines.append(f"# HELP {metric.name} "
                         f"{_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, (hist, total) in metric.series():
                    for quantile, percentile in QUANTILES:
                        labels = metric._render_labels(
                            key, [("quantile", quantile)])
                        value = (hist.percentile(percentile)
                                 / metric.scale) if hist.total else 0.0
                        lines.append(f"{metric.name}{labels} "
                                     f"{format_value(value)}")
                    labels = metric._render_labels(key)
                    lines.append(f"{metric.name}_sum{labels} "
                                 f"{format_value(total)}")
                    lines.append(f"{metric.name}_count{labels} "
                                 f"{format_value(hist.total)}")
            else:
                for key, value in metric.series():
                    labels = metric._render_labels(key)
                    lines.append(f"{metric.name}{labels} "
                                 f"{format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible dump of every metric's current series."""
        snap: Dict[str, Any] = {}
        for metric in self.metrics():
            series: List[Dict[str, Any]] = []
            if isinstance(metric, Histogram):
                for key, (hist, total) in metric.series():
                    entry: Dict[str, Any] = {
                        "labels": dict(zip(metric.label_names, key)),
                        "count": hist.total,
                        "sum": round(total, 9),
                    }
                    if hist.total:
                        entry.update({
                            "min": hist.min / metric.scale,
                            "max": hist.max / metric.scale,
                            "p50": hist.percentile(50) / metric.scale,
                            "p95": hist.percentile(95) / metric.scale,
                            "p99": hist.percentile(99) / metric.scale,
                        })
                    series.append(entry)
            else:
                for key, value in metric.series():
                    series.append({
                        "labels": dict(zip(metric.label_names, key)),
                        "value": value,
                    })
            snap[metric.name] = {"type": metric.kind,
                                 "help": metric.help, "series": series}
        return snap


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Concatenated exposition of several registries (server-local
    series first, then the process-wide library series)."""
    return "".join(registry.render() for registry in registries)


#: Parseability check used by tests and the CI scrape: every non-comment
#: line is ``name[{labels}] value``.
EXPOSITION_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" -?[0-9.e+-]+(inf|nan)?$")


def parse_exposition(text: str) -> Dict[str, Dict[str, float]]:
    """Parse exposition text into ``{metric: {label-part: value}}``;
    raises ``ValueError`` on any malformed line.  Deliberately strict —
    this is the golden-pinning and CI-scrape helper, not a client."""
    result: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        if not EXPOSITION_LINE_RE.match(line):
            raise ValueError(f"malformed exposition line: {line!r}")
        name_part, value = line.rsplit(" ", 1)
        brace = name_part.find("{")
        if brace >= 0:
            name, labels = name_part[:brace], name_part[brace:]
        else:
            name, labels = name_part, ""
        result.setdefault(name, {})[labels] = float(value)
    return result


#: Process-wide registry for library-level series (``repro.parallel``'s
#: task throughput); servers keep their own registries on top of this.
REGISTRY = MetricsRegistry()
