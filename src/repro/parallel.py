"""Parallel experiment execution layer.

Every study in :mod:`repro.experiments` decomposes into independent
simulation *tasks* — one closed-loop chip run per (design, benchmark) point
or one open-loop sweep point per (design, pattern, rate).  This module is
the pluggable executor underneath them:

* :func:`run_tasks` — execute a list of :class:`SimTask`\\ s serially
  (``jobs=1``, the default) or fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs=N``), with
  per-task wall-clock reporting and an optional on-disk result cache.
* :func:`derive_seed` — deterministic, platform-independent per-task seed
  derivation (SHA-256 based, immune to ``PYTHONHASHSEED``), so every design
  point is statistically independent yet exactly reproducible.
* :class:`ResultCache` — an on-disk store keyed by a stable hash of the
  full task specification ``(ChipConfig, NetworkDesign, profile, seed,
  warmup, measure)``; any field change produces a different key.

The determinism contract: for the same task list, ``jobs=1`` and ``jobs=N``
produce field-for-field identical results.  Both paths execute the same
:func:`_run_task` worker and transport results as JSON (floats round-trip
exactly through ``repr``), so the only difference is *where* the work runs.
Tasks shipped to worker processes must be picklable — in practice that
means module-level pattern factories (classes or :func:`functools.partial`)
rather than lambdas.

Fleet mode (``fleet=B`` / ``REPRO_FLEET=B``, DESIGN.md §18) extends the
contract without changing a single result bit: a grouping pass packs
compatible open-loop tasks (same topology shape and windows; seed, rate,
pattern and design may differ) into lockstep fleets that one worker steps
through a shared struct-of-arrays screen (``repro.noc.fleet``), and the
remaining open-loop tasks run solo on the batched core.  The per-member
payloads keep the exact solo shape, so caching, transport and every
consumer downstream are oblivious to how a result was produced.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from .obs import log as obs_log
from .obs import metrics as obs_metrics

# ---------------------------------------------------------------------------
# Stable hashing and seed derivation
# ---------------------------------------------------------------------------


def _encode(obj: Any) -> Any:
    """JSON fallback encoder for task specs (dataclasses, paths, tuples)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__,
                **dataclasses.asdict(obj)}
    if isinstance(obj, Path):
        return str(obj)
    raise TypeError(f"cannot stably encode {type(obj).__name__}: {obj!r}")


def canonical_json(obj: Any) -> str:
    """Canonical JSON used for hashing: sorted keys, no whitespace,
    ``repr``-exact floats."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=_encode)


def stable_key(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``.

    Unlike :func:`hash`, this is stable across processes, interpreter
    invocations and ``PYTHONHASHSEED`` values, so it is safe as an on-disk
    cache key and as a seed-derivation primitive.
    """
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def derive_seed(seed: int, *parts: Any) -> int:
    """Derive an independent per-task seed from a base seed and a label.

    ``derive_seed(11, "openloop", "TB-DOR", "uniform", 0.02)`` gives every
    (design, pattern, rate) point its own reproducible RNG stream: stable
    across runs and hosts, different for any change in ``seed`` or the
    labelling parts.
    """
    digest = hashlib.sha256(
        canonical_json([seed, *parts]).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit ``jobs``, else the ``REPRO_JOBS``
    environment variable, else 1 (serial)."""
    if jobs is None:
        text = os.environ.get("REPRO_JOBS", "1") or "1"
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer >= 1, got {text!r}") from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_fleet(fleet: Optional[int] = None) -> int:
    """Resolve the fleet batch width: explicit ``fleet``, else the
    ``REPRO_FLEET`` environment variable, else 1 (no fleeting).

    Returns 1 whenever ``REPRO_REFERENCE_STEPPER=1`` is set, whatever
    width was requested: fleets run on the batched core, and the stepper
    twin-selection contract says the reference-stepper override wins over
    every other backend request.
    """
    if os.environ.get("REPRO_REFERENCE_STEPPER") == "1":
        return 1
    if fleet is None:
        text = os.environ.get("REPRO_FLEET", "1") or "1"
        try:
            fleet = int(text)
        except ValueError:
            raise ValueError(
                f"REPRO_FLEET must be an integer >= 1, got {text!r}"
            ) from None
    if fleet < 1:
        raise ValueError(f"fleet must be >= 1, got {fleet}")
    return fleet


# ---------------------------------------------------------------------------
# Execution counting (test/instrumentation hook)
# ---------------------------------------------------------------------------


class ExecutionCounter:
    """Counts simulations actually executed (cache hits excluded).

    With ``jobs=1`` every task runs in-process, so the counter observes all
    executions; with a process pool, child-process increments are invisible
    to the parent — use ``jobs=1`` when asserting on it.
    """

    def __init__(self) -> None:
        self.executed = 0

    def reset(self) -> None:
        """Zero the counter."""
        self.executed = 0


#: Module-level counter incremented by every in-process task execution.
EXECUTION_COUNTER = ExecutionCounter()


# Process-wide task-throughput series (see DESIGN.md §16): how many
# tasks run_tasks resolved, by origin, and the summed wall-clock of the
# executed ones.  Lives in the shared obs registry so the job server's
# ``metrics`` command exposes the process pool's throughput alongside
# its own queue/job series.  Per-process, like EXECUTION_COUNTER.
TASKS_TOTAL = obs_metrics.REGISTRY.counter(
    "repro_tasks_total",
    "Tasks resolved by run_tasks, by origin (run or cache).",
    labels=("origin",))
TASK_SECONDS_TOTAL = obs_metrics.REGISTRY.counter(
    "repro_task_seconds_total",
    "Summed wall-clock seconds of executed (non-cached) tasks.")


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-noc``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-noc"


def default_cache_budget() -> Optional[int]:
    """``REPRO_CACHE_MAX_MB`` (MiB, may be fractional) as a byte budget,
    or ``None`` for an unbounded cache."""
    env = os.environ.get("REPRO_CACHE_MAX_MB")
    if not env:
        return None
    try:
        budget = float(env)
    except ValueError:
        raise ValueError(f"REPRO_CACHE_MAX_MB must be a number, "
                         f"got {env!r}") from None
    if budget <= 0:
        raise ValueError(f"REPRO_CACHE_MAX_MB must be > 0, got {env!r}")
    return int(budget * (1 << 20))


#: Index and lock file names.  Deliberately without the ``.json`` entry
#: extension so directory globs over entries never see them.
INDEX_NAME = "INDEX"
INDEX_LOCK_NAME = "INDEX.lock"
INDEX_SCHEMA = 1
#: A ``*.tmp.<pid>`` file this old can only be the orphan of a writer
#: killed between ``open`` and ``os.replace`` — live writes last
#: milliseconds.
STALE_TMP_SECONDS = 3600.0
#: ``put`` sweeps for orphans at most this often (tracked in the index).
TMP_SWEEP_INTERVAL = 300.0
#: A lock file this old belongs to a dead process and is broken.
_LOCK_STALE_SECONDS = 10.0
#: How long a writer waits for the lock before proceeding without it —
#: the index is advisory and self-heals, so losing one update beats
#: deadlocking the harness.
_LOCK_TIMEOUT_SECONDS = 5.0


class ResultCache:
    """Directory of ``<key>.json`` files holding task result payloads.

    Entry writes are atomic (temp file + :func:`os.replace`), so concurrent
    workers and concurrent harness invocations can share one cache
    directory.  A corrupt or unreadable entry is treated as a miss.

    Alongside the entries the cache keeps an on-disk index (``INDEX``)
    mapping key → (size, last-used), maintained under a lock file with
    stale-lock breaking so concurrent writers cannot corrupt it; a missing
    or corrupt index is rebuilt from a directory scan, so it is never a
    source of truth for correctness — only for fast :meth:`stats` and
    LRU eviction.  With ``max_bytes`` set (or ``REPRO_CACHE_MAX_MB`` in
    the environment), every :meth:`put` evicts least-recently-used
    entries until the cache fits the budget; :meth:`get` refreshes an
    entry's recency via ``os.utime``, which is lock-free and atomic.

    A writer killed between opening its temp file and the ``os.replace``
    leaves an orphan ``<key>.tmp.<pid>`` behind; those are age-swept on
    :meth:`put` and unconditionally removed by :meth:`clear`.  Orphans are
    never served: :meth:`get` only ever reads ``<key>.json``.

    ``counters`` tallies this instance's lifetime activity — hits,
    misses, puts, evictions, evicted bytes, and index-lock timeouts —
    for the serve ``stats``/``metrics`` endpoints.  They are in-memory
    and per-process: concurrent writers sharing one directory each see
    their own counts, never each other's.
    """

    def __init__(self, root: Union[str, Path, None] = None,
                 max_bytes: Optional[int] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None \
            else default_cache_budget()
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {self.max_bytes}")
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "puts": 0, "evictions": 0,
            "evicted_bytes": 0, "lock_timeouts": 0}

    def path_for(self, key: str) -> Path:
        """Cache file path for ``key``."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Return the stored payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        try:
            os.utime(path)      # LRU recency: eviction orders by mtime
        except OSError:
            pass                # entry evicted under us: still a valid hit
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically store ``payload`` under ``key``, update the index,
        age-sweep orphaned temp files and enforce the size budget."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        size = tmp.stat().st_size
        os.replace(tmp, path)
        self.counters["puts"] += 1
        with self._locked():
            index = self._read_index()
            index["entries"][key] = {"bytes": size, "used": time.time()}
            now = time.time()
            if now - index.get("swept", 0.0) >= TMP_SWEEP_INTERVAL:
                self.sweep_stale_tmp()
                index["swept"] = now
            if self.max_bytes is not None:
                self._evict(index, keep=key)
            self._write_index(index)

    def clear(self) -> int:
        """Delete every cache entry (plus the index and any orphaned temp
        files, whatever their age); returns how many entries were
        removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            self.sweep_stale_tmp(max_age=0.0)
            (self.root / INDEX_NAME).unlink(missing_ok=True)
        return removed

    def sweep_stale_tmp(self, max_age: float = STALE_TMP_SECONDS) -> int:
        """Remove ``*.tmp.<pid>`` orphans older than ``max_age`` seconds;
        returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            now = time.time()
            for path in self.root.glob("*.tmp.*"):
                try:
                    if now - path.stat().st_mtime < max_age:
                        continue
                    path.unlink()
                    removed += 1
                except OSError:
                    continue    # a concurrent writer renamed/removed it
        return removed

    def stats(self) -> dict:
        """Entry count, byte total and budget, from the index reconciled
        against the directory (entries deleted externally are dropped),
        plus this instance's lifetime ``counters``."""
        if not self.root.is_dir():      # nothing cached yet
            return {"entries": 0, "bytes": 0, "max_bytes": self.max_bytes,
                    "counters": dict(self.counters)}
        with self._locked():
            index = self._read_index()
            entries = index["entries"]
            for key in list(entries):
                if not self.path_for(key).is_file():
                    del entries[key]
            self._write_index(index)
        return {
            "entries": len(entries),
            "bytes": sum(e["bytes"] for e in entries.values()),
            "max_bytes": self.max_bytes,
            "counters": dict(self.counters),
        }

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) if self.root.is_dir() \
            else 0

    # -- index internals (all under self._locked()) --------------------------

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive advisory lock over the index file.

        Taken via ``O_CREAT | O_EXCL``; a lock older than
        ``_LOCK_STALE_SECONDS`` belongs to a dead process and is broken.
        After ``_LOCK_TIMEOUT_SECONDS`` the writer proceeds *without* the
        lock: a lost index update is harmless (the index self-heals from
        the directory) while a stuck harness is not.
        """
        lock = self.root / INDEX_LOCK_NAME
        deadline = time.monotonic() + _LOCK_TIMEOUT_SECONDS
        fd = None
        while fd is None:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    stale = (time.time() - lock.stat().st_mtime
                             > _LOCK_STALE_SECONDS)
                except OSError:
                    continue    # holder released it: retry immediately
                if stale:
                    lock.unlink(missing_ok=True)
                    continue
                if time.monotonic() >= deadline:
                    self.counters["lock_timeouts"] += 1
                    break
                time.sleep(0.005)
        try:
            yield
        finally:
            if fd is not None:
                os.close(fd)
                lock.unlink(missing_ok=True)

    def _read_index(self) -> dict:
        try:
            data = json.loads(
                (self.root / INDEX_NAME).read_text(encoding="utf-8"))
            if data.get("schema") == INDEX_SCHEMA \
                    and isinstance(data.get("entries"), dict):
                return data
        except (OSError, ValueError):
            pass
        return self._rebuild_index()

    def _rebuild_index(self) -> dict:
        entries: Dict[str, dict] = {}
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                entries[path.stem] = {"bytes": st.st_size,
                                      "used": st.st_mtime}
        return {"schema": INDEX_SCHEMA, "swept": 0.0, "entries": entries}

    def _write_index(self, index: dict) -> None:
        tmp = self.root / f"{INDEX_NAME}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(index), encoding="utf-8")
        os.replace(tmp, self.root / INDEX_NAME)

    def _evict(self, index: dict, keep: Optional[str] = None) -> int:
        """Delete least-recently-used entries until the cache fits
        ``max_bytes``; never evicts ``keep`` (the entry whose ``put``
        triggered the pass).  Recency and sizes are refreshed from the
        filesystem first, because ``get`` touches entries without the
        lock."""
        entries = index["entries"]
        for key in list(entries):
            try:
                st = self.path_for(key).stat()
            except OSError:
                del entries[key]    # removed by a concurrent clear/evict
                continue
            entries[key] = {"bytes": st.st_size, "used": st.st_mtime}
        total = sum(e["bytes"] for e in entries.values())
        evicted = 0
        for key in sorted(entries, key=lambda k: (entries[k]["used"], k)):
            if total <= self.max_bytes:
                break
            if key == keep:
                continue
            self.path_for(key).unlink(missing_ok=True)
            size = entries.pop(key)["bytes"]
            total -= size
            evicted += 1
            self.counters["evictions"] += 1
            self.counters["evicted_bytes"] += size
        return evicted


def as_cache(cache: Union[None, bool, str, Path, ResultCache]
             ) -> Optional[ResultCache]:
    """Coerce a user-facing ``cache`` argument: ``None``/``False`` disable
    caching, ``True`` uses the default directory, a path opens that
    directory, a :class:`ResultCache` passes through."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# ---------------------------------------------------------------------------
# Tasks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimTask:
    """One independent simulation: a closed-loop chip run or an open-loop
    sweep point.

    ``kind`` selects the worker path: ``"closed"`` (design × benchmark),
    ``"perfect"`` (perfect-NoC × benchmark) or ``"openloop"`` (design ×
    pattern × rate).  ``seed`` is the already-derived per-task seed.
    ``pattern_factory`` must be picklable for process-pool execution and is
    excluded from the cache key — ``pattern_name`` identifies the pattern
    there, so callers must keep it unique per pattern configuration.
    """

    kind: str
    label: str
    seed: int
    warmup: int
    measure: int
    design: Optional[Any] = None          # NetworkDesign
    profile: Optional[Any] = None         # BenchmarkProfile
    config: Optional[Any] = None          # ChipConfig (None = paper config)
    pattern_factory: Optional[Callable] = None
    pattern_name: Optional[str] = None
    rate: Optional[float] = None
    #: Optional :class:`repro.telemetry.TelemetrySpec`.  Telemetry is
    #: read-only and never changes results, so it is deliberately excluded
    #: from the cache key — but a cache hit is bypassed when requested
    #: artifacts are missing on disk (see :func:`run_tasks`).
    telemetry: Optional[Any] = None

    def cache_key(self) -> str:
        """Stable cache key over every result-determining field."""
        from .system.config import paper_config
        config = self.config if self.config is not None else (
            paper_config() if self.kind != "openloop" else None)
        spec = {
            # Bumped whenever the result payload format changes (schema 2:
            # latency tail percentiles; schema 3: per-component activity
            # counters for the power model), so stale cache entries from
            # older code are never served.
            "schema": 3,
            "kind": self.kind,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "design": self.design,
            "profile": self.profile,
            "config": config,
            "pattern": self.pattern_name,
            "rate": self.rate,
        }
        return stable_key(spec)

    def telemetry_dir(self) -> Optional[Path]:
        """Artifact directory for this task's telemetry output, keyed like
        the result cache (``<label-slug>-<cache_key[:12]>``) so artifacts
        and cached results stay associated; ``None`` when the task does not
        write artifacts."""
        spec = self.telemetry
        if spec is None or spec.out_dir is None:
            return None
        slug = "".join(c if c.isalnum() or c in "._" else "-"
                       for c in self.label) or "task"
        return Path(spec.out_dir) / f"{slug}-{self.cache_key()[:12]}"


@dataclass(frozen=True)
class TaskReport:
    """Per-task progress record handed to the ``progress`` callback.

    ``fleet_size``/``fleet_index`` identify a task's position inside a
    lockstep fleet unit (see DESIGN.md §18); solo tasks report the
    defaults.  The serve layer forwards these fields verbatim, so live
    progress consumers can show fleet members individually.
    """

    index: int
    total: int
    label: str
    seconds: float
    cached: bool
    fleet_size: int = 1
    fleet_index: int = 0


def _open_loop_runner(task: SimTask, hub=None,
                      backend: Optional[str] = None):
    """Build the network system and runner for one open-loop task.

    Shared by the solo worker (:func:`_run_task`) and the fleet worker
    (:func:`_run_fleet_group`) so both execute exactly the same build
    path.  ``backend="batched"`` switches the freshly built system onto
    the batched stepper before any traffic exists.
    """
    from .core.builder import build, open_loop_variant
    from .noc.openloop import OpenLoopRunner
    mesh = None
    num_mcs = 8
    if task.config is not None:
        # A ChipConfig on an open-loop task only contributes its mesh
        # geometry and MC count (there is no chip); the exploration
        # engine uses this for mesh-size axes.
        from .noc.topology import Mesh
        mesh = Mesh(task.config.mesh_cols, task.config.mesh_rows)
        num_mcs = task.config.num_memory_channels
    system = build(open_loop_variant(task.design), mesh,
                   num_mcs=num_mcs, seed=task.seed)
    if backend == "batched":
        system.use_batched_stepper()
    return OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                          task.pattern_factory(system.mc_nodes),
                          task.rate, seed=task.seed, telemetry=hub)


def _run_task(task: SimTask, backend: Optional[str] = None) -> str:
    """Execute one task and return its result payload as a JSON string.

    This is the single worker used by both the serial and the process-pool
    executors; returning JSON (rather than pickled objects) exercises the
    exact transport/caching representation on every path, which is what the
    golden-determinism tests pin down.  ``backend`` optionally forces a
    stepper backend on open-loop tasks (the fleet planner runs solo sweep
    points as ``"batched"``); results are bit-identical across backends,
    so the payload — and the cache key — do not depend on it.
    """
    EXECUTION_COUNTER.executed += 1
    start = time.perf_counter()
    hub = None
    if task.telemetry is not None and task.telemetry.enabled:
        from .telemetry import TelemetryHub
        hub = TelemetryHub(task.telemetry)
    if task.kind == "openloop":
        runner = _open_loop_runner(task, hub, backend)
        result = runner.run(warmup=task.warmup, measure=task.measure)
    elif task.kind == "perfect":
        from .system.accelerator import perfect_chip
        chip = perfect_chip(task.profile, config=task.config, seed=task.seed)
        if hub is not None:
            hub.attach_chip(chip)       # ideal network: chip columns only
        result = chip.run(warmup=task.warmup, measure=task.measure)
    elif task.kind == "closed":
        from .system.accelerator import build_chip
        chip = build_chip(task.profile, design=task.design,
                          config=task.config, seed=task.seed)
        if hub is not None:
            hub.attach_chip(chip)
        result = chip.run(warmup=task.warmup, measure=task.measure)
    else:
        raise ValueError(f"unknown task kind {task.kind!r}")
    payload = {
        "kind": task.kind,
        "label": task.label,
        "elapsed": time.perf_counter() - start,
        "result": result.to_json(),
    }
    if hub is not None:
        artifact_dir = task.telemetry_dir()
        if artifact_dir is not None:
            hub.write_artifacts(artifact_dir)
            payload["telemetry_dir"] = str(artifact_dir)
    return json.dumps(payload)


# ---------------------------------------------------------------------------
# Fleet planning and execution (DESIGN.md §18)
# ---------------------------------------------------------------------------


#: Offered-rate ceiling for lockstep fleeting.  Measured crossover: below
#: this rate the per-cycle fixed cost (ufunc dispatch, call frames)
#: dominates and sharing one screen across members wins ~1.2-1.4x; above
#: it the per-flit grant/channel work dominates and interleaving B live
#: working sets costs more in cache locality than the shared screen
#: saves, so those points run solo on the batched core instead.
FLEET_LOCKSTEP_MAX_RATE = 0.1


class FleetMemberFailure(RuntimeError):
    """One member of a lockstep fleet failed.

    ``member`` is the position inside the fleet unit (not the global task
    index — :func:`run_tasks` maps it back); ``label`` names the task.
    Raised by :func:`_run_fleet_group` after attributing a fleet failure
    to a specific member by solo rerun, and pickled across the process
    pool, hence ``__reduce__``.
    """

    def __init__(self, member: int, label: str, message: str) -> None:
        super().__init__(message)
        self.member = member
        self.label = label

    def __reduce__(self):
        return (FleetMemberFailure, (self.member, self.label, str(self)))


def _run_fleet_group(tasks: Sequence[SimTask]) -> List[str]:
    """Execute a lockstep fleet of compatible open-loop tasks and return
    per-member payload JSON strings, in member order.

    The fleet worker twin of :func:`_run_task`: payloads have the exact
    solo shape, with the shared wall-clock split evenly across members
    (per-member attribution inside one lockstep loop is meaningless).

    Failure contract: the lockstep loop runs with no per-member handling
    (keeping the hot path try-free); when it raises, members are rerun
    solo on the batched core — fleet execution is bit-identical to solo,
    so a member whose simulation trips an invariant trips it alone too —
    and the culprit is reported as :class:`FleetMemberFailure`.  If no
    member fails solo, the fault is in the fleet machinery itself and
    the original exception propagates unwrapped.
    """
    EXECUTION_COUNTER.executed += len(tasks)
    start = time.perf_counter()
    try:
        runners = [_open_loop_runner(task) for task in tasks]
        from .noc.fleet import FleetRunner
        points = FleetRunner(runners).run(warmup=tasks[0].warmup,
                                          measure=tasks[0].measure)
    except Exception:
        for member, task in enumerate(tasks):
            try:
                _run_task(task, backend="batched")
            except Exception as solo_exc:
                raise FleetMemberFailure(
                    member, task.label,
                    f"{type(solo_exc).__name__}: {solo_exc}") from solo_exc
        raise
    elapsed = (time.perf_counter() - start) / len(tasks)
    return [json.dumps({"kind": task.kind, "label": task.label,
                        "elapsed": elapsed, "result": point.to_json()})
            for task, point in zip(tasks, points)]


def _plan_units(tasks: Sequence[SimTask], pending: Sequence[int],
                fleet: int) -> List[Tuple[Tuple[int, ...], Optional[str]]]:
    """Pack pending task indices into execution units.

    A unit is ``(member_indices, backend)``: a multi-member unit runs as
    one lockstep fleet via :func:`_run_fleet_group`; a single-member unit
    runs via :func:`_run_task` with the given backend override.

    Packing rules (DESIGN.md §18): only open-loop tasks without telemetry
    are fleet candidates, and only at offered rates at or below
    :data:`FLEET_LOCKSTEP_MAX_RATE`; candidates group by topology shape
    and (warmup, measure) windows — lockstep needs equal windows, and
    like shapes keep fleets homogeneous — while seed, rate, pattern and
    design may differ freely within a group.  Groups are chunked to at
    most ``fleet`` members.  Higher-rate open-loop tasks run solo on the
    batched core (uniformly at least as fast as the event core for this
    workload); closed-loop, perfect-NoC and telemetry tasks run plain
    solo on their default backend.  Units are ordered by first member
    index so serial execution stays in task order.
    """
    if fleet <= 1:
        return [((i,), None) for i in pending]
    units: List[Tuple[Tuple[int, ...], Optional[str]]] = []
    groups: Dict[Any, List[int]] = {}
    for i in pending:
        task = tasks[i]
        if task.kind != "openloop" or task.telemetry is not None:
            units.append(((i,), None))
            continue
        if task.rate is None or task.rate > FLEET_LOCKSTEP_MAX_RATE:
            units.append(((i,), "batched"))
            continue
        config = task.config
        shape = None if config is None else (
            config.mesh_cols, config.mesh_rows, config.num_memory_channels)
        key = (shape, task.warmup, task.measure)
        groups.setdefault(key, []).append(i)
    for members in groups.values():
        for lo in range(0, len(members), fleet):
            chunk = tuple(members[lo:lo + fleet])
            if len(chunk) == 1:
                units.append((chunk, "batched"))
            else:
                units.append((chunk, None))
    units.sort(key=lambda unit: unit[0][0])
    return units


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class TaskError(RuntimeError):
    """A task's worker raised.  ``label`` and ``index`` name the failing
    task; the worker's exception is chained as ``__cause__``.  Every
    sibling task that completed before the failure propagated has already
    been cached (when a cache is active), so a retry only re-runs the
    failed and the never-started tasks.
    """

    def __init__(self, message: str, label: str, index: int) -> None:
        super().__init__(message)
        self.label = label
        self.index = index


def _task_error(task: SimTask, index: int, exc: BaseException) -> TaskError:
    return TaskError(f"task {task.label!r} (index {index}) failed: "
                     f"{type(exc).__name__}: {exc}", task.label, index)


def run_tasks(tasks: Sequence[SimTask], jobs: Optional[int] = None,
              cache: Union[None, bool, str, Path, ResultCache] = None,
              progress: Optional[Callable[[TaskReport], None]] = None,
              fleet: Optional[int] = None,
              pool: Optional[ProcessPoolExecutor] = None
              ) -> List[dict]:
    """Execute ``tasks`` and return their result payloads, in task order.

    ``jobs=1`` runs everything inline; ``jobs=N`` fans uncached work out
    over a process pool and consumes completions as they land
    (out-of-order), so progress reporting and caching are never serialized
    behind the slowest early task.  Results are collected positionally, so
    the output order — and therefore everything downstream — is
    independent of worker scheduling.  ``progress`` (if given) is called
    once per task with a :class:`TaskReport` carrying the task's
    wall-clock time and whether it was served from the cache.

    ``fleet`` (default: ``REPRO_FLEET``, else 1) turns on lockstep
    multi-simulation batching: :func:`_plan_units` packs compatible
    open-loop tasks into fleets of up to ``fleet`` members that one
    worker steps through a shared SoA screen, bit-identically to solo
    execution (DESIGN.md §18).  ``pool`` lets a caller reuse one
    :class:`ProcessPoolExecutor` across several ``run_tasks`` calls
    (e.g. the DSE engine's screen → halving → confirm stages); a
    provided pool is never shut down here.

    Failure contract: a worker exception propagates as a
    :class:`TaskError` naming the failing task — a fleet failure is
    first attributed to the guilty member by solo rerun — but only after
    every already-completed sibling's payload has been cached; a failed
    sweep never discards finished work.  Units that have not started are
    cancelled; units still running are allowed to finish and are cached
    too.
    """
    jobs = resolve_jobs(jobs)
    fleet = resolve_fleet(fleet)
    store = as_cache(cache)
    total = len(tasks)
    payloads: List[Optional[dict]] = [None] * total
    keys: List[Optional[str]] = [None] * total
    pending: List[int] = []

    for i, task in enumerate(tasks):
        if store is not None:
            keys[i] = task.cache_key()
            hit = store.get(keys[i])
            # A cached result only substitutes for running the task if the
            # requested telemetry artifacts are complete on disk.  The
            # hub writes summary.json last, so its presence — not the
            # directory's, which a killed writer leaves half-filled —
            # is the completion sentinel.
            artifact_dir = task.telemetry_dir()
            artifacts_ok = artifact_dir is None or \
                (artifact_dir / "summary.json").is_file()
            if hit is not None and artifacts_ok:
                payloads[i] = hit
                if obs_metrics.enabled():
                    TASKS_TOTAL.inc(origin="cache")
                obs_log.emit("task_done", label=task.label, index=i,
                             cached=True,
                             seconds=round(hit.get("elapsed", 0.0), 6))
                if progress is not None:
                    progress(TaskReport(i, total, task.label,
                                        hit.get("elapsed", 0.0), True))
                continue
        pending.append(i)

    def _finish(i: int, raw: str, fleet_size: int = 1,
                fleet_index: int = 0) -> float:
        payload = json.loads(raw)
        payloads[i] = payload
        if store is not None:
            store.put(keys[i] or tasks[i].cache_key(), payload)
        elapsed = payload.get("elapsed", 0.0)
        if obs_metrics.enabled():
            TASKS_TOTAL.inc(origin="run")
            TASK_SECONDS_TOTAL.inc(elapsed)
        obs_log.emit("task_done", label=tasks[i].label, index=i,
                     cached=False, seconds=round(elapsed, 6),
                     fleet_size=fleet_size, fleet_index=fleet_index)
        if progress is not None:
            progress(TaskReport(i, total, tasks[i].label, elapsed, False,
                                fleet_size=fleet_size,
                                fleet_index=fleet_index))
        return elapsed

    def _finish_unit(members: Tuple[int, ...], raws: List[str]) -> None:
        size = len(members)
        seconds = 0.0
        for k, (i, raw) in enumerate(zip(members, raws)):
            seconds += _finish(i, raw, size, k)
        if size > 1:
            obs_log.emit("fleet_done", size=size,
                         seconds=round(seconds, 6),
                         labels=[tasks[i].label for i in members])

    def _run_unit(members: Tuple[int, ...],
                  backend: Optional[str]) -> List[str]:
        if len(members) == 1:
            return [_run_task(tasks[members[0]], backend)]
        return _run_fleet_group([tasks[i] for i in members])

    def _unit_error(members: Tuple[int, ...],
                    exc: BaseException) -> TaskError:
        # A fleet failure names the guilty member; anything else pins the
        # unit's first task (for solo units, the only task).
        member = exc.member if isinstance(exc, FleetMemberFailure) else 0
        i = members[member]
        return _task_error(tasks[i], i, exc)

    units = _plan_units(tasks, pending, fleet)
    if units:
        if jobs == 1 or len(units) == 1:
            for members, backend in units:
                try:
                    raws = _run_unit(members, backend)
                except Exception as exc:
                    raise _unit_error(members, exc) from exc
                _finish_unit(members, raws)
        else:
            owns_pool = pool is None
            executor = pool if pool is not None else ProcessPoolExecutor(
                max_workers=min(jobs, len(units)))
            try:
                unit_of = {}
                for members, backend in units:
                    if len(members) == 1:
                        future = executor.submit(
                            _run_task, tasks[members[0]], backend)
                    else:
                        future = executor.submit(
                            _run_fleet_group,
                            [tasks[i] for i in members])
                    unit_of[future] = members
                failure: Optional[
                    Tuple[Tuple[int, ...], BaseException]] = None
                for future in as_completed(unit_of):
                    members = unit_of[future]
                    try:
                        raw = future.result()
                    except Exception as exc:
                        failure = (members, exc)
                        break
                    _finish_unit(members,
                                 raw if isinstance(raw, list) else [raw])
                if failure is not None:
                    # Fail fast without losing finished work: cancel
                    # whatever has not started, let running units drain,
                    # and cache every sibling that completed.
                    for future in unit_of:
                        future.cancel()
                    for future, members in unit_of.items():
                        if (members == failure[0] or future.cancelled()
                                or payloads[members[0]] is not None):
                            continue
                        try:
                            raw = future.result()
                        except Exception:
                            continue    # the first failure wins
                        _finish_unit(members,
                                     raw if isinstance(raw, list)
                                     else [raw])
                    members, exc = failure
                    raise _unit_error(members, exc) from exc
            finally:
                if owns_pool:
                    executor.shutdown()
    return payloads  # type: ignore[return-value]


class ReportCollector:
    """Progress callback that tallies the run: task count, cache hits and
    per-task wall-clock seconds.

    Usable anywhere a ``progress`` callable is accepted; ``chain`` forwards
    every report to a second callback (e.g. :func:`log_progress`) so
    collection and printing compose.  The exploration engine and the DSE
    throughput benchmark read the tallies for per-stage progress lines and
    the ``BENCH_dse.json`` trajectory.
    """

    def __init__(self, chain: Optional[Callable[[TaskReport], None]] = None,
                 cache: Optional["ResultCache"] = None) -> None:
        self.reports: List[TaskReport] = []
        self.chain = chain
        self.cache = cache

    def __call__(self, report: TaskReport) -> None:
        self.reports.append(report)
        if self.chain is not None:
            self.chain(report)

    @property
    def total(self) -> int:
        """Tasks observed so far."""
        return len(self.reports)

    @property
    def cached(self) -> int:
        """Tasks served from the on-disk result cache."""
        return sum(1 for r in self.reports if r.cached)

    @property
    def executed(self) -> int:
        """Tasks actually simulated (cache misses)."""
        return sum(1 for r in self.reports if not r.cached)

    @property
    def seconds(self) -> float:
        """Summed wall-clock seconds of the executed (non-cached) tasks."""
        return sum(r.seconds for r in self.reports if not r.cached)

    def hit_rate(self) -> float:
        """Cache hits over all observed tasks (0.0 when none ran)."""
        return self.cached / self.total if self.total else 0.0

    def summary(self) -> Dict[str, Any]:
        """The tallies as one JSON-ready dict (the shape the serve layer
        attaches to each job's ``stats``).  When constructed with a
        ``cache``, includes that store's lifetime counters as of now —
        a job's stats then carry both the run's hit rate and the
        process-lifetime cache history behind it."""
        tallies: Dict[str, Any] = {
            "tasks": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "task_seconds": round(self.seconds, 6),
            "hit_rate": round(self.hit_rate(), 6),
        }
        if self.cache is not None:
            tallies["cache_counters"] = dict(self.cache.counters)
        return tallies


def log_progress(report: TaskReport) -> None:
    """Stderr progress printer usable as a ``progress`` callback.

    Routed through :func:`repro.obs.log.emit`: with
    ``REPRO_LOG_FORMAT=text`` (the default) the output is byte-identical
    to the historical plain print; ``json`` mode gets the same record as
    structured fields.
    """
    origin = "cache" if report.cached else "run"
    obs_log.emit(
        "task_progress",
        f"[{report.index + 1:3d}/{report.total}] {report.label:40s} "
        f"{report.seconds:7.2f}s ({origin})",
        index=report.index, total=report.total, label=report.label,
        seconds=round(report.seconds, 6), cached=report.cached)
