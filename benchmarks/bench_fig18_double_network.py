"""Figure 18: the channel-sliced double network (two 8 B networks, 2 VCs
each) versus the single 16 B network with 4 VCs (both CP + CR).

Paper: ~no performance change (~+1 % average) with a 2x router-area saving.
Our reproduction ships two slicing models (see DESIGN.md): the balanced
double network reproduces the paper's neutrality; the strictly dedicated
one (one slice per traffic class, as Section IV-C literally describes)
halves the reply path's usable bandwidth and loses on HH workloads —
quantified in bench_ablation_slicing."""

from common import MEASURE, SEED, WARMUP, bench_profiles, fmt_pct, once, \
    report
from repro.core.builder import CP_CR, DOUBLE_CP_CR
from repro.experiments import compare_designs


def _experiment():
    comp = compare_designs([CP_CR, DOUBLE_CP_CR], profiles=bench_profiles(),
                           warmup=WARMUP, measure=MEASURE, seed=SEED)
    rows = [f"{abbr:4s} double-network speedup = {fmt_pct(speedup)}"
            for abbr, speedup in comp.speedups(DOUBLE_CP_CR.name).items()]
    rows.append(f"HM speedup = {fmt_pct(comp.hm_speedup(DOUBLE_CP_CR.name))} "
                "(paper: ~+1%)")
    return rows


def test_fig18_double_network(benchmark):
    report("fig18_double_network", once(benchmark, _experiment))
