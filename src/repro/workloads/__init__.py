"""Synthetic accelerator workloads standing in for the CUDA suite (Table I)."""

from .generator import (LINE_BYTES, SyntheticKernel,
                        expected_global_access_rate)
from .profiles import (BY_ABBR, GROUPS, PROFILES, QUICK_MIX,
                       BenchmarkProfile, profile, quick_mix, rodinia)

__all__ = [
    "BY_ABBR", "BenchmarkProfile", "GROUPS", "LINE_BYTES", "PROFILES",
    "QUICK_MIX", "SyntheticKernel", "expected_global_access_rate",
    "profile", "quick_mix", "rodinia",
]
