"""Programmatic experiment harness.

The benchmarks under ``benchmarks/`` regenerate the paper's figures; this
module is the library API underneath them, so downstream users can run the
same studies without pytest:

* :func:`compare_designs` — run a set of NoC design points over a benchmark
  suite, closed loop, and aggregate speedups (the shape of Figures 9, 16,
  17, 18, 19 and 20).
* :func:`classify_benchmarks` — the Section III-B characterization
  (perfect-NoC speedup x accepted traffic -> LL/LH/HH; Figures 7 and 8).
* :func:`load_latency_curves` — open-loop latency-versus-load sweeps for a
  set of designs and traffic patterns (Figure 21).

Everything returns plain dataclasses that round-trip through JSON exactly
(``to_json``/``from_json``).

Each study decomposes into independent simulation tasks — one per
(design, benchmark) or (design, pattern, rate) point — executed through the
pluggable executor in :mod:`repro.parallel`: ``jobs=1`` runs serially,
``jobs=N`` fans out over a process pool, and both paths are guaranteed to
produce field-for-field identical results (see
``tests/test_parallel_golden.py``).  Every task gets its own seed via
:func:`repro.parallel.derive_seed`, so design points are statistically
independent; an optional on-disk cache (``cache=``) skips simulations whose
exact specification has already been run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .core.builder import NetworkDesign
from .noc.openloop import LoadLatencyPoint
from .noc.traffic import DestinationPattern
from .parallel import SimTask, derive_seed, run_tasks
from .system.accelerator import SimulationResult
from .system.config import ChipConfig
from .system.metrics import classify, harmonic_mean
from .workloads.profiles import PROFILES, BenchmarkProfile


def closed_task(design: NetworkDesign, prof: BenchmarkProfile, *,
                base_seed: int, warmup: int, measure: int,
                config: Optional[ChipConfig] = None,
                telemetry=None, fixed_seed: bool = False) -> SimTask:
    """One closed-loop (design x benchmark) task with the canonical label
    and seed derivation.

    Every study that runs closed-loop points — :func:`compare_designs`,
    :func:`classify_benchmarks`, the DSE engine — builds its tasks here, so
    identical points share cache entries across studies.  ``fixed_seed``
    uses ``base_seed`` directly for every task (the protocol of the
    original Figure 2 walk, where all runs shared one seed) instead of the
    default per-task derivation.
    """
    seed = base_seed if fixed_seed else derive_seed(
        base_seed, "closed", design.name, prof.abbr)
    return SimTask(kind="closed", label=f"{design.name}/{prof.abbr}",
                   seed=seed, warmup=warmup, measure=measure, design=design,
                   profile=prof, config=config, telemetry=telemetry)


def open_loop_task(design: NetworkDesign, pattern_factory: Callable,
                   pattern_name: str, rate: float, *,
                   base_seed: int, warmup: int, measure: int,
                   config: Optional[ChipConfig] = None,
                   telemetry=None, fixed_seed: bool = False) -> SimTask:
    """One open-loop (design x pattern x rate) task with the canonical
    label and seed derivation (shared with :func:`load_latency_curves`).

    ``config`` contributes only its mesh geometry and MC count to an
    open-loop point; the DSE engine passes it when exploring a mesh-size
    axis."""
    seed = base_seed if fixed_seed else derive_seed(
        base_seed, "openloop", design.name, pattern_name, rate)
    return SimTask(kind="openloop",
                   label=f"{design.name}/{pattern_name}@{rate:g}",
                   seed=seed, warmup=warmup, measure=measure, design=design,
                   config=config, pattern_factory=pattern_factory,
                   pattern_name=pattern_name, rate=rate,
                   telemetry=telemetry)


@dataclass
class DesignComparison:
    """Closed-loop results for several designs over one benchmark suite."""

    #: results[design name][benchmark abbr]
    results: Dict[str, Dict[str, SimulationResult]]
    baseline: str

    def ipc(self, design: str) -> Dict[str, float]:
        return {abbr: r.ipc for abbr, r in self.results[design].items()}

    def speedups(self, design: str) -> Dict[str, float]:
        base = self.ipc(self.baseline)
        return {abbr: ipc / base[abbr] - 1.0
                for abbr, ipc in self.ipc(design).items()}

    def hm_speedup(self, design: str) -> float:
        base = harmonic_mean(list(self.ipc(self.baseline).values()))
        return harmonic_mean(list(self.ipc(design).values())) / base - 1.0

    def summary(self) -> Dict[str, float]:
        return {name: self.hm_speedup(name) for name in self.results
                if name != self.baseline}

    def to_json(self) -> dict:
        """JSON-compatible dict; exact float round trip."""
        return {
            "baseline": self.baseline,
            "results": {design: {abbr: r.to_json()
                                 for abbr, r in per_bench.items()}
                        for design, per_bench in self.results.items()},
        }

    @classmethod
    def from_json(cls, data: dict) -> "DesignComparison":
        """Inverse of :meth:`to_json` with field-for-field equality."""
        return cls(
            baseline=data["baseline"],
            results={design: {abbr: SimulationResult.from_json(r)
                              for abbr, r in per_bench.items()}
                     for design, per_bench in data["results"].items()},
        )


def compare_designs(designs: Sequence[NetworkDesign],
                    profiles: Optional[Sequence[BenchmarkProfile]] = None,
                    baseline: Optional[NetworkDesign] = None,
                    config: Optional[ChipConfig] = None,
                    warmup: int = 400, measure: int = 800,
                    seed: int = 11, jobs: Optional[int] = None,
                    cache=None, progress=None,
                    telemetry=None) -> DesignComparison:
    """Run each design over the suite; the first design (or ``baseline``)
    anchors the speedups.

    One independent task per (design, benchmark) point, each with its own
    derived seed; ``jobs``/``cache``/``progress`` are forwarded to
    :func:`repro.parallel.run_tasks`.  ``telemetry`` is an optional
    :class:`repro.telemetry.TelemetrySpec` applied to every task; each
    task writes its artifacts under ``spec.out_dir`` (see
    :meth:`repro.parallel.SimTask.telemetry_dir`) without perturbing the
    simulation results.
    """
    profiles = list(profiles) if profiles is not None else list(PROFILES)
    designs = list(designs)
    if baseline is not None and baseline not in designs:
        designs.insert(0, baseline)
    base_name = (baseline or designs[0]).name
    tasks = [
        closed_task(design, prof, base_seed=seed, warmup=warmup,
                    measure=measure, config=config, telemetry=telemetry)
        for design in designs for prof in profiles
    ]
    payloads = run_tasks(tasks, jobs=jobs, cache=cache, progress=progress)
    results: Dict[str, Dict[str, SimulationResult]] = {}
    it = iter(payloads)
    for design in designs:
        results[design.name] = {
            prof.abbr: SimulationResult.from_json(next(it)["result"])
            for prof in profiles
        }
    return DesignComparison(results=results, baseline=base_name)


@dataclass
class BenchmarkClass:
    """One benchmark's Section III-B characterization."""

    abbr: str
    expected_group: str
    measured_group: str
    perfect_speedup: float
    traffic_bytes_per_cycle_node: float
    baseline: SimulationResult
    perfect: SimulationResult

    @property
    def matches_paper(self) -> bool:
        return self.measured_group == self.expected_group


@dataclass
class Characterization:
    benchmarks: List[BenchmarkClass]

    @property
    def agreement(self) -> float:
        if not self.benchmarks:
            return 0.0
        return sum(b.matches_paper for b in self.benchmarks) / \
            len(self.benchmarks)

    def hm_perfect_speedup(self, group: Optional[str] = None) -> float:
        rows = [b for b in self.benchmarks
                if group is None or b.expected_group == group]
        if not rows:
            raise ValueError(f"no benchmarks in group {group!r}")
        base = harmonic_mean([b.baseline.ipc for b in rows])
        perf = harmonic_mean([b.perfect.ipc for b in rows])
        return perf / base - 1.0


def classify_benchmarks(
        baseline_design: NetworkDesign,
        profiles: Optional[Sequence[BenchmarkProfile]] = None,
        config: Optional[ChipConfig] = None,
        warmup: int = 400, measure: int = 800,
        seed: int = 11, jobs: Optional[int] = None,
        cache=None, progress=None) -> Characterization:
    """Figure 7's study: perfect network versus the baseline mesh.

    Two tasks per benchmark (baseline mesh and perfect NoC), fanned out
    through :func:`repro.parallel.run_tasks`.  The baseline tasks share
    their seed derivation with :func:`compare_designs`, so a result cache
    is reused across the two studies.
    """
    profiles = list(profiles) if profiles is not None else list(PROFILES)
    tasks: List[SimTask] = []
    for prof in profiles:
        tasks.append(closed_task(baseline_design, prof, base_seed=seed,
                                 warmup=warmup, measure=measure,
                                 config=config))
        tasks.append(SimTask(
            kind="perfect", label=f"perfect/{prof.abbr}",
            seed=derive_seed(seed, "perfect", prof.abbr),
            warmup=warmup, measure=measure, profile=prof, config=config))
    payloads = run_tasks(tasks, jobs=jobs, cache=cache, progress=progress)
    rows = []
    for i, prof in enumerate(profiles):
        base = SimulationResult.from_json(payloads[2 * i]["result"])
        perfect = SimulationResult.from_json(payloads[2 * i + 1]["result"])
        speedup = perfect.ipc / base.ipc - 1.0
        traffic = perfect.accepted_bytes_per_cycle_per_node
        rows.append(BenchmarkClass(
            abbr=prof.abbr,
            expected_group=prof.expected_group,
            measured_group=classify(speedup, traffic),
            perfect_speedup=speedup,
            traffic_bytes_per_cycle_node=traffic,
            baseline=base,
            perfect=perfect,
        ))
    return Characterization(rows)


@dataclass
class LoadLatencyCurve:
    design: str
    pattern: str
    points: List[LoadLatencyPoint]

    def saturation_rate(self) -> float:
        """First offered rate at which the network saturates."""
        for point in self.points:
            if point.saturated:
                return point.offered_rate
        return float("inf")

    def to_json(self) -> dict:
        """JSON-compatible dict; exact float round trip."""
        return {"design": self.design, "pattern": self.pattern,
                "points": [p.to_json() for p in self.points]}

    @classmethod
    def from_json(cls, data: dict) -> "LoadLatencyCurve":
        """Inverse of :meth:`to_json` with field-for-field equality."""
        return cls(design=data["design"], pattern=data["pattern"],
                   points=[LoadLatencyPoint.from_json(p)
                           for p in data["points"]])


def load_latency_curves(
        designs: Sequence[NetworkDesign],
        rates: Sequence[float],
        pattern_factory: Callable[[List], DestinationPattern],
        pattern_name: str = "uniform",
        warmup: int = 1000, measure: int = 3000,
        seed: int = 7, jobs: Optional[int] = None,
        cache=None, progress=None,
        telemetry=None,
        fleet: Optional[int] = None) -> List[LoadLatencyCurve]:
    """Figure 21's open-loop study over a set of designs.

    Every (design, pattern, rate) point gets an independently derived seed
    (a single shared seed would correlate the Bernoulli injection streams
    across points) and runs as its own task.  For ``jobs > 1`` the
    ``pattern_factory`` must be picklable — a class like
    :class:`~repro.noc.traffic.UniformManyToFew` or a
    :func:`functools.partial`, not a lambda.  ``pattern_name`` doubles as
    the cache discriminator for the pattern, so keep it unique per pattern
    configuration.  ``telemetry`` (a :class:`repro.telemetry.TelemetrySpec`)
    attaches per-task observability exactly as in :func:`compare_designs`.
    ``fleet`` (default: ``REPRO_FLEET``) batches the low-rate points of
    the sweep into lockstep fleets (DESIGN.md §18); results are
    bit-identical for any fleet width.
    """
    designs = list(designs)
    rates = list(rates)
    tasks = [
        open_loop_task(design, pattern_factory, pattern_name, rate,
                       base_seed=seed, warmup=warmup, measure=measure,
                       telemetry=telemetry)
        for design in designs for rate in rates
    ]
    payloads = run_tasks(tasks, jobs=jobs, cache=cache, progress=progress,
                         fleet=fleet)
    curves = []
    it = iter(payloads)
    for design in designs:
        points = [LoadLatencyPoint.from_json(next(it)["result"])
                  for _ in rates]
        curves.append(LoadLatencyCurve(design.name, pattern_name, points))
    return curves
