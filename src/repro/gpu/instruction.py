"""Warp instructions.

The compute-node model is execution-driven at warp granularity: each warp
executes a stream of warp instructions (ALU work, shared-memory "scratchpad"
accesses, and global loads/stores).  Global accesses carry the cache-line
addresses produced by memory coalescing (Section II's divergence-detection
stage, DD in Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Tuple


class InstrKind(Enum):
    """Warp instruction categories."""

    ALU = "alu"
    SHARED = "shared"          # software-managed scratchpad access
    GLOBAL_LOAD = "load"
    GLOBAL_STORE = "store"


@dataclass(frozen=True)
class WarpInstruction:
    kind: InstrKind
    #: Unique cache-line addresses touched (already coalesced), empty for
    #: ALU/shared instructions.
    line_addrs: Tuple[int, ...] = ()
    #: Scalar threads active in the warp (for IPC accounting).
    active_threads: int = 32

    @property
    def is_global(self) -> bool:
        return self.kind in (InstrKind.GLOBAL_LOAD, InstrKind.GLOBAL_STORE)


ALU = WarpInstruction(InstrKind.ALU)
SHARED = WarpInstruction(InstrKind.SHARED)


def load(line_addrs, active_threads: int = 32) -> WarpInstruction:
    """A coalesced global load touching ``line_addrs``."""
    return WarpInstruction(InstrKind.GLOBAL_LOAD, tuple(line_addrs),
                           active_threads)


def store(line_addrs, active_threads: int = 32) -> WarpInstruction:
    """A coalesced global store touching ``line_addrs``."""
    return WarpInstruction(InstrKind.GLOBAL_STORE, tuple(line_addrs),
                           active_threads)
