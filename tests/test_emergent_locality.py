"""Emergent-behaviour tests: the workload knobs must move the memory-system
metrics they claim to control, through the full closed loop."""

import dataclasses

import pytest

from repro.core.builder import BASELINE
from repro.system.accelerator import build_chip
from repro.workloads.profiles import profile


def run_variant(**overrides):
    prof = dataclasses.replace(profile("STC"), **overrides)
    chip = build_chip(prof, design=BASELINE)
    return chip.run(warmup=300, measure=600)


class TestReuseKnob:
    def test_reuse_raises_l1_hit_rate(self):
        low = run_variant(reuse=0.05)
        high = run_variant(reuse=0.70)
        assert high.l1_hit_rate > low.l1_hit_rate + 0.2

    def test_reuse_lowers_traffic_per_instruction(self):
        low = run_variant(reuse=0.05)
        high = run_variant(reuse=0.70)

        def bytes_per_instr(r):
            return r.accepted_bytes_per_cycle_per_node / r.ipc

        assert bytes_per_instr(high) < bytes_per_instr(low)
        assert high.ipc > low.ipc      # the freed bandwidth becomes IPC


class TestStreamingKnob:
    def test_streaming_raises_row_hits(self):
        rnd = run_variant(streaming=0.0, reuse=0.0)
        seq = run_variant(streaming=1.0, reuse=0.0)
        assert seq.dram_row_hit_rate > rnd.dram_row_hit_rate + 0.15

    def test_streaming_throughput_insensitive_when_network_bound(self):
        """Closed-loop subtlety: when the reply network (not DRAM) is the
        bottleneck, row locality does not translate into IPC — exactly the
        imbalance the paper attacks."""
        rnd = run_variant(streaming=0.0, reuse=0.0)
        seq = run_variant(streaming=1.0, reuse=0.0)
        assert abs(seq.ipc - rnd.ipc) / rnd.ipc < 0.25


class TestDivergenceKnob:
    def test_divergence_multiplies_requests(self):
        narrow = run_variant(divergence=1)
        wide = run_variant(divergence=8)
        # More lines per instruction -> lower IPC at same bandwidth.
        assert wide.ipc < narrow.ipc

    def test_divergence_raises_traffic_per_instruction(self):
        narrow = run_variant(divergence=1)
        wide = run_variant(divergence=8)
        def bytes_per_instr(r):
            return r.accepted_bytes_per_cycle_per_node / r.ipc
        assert bytes_per_instr(wide) > 2 * bytes_per_instr(narrow)


class TestSharedFractionKnob:
    def test_scratchpad_absorbs_traffic_per_instruction(self):
        """The chip re-saturates (elastic closed loop), so compare traffic
        normalised by retired instructions, not raw traffic."""
        none = run_variant(shared_fraction=0.0)
        heavy = run_variant(shared_fraction=0.8)
        def bytes_per_instr(r):
            return r.accepted_bytes_per_cycle_per_node / r.ipc
        assert bytes_per_instr(heavy) < 0.5 * bytes_per_instr(none)
        assert heavy.ipc > none.ipc


class TestWarpCountKnob:
    def test_more_warps_hide_more_latency(self):
        few = run_variant(warps_per_core=2, mem_fraction=0.10, reuse=0.5)
        many = run_variant(warps_per_core=32, mem_fraction=0.10, reuse=0.5)
        assert many.ipc > few.ipc * 1.5
