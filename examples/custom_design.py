#!/usr/bin/env python3
"""Using the library beyond the paper: define a custom workload profile and
a custom NoC design point, and evaluate them end to end.

Demonstrates the extension surface a downstream user works with:
``BenchmarkProfile`` (synthetic-workload parameters), ``NetworkDesign``
(topology/routing/slicing/port knobs) and the area model.

Run:  python examples/custom_design.py
"""

import dataclasses

from repro.area.chip import design_noc_area
from repro.core.builder import CP_CR, NetworkDesign, THROUGHPUT_EFFECTIVE
from repro.system.accelerator import build_chip
from repro.workloads.profiles import BenchmarkProfile

# A hypothetical future workload: graph analytics with modest scratchpad
# use, highly divergent accesses and almost no locality.
GRAPH500 = BenchmarkProfile(
    abbr="G5", name="Graph500-like BFS kernel", suite="custom",
    expected_group="HH",
    warps_per_core=32,
    mem_fraction=0.35,
    shared_fraction=0.05,
    store_fraction=0.08,
    reuse=0.15,
    streaming=0.15,
    divergence=10,
    footprint_lines=16384,
)

# A custom design point: checkerboard network with wider channels and
# deeper VC buffers — "what if we spent a little more area on the CR mesh?"
WIDE_CR = dataclasses.replace(
    CP_CR, name="CP-CR-24B", channel_width=24, vc_buffer_depth=12)


def main() -> None:
    print(f"custom workload: {GRAPH500.name} "
          f"(divergence {GRAPH500.divergence} lines/access)\n")
    print(f"{'design':22s} {'IPC':>8s} {'chip mm2':>9s} {'IPC/mm2':>9s}")
    rows = []
    for design in (CP_CR, WIDE_CR, THROUGHPUT_EFFECTIVE):
        result = build_chip(GRAPH500, design=design).run(600, 1500)
        area = design_noc_area(design).total_chip
        rows.append((design.name, result.ipc, area, result.ipc / area))
        print(f"{design.name:22s} {result.ipc:8.1f} {area:9.1f} "
              f"{result.ipc / area:9.4f}")
    best = max(rows, key=lambda r: r[3])
    print(f"\nmost throughput-effective for this workload: {best[0]}")
    print("note how a divergent, reply-bound workload rewards terminal "
          "bandwidth (2 injection ports) more than wider channels")


if __name__ == "__main__":
    main()
