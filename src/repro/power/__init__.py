"""Per-component NoC power/energy model with technology scaling.

The third axis of throughput-effectiveness: the paper ranks designs by
IPC/mm² (ROADMAP item 4 asks for IPC/W as well), so this subsystem
prices every design point in watts the same way :mod:`repro.area`
prices it in mm²:

* :mod:`repro.power.orion` — ORION-style per-event energies (crossbar
  ∝ units·width², buffer accesses ∝ VCs·depth·flit bytes, allocator
  ∝ VCs², links ∝ width, leakage ∝ mm²), each anchored at the 65 nm
  baseline configuration with every other configuration a prediction;
* :mod:`repro.power.tech` — the 65/45/32/22 nm scaling table
  (vdd/frequency/capacitance/leakage/area factors);
* :mod:`repro.power.report` — :class:`PowerReport` from the simulator's
  always-on activity counters: computable from any ``SimulationResult``
  or ``LoadLatencyPoint`` without rerunning, and analytically rescaled
  across technology nodes.

Quickstart::

    from repro.power import power_report
    from repro.system import build_chip

    result = build_chip(profile("RD"), design=TE).run(warmup=500,
                                                      measure=1500)
    report = power_report(TE, result)          # 65 nm
    print(f"{report.total_w:.3f} W  "
          f"({report.energy_per_flit_pj:.1f} pJ/flit)")
"""

from .orion import (E_ALLOCATOR_ANCHOR_PJ, E_BUFFER_READ_ANCHOR_PJ,
                    E_BUFFER_WRITE_ANCHOR_PJ, E_CROSSBAR_ANCHOR_PJ,
                    E_LINK_ANCHOR_PJ, LEAKAGE_MW_PER_MM2, RouterEnergy,
                    allocator_energy_pj, buffer_energy_pj,
                    crossbar_energy_pj, leakage_w, link_energy_pj,
                    router_energy)
from .report import (ActivityCounts, PowerReport, design_power, node_sweep,
                     power_report)
from .tech import DEFAULT_NODES, F65_GHZ, TECH_NODES, VDD65, TechNode, \
    tech_node

__all__ = [
    "ActivityCounts", "DEFAULT_NODES", "E_ALLOCATOR_ANCHOR_PJ",
    "E_BUFFER_READ_ANCHOR_PJ", "E_BUFFER_WRITE_ANCHOR_PJ",
    "E_CROSSBAR_ANCHOR_PJ", "E_LINK_ANCHOR_PJ", "F65_GHZ",
    "LEAKAGE_MW_PER_MM2", "PowerReport", "RouterEnergy", "TECH_NODES",
    "TechNode", "VDD65", "allocator_energy_pj", "buffer_energy_pj",
    "crossbar_energy_pj", "design_power", "leakage_w", "link_energy_pj",
    "node_sweep", "power_report", "router_energy", "tech_node",
]
