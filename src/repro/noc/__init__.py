"""Cycle-level network-on-chip simulation substrate.

This package implements the Booksim-class NoC model the paper's evaluation
rests on: a 2D mesh of virtual-channel wormhole routers with credit-based
flow control, iSLIP-style separable switch allocation, dimension-ordered
routing, open-loop traffic generation, and the ideal-network models used by
the limit studies.
"""

from .arbiter import RoundRobinArbiter, SeparableAllocator
from .channel import Channel
from .histogram import StreamingHistogram, merge_histograms
from .ideal import BandwidthLimitedNetwork, PerfectNetwork
from .invariants import (DeadlockError, InvariantChecker,
                         InvariantViolation, audit_accelerator,
                         audit_network, audit_system, check_accelerator,
                         check_network, format_network_state,
                         format_system_state)
from .network import MeshNetwork, NocParams
from .openloop import LoadLatencyPoint, OpenLoopRunner, sweep_load
from .packet import (READ_REPLY_BYTES, READ_REQUEST_BYTES,
                     WRITE_REQUEST_BYTES, Flit, Packet, RouteGroup,
                     TrafficClass, read_reply, read_request, write_request)
from .router import (Router, RouterSpec, RoutingViolation,
                     full_connectivity, half_connectivity)
from .routing import DorXY, DorYX, RoutingAlgorithm, minimal_hops
from .stats import NetworkStats, merge_stats
from .topology import (Coord, Direction, Mesh, ejection_port,
                       injection_port, is_terminal_port)
from .traffic import (BernoulliInjector, DestinationPattern,
                      HotspotManyToFew, UniformManyToFew, UniformRandom)
from .vc import VcConfig, dedicated_vc_config, shared_vc_config

__all__ = [
    "BandwidthLimitedNetwork", "BernoulliInjector", "Channel", "Coord",
    "DeadlockError", "DestinationPattern", "Direction", "DorXY", "DorYX",
    "Flit", "HotspotManyToFew", "InvariantChecker", "InvariantViolation",
    "LoadLatencyPoint", "Mesh", "MeshNetwork",
    "NetworkStats", "NocParams", "OpenLoopRunner", "Packet",
    "PerfectNetwork", "READ_REPLY_BYTES", "READ_REQUEST_BYTES",
    "RouteGroup", "Router", "RouterSpec", "RoundRobinArbiter",
    "RoutingAlgorithm", "RoutingViolation", "SeparableAllocator",
    "StreamingHistogram", "TrafficClass", "UniformManyToFew",
    "UniformRandom", "VcConfig",
    "WRITE_REQUEST_BYTES", "audit_accelerator", "audit_network",
    "audit_system", "check_accelerator", "check_network",
    "dedicated_vc_config", "ejection_port", "format_network_state",
    "format_system_state", "full_connectivity", "half_connectivity",
    "injection_port", "is_terminal_port", "merge_histograms",
    "merge_stats", "minimal_hops",
    "read_reply", "read_request", "shared_vc_config", "sweep_load",
    "write_request",
]
