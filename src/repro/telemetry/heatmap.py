"""Text heatmaps of the mesh.

Two renderers cover the paper's spatial analyses:

* :func:`render_node_heatmap` — one value per node (injection/ejection
  rates, Figure 8's per-node injection distribution).
* :func:`render_link_heatmap` — one value per directed mesh link, shown as
  four directional grids (E/W/N/S), which makes the top/bottom-row
  hot-spots of the baseline MC placement directly visible.

Cells print the numeric value plus a shade character (`` .:-=+*#%@``)
scaled to the grid's peak, so the picture reads at a glance while the
numbers stay exact.  The output format is schema-stable (pinned by tests).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..noc.topology import Coord, Direction

#: Shade ramp from idle to peak.
SHADES = " .:-=+*#%@"

#: Offsets of each direction's outgoing link.
_DIR_DELTA = {
    Direction.EAST: (1, 0),
    Direction.WEST: (-1, 0),
    Direction.NORTH: (0, -1),
    Direction.SOUTH: (0, 1),
}


def _shade(value: float, peak: float) -> str:
    if peak <= 0.0 or value <= 0.0:
        return SHADES[0]
    index = int(value / peak * (len(SHADES) - 1) + 0.5)
    return SHADES[min(index, len(SHADES) - 1)]


def _grid(cols: int, rows: int, cell) -> str:
    """Render one grid; ``cell(x, y)`` returns the 8-char cell text."""
    header = "     " + "".join(f"{x:>7d} " for x in range(cols))
    lines = [header]
    for y in range(rows):
        lines.append(f" y{y:<2d} " + "".join(cell(x, y)
                                             for x in range(cols)))
    return "\n".join(lines)


def render_node_heatmap(cols: int, rows: int,
                        values: Dict[Coord, float], title: str) -> str:
    """One grid, one value per node."""
    peak = max(values.values(), default=0.0)

    def cell(x: int, y: int) -> str:
        value = values.get(Coord(x, y), 0.0)
        return f"{value:7.3f}{_shade(value, peak)}"

    return f"{title} (peak {peak:.4f})\n{_grid(cols, rows, cell)}"


def render_link_heatmap(cols: int, rows: int,
                        utilization: Dict[Tuple[Coord, Coord], float],
                        title: str) -> str:
    """Four directional grids; cell (x, y) shows the utilization of the
    link leaving node (x, y) in that direction (``-`` where the mesh has
    no such link)."""
    peak = max(utilization.values(), default=0.0)
    sections = [f"{title} (peak {peak:.4f})"]
    for direction in (Direction.EAST, Direction.WEST,
                      Direction.NORTH, Direction.SOUTH):
        dx, dy = _DIR_DELTA[direction]

        def cell(x: int, y: int) -> str:
            nx, ny = x + dx, y + dy
            if not (0 <= nx < cols and 0 <= ny < rows):
                return f"{'-':>7s} "
            value = utilization.get((Coord(x, y), Coord(nx, ny)), 0.0)
            return f"{value:7.3f}{_shade(value, peak)}"

        sections.append(f"[{direction.name}]")
        sections.append(_grid(cols, rows, cell))
    return "\n".join(sections)
