"""Tests for the area model against the paper's Table VI."""

import dataclasses

import pytest

from repro.area.chip import (GTX280_AREA_MM2, compute_area_mm2,
                             design_noc_area, throughput_effectiveness,
                             throughput_effectiveness_gain)
from repro.area.orion import (crossbar_units, link_area, mesh_link_count,
                              router_area)
from repro.core.builder import (BASELINE, CP_CR, DOUBLE_BW,
                                DOUBLE_CP_CR_DEDICATED)


def approx(value, expected, tol=0.05):
    assert value == pytest.approx(expected, rel=tol), (value, expected)


class TestRouterArea:
    def test_baseline_full_router(self):
        r = router_area(16, 2)
        approx(r.crossbar, 1.73)
        approx(r.buffers, 0.17)
        approx(r.allocator, 0.004)
        approx(r.total, 1.916, tol=0.02)

    def test_double_width_quadratic_crossbar(self):
        r16, r32 = router_area(16, 2), router_area(32, 2)
        approx(r32.crossbar / r16.crossbar, 4.0, tol=0.01)
        approx(r32.buffers / r16.buffers, 2.0, tol=0.01)

    def test_half_router_crossbar_half(self):
        full = router_area(16, 4)
        half = router_area(16, 4, half=True)
        approx(half.crossbar, 0.83)
        approx(half.crossbar / full.crossbar, 0.48)

    def test_half_router_total_table6(self):
        half = router_area(16, 4, half=True)
        approx(half.total, 1.18, tol=0.02)
        full = router_area(16, 4)
        approx(full.total, 2.10, tol=0.02)

    def test_sliced_routers(self):
        full8 = router_area(8, 2)
        half8 = router_area(8, 2, half=True)
        approx(full8.total, 0.522, tol=0.03)
        approx(half8.total, 0.302, tol=0.05)

    def test_two_port_mc_router(self):
        r = router_area(8, 2, half=True, inject_ports=2)
        approx(r.crossbar, 0.28, tol=0.05)
        approx(r.buffers, 0.10, tol=0.05)
        approx(r.total, 0.38, tol=0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            router_area(0, 2)
        with pytest.raises(ValueError):
            link_area(-1)

    def test_crossbar_units(self):
        assert crossbar_units(False) == 25
        assert crossbar_units(True) == 12
        assert crossbar_units(True, inject_ports=2) == 16


class TestLinks:
    def test_link_area_table6(self):
        approx(link_area(16), 0.175)
        approx(link_area(32), 0.349, tol=0.02)
        approx(link_area(8), 0.087, tol=0.02)

    def test_mesh_link_count(self):
        assert mesh_link_count(6, 6) == 120
        assert mesh_link_count(2, 2) == 8


class TestChipArea:
    def test_compute_area_matches_paper(self):
        approx(compute_area_mm2(), 486.0, tol=0.01)

    def test_baseline_row(self):
        a = design_noc_area(BASELINE)
        approx(a.router_sum, 69.0, tol=0.02)
        approx(a.link_sum, 21.015, tol=0.01)
        approx(a.total_chip, 576.0, tol=0.01)
        approx(a.overhead_fraction, 0.1563, tol=0.02)

    def test_2x_bandwidth_row(self):
        a = design_noc_area(DOUBLE_BW)
        approx(a.router_sum, 263.0, tol=0.02)
        approx(a.total_chip, 790.948, tol=0.01)
        assert a.overhead_fraction > 0.5

    def test_cp_cr_row(self):
        a = design_noc_area(CP_CR)
        approx(a.router_sum, 59.20, tol=0.02)
        approx(a.total_chip, 566.2, tol=0.01)

    def test_double_dedicated_row(self):
        a = design_noc_area(DOUBLE_CP_CR_DEDICATED)
        approx(a.router_sum, 29.74, tol=0.02)
        approx(a.total_chip, 536.74, tol=0.01)

    def test_double_dedicated_2p_row(self):
        design = dataclasses.replace(DOUBLE_CP_CR_DEDICATED,
                                     mc_inject_ports=2)
        a = design_noc_area(design, multiport_both_slices=False)
        approx(a.router_sum, 30.44, tol=0.03)
        approx(a.total_chip, 537.44, tol=0.01)

    def test_checkerboard_saves_router_area(self):
        assert design_noc_area(CP_CR).router_sum < \
            design_noc_area(BASELINE).router_sum

    def test_balanced_double_costs_more_than_dedicated(self):
        from repro.core.builder import DOUBLE_CP_CR
        balanced = design_noc_area(DOUBLE_CP_CR)
        dedicated = design_noc_area(DOUBLE_CP_CR_DEDICATED)
        assert balanced.router_sum > dedicated.router_sum
        assert balanced.router_sum < design_noc_area(CP_CR).router_sum


class TestThroughputEffectiveness:
    def test_metric(self):
        assert throughput_effectiveness(230, 576) == pytest.approx(230 / 576)
        with pytest.raises(ValueError):
            throughput_effectiveness(1, 0)

    def test_paper_headline_identity(self):
        """+17 % IPC at 537.44 mm² vs 576 mm² gives +25.4 % IPC/mm²."""
        gain = throughput_effectiveness_gain(1.17, 576.0, 537.44)
        assert gain == pytest.approx(0.254, abs=0.005)
