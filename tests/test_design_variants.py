"""Tests for the less-travelled design variants: YX DOR, dedicated slicing
under protocol pressure, and custom channel widths."""

import dataclasses

import pytest

from repro.core.builder import (BASELINE, CP_CR, DOUBLE_CP_CR_DEDICATED,
                                NetworkDesign, build, open_loop_variant)
from repro.noc.packet import read_reply, read_request
from repro.noc.topology import Coord

YX_DESIGN = dataclasses.replace(BASELINE, name="TB-DOR-YX",
                                routing="dor_yx")


class TestYxDor:
    def test_builds_and_delivers(self):
        system = build(open_loop_variant(YX_DESIGN))
        got = []
        dst = system.mc_nodes[0]
        system.set_ejection_handler(dst, lambda p, c: got.append(p))
        system.try_inject(read_request(Coord(2, 2), dst), 0)
        system.run_until_idle()
        assert len(got) == 1

    def test_yx_goes_vertical_first(self):
        system = build(open_loop_variant(YX_DESIGN))
        net = system.networks[0]
        src, dst = Coord(0, 2), Coord(3, 4)
        system.set_ejection_handler(dst, lambda p, c: None)
        system.try_inject(read_request(src, dst), 0)
        system.run_until_idle()
        util = net.channel_utilization()
        # First hop must be downward (south), not east.
        assert util[(Coord(0, 2), Coord(0, 3))] > 0
        assert util[(Coord(0, 2), Coord(1, 2))] == 0


class TestDedicatedSlicing:
    def test_request_slice_never_carries_replies(self):
        system = build(open_loop_variant(DOUBLE_CP_CR_DEDICATED))
        req_net, rep_net = system.networks
        mc, core = system.mc_nodes[0], system.compute_nodes[0]
        system.set_ejection_handler(mc, lambda p, c: None)
        system.set_ejection_handler(core, lambda p, c: None)
        for _ in range(5):
            system.try_inject(read_request(core, mc), 0)
            system.try_inject(read_reply(mc, core), 0)
        system.run_until_idle()
        assert req_net.stats.packets_ejected == 5
        assert rep_net.stats.packets_ejected == 5
        assert req_net.stats.per_class[
            read_reply(mc, core).traffic_class].packets == 0

    def test_protocol_deadlock_free_without_extra_vcs(self):
        """Section IV-C's point: dedicated slices need no protocol VCs.
        Saturate both classes simultaneously and drain."""
        system = build(open_loop_variant(DOUBLE_CP_CR_DEDICATED))
        for node in system.mesh.coords():
            system.set_ejection_handler(node, lambda p, c: None)
        import random
        rng = random.Random(0)
        for _ in range(200):
            core = rng.choice(system.compute_nodes)
            mc = rng.choice(system.mc_nodes)
            system.try_inject(read_request(core, mc), system.cycle)
            system.try_inject(read_reply(mc, core), system.cycle)
            system.step()
        system.run_until_idle(max_cycles=200_000)
        assert system.stats.packets_ejected == 400


class TestCustomWidths:
    @pytest.mark.parametrize("width", [8, 24, 32, 64])
    def test_any_width_works(self, width):
        design = dataclasses.replace(BASELINE, name=f"w{width}",
                                     channel_width=width,
                                     source_queue_flits=None)
        system = build(design)
        got = []
        dst = system.mc_nodes[0]
        system.set_ejection_handler(dst, lambda p, c: got.append(p))
        system.try_inject(read_reply(Coord(2, 2), dst), 0)
        system.run_until_idle()
        assert len(got) == 1

    def test_wider_channel_fewer_flits(self):
        narrow = build(dataclasses.replace(
            BASELINE, name="n", channel_width=8, source_queue_flits=None))
        wide = build(dataclasses.replace(
            BASELINE, name="w", channel_width=64, source_queue_flits=None))
        for system in (narrow, wide):
            dst = system.mc_nodes[0]
            system.set_ejection_handler(dst, lambda p, c: None)
            system.try_inject(read_reply(Coord(2, 2), dst), 0)
            system.run_until_idle()
        assert narrow.stats.flits_ejected == 8
        assert wide.stats.flits_ejected == 1
