"""Tests for round-robin arbitration and the iSLIP separable allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.arbiter import RoundRobinArbiter, SeparableAllocator


class TestRoundRobinArbiter:
    def test_empty_request_set(self):
        assert RoundRobinArbiter(["a", "b"]).arbitrate([]) is None

    def test_single_requester_wins(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.arbitrate(["b"]) == "b"

    def test_round_robin_rotation(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        winners = [arb.arbitrate(["a", "b", "c"]) for _ in range(6)]
        assert winners == ["a", "b", "c", "a", "b", "c"]

    def test_pointer_advances_past_winner(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.arbitrate(["c"]) == "c"
        # Pointer now past c, so "a" has priority.
        assert arb.arbitrate(["a", "c"]) == "a"

    def test_no_advance_mode(self):
        arb = RoundRobinArbiter(["a", "b"])
        assert arb.arbitrate(["a", "b"], advance=False) == "a"
        assert arb.arbitrate(["a", "b"], advance=False) == "a"

    def test_unknown_client_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(["a"]).arbitrate(["z"])

    def test_long_run_fairness(self):
        arb = RoundRobinArbiter(range(4))
        counts = {i: 0 for i in range(4)}
        for _ in range(400):
            counts[arb.arbitrate(range(4))] += 1
        assert all(c == 100 for c in counts.values())

    @given(st.sets(st.integers(0, 7), min_size=1))
    def test_winner_is_always_a_requester(self, requests):
        arb = RoundRobinArbiter(range(8))
        assert arb.arbitrate(requests) in requests


class TestSeparableAllocator:
    def _make(self, inputs=("i0", "i1", "i2"), vcs=2,
              outputs=("o0", "o1")):
        return SeparableAllocator(inputs, vcs, outputs)

    def test_single_request_granted(self):
        alloc = self._make()
        grants = alloc.allocate({"i0": {0: "o0"}})
        assert grants == [("i0", 0, "o0")]

    def test_no_requests(self):
        assert self._make().allocate({}) == []

    def test_output_conflict_one_grant(self):
        alloc = self._make()
        grants = alloc.allocate({"i0": {0: "o0"}, "i1": {0: "o0"}})
        assert len(grants) == 1

    def test_distinct_outputs_both_granted(self):
        alloc = self._make()
        grants = alloc.allocate({"i0": {0: "o0"}, "i1": {0: "o1"}})
        assert len(grants) == 2

    def test_one_grant_per_input(self):
        alloc = self._make()
        grants = alloc.allocate({"i0": {0: "o0", 1: "o1"}})
        assert len(grants) == 1

    def test_conflict_resolves_round_robin_over_time(self):
        alloc = self._make()
        winners = []
        for _ in range(4):
            (w, _vc, _o), = alloc.allocate({"i0": {0: "o0"},
                                            "i1": {0: "o0"}})
            winners.append(w)
        assert set(winners) == {"i0", "i1"}
        assert winners.count("i0") == winners.count("i1")

    @given(st.dictionaries(
        st.sampled_from(["i0", "i1", "i2", "i3"]),
        st.dictionaries(st.integers(0, 3),
                        st.sampled_from(["o0", "o1", "o2"]),
                        max_size=4),
        max_size=4))
    def test_allocation_is_a_matching(self, requests):
        alloc = SeparableAllocator(["i0", "i1", "i2", "i3"], 4,
                                   ["o0", "o1", "o2"])
        grants = alloc.allocate(requests)
        in_ports = [g[0] for g in grants]
        out_ports = [g[2] for g in grants]
        assert len(set(in_ports)) == len(in_ports)     # <=1 per input
        assert len(set(out_ports)) == len(out_ports)   # <=1 per output
        for in_port, vc, out in grants:                # grants were requested
            assert requests[in_port][vc] == out

    def test_work_conserving_single_output(self):
        """If any VC requests an output, that output is granted."""
        alloc = self._make()
        for requests in ({"i0": {0: "o0"}}, {"i1": {1: "o0"}},
                         {"i0": {0: "o0"}, "i2": {1: "o0"}}):
            grants = alloc.allocate(requests)
            assert any(g[2] == "o0" for g in grants)
