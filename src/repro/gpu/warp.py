"""Warp state and the round-robin warp scheduler.

Each core keeps a dispatch queue of up to 32 ready warps (1024 scalar
threads, Table II) and issues among them round-robin.  A warp blocks on
outstanding global loads and on a short pipeline latency after arithmetic;
fine-grain multithreading across warps is what hides memory latency — and
what turns NoC/DRAM bandwidth, not latency, into the performance limiter
(Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Sentinel wake time for "no timed wake" (an external event must wake us).
NEVER = 1 << 62


@dataclass
class Warp:
    warp_id: int
    #: Cycle at which the warp may issue again (pipeline hazard model).
    ready_at: int = 0
    #: Outstanding global-load lines this warp waits on; > 0 means blocked.
    pending_loads: int = 0
    #: Retired scalar instructions (for per-warp fairness statistics).
    retired: int = 0
    #: Set when the workload says this warp has no more work.
    finished: bool = False

    def blocked(self, cycle: int) -> bool:
        return (self.finished or self.pending_loads > 0
                or self.ready_at > cycle)


class RoundRobinWarpScheduler:
    """Round-robin among ready warps (Table II's scheduling policy)."""

    def __init__(self, warps: List[Warp]) -> None:
        if not warps:
            raise ValueError("need at least one warp")
        self.warps = warps
        self._pointer = 0

    def pick(self, cycle: int) -> Optional[Warp]:
        n = len(self.warps)
        for offset in range(n):
            warp = self.warps[(self._pointer + offset) % n]
            if not warp.blocked(cycle):
                self._pointer = (self._pointer + offset + 1) % n
                return warp
        return None

    def pick_or_wake(self, cycle: int) -> Tuple[Optional[Warp], int]:
        """``pick`` plus, when nothing is ready, the earliest cycle a warp
        unblocks by timeout alone (``NEVER`` when every blocked warp waits
        on loads or is finished — a reply event must wake the core then).
        Identical grant and pointer behaviour to ``pick``."""
        n = len(self.warps)
        warps = self.warps
        pointer = self._pointer
        wake = NEVER
        for offset in range(n):
            warp = warps[(pointer + offset) % n]
            if not warp.blocked(cycle):
                self._pointer = (pointer + offset + 1) % n
                return warp, 0
            if (not warp.finished and warp.pending_loads == 0
                    and warp.ready_at < wake):
                wake = warp.ready_at
        return None, wake

    def all_finished(self) -> bool:
        return all(w.finished for w in self.warps)
