"""The asyncio job server.

One :class:`JobServer` owns a listening socket (TCP on localhost or a
unix domain socket), a :class:`~repro.serve.queue.FairPriorityQueue` of
validated submissions, a pool of worker coroutines that execute jobs via
:func:`repro.serve.executor.execute_job` on executor threads (the
simulations themselves fan out over processes through
:func:`repro.parallel.run_tasks` when ``job_jobs > 1``), and the shared
:class:`repro.parallel.ResultCache` that turns repeat design-point
queries into millisecond cache hits.

Contracts:

* **Back-pressure** — submissions beyond ``max_pending`` queued jobs are
  rejected immediately with a ``retry_after`` estimate (p90 of recent
  job wall-clocks × queue depth / workers, floored); the queue never
  grows without bound, and the estimator's state is in ``stats`` so a
  rejection is always explainable.
* **Observability** — every job carries a :class:`repro.obs.JobSpan`
  whose stage durations telescope exactly to its end-to-end latency,
  every lifecycle transition emits a structured log record correlated
  by ``job_id``, and a per-server metrics registry (queue depth and
  wait, job counters and wall-clock, worker busy time, cache activity)
  is served by the ``metrics`` command.  Disabled (``--no-obs`` or
  ``REPRO_OBS=0``) the pipeline is a handful of ``is None`` tests and
  results stay bit-identical.
* **Fairness** — inside a priority level clients are served round-robin
  (see :mod:`repro.serve.queue`).
* **Streaming progress** — every :class:`repro.parallel.TaskReport` a
  job's executor emits is forwarded as a ``progress`` event to
  subscribed clients, bridged from the executor thread with
  ``loop.call_soon_threadsafe``.
* **Fail-fast without loss** — a failing task surfaces as a ``failed``
  event naming the task label (:class:`repro.parallel.TaskError`), and
  every completed sibling is already in the result cache, so a
  resubmission only re-runs what actually failed.
* **Bit-identity** — results are produced by the same library calls a
  direct harness invocation uses; the server adds transport, never
  arithmetic.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..noc.histogram import StreamingHistogram
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs.metrics import MetricsRegistry
from ..obs.spans import JobSpan
from ..parallel import (ReportCollector, ResultCache, TaskError, TaskReport,
                        as_cache, default_cache_dir)
from . import protocol
from .executor import JobSpecError, execute_job, validate_job
from .queue import FairPriorityQueue


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`JobServer` needs to listen and execute."""

    host: str = protocol.DEFAULT_HOST
    port: int = protocol.DEFAULT_PORT        # 0 = let the OS pick
    socket_path: Optional[str] = None        # unix socket; overrides TCP
    cache: Union[None, bool, str, Path, ResultCache] = True
    cache_max_mb: Optional[float] = None     # LRU size budget
    max_pending: int = 64                    # queued jobs before rejection
    workers: int = 1                         # concurrent jobs
    job_jobs: Optional[int] = None           # run_tasks fan-out per job
    retry_after_floor: float = 0.05          # seconds
    #: Seeds the retry_after estimate before any job has completed.
    initial_job_seconds: float = 1.0
    #: Metrics registry, job spans and structured job events.  Also
    #: gated globally by ``REPRO_OBS=0``; disabling never changes
    #: served results, only whether anyone can watch.
    observability: bool = True


@dataclass
class JobRecord:
    """One submission's full lifecycle, addressable by ``job_id``."""

    job_id: str
    client: str
    priority: int
    spec: Dict[str, Any]
    state: str = "queued"          # queued | running | done | failed
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    failed_label: Optional[str] = None
    stats: Optional[Dict[str, Any]] = None
    span: Optional[JobSpan] = None
    subscribers: List[asyncio.Queue] = field(default_factory=list)

    def public(self) -> Dict[str, Any]:
        """The record as served by ``status`` (no result payload)."""
        return {
            "job_id": self.job_id, "client": self.client,
            "priority": self.priority, "kind": self.spec.get("kind"),
            "state": self.state, "submitted": self.submitted,
            "started": self.started, "finished": self.finished,
            "error": self.error, "failed_label": self.failed_label,
            "stats": self.stats,
            "span": self.span.to_json() if self.span is not None else None,
        }


class _ServeObservability:
    """One server's metrics registry and instrumentation handles.

    Owned per :class:`JobServer` instance (never the process-global
    :data:`repro.obs.metrics.REGISTRY`) so two servers in one process —
    the test suite runs dozens — never collide on registration or
    double-count each other's jobs.  Gauges are callback-backed: the
    hot path pays nothing for queue depth or cache size until a scrape
    actually asks.
    """

    def __init__(self, server: "JobServer") -> None:
        self.registry = MetricsRegistry()
        reg = self.registry
        self.jobs_submitted = reg.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted into the queue.", labels=("kind", "client"))
        self.jobs_completed = reg.counter(
            "repro_jobs_completed_total",
            "Jobs that finished successfully.", labels=("kind", "client"))
        self.jobs_failed = reg.counter(
            "repro_jobs_failed_total",
            "Jobs whose execution raised.", labels=("kind", "client"))
        self.jobs_rejected = reg.counter(
            "repro_jobs_rejected_total",
            "Submissions rejected by queue back-pressure.",
            labels=("client",))
        self.jobs_invalid = reg.counter(
            "repro_jobs_invalid_total",
            "Submissions refused by spec validation.", labels=("client",))
        reg.gauge("repro_queue_depth",
                  "Validated jobs waiting in the queue.",
                  fn=lambda: len(server.queue))
        reg.gauge("repro_queue_depth_by_priority",
                  "Waiting jobs per priority level.",
                  labels=("priority",),
                  fn=lambda: {(str(priority),): count
                              for priority, count
                              in server.queue.pending_by_priority().items()})
        reg.gauge("repro_jobs_running", "Jobs currently executing.",
                  fn=lambda: len(server.running))
        reg.gauge("repro_workers", "Configured worker coroutines.",
                  fn=lambda: server.config.workers)
        reg.gauge("repro_uptime_seconds",
                  "Seconds since the server started.",
                  fn=lambda: round(time.time() - server._started, 3))
        self.worker_busy = reg.counter(
            "repro_worker_busy_seconds_total",
            "Summed wall-clock seconds workers spent executing jobs.")
        self.queue_wait = reg.histogram(
            "repro_queue_wait_seconds",
            "Seconds from enqueue to worker dequeue, by priority.",
            labels=("priority",))
        self.job_wall = reg.histogram(
            "repro_job_wall_seconds",
            "End-to-end job execution wall-clock seconds, by kind.",
            labels=("kind",))
        store = server.store
        if store is not None:
            for key in ("hits", "misses", "puts", "evictions",
                        "evicted_bytes", "lock_timeouts"):
                reg.counter(
                    f"repro_cache_{key}_total",
                    f"Result-cache lifetime {key.replace('_', ' ')} "
                    f"(this process).",
                    fn=lambda key=key: store.counters[key])
            reg.gauge("repro_cache_entries",
                      "Entries in the shared result cache.",
                      fn=lambda: store.stats()["entries"])
            reg.gauge("repro_cache_bytes",
                      "Bytes in the shared result cache.",
                      fn=lambda: store.stats()["bytes"])

    def job_done(self, job: "JobRecord", elapsed: float,
                 failed: bool) -> None:
        """Record one finished job (success or failure)."""
        kind = str(job.spec.get("kind"))
        counter = self.jobs_failed if failed else self.jobs_completed
        counter.inc(kind=kind, client=job.client)
        self.job_wall.observe(elapsed, kind=kind)
        self.worker_busy.inc(elapsed)


class JobServer:
    """Asyncio job server; see the module docstring for the contracts."""

    def __init__(self, config: ServerConfig) -> None:
        if config.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if config.workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config
        cache = config.cache
        if cache is True:
            cache = ResultCache(default_cache_dir(),
                                max_bytes=self._budget_bytes())
        elif isinstance(cache, (str, Path)):
            cache = ResultCache(cache, max_bytes=self._budget_bytes())
        self.store = as_cache(cache)
        self.queue = FairPriorityQueue()
        self.jobs: Dict[str, JobRecord] = {}
        self.running: Dict[str, JobRecord] = {}
        self.counters = {"submitted": 0, "completed": 0, "failed": 0,
                         "rejected": 0, "invalid": 0}
        self._job_seq = 0
        # Retry estimator: millisecond histogram of job wall-clocks
        # (success and failure alike) feeding the p90-based retry_after.
        # Core scheduling state, NOT observability — it stays live with
        # obs disabled so back-pressure behaves identically either way.
        self._job_wall_ms = StreamingHistogram()
        self._started = time.time()
        self.obs: Optional[_ServeObservability] = (
            _ServeObservability(self)
            if config.observability and obs_metrics.enabled() else None)
        self._cond: Optional[asyncio.Condition] = None
        self._stop: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_tasks: List[asyncio.Task] = []

    def _budget_bytes(self) -> Optional[int]:
        mb = self.config.cache_max_mb
        return None if mb is None else int(mb * (1 << 20))

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and launch the worker pool."""
        self._cond = asyncio.Condition()
        self._stop = asyncio.Event()
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.config.socket_path,
                limit=protocol.MAX_LINE_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.config.host,
                port=self.config.port, limit=protocol.MAX_LINE_BYTES)
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        ]

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        """Bound address: ``(host, port)`` for TCP, the path for unix."""
        if self.config.socket_path is not None:
            return self.config.socket_path
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_until_stopped(self) -> None:
        """Run until ``shutdown`` arrives, then drain running jobs."""
        assert self._stop is not None
        await self._stop.wait()
        self._server.close()
        await self._server.wait_closed()
        # Workers exit once the stop flag is visible under the condition;
        # a worker mid-job finishes that job first (queued jobs drop).
        async with self._cond:
            self._cond.notify_all()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)

    async def run(self, ready: Optional[threading.Event] = None) -> None:
        """``start`` + ``serve_until_stopped`` (the CLI entry point)."""
        await self.start()
        if ready is not None:
            ready.set()
        await self.serve_until_stopped()

    def request_stop(self) -> None:
        assert self._stop is not None
        self._stop.set()

    # -- scheduling ----------------------------------------------------------

    def _estimate_job_seconds(self) -> float:
        """Typical job wall-clock: p90 of observed jobs (millisecond
        resolution, floored at 1 ms), seeded by ``initial_job_seconds``
        until the first job finishes.  p90 rather than a mean or EMA so
        one anomalously fast cache-hit burst cannot talk a client into
        hammering a queue that is actually full of slow sweeps."""
        if not self._job_wall_ms.total:
            return self.config.initial_job_seconds
        return max(self._job_wall_ms.percentile(90), 1) / 1000.0

    def _retry_after(self) -> float:
        """Back-pressure hint: expected seconds until a queue slot frees
        up, from the typical job wall-clock scaled by queue pressure."""
        backlog = len(self.queue) + len(self.running)
        estimate = self._estimate_job_seconds() * backlog \
            / self.config.workers
        return round(max(self.config.retry_after_floor, estimate), 3)

    async def _enqueue(self, record: JobRecord) -> None:
        async with self._cond:
            self.queue.push(record)
            self._cond.notify()

    async def _next_job(self) -> Optional[JobRecord]:
        async with self._cond:
            while True:
                if self._stop.is_set():
                    return None      # shutdown drops still-queued jobs
                job = self.queue.pop()
                if job is not None:
                    return job
                # Woken by _enqueue (one notify per push) or by the
                # shutdown notify_all in serve_until_stopped.
                await self._cond.wait()

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._next_job()
            if job is None:
                return
            job.state = "running"
            job.started = time.time()
            self.running[job.job_id] = job
            kind = str(job.spec.get("kind"))
            if job.span is not None:
                job.span.mark("dequeue")
                if self.obs is not None:
                    self.obs.queue_wait.observe(
                        job.span.duration_ns("dequeue") / 1e9,
                        priority=job.priority)
            obs_log.emit("job_started", job_id=job.job_id,
                         client=job.client, kind=kind)

            def forward(report: TaskReport, job=job) -> None:
                loop.call_soon_threadsafe(
                    self._publish, job,
                    {"event": "progress", "job_id": job.job_id,
                     **dataclasses.asdict(report)})

            collector = ReportCollector(chain=forward, cache=self.store)
            start = time.perf_counter()
            try:
                # bind() threads the job's identity into the executor
                # thread (asyncio.to_thread copies the contextvars), so
                # every record the executor and run_tasks emit carries
                # this job_id without any signature plumbing.
                with obs_log.bind(job_id=job.job_id, client=job.client,
                                  kind=kind):
                    result = await asyncio.to_thread(
                        execute_job, job.spec, jobs=self.config.job_jobs,
                        cache=self.store, progress=collector)
            except Exception as exc:
                elapsed = time.perf_counter() - start
                if job.span is not None:
                    job.span.mark("execute")
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.failed_label = getattr(exc, "label", None) \
                    if isinstance(exc, TaskError) else None
                job.finished = time.time()
                self.counters["failed"] += 1
                self._job_wall_ms.add(int(elapsed * 1000))
                if self.obs is not None:
                    self.obs.job_done(job, elapsed, failed=True)
                self._publish(job, {"event": "failed",
                                    "job_id": job.job_id,
                                    "error": job.error,
                                    "label": job.failed_label})
                if job.span is not None:
                    job.span.mark("respond")
                obs_log.emit("job_failed", job_id=job.job_id,
                             client=job.client, kind=kind,
                             error=job.error, label=job.failed_label,
                             seconds=round(elapsed, 6))
            else:
                elapsed = time.perf_counter() - start
                if job.span is not None:
                    job.span.mark("execute")
                job.state = "done"
                job.result = result
                job.finished = time.time()
                job.stats = {"elapsed": round(elapsed, 6),
                             **collector.summary()}
                self.counters["completed"] += 1
                self._job_wall_ms.add(int(elapsed * 1000))
                if self.obs is not None:
                    self.obs.job_done(job, elapsed, failed=False)
                self._publish(job, {"event": "done",
                                    "job_id": job.job_id,
                                    "result": result,
                                    "stats": job.stats})
                if job.span is not None:
                    job.span.mark("respond")
                obs_log.emit("job_done", job_id=job.job_id,
                             client=job.client, kind=kind,
                             seconds=round(elapsed, 6),
                             tasks=collector.total,
                             executed=collector.executed,
                             cached=collector.cached)
            finally:
                self.running.pop(job.job_id, None)

    def _publish(self, job: JobRecord, event: Dict[str, Any]) -> None:
        for queue in job.subscribers:
            queue.put_nowait(event)

    # -- protocol handlers ---------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        async def send(message: Dict[str, Any]) -> None:
            writer.write(protocol.encode(message))
            await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # ValueError: line exceeded the stream limit — a
                    # framing error, not a workload; drop the client.
                    break
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except ValueError as exc:
                    await send({"ok": False, "event": "invalid",
                                "error": f"malformed request: {exc}"})
                    continue
                cmd = message.get("cmd")
                if cmd == "ping":
                    await send({"ok": True, "event": "pong",
                                "protocol": protocol.PROTOCOL_VERSION})
                elif cmd == "submit":
                    await self._cmd_submit(message, send)
                elif cmd == "status":
                    await self._cmd_status(message, send)
                elif cmd == "result":
                    await self._cmd_result(message, send)
                elif cmd == "stats":
                    await send({"ok": True, "event": "stats",
                                "server": self.stats()})
                elif cmd == "metrics":
                    await self._cmd_metrics(message, send)
                elif cmd == "shutdown":
                    await send({"ok": True, "event": "bye"})
                    self.request_stop()
                    break
                else:
                    await send({"ok": False, "event": "invalid",
                                "error": f"unknown command {cmd!r}"})
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _cmd_submit(self, message: Dict[str, Any], send) -> None:
        client = str(message.get("client") or "anonymous")
        if len(self.queue) >= self.config.max_pending:
            self.counters["rejected"] += 1
            retry_after = self._retry_after()
            if self.obs is not None:
                self.obs.jobs_rejected.inc(client=client)
            obs_log.emit("job_rejected", client=client,
                         retry_after=retry_after,
                         pending=len(self.queue))
            await send({"ok": False, "event": "rejected",
                        "error": "queue saturated",
                        "retry_after": retry_after,
                        "pending": len(self.queue),
                        "max_pending": self.config.max_pending})
            return
        span = JobSpan() if self.obs is not None else None
        try:
            spec = validate_job(message.get("job"))
        except JobSpecError as exc:
            self.counters["invalid"] += 1
            if self.obs is not None:
                self.obs.jobs_invalid.inc(client=client)
            obs_log.emit("job_invalid", client=client, error=str(exc))
            await send({"ok": False, "event": "invalid",
                        "error": str(exc)})
            return
        priority = message.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            self.counters["invalid"] += 1
            if self.obs is not None:
                self.obs.jobs_invalid.inc(client=client)
            obs_log.emit("job_invalid", client=client,
                         error=f"priority must be an integer, "
                               f"got {priority!r}")
            await send({"ok": False, "event": "invalid",
                        "error": f"priority must be an integer, "
                                 f"got {priority!r}"})
            return
        if span is not None:
            span.mark("validate")
        self._job_seq += 1
        record = JobRecord(job_id=f"job-{self._job_seq:06d}",
                           client=client, priority=priority, spec=spec,
                           span=span)
        self.jobs[record.job_id] = record
        self.counters["submitted"] += 1
        if self.obs is not None:
            self.obs.jobs_submitted.inc(kind=str(spec.get("kind")),
                                        client=client)

        stream = bool(message.get("stream", True))
        events: Optional[asyncio.Queue] = None
        if stream:
            events = asyncio.Queue()
            record.subscribers.append(events)
        # The enqueue mark precedes the actual push: a worker may pop
        # the record (marking "dequeue") the instant it lands, so the
        # mark must already be in place for durations to stay ordered.
        if span is not None:
            span.mark("enqueue")
        obs_log.emit("job_submitted", job_id=record.job_id,
                     client=client, kind=str(spec.get("kind")),
                     priority=priority)
        await self._enqueue(record)
        await send({"ok": True, "event": "accepted",
                    "job_id": record.job_id, "queued": len(self.queue)})
        if events is None:
            return
        try:
            while True:
                event = await events.get()
                await send(event)
                if event["event"] in ("done", "failed"):
                    return
        finally:
            record.subscribers.remove(events)

    async def _cmd_status(self, message: Dict[str, Any], send) -> None:
        record = self.jobs.get(message.get("job_id"))
        if record is None:
            await send({"ok": False, "event": "invalid",
                        "error": f"unknown job {message.get('job_id')!r}"})
            return
        await send({"ok": True, "event": "status", "job": record.public()})

    async def _cmd_result(self, message: Dict[str, Any], send) -> None:
        record = self.jobs.get(message.get("job_id"))
        if record is None:
            await send({"ok": False, "event": "invalid",
                        "error": f"unknown job {message.get('job_id')!r}"})
            return
        if record.state == "done":
            await send({"ok": True, "event": "result",
                        "job_id": record.job_id, "result": record.result,
                        "stats": record.stats})
        elif record.state == "failed":
            await send({"ok": False, "event": "failed",
                        "job_id": record.job_id, "error": record.error,
                        "label": record.failed_label})
        else:
            await send({"ok": False, "event": "pending",
                        "job_id": record.job_id, "state": record.state})

    async def _cmd_metrics(self, message: Dict[str, Any], send) -> None:
        fmt = message.get("format", "text")
        if fmt not in ("text", "json"):
            await send({"ok": False, "event": "invalid",
                        "error": f"metrics format must be 'text' or "
                                 f"'json', got {fmt!r}"})
            return
        if self.obs is None:
            await send({"ok": True, "event": "metrics",
                        "enabled": False, "format": fmt,
                        "text": "", "metrics": {}})
            return
        # Server-local series first, then the process-wide library
        # registry (run_tasks throughput), so one scrape sees both.
        if fmt == "text":
            text = obs_metrics.render_prometheus(self.obs.registry,
                                                 obs_metrics.REGISTRY)
            await send({"ok": True, "event": "metrics", "enabled": True,
                        "format": "text", "text": text})
        else:
            snapshot = {**self.obs.registry.snapshot(),
                        **obs_metrics.REGISTRY.snapshot()}
            await send({"ok": True, "event": "metrics", "enabled": True,
                        "format": "json", "metrics": snapshot})

    def stats(self) -> Dict[str, Any]:
        """The ``stats`` endpoint payload."""
        return {
            "uptime": round(time.time() - self._started, 3),
            "pending": len(self.queue),
            "pending_by_client": self.queue.pending_by_client(),
            "running": len(self.running),
            "max_pending": self.config.max_pending,
            "workers": self.config.workers,
            "job_jobs": self.config.job_jobs,
            "retry_after": self._retry_after(),
            "retry_estimator": {
                "samples": self._job_wall_ms.total,
                "estimate_seconds": round(self._estimate_job_seconds(), 6),
                "initial_seconds": self.config.initial_job_seconds,
                "floor_seconds": self.config.retry_after_floor,
                "wall_ms": self._job_wall_ms.summary(),
            },
            "observability": self.obs is not None,
            "counters": dict(self.counters),
            "cache": self.store.stats() if self.store is not None
            else None,
        }


class ThreadedServer:
    """Run a :class:`JobServer` on a daemon thread's event loop.

    The in-process harness used by the tests and the load-test benchmark
    (and handy in notebooks)::

        with ThreadedServer(ServerConfig(port=0, cache=dir)) as server:
            host, port = server.address
            ...

    ``__exit__`` requests a stop and joins the thread.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.server = JobServer(config)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-serve")

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.run(self._ready))
        finally:
            self._loop.close()

    def __enter__(self) -> "ThreadedServer":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("job server failed to start within 30s")
        return self

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        return self.server.address

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=60)
