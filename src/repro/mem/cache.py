"""Set-associative cache model.

Used for both the per-core L1 data caches (16 KB, write-back write-allocate,
Section II) and the shared L2 banks at the MC nodes (128 KB per MC,
Table II).  The cache is a timing-free state model: hit/miss/eviction
decisions are made here, while latencies and outstanding-miss tracking live
in the core and MC models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must be a whole number of sets")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    def line_address(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets


@dataclass
class AccessResult:
    hit: bool
    #: Line address of a dirty line evicted by this access (a write-back
    #: packet must be sent), or ``None``.
    writeback: Optional[int] = None


class _Line:
    __slots__ = ("tag", "dirty", "lru")

    def __init__(self, tag: int, lru: int) -> None:
        self.tag = tag
        self.dirty = False
        self.lru = lru


class SetAssociativeCache:
    """LRU set-associative cache with write-back write-allocate policy.

    ``access`` probes without allocating (misses are handled by MSHRs and
    ``fill`` happens when the memory reply returns); ``fill`` allocates.
    ``write_allocate_no_fetch`` models full-line stores at the L2 (the write
    packet carries the whole 64 B line so no fetch is needed).
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[Dict[int, _Line]] = [
            {} for _ in range(config.num_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    # -- probing -------------------------------------------------------------

    def access(self, addr: int, is_write: bool = False) -> AccessResult:
        """Probe the cache; on a hit, update LRU (and dirty for writes)."""
        line_addr = self.config.line_address(addr)
        line = self._lookup(line_addr)
        if line is None:
            self.misses += 1
            return AccessResult(hit=False)
        self.hits += 1
        self._clock += 1
        line.lru = self._clock
        if is_write:
            line.dirty = True
        return AccessResult(hit=True)

    def contains(self, addr: int) -> bool:
        return self._lookup(self.config.line_address(addr)) is not None

    # -- allocation ----------------------------------------------------------

    def fill(self, addr: int, dirty: bool = False) -> AccessResult:
        """Install a line (memory reply returned); may evict a dirty line."""
        line_addr = self.config.line_address(addr)
        cache_set = self._sets[self.config.set_index(line_addr)]
        self._clock += 1
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.lru = self._clock
            existing.dirty = existing.dirty or dirty
            return AccessResult(hit=True)
        writeback = None
        if len(cache_set) >= self.config.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].lru)
            victim = cache_set.pop(victim_tag)
            if victim.dirty:
                writeback = victim_tag
        line = _Line(line_addr, self._clock)
        line.dirty = dirty
        cache_set[line_addr] = line
        return AccessResult(hit=False, writeback=writeback)

    def write_allocate_no_fetch(self, addr: int) -> AccessResult:
        """Install a full line written by a 64 B write request."""
        return self.fill(addr, dirty=True)

    def invalidate(self, addr: int) -> bool:
        """Drop a line (software-managed coherence flushes); returns whether
        it was present."""
        line_addr = self.config.line_address(addr)
        cache_set = self._sets[self.config.set_index(line_addr)]
        return cache_set.pop(line_addr, None) is not None

    def drain_dirty_lines(self) -> List[int]:
        """Clear every dirty bit and return the affected line addresses —
        the cache-side half of a software-managed coherence flush."""
        drained = []
        for cache_set in self._sets:
            for line_addr, line in cache_set.items():
                if line.dirty:
                    line.dirty = False
                    drained.append(line_addr)
        return drained

    # -- stats ---------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def _lookup(self, line_addr: int) -> Optional[_Line]:
        return self._sets[self.config.set_index(line_addr)].get(line_addr)
