"""Tests for warp state and round-robin scheduling."""

import pytest

from repro.gpu.warp import RoundRobinWarpScheduler, Warp


class TestWarpState:
    def test_fresh_warp_ready(self):
        assert not Warp(0).blocked(cycle=0)

    def test_pipeline_hazard_blocks(self):
        w = Warp(0, ready_at=10)
        assert w.blocked(5)
        assert not w.blocked(10)

    def test_pending_loads_block(self):
        w = Warp(0)
        w.pending_loads = 2
        assert w.blocked(100)
        w.pending_loads = 0
        assert not w.blocked(100)

    def test_finished_blocks_forever(self):
        w = Warp(0)
        w.finished = True
        assert w.blocked(10 ** 9)


class TestScheduler:
    def test_requires_warps(self):
        with pytest.raises(ValueError):
            RoundRobinWarpScheduler([])

    def test_round_robin_order(self):
        warps = [Warp(i) for i in range(3)]
        sched = RoundRobinWarpScheduler(warps)
        picks = [sched.pick(0).warp_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_blocked(self):
        warps = [Warp(0), Warp(1), Warp(2)]
        warps[1].pending_loads = 1
        sched = RoundRobinWarpScheduler(warps)
        picks = [sched.pick(0).warp_id for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_none_when_all_blocked(self):
        warps = [Warp(0), Warp(1)]
        for w in warps:
            w.pending_loads = 1
        assert RoundRobinWarpScheduler(warps).pick(0) is None

    def test_unblocked_warp_rejoins(self):
        warps = [Warp(0), Warp(1)]
        warps[0].pending_loads = 1
        sched = RoundRobinWarpScheduler(warps)
        assert sched.pick(0).warp_id == 1
        warps[0].pending_loads = 0
        assert sched.pick(0).warp_id == 0

    def test_ready_at_respected(self):
        warps = [Warp(0, ready_at=5), Warp(1)]
        sched = RoundRobinWarpScheduler(warps)
        assert sched.pick(0).warp_id == 1
        assert sched.pick(5).warp_id == 0

    def test_all_finished(self):
        warps = [Warp(0), Warp(1)]
        sched = RoundRobinWarpScheduler(warps)
        assert not sched.all_finished()
        for w in warps:
            w.finished = True
        assert sched.all_finished()
