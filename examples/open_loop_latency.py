#!/usr/bin/env python3
"""Open-loop load-latency curves (Figure 21): drive the mesh designs with
synthetic many-to-few-to-many traffic and print latency-versus-load curves
with an ASCII sketch of the saturation behaviour.

Run:  python examples/open_loop_latency.py [--hotspot]
"""

import dataclasses
import sys

from repro.core.builder import BASELINE, CP_CR, CP_DOR, build, \
    open_loop_variant
from repro.noc.openloop import OpenLoopRunner
from repro.noc.traffic import HotspotManyToFew, UniformManyToFew

CP_CR_2P = dataclasses.replace(CP_CR, name="CP-CR-2P", mc_inject_ports=2)
DESIGNS = (BASELINE, CP_DOR, CP_CR, CP_CR_2P)
RATES = [0.005, 0.015, 0.025, 0.035, 0.045, 0.06]
CAP = 200.0   # cycles shown in the ASCII plot


def curve(design, hotspot):
    points = []
    for rate in RATES:
        system = build(open_loop_variant(design))
        pattern = (HotspotManyToFew(system.mc_nodes, 0.2) if hotspot
                   else UniformManyToFew(system.mc_nodes))
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes, pattern, rate)
        points.append(runner.run(warmup=800, measure=2500))
    return points


def main() -> None:
    hotspot = "--hotspot" in sys.argv
    kind = "hotspot (20% to one MC)" if hotspot else "uniform"
    print(f"open-loop many-to-few-to-many, {kind} traffic")
    print("1-flit read requests from 28 cores, 4-flit replies from 8 MCs\n")

    curves = {d.name: curve(d, hotspot) for d in DESIGNS}

    header = f"{'rate':>6s}" + "".join(f"{d.name:>12s}" for d in DESIGNS)
    print(header)
    for i, rate in enumerate(RATES):
        cells = []
        for d in DESIGNS:
            p = curves[d.name][i]
            cells.append("   saturated" if p.saturated
                         else f"{p.mean_latency:12.1f}")
        print(f"{rate:6.3f}" + "".join(cells))

    print("\nlatency sketch (each column is one offered rate; "
          "'#' saturated):")
    for d in DESIGNS:
        bars = []
        for p in curves[d.name]:
            if p.saturated:
                bars.append("#" * 20)
            else:
                bars.append("*" * max(1, int(20 * min(p.mean_latency, CAP)
                                             / CAP)))
        print(f"  {d.name:12s} " + " | ".join(f"{b:20s}" for b in bars))
    print("\n(the throughput-effective components shift saturation to the "
          "right: placement first, then the second MC injection port)")


if __name__ == "__main__":
    main()
