"""Checkerboard routing on non-6x6 meshes (the 8x8 scaling configuration
and rectangular meshes): the routability and minimality guarantees are
parity arguments, so they must hold for any size."""

import random

import pytest

from repro.core.checkerboard_routing import (CheckerboardRouting, RouteCase,
                                             classify, trace_route)
from repro.core.placement import (checkerboard_placement,
                                  validate_checkerboard_placement)
from repro.noc.routing import minimal_hops
from repro.noc.topology import Mesh


@pytest.mark.parametrize("cols,rows", [(8, 8), (4, 6), (7, 5)])
class TestGenericMesh:
    def test_all_routable_pairs_minimal_without_illegal_turns(self, cols,
                                                              rows):
        mesh = Mesh(cols, rows)
        routing = CheckerboardRouting(mesh)
        rng = random.Random(1)
        for src in mesh.coords():
            for dest in mesh.coords():
                if classify(src, dest) is RouteCase.UNROUTABLE:
                    continue
                trace = trace_route(mesh, routing, src, dest, rng)
                assert trace.path[-1] == dest
                assert trace.hops == minimal_hops(src, dest)
                for a, b, c in zip(trace.path, trace.path[1:],
                                   trace.path[2:]):
                    if (a.x != b.x) != (b.x != c.x):   # dimension change
                        assert b.parity() == 0, (src, dest, trace.path)

    def test_placement_valid(self, cols, rows):
        mesh = Mesh(cols, rows)
        mcs = checkerboard_placement(mesh, min(8, mesh.num_nodes // 4))
        validate_checkerboard_placement(mesh, mcs)

    def test_mc_pairs_routable(self, cols, rows):
        mesh = Mesh(cols, rows)
        mcs = checkerboard_placement(mesh, min(8, mesh.num_nodes // 4))
        cores = [c for c in mesh.coords() if c not in set(mcs)]
        for mc in mcs:
            for core in cores:
                assert classify(core, mc) is not RouteCase.UNROUTABLE
                assert classify(mc, core) is not RouteCase.UNROUTABLE
