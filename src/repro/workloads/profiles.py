"""Benchmark characteristics (Table I substitute).

The paper evaluates 31 CUDA benchmarks from the Rodinia suite, the CUDA SDK
and Bakhoda et al.'s ISPASS suite.  We cannot run CUDA binaries, so each
benchmark is represented by a :class:`BenchmarkProfile` — the parameters of
a synthetic kernel that reproduces the benchmark's *traffic behaviour*:
memory intensity, scratchpad usage, coalescing/divergence, locality
(L1 reuse and DRAM row-buffer streaming), store mix and warp occupancy.

Parameters were set from the paper's own characterization: Figure 7 places
every benchmark in one of three classes —

* ``LL`` — low perfect-NoC speedup, light traffic (heavy scratchpad use or
  high L1 hit rates);
* ``LH`` — low speedup, heavy traffic (bandwidth demand the balanced mesh
  already sustains; NNC is the special case of too few threads);
* ``HH`` — high speedup, heavy traffic (the memory-bound group whose
  performance tracks MC injection rate, Figure 8).

``expected_group`` records the paper's classification so experiments can
compare the reproduced class against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic-kernel parameters for one benchmark."""

    abbr: str
    name: str
    suite: str
    expected_group: str        # "LL", "LH" or "HH" (Figure 7)
    warps_per_core: int        # occupancy (NNC: insufficient threads)
    mem_fraction: float        # instructions that touch memory
    shared_fraction: float     # of memory instrs served by the scratchpad
    store_fraction: float      # of global accesses that are stores
    reuse: float               # P(address re-used from the recent window)
    streaming: float           # P(new address is sequential, not random)
    divergence: int            # mean cache lines per global access (1..32)
    footprint_lines: int       # working-set lines per warp
    #: Mean fraction of the warp's 32 threads active per instruction —
    #: models SIMT control divergence (immediate post-dominator
    #: reconvergence).  1.0 = no branch divergence.
    simd_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.mem_fraction <= 1:
            raise ValueError(f"{self.abbr}: bad mem_fraction")
        for field_name in ("shared_fraction", "store_fraction", "reuse",
                           "streaming"):
            value = getattr(self, field_name)
            if not 0 <= value <= 1:
                raise ValueError(f"{self.abbr}: bad {field_name}")
        if not 1 <= self.divergence <= 32:
            raise ValueError(f"{self.abbr}: divergence must be in 1..32")
        if self.warps_per_core < 1:
            raise ValueError(f"{self.abbr}: need at least one warp")
        if self.expected_group not in ("LL", "LH", "HH"):
            raise ValueError(f"{self.abbr}: bad group")
        if not 0.0 < self.simd_efficiency <= 1.0:
            raise ValueError(f"{self.abbr}: bad simd_efficiency")


def _p(abbr, name, suite, group, w, mf, sh, st, ru, sm, div, fl,
       simd=1.0):
    return BenchmarkProfile(abbr, name, suite, group, w, mf, sh, st, ru,
                            sm, div, fl, simd)


#: All 31 benchmarks of Table I, in the paper's figure order.
PROFILES: Tuple[BenchmarkProfile, ...] = (
    # -- LL: low speedup with a perfect NoC, light traffic ------------------
    _p("AES", "AES Cryptography", "ispass", "LL",
       32, 0.26, 0.85, 0.05, 0.80, 0.90, 1, 512),
    _p("BIN", "Binomial Option Pricing", "sdk", "LL",
       32, 0.09, 0.60, 0.05, 0.85, 0.90, 1, 512),
    _p("HSP", "HotSpot", "rodinia", "LL",
       24, 0.12, 0.55, 0.10, 0.80, 0.95, 1, 768),
    _p("NE", "Neural Network Digit Recognition", "ispass", "LL",
       32, 0.08, 0.30, 0.05, 0.90, 0.90, 1, 512),
    _p("NDL", "Needleman-Wunsch", "rodinia", "LL",
       16, 0.15, 0.60, 0.10, 0.75, 0.80, 1, 768),
    _p("HW", "Heart Wall Tracking", "rodinia", "LL",
       24, 0.10, 0.50, 0.05, 0.85, 0.90, 1, 512),
    _p("LE", "Leukocyte", "rodinia", "LL",
       32, 0.08, 0.60, 0.03, 0.90, 0.95, 1, 512),
    _p("HIS", "64-bin Histogram", "sdk", "LL",
       32, 0.10, 0.75, 0.10, 0.70, 0.60, 2, 768),
    _p("LU", "LU Decomposition", "rodinia", "LL",
       24, 0.10, 0.40, 0.15, 0.85, 0.90, 1, 768),
    _p("SLA", "Scan of Large Arrays", "sdk", "LL",
       32, 0.10, 0.60, 0.20, 0.80, 1.00, 1, 1024),
    _p("BP", "Back Propagation", "rodinia", "LL",
       32, 0.09, 0.55, 0.10, 0.80, 0.90, 1, 768),
    # -- LH: low speedup, heavy traffic --------------------------------------
    _p("CON", "Separable Convolution", "sdk", "LH",
       32, 0.18, 0.35, 0.08, 0.60, 0.95, 1, 2048),
    _p("NNC", "Nearest Neighbor", "rodinia", "LH",
       8, 0.30, 0.00, 0.02, 0.65, 0.90, 1, 2048),
    _p("BLK", "Black-Scholes Option Pricing", "sdk", "LH",
       32, 0.20, 0.00, 0.15, 0.50, 1.00, 1, 2048),
    _p("MM", "Matrix Multiplication", "other", "LH",
       32, 0.20, 0.50, 0.03, 0.65, 0.90, 1, 2048),
    _p("LPS", "3D Laplace Solver", "ispass", "LH",
       24, 0.18, 0.40, 0.12, 0.60, 0.90, 1, 2048),
    _p("RAY", "Ray Tracing", "ispass", "LH",
       24, 0.10, 0.10, 0.05, 0.65, 0.50, 3, 2048, simd=0.75),
    _p("DG", "gpuDG", "ispass", "LH",
       24, 0.14, 0.30, 0.05, 0.55, 0.85, 2, 2048),
    _p("SS", "Similarity Score", "rodinia", "LH",
       32, 0.20, 0.20, 0.10, 0.60, 0.80, 1, 2048),
    _p("TRA", "Matrix Transpose", "sdk", "LH",
       32, 0.10, 0.30, 0.30, 0.40, 0.40, 3, 2048),
    _p("SR", "Speckle Reducing Anisotropic Diffusion", "rodinia", "LH",
       32, 0.18, 0.30, 0.12, 0.60, 0.90, 1, 2048),
    _p("WP", "Weather Prediction", "ispass", "LH",
       24, 0.11, 0.20, 0.25, 0.55, 0.80, 2, 2048),
    # -- HH: high speedup, heavy traffic -------------------------------------
    _p("MUM", "MUMmerGPU", "rodinia", "HH",
       24, 0.30, 0.00, 0.02, 0.25, 0.10, 8, 8192, simd=0.55),
    _p("LIB", "LIBOR Monte Carlo", "ispass", "HH",
       32, 0.35, 0.05, 0.10, 0.20, 0.80, 2, 8192),
    _p("FWT", "Fast Walsh Transform", "sdk", "HH",
       32, 0.30, 0.15, 0.30, 0.30, 0.60, 2, 8192),
    _p("SCP", "Scalar Product", "sdk", "HH",
       32, 0.40, 0.05, 0.02, 0.10, 1.00, 1, 8192),
    _p("STC", "Streamcluster", "rodinia", "HH",
       32, 0.35, 0.00, 0.05, 0.25, 0.90, 1, 8192),
    _p("KM", "Kmeans", "rodinia", "HH",
       32, 0.30, 0.10, 0.10, 0.30, 0.70, 2, 8192),
    _p("CFD", "CFD Solver", "rodinia", "HH",
       24, 0.35, 0.05, 0.15, 0.25, 0.50, 3, 8192, simd=0.85),
    _p("BFS", "BFS Graph Traversal", "rodinia", "HH",
       32, 0.30, 0.00, 0.10, 0.20, 0.20, 6, 8192, simd=0.60),
    _p("RD", "Parallel Reduction", "sdk", "HH",
       32, 0.45, 0.10, 0.02, 0.05, 1.00, 1, 8192),
)

BY_ABBR: Dict[str, BenchmarkProfile] = {p.abbr: p for p in PROFILES}

GROUPS: Dict[str, List[str]] = {
    group: [p.abbr for p in PROFILES if p.expected_group == group]
    for group in ("LL", "LH", "HH")
}


def profile(abbr: str) -> BenchmarkProfile:
    """Look up a Table I benchmark by its abbreviation."""
    try:
        return BY_ABBR[abbr]
    except KeyError:
        raise KeyError(f"unknown benchmark {abbr!r}; "
                       f"known: {sorted(BY_ABBR)}") from None


def rodinia() -> List[BenchmarkProfile]:
    """The Rodinia subset (the paper reports a separate HM for it)."""
    return [p for p in PROFILES if p.suite == "rodinia"]


#: A representative 9-benchmark mix — three per Figure 7 class — that keeps
#: a full design-space walk to a couple of minutes while preserving the
#: paper's ranking (the mix the quick mode of the Figure 2 example and the
#: ``figure2`` exploration preset evaluate).
QUICK_MIX: Tuple[str, ...] = ("AES", "HSP", "SLA", "CON", "BLK", "TRA",
                              "RD", "MUM", "KM")


def quick_mix() -> List[BenchmarkProfile]:
    """The :data:`QUICK_MIX` profiles, in mix order."""
    return [profile(abbr) for abbr in QUICK_MIX]
