"""Closed-loop accelerator tests: conservation, completion, metrics."""

import dataclasses

import pytest

from repro.core.builder import BASELINE, THROUGHPUT_EFFECTIVE
from repro.system.accelerator import (Accelerator, bandwidth_capped_chip,
                                      build_chip, perfect_chip)
from repro.system.config import ChipConfig, paper_config
from repro.workloads.generator import SyntheticKernel
from repro.workloads.profiles import profile


class TestConstruction:
    def test_factory_requires_one_network_source(self):
        with pytest.raises(ValueError):
            build_chip(profile("RD"))
        from repro.noc.ideal import PerfectNetwork
        with pytest.raises(ValueError):
            build_chip(profile("RD"), design=BASELINE,
                       network=PerfectNetwork())

    def test_paper_node_counts(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        assert len(chip.cores) == 28
        assert len(chip.mcs) == 8

    def test_clock_domains_advance_at_ratios(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        for _ in range(602):
            chip.step()
        assert chip.icnt_cycle == 602
        assert abs(chip.core_cycle - 1296) <= 2
        assert abs(chip.dram_cycle - 1107) <= 2

    def test_warp_count_clamped_by_profile(self):
        chip = build_chip(profile("NNC"), design=BASELINE)
        assert len(chip.cores[0].warps) == profile("NNC").warps_per_core


class TestConservation:
    def test_finite_kernel_completes_and_conserves(self):
        """Every issued read must come back: run to completion and check
        request/reply conservation across the full closed loop."""
        chip = build_chip(profile("HSP"), design=BASELINE,
                          instructions_per_warp=20)
        result = chip.run_to_completion(max_cycles=200_000)
        assert chip.finished
        reads = sum(mc.reads for mc in chip.mcs)
        replies = sum(mc.replies_sent for mc in chip.mcs)
        assert reads == replies
        assert all(len(core.mshrs) == 0 for core in chip.cores)
        expected = 20 * 32 * len(chip.cores) * len(chip.cores[0].warps) / \
            len(chip.cores)
        assert result.retired_scalar == 20 * 32 * sum(
            len(c.warps) for c in chip.cores)

    def test_finite_kernel_on_perfect_network(self):
        chip = build_chip(profile("HSP"), network=__import__(
            "repro.noc.ideal", fromlist=["PerfectNetwork"]).PerfectNetwork(),
            instructions_per_warp=10)
        chip.run_to_completion(max_cycles=100_000)
        assert chip.finished

    def test_infinite_kernel_never_finishes(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        for _ in range(200):
            chip.step()
        assert not chip.finished


class TestMetrics:
    def test_measurement_window_deltas(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        r = chip.run(warmup=100, measure=200)
        assert r.icnt_cycles == 200
        # Boundary rounding of the 4-cycle issue interval can nudge a short
        # window fractionally above the steady-state peak.
        assert 0 < r.ipc <= paper_config().peak_scalar_ipc * 1.02
        assert r.core_cycles > 0

    def test_compute_bound_benchmark_hits_peak(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        r = chip.run(warmup=300, measure=400)
        assert r.ipc == pytest.approx(paper_config().peak_scalar_ipc,
                                      rel=0.02)

    def test_memory_bound_benchmark_below_peak(self):
        chip = build_chip(profile("RD"), design=BASELINE)
        r = chip.run(warmup=300, measure=400)
        assert r.ipc < 0.6 * paper_config().peak_scalar_ipc
        assert r.mc_stall_fraction > 0.3
        assert r.accepted_bytes_per_cycle_per_node > 1.0

    def test_determinism(self):
        a = build_chip(profile("KM"), design=BASELINE, seed=5)
        b = build_chip(profile("KM"), design=BASELINE, seed=5)
        ra = a.run(warmup=100, measure=200)
        rb = b.run(warmup=100, measure=200)
        assert ra.ipc == rb.ipc
        assert ra.retired_scalar == rb.retired_scalar

    def test_seed_sensitivity_is_modest(self):
        a = build_chip(profile("KM"), design=BASELINE, seed=5)
        b = build_chip(profile("KM"), design=BASELINE, seed=9)
        ra = a.run(warmup=200, measure=400)
        rb = b.run(warmup=200, measure=400)
        assert abs(ra.ipc - rb.ipc) / ra.ipc < 0.25

    def test_result_label(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        assert chip.run(10, 10).network == "TB-DOR"
        assert chip.run(0, 10, label="custom").network == "custom"

    def test_speedup_over(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        r = chip.run(100, 100)
        assert r.speedup_over(r) == pytest.approx(0.0)


class TestIdealFactories:
    def test_perfect_chip_upper_bounds_real(self):
        real = build_chip(profile("SCP"), design=BASELINE).run(300, 500)
        ideal = perfect_chip(profile("SCP")).run(300, 500)
        assert ideal.ipc > real.ipc

    def test_bandwidth_cap_monotone(self):
        lo = bandwidth_capped_chip(profile("SCP"), 0.5).run(200, 400)
        hi = bandwidth_capped_chip(profile("SCP"), 8.0).run(200, 400)
        assert hi.ipc > lo.ipc
