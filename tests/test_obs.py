"""Observability tests: registry, logs, spans, serve integration.

The load-bearing guarantees pinned here:

* the Prometheus text exposition is deterministic and golden-pinned —
  renaming a series or changing label order is a reviewed event, not an
  accident (dashboards parse this);
* the structured-log record shape (schema, sorted keys, reserved-key
  protection) is pinned the same way, and the text format stays
  byte-identical to the legacy stderr prints;
* job-span stage durations telescope EXACTLY to the end-to-end total —
  integer nanoseconds, the same invariant the simulator's packet-latency
  decomposition pins in cycles;
* a served job's span, the ``metrics`` command, the cache lifetime
  counters and the p90 retry estimator are all visible through the
  protocol;
* observability off (``observability=False`` or ``REPRO_OBS=0``) serves
  **bit-identical** results to observability on and to direct library
  calls — watching never changes the answer.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro import cli
from repro.experiments import load_latency_curves
from repro.noc.traffic import named_pattern_factory
from repro.obs import (REGISTRY, JobSpan, MetricsRegistry, STAGES, bind,
                       context, emit, log_format, parse_exposition,
                       render_dashboard, render_prometheus, run_top)
from repro.obs import metrics as obs_metrics
from repro.obs.log import SCHEMA as LOG_SCHEMA
from repro.obs.spans import SCHEMA as SPAN_SCHEMA
from repro.parallel import ResultCache, TaskReport, log_progress, run_tasks
from repro.serve import ServeClient, ServerConfig, ThreadedServer
from repro.serve.executor import SWEEP_DEFAULTS

SWEEP_JOB = {"kind": "sweep", "design": "CP-DOR", "rates": [0.01],
             "warmup": 50, "measure": 100}


def serve(tmp_path, name="cache", **overrides):
    config = ServerConfig(port=0, cache=str(tmp_path / name), **overrides)
    return ThreadedServer(config)


def connect(server, **kw) -> ServeClient:
    host, port = server.address
    return ServeClient(host=host, port=port, **kw)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "Jobs.", labels=("kind",))
        c.inc(kind="sweep")
        c.inc(2, kind="sweep")
        c.inc(kind="compare")
        assert c.value(kind="sweep") == 3
        assert c.value(kind="compare") == 1
        assert c.value(kind="explore") == 0

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("x_total", "X.")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_callback_counter(self):
        source = {"n": 7}
        c = MetricsRegistry().counter("n_total", "N.",
                                      fn=lambda: source["n"])
        assert c.value() == 7
        source["n"] = 9
        assert c.value() == 9
        with pytest.raises(ValueError, match="callback-backed"):
            c.inc()

    def test_callback_counter_rejects_labels(self):
        with pytest.raises(ValueError, match="cannot be labeled"):
            MetricsRegistry().counter("x_total", "X.", labels=("a",),
                                      fn=lambda: 0)

    def test_wrong_labels_rejected(self):
        c = MetricsRegistry().counter("x_total", "X.", labels=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(client="a")
        with pytest.raises(ValueError, match="takes labels"):
            c.inc()

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad name", "X.")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok_total", "X.", labels=("bad-label",))

    def test_duplicate_registration_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "X.")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x_total", "X again.")

    def test_thread_concurrency_is_exact(self):
        c = MetricsRegistry().counter("x_total", "X.", labels=("who",))
        def spin(who):
            for _ in range(2000):
                c.inc(who=who)
        threads = [threading.Thread(target=spin, args=(f"t{i % 2}",))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(who="t0") == 8000
        assert c.value(who="t1") == 8000


class TestGauge:
    def test_set_and_value(self):
        g = MetricsRegistry().gauge("depth", "Depth.")
        assert g.value() == 0.0
        g.set(5)
        assert g.value() == 5.0

    def test_scalar_callback(self):
        g = MetricsRegistry().gauge("depth", "Depth.", fn=lambda: 3)
        assert g.value() == 3.0
        with pytest.raises(ValueError, match="callback-backed"):
            g.set(1)

    def test_labeled_dict_callback(self):
        g = MetricsRegistry().gauge("depth", "Depth.",
                                    labels=("priority",),
                                    fn=lambda: {("0",): 2, ("5",): 1})
        assert g.series() == [(("0",), 2.0), (("5",), 1.0)]
        assert g.value(priority="5") == 1.0


class TestHistogram:
    def test_exact_percentiles(self):
        h = MetricsRegistry().histogram("wall_seconds", "Wall.")
        for ms in range(1, 101):            # 1ms..100ms
            h.observe(ms / 1000.0)
        s = h.summary()
        assert s["count"] == 100
        assert s["p50"] == 0.050
        assert s["p95"] == 0.095
        assert s["p99"] == 0.099
        assert s["min"] == 0.001 and s["max"] == 0.100
        assert s["sum"] == pytest.approx(5.05)

    def test_empty_summary(self):
        h = MetricsRegistry().histogram("wall_seconds", "Wall.")
        assert h.summary() == {"count": 0, "sum": 0.0, "min": 0.0,
                               "max": 0.0, "p50": 0.0, "p95": 0.0,
                               "p99": 0.0}

    def test_rejects_negative_samples(self):
        h = MetricsRegistry().histogram("wall_seconds", "Wall.")
        with pytest.raises(ValueError, match=">= 0"):
            h.observe(-0.1)


class TestExposition:
    def golden_registry(self):
        reg = MetricsRegistry()
        jobs = reg.counter("repro_jobs_total", "Jobs by kind.",
                           labels=("kind",))
        jobs.inc(kind="sweep")
        jobs.inc(3, kind="compare")
        reg.gauge("repro_queue_depth", "Queue depth.", fn=lambda: 2)
        wall = reg.histogram("repro_job_wall_seconds", "Job wall.",
                             labels=("kind",))
        for ms in (10, 20, 30, 40):
            wall.observe(ms / 1000.0, kind="sweep")
        return reg

    def test_golden_text_exposition(self):
        # Pinned byte-for-byte: dashboards and the CI scrape parse this.
        assert self.golden_registry().render() == """\
# HELP repro_jobs_total Jobs by kind.
# TYPE repro_jobs_total counter
repro_jobs_total{kind="compare"} 3
repro_jobs_total{kind="sweep"} 1
# HELP repro_queue_depth Queue depth.
# TYPE repro_queue_depth gauge
repro_queue_depth 2
# HELP repro_job_wall_seconds Job wall.
# TYPE repro_job_wall_seconds summary
repro_job_wall_seconds{kind="sweep",quantile="0.5"} 0.02
repro_job_wall_seconds{kind="sweep",quantile="0.95"} 0.04
repro_job_wall_seconds{kind="sweep",quantile="0.99"} 0.04
repro_job_wall_seconds_sum{kind="sweep"} 0.1
repro_job_wall_seconds_count{kind="sweep"} 4
"""

    def test_exposition_parses(self):
        parsed = parse_exposition(self.golden_registry().render())
        assert parsed["repro_jobs_total"]['{kind="sweep"}'] == 1.0
        assert parsed["repro_queue_depth"][""] == 2.0
        assert parsed["repro_job_wall_seconds_count"][
            '{kind="sweep"}'] == 4.0

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition("repro_jobs_total{kind=sweep} 1")
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition("not a metric line")

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "X.", labels=("who",))
        c.inc(who='a"b\\c\nd')
        line = [l for l in reg.render().splitlines()
                if not l.startswith("#")][0]
        assert line == 'x_total{who="a\\"b\\\\c\\nd"} 1'
        parse_exposition(reg.render())      # still parseable

    def test_render_prometheus_concatenates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("a_total", "A.").inc()
        b.counter("b_total", "B.").inc()
        text = render_prometheus(a, b)
        assert text.index("a_total") < text.index("b_total")
        assert parse_exposition(text)["b_total"][""] == 1.0

    def test_snapshot_shape(self):
        snap = self.golden_registry().snapshot()
        assert snap["repro_jobs_total"]["type"] == "counter"
        assert {"labels": {"kind": "sweep"}, "value": 1.0} in \
            snap["repro_jobs_total"]["series"]
        (wall,) = snap["repro_job_wall_seconds"]["series"]
        assert wall["count"] == 4 and wall["p50"] == 0.02
        assert json.loads(json.dumps(snap)) == snap


class TestEnabledSwitch:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert obs_metrics.enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_OBS", value)
        assert not obs_metrics.enabled()

    def test_library_registry_has_task_series(self):
        snap = REGISTRY.snapshot()
        assert "repro_tasks_total" in snap
        assert "repro_task_seconds_total" in snap


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------


class TestLogFormat:
    def test_default_is_text(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_FORMAT", raising=False)
        assert log_format() == "text"

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "xml")
        with pytest.raises(ValueError, match="REPRO_LOG_FORMAT"):
            log_format()


class TestEmit:
    def test_text_mode_prints_message_only(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "text")
        emit("evt", "hello", extra=1)
        assert capsys.readouterr().err == "hello\n"

    def test_text_mode_machine_events_are_silent(self, monkeypatch,
                                                 capsys):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "text")
        emit("evt", field=1)
        out = capsys.readouterr()
        assert out.err == "" and out.out == ""

    def test_json_record_schema(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        emit("job_done", "finished", job_id="job-000001", seconds=1.5)
        line = capsys.readouterr().err.strip()
        record = json.loads(line)
        assert record["schema"] == LOG_SCHEMA
        assert record["event"] == "job_done"
        assert record["message"] == "finished"
        assert record["job_id"] == "job-000001"
        assert record["seconds"] == 1.5
        assert isinstance(record["ts"], float)
        # Keys sorted, compact separators: stable under grep/jq.
        assert line == json.dumps(record, sort_keys=True,
                                  separators=(",", ":"))

    def test_reserved_keys_protected(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        with bind(schema=99, ts="fake", event="fake"):
            emit("real_event", schema=99)
        record = json.loads(capsys.readouterr().err)
        assert record["schema"] == LOG_SCHEMA
        assert record["event"] == "real_event"
        assert record["ts"] != "fake"

    def test_bind_nests_and_restores(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        assert context() == {}
        with bind(job_id="j1"):
            with bind(client="alice"):
                assert context() == {"job_id": "j1", "client": "alice"}
                emit("inner")
            assert context() == {"job_id": "j1"}
        assert context() == {}
        record = json.loads(capsys.readouterr().err)
        assert record["job_id"] == "j1" and record["client"] == "alice"

    def test_fields_override_context(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        with bind(kind="sweep"):
            emit("evt", kind="compare")
        assert json.loads(capsys.readouterr().err)["kind"] == "compare"


class TestLogProgress:
    REPORT = TaskReport(index=2, total=10, label="CP-DOR/uniform@0.01",
                        seconds=1.2345, cached=False)

    def test_text_mode_byte_stable_with_legacy_print(self, monkeypatch,
                                                     capsys):
        monkeypatch.delenv("REPRO_LOG_FORMAT", raising=False)
        log_progress(self.REPORT)
        legacy = (f"[{self.REPORT.index + 1:3d}/{self.REPORT.total}] "
                  f"{self.REPORT.label:40s} "
                  f"{self.REPORT.seconds:7.2f}s (run)\n")
        assert capsys.readouterr().err == legacy

    def test_json_mode_structured_record(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        log_progress(self.REPORT)
        record = json.loads(capsys.readouterr().err)
        assert record["event"] == "task_progress"
        assert record["label"] == self.REPORT.label
        assert record["index"] == 2 and record["total"] == 10
        assert record["cached"] is False


# ---------------------------------------------------------------------------
# Job spans
# ---------------------------------------------------------------------------


def fake_clock(ticks):
    """A clock yielding the given nanosecond values in order."""
    it = iter(ticks)
    return lambda: next(it)


class TestJobSpan:
    def test_stage_durations_telescope_exactly(self):
        span = JobSpan(clock=fake_clock([100, 250, 251, 900, 4000, 4100]))
        for stage in STAGES:
            span.mark(stage)
        durations = span.stage_durations()
        assert [name for name, _ in durations] == list(STAGES)
        assert [ns for _, ns in durations] == [150, 1, 649, 3100, 100]
        assert sum(ns for _, ns in durations) == span.total_ns == 4000
        assert span.complete()

    def test_telescoping_with_adversarial_magnitudes(self):
        # Float subtraction would lose the ±1ns steps next to 2**60;
        # integer marks cannot.
        base = 2 ** 60
        ticks = [base, base + 1, base + 2, base + 10 ** 12,
                 base + 10 ** 12 + 1, base + 10 ** 12 + 2]
        span = JobSpan(clock=fake_clock(ticks))
        for stage in STAGES:
            span.mark(stage)
        assert sum(ns for _, ns in span.stage_durations()) == span.total_ns
        assert span.total_ns == ticks[-1] - ticks[0]

    def test_real_clock_telescopes(self):
        span = JobSpan()
        for stage in STAGES:
            span.mark(stage)
        assert sum(ns for _, ns in span.stage_durations()) == span.total_ns
        assert span.total_ns >= 0

    def test_non_monotonic_injected_clock_clamped(self):
        span = JobSpan(clock=fake_clock([100, 50]))
        span.mark("validate")
        assert span.duration_ns("validate") == 0
        assert span.total_ns == 0

    def test_incomplete_and_duration_lookup(self):
        span = JobSpan(clock=fake_clock([0, 10]))
        span.mark("validate")
        assert not span.complete()
        assert span.duration_ns("validate") == 10
        assert span.duration_ns("execute") == 0

    def test_to_json_schema(self):
        span = JobSpan(clock=fake_clock([0, 1, 2, 3, 4, 1000000]))
        for stage in STAGES:
            span.mark(stage)
        data = span.to_json()
        assert data["schema"] == SPAN_SCHEMA
        assert data["total_ns"] == 1000000
        assert data["total_seconds"] == 0.001
        assert data["complete"] is True
        assert sum(s["ns"] for s in data["stages"]) == data["total_ns"]
        assert json.loads(json.dumps(data)) == data


# ---------------------------------------------------------------------------
# Serve integration
# ---------------------------------------------------------------------------


class TestServeMetrics:
    def test_metrics_command_and_span(self, tmp_path):
        with serve(tmp_path) as server:
            with connect(server, client_id="alice") as client:
                client.submit(SWEEP_JOB, events=(events := []))
                job_id = events[0]["job_id"]

                # Span: exact stage decomposition via status.
                span = client.status(job_id)["span"]
                assert [s["stage"] for s in span["stages"]] == list(STAGES)
                assert sum(s["ns"] for s in span["stages"]) == \
                    span["total_ns"]
                assert span["complete"] is True

                # Text exposition: parseable, counters non-zero.
                text = client.metrics()["text"]
                parsed = parse_exposition(text)
                assert parsed["repro_jobs_submitted_total"][
                    '{kind="sweep",client="alice"}'] == 1.0
                assert parsed["repro_jobs_completed_total"][
                    '{kind="sweep",client="alice"}'] == 1.0
                assert parsed["repro_job_wall_seconds_count"][
                    '{kind="sweep"}'] == 1.0
                assert parsed["repro_queue_wait_seconds_count"][
                    '{priority="0"}'] == 1.0
                assert parsed["repro_cache_puts_total"][""] == \
                    len(SWEEP_JOB["rates"])
                assert parsed["repro_cache_entries"][""] == \
                    len(SWEEP_JOB["rates"])
                assert parsed["repro_worker_busy_seconds_total"][""] > 0
                # The process-wide library registry rides along.
                assert "repro_tasks_total" in parsed

                # JSON snapshot: same families, structured.
                snap = client.metrics(format="json")["metrics"]
                (wall,) = snap["repro_job_wall_seconds"]["series"]
                assert wall["labels"] == {"kind": "sweep"}
                assert wall["count"] == 1

                # stats: estimator state and cache lifetime counters.
                stats = client.stats()
                assert stats["observability"] is True
                est = stats["retry_estimator"]
                assert est["samples"] == 1
                assert est["wall_ms"]["count"] == 1
                assert est["estimate_seconds"] > 0
                counters = stats["cache"]["counters"]
                assert counters["puts"] == len(SWEEP_JOB["rates"])
                assert counters["misses"] == len(SWEEP_JOB["rates"])
                # The job's own stats carry the store's lifetime
                # counters as of completion (via ReportCollector).
                done = [e for e in events if e["event"] == "done"][-1]
                assert done["stats"]["cache_counters"]["puts"] == \
                    len(SWEEP_JOB["rates"])

    def test_invalid_metrics_format_rejected(self, tmp_path):
        with serve(tmp_path) as server:
            with connect(server) as client:
                reply = client.request({"cmd": "metrics",
                                        "format": "xml"})
                assert not reply["ok"]
                assert "format" in reply["error"]

    def test_rejected_and_invalid_counted(self, tmp_path):
        with serve(tmp_path) as server:
            with connect(server, client_id="bob") as client:
                reply = client.request({"cmd": "submit", "client": "bob",
                                        "stream": False,
                                        "job": {"kind": "teleport"}})
                assert reply["event"] == "invalid"
                parsed = parse_exposition(client.metrics()["text"])
                assert parsed["repro_jobs_invalid_total"][
                    '{client="bob"}'] == 1.0

    def test_disabled_by_config(self, tmp_path):
        with serve(tmp_path, observability=False) as server:
            with connect(server) as client:
                client.submit(SWEEP_JOB, events=(events := []))
                assert client.status(events[0]["job_id"])["span"] is None
                reply = client.metrics()
                assert reply["enabled"] is False
                assert reply["text"] == "" and reply["metrics"] == {}
                stats = client.stats()
                assert stats["observability"] is False
                # The retry estimator is scheduling, not observability:
                # it keeps learning with obs off.
                assert stats["retry_estimator"]["samples"] == 1

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        with serve(tmp_path) as server:
            with connect(server) as client:
                assert client.metrics()["enabled"] is False
                assert client.stats()["observability"] is False

    def test_bit_identity_obs_on_off_and_direct(self, tmp_path):
        """Observability never changes served results: obs-on, obs-off
        and the direct library call all produce identical payloads."""
        from repro.core.builder import design_by_name
        (curve,) = load_latency_curves(
            [design_by_name(SWEEP_JOB["design"])], SWEEP_JOB["rates"],
            named_pattern_factory("uniform"), pattern_name="uniform",
            warmup=SWEEP_JOB["warmup"], measure=SWEEP_JOB["measure"],
            seed=SWEEP_DEFAULTS["seed"], cache=str(tmp_path / "direct"))
        direct = {"kind": "sweep", "curve": curve.to_json()}
        with serve(tmp_path, name="on") as server:
            with connect(server) as client:
                with_obs = client.submit(SWEEP_JOB)
        with serve(tmp_path, name="off", observability=False) as server:
            with connect(server) as client:
                without_obs = client.submit(SWEEP_JOB)
        assert json.dumps(with_obs, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)
        assert json.dumps(without_obs, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    def test_json_logs_correlate_by_job_id(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        with serve(tmp_path) as server:
            with connect(server) as client:
                client.submit(SWEEP_JOB, events=(events := []))
        job_id = events[0]["job_id"]
        records = [json.loads(line) for line
                   in capsys.readouterr().err.splitlines() if line]
        by_event = {}
        for record in records:
            by_event.setdefault(record["event"], []).append(record)
        for event in ("job_submitted", "job_started", "job_execute",
                      "job_executed", "task_done", "job_done"):
            assert event in by_event, sorted(by_event)
            assert all(r["job_id"] == job_id for r in by_event[event])
        # The executor-thread records carry the bound context, proving
        # the contextvars crossed asyncio.to_thread.
        assert by_event["task_done"][0]["kind"] == "sweep"
        assert all(r["schema"] == LOG_SCHEMA for r in records)


# ---------------------------------------------------------------------------
# Cache counters through run_tasks
# ---------------------------------------------------------------------------


class TestCacheCounters:
    def test_lifetime_counters(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store.get("missing") is None
        assert store.counters["misses"] == 1
        store.put("abc", {"result": 1})
        assert store.counters["puts"] == 1
        assert store.get("abc") == {"result": 1}
        assert store.counters["hits"] == 1
        assert store.stats()["counters"] == store.counters

    def test_eviction_counters(self, tmp_path):
        probe = ResultCache(tmp_path)
        probe.put("0" * 64, {"result": "x" * 200})
        size = probe.path_for("0" * 64).stat().st_size
        probe.clear()
        store = ResultCache(tmp_path, max_bytes=2 * size + size // 2)
        for i in range(4):
            store.put(f"{i:064x}", {"result": "x" * 200})
        assert store.counters["evictions"] == 2
        assert store.counters["evicted_bytes"] == 2 * size
        assert store.stats()["entries"] == 2

    def test_run_tasks_feeds_library_registry(self, tmp_path):
        from repro.core.builder import BASELINE
        from repro.experiments import open_loop_task
        task = open_loop_task(BASELINE, named_pattern_factory("uniform"),
                              "uniform", 0.01, base_seed=7, warmup=20,
                              measure=40)
        ran = REGISTRY._metrics["repro_tasks_total"]
        before_run = ran.value(origin="run")
        before_cache = ran.value(origin="cache")
        run_tasks([task], cache=str(tmp_path))
        run_tasks([task], cache=str(tmp_path))
        assert ran.value(origin="run") == before_run + 1
        assert ran.value(origin="cache") == before_cache + 1


# ---------------------------------------------------------------------------
# repro top and the CLI
# ---------------------------------------------------------------------------


def sample_stats():
    return {
        "uptime": 12.5, "pending": 3, "max_pending": 64,
        "pending_by_client": {"alice": 2, "bob": 1}, "running": 1,
        "workers": 2, "job_jobs": None, "retry_after": 1.25,
        "retry_estimator": {"samples": 9, "estimate_seconds": 0.5,
                            "initial_seconds": 1.0, "floor_seconds": 0.05,
                            "wall_ms": {"count": 9}},
        "observability": True,
        "counters": {"submitted": 10, "completed": 6, "failed": 1,
                     "rejected": 2, "invalid": 1},
        "cache": {"entries": 4, "bytes": 2048, "max_bytes": None,
                  "counters": {"hits": 8, "misses": 4, "puts": 4,
                               "evictions": 0, "evicted_bytes": 0,
                               "lock_timeouts": 0}},
    }


class TestTop:
    def test_render_dashboard(self):
        frame = render_dashboard(sample_stats())
        assert "uptime 12.5s" in frame
        assert "workers 2 (1 busy)" in frame
        assert "depth 3 / 64 max" in frame
        assert "retry_after 1.25s (p90 of 9 job walls)" in frame
        assert "alice 2, bob 1" in frame
        assert "submitted 10" in frame and "failed 1" in frame
        assert "entries 4 (2.0 KiB)" in frame
        assert "hits 8 / misses 4 (66.7% hit)" in frame

    def test_render_with_snapshot_histograms(self):
        snapshot = {
            "repro_worker_busy_seconds_total": {
                "series": [{"labels": {}, "value": 10.0}]},
            "repro_job_wall_seconds": {
                "series": [{"labels": {"kind": "sweep"}, "count": 5,
                            "p50": 0.02, "p95": 0.04, "p99": 0.05}]},
            "repro_queue_wait_seconds": {"series": []},
        }
        frame = render_dashboard(sample_stats(), snapshot)
        assert "job wall" in frame
        assert "kind sweep" in frame and "p50    20.0ms" in frame
        assert "40.0% of capacity" in frame      # 10s / (12.5s * 2)

    def test_run_top_polls_and_renders(self):
        class FakeClient:
            def __init__(self):
                self.calls = 0
            def stats(self):
                self.calls += 1
                return sample_stats()
            def metrics(self, format="text"):
                return {"enabled": False}
        out = io.StringIO()
        client = FakeClient()
        assert run_top(client, interval=0, iterations=2, out=out,
                       clear=False) == 0
        assert client.calls == 2
        assert out.getvalue().count("repro top") == 2

    def test_cli_metrics_and_top(self, tmp_path, capsys):
        with serve(tmp_path) as server:
            host, port = server.address
            with connect(server) as client:
                client.submit(SWEEP_JOB)
            assert cli.main(["metrics", "--host", host,
                             "--port", str(port)]) == 0
            text = capsys.readouterr().out
            assert "repro_jobs_completed_total" in text
            parse_exposition(text)

            assert cli.main(["metrics", "--host", host,
                             "--port", str(port), "--json"]) == 0
            snap = json.loads(capsys.readouterr().out)
            assert "repro_queue_depth" in snap

            assert cli.main(["top", "--host", host, "--port", str(port),
                             "--iterations", "1", "--no-clear"]) == 0
            frame = capsys.readouterr().out
            assert "repro top" in frame
            assert "completed 1" in frame

    def test_cli_metrics_reports_disabled(self, tmp_path, capsys):
        with serve(tmp_path, observability=False) as server:
            host, port = server.address
            assert cli.main(["metrics", "--host", host,
                             "--port", str(port)]) == 1
            assert "disabled" in capsys.readouterr().err
