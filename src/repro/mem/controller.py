"""Memory-controller node: L2 bank + GDDR3 channel + reply injection.

Each MC node (Figure 5) pairs a 128 KB shared-L2 bank with one GDDR3
channel.  Read requests probe the L2; misses go to DRAM through the 32-entry
FR-FCFS queue.  Read replies (64 B) are injected into the reply network —
and when the reply network cannot accept them, the controller *stalls*,
which is the bottleneck quantified in Figure 11 and attacked with the extra
MC injection ports of Section IV-D.

The controller straddles two clock domains: `icnt_step` runs at the
interconnect/L2 clock (602 MHz), `dram_step` at the memory clock (1107 MHz).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from ..noc.packet import Packet, TrafficClass, read_reply
from ..noc.topology import Coord
from .cache import CacheConfig, SetAssociativeCache
from .dram import DramRequest, DramTiming, GddrChannel

#: Addresses are low-order interleaved among MCs every 256 bytes
#: (Section II) to reduce hot-spots.
MC_INTERLEAVE_BYTES = 256


class AddressMap:
    """Distributes the flat global address space over the MC nodes."""

    def __init__(self, num_mcs: int,
                 interleave: int = MC_INTERLEAVE_BYTES) -> None:
        if num_mcs < 1:
            raise ValueError("need at least one MC")
        self.num_mcs = num_mcs
        self.interleave = interleave

    def mc_index(self, addr: int) -> int:
        return (addr // self.interleave) % self.num_mcs

    def local_address(self, addr: int) -> int:
        """Channel-local address with the MC-selection bits squeezed out,
        so consecutive chunks at one MC stay row-buffer friendly."""
        chunk = addr // self.interleave
        return (chunk // self.num_mcs) * self.interleave + (
            addr % self.interleave)


@dataclass(frozen=True)
class McConfig:
    l2_size_bytes: int = 128 * 1024
    l2_line_bytes: int = 64
    l2_associativity: int = 8
    l2_latency: int = 8              # interconnect cycles
    #: Requests popped from the input queue per interconnect cycle.
    requests_per_cycle: int = 1
    #: Completed replies held locally before the DRAM pipeline is gated.
    reply_backlog_limit: int = 8
    dram: DramTiming = DramTiming()


class MemoryController:
    """One MC node of the closed-loop system."""

    def __init__(self, coord: Coord, config: McConfig = McConfig(),
                 inject: Optional[Callable[[Packet, int], bool]] = None
                 ) -> None:
        self.coord = coord
        self.config = config
        self.inject = inject
        self.l2 = SetAssociativeCache(CacheConfig(
            config.l2_size_bytes, config.l2_line_bytes,
            config.l2_associativity))
        self.dram = GddrChannel(config.dram, on_complete=self._dram_done)
        #: (ready_cycle, packet) input pipeline modelling L2 lookup latency.
        self._input: Deque[Tuple[int, Packet]] = deque()
        self._replies: Deque[Packet] = deque()
        self._writebacks: Deque[int] = deque()
        self._icnt_cycle = 0
        # Statistics.
        self.cycles = 0
        self.blocked_cycles = 0        # reply network refused our head reply
        self.requests_received = 0
        self.reads = 0
        self.writes = 0
        self.replies_sent = 0
        #: High-water mark of the input queue — exposes the temporary
        #: hot-spots the paper observes in closed-loop runs (Section V-E).
        self.max_queue_depth = 0

    # -- network-facing ------------------------------------------------------

    def on_packet(self, packet: Packet, cycle: int) -> None:
        """Ejection handler: a request packet arrived from the NoC."""
        if packet.traffic_class is not TrafficClass.REQUEST:
            raise ValueError("MC received a non-request packet")
        self.requests_received += 1
        self._input.append((cycle + self.config.l2_latency, packet))
        if len(self._input) > self.max_queue_depth:
            self.max_queue_depth = len(self._input)

    # -- clocking ------------------------------------------------------------

    def icnt_step(self, cycle: int) -> None:
        # Contract with ``Accelerator.step``'s idle fast-path: when
        # ``_input``, ``_replies`` and ``_writebacks`` are all empty this
        # method mutates exactly ``_icnt_cycle`` and ``cycles`` (the drains
        # below are no-ops then) — the chip loop inlines that idle tick and
        # skips the call.  Keep both in sync.
        self._icnt_cycle = cycle
        self.cycles += 1
        self._drain_replies(cycle)
        self._process_input(cycle)
        self._drain_writebacks()

    def dram_step(self, mclk: int) -> None:
        self.dram.step(mclk)

    # -- internals -----------------------------------------------------------

    def _drain_replies(self, cycle: int) -> None:
        blocked = False
        while self._replies:
            if self.inject is None:
                raise RuntimeError("MC has no reply-injection hook")
            if self.inject(self._replies[0], cycle):
                self._replies.popleft()
                self.replies_sent += 1
            else:
                blocked = True
                break
        if blocked:
            self.blocked_cycles += 1

    def _gated(self) -> bool:
        """The paper's Figure 11 bottleneck: when replies back up, the MC
        cannot process further requests."""
        return len(self._replies) >= self.config.reply_backlog_limit

    def _process_input(self, cycle: int) -> None:
        for _ in range(self.config.requests_per_cycle):
            if not self._input or self._input[0][0] > cycle:
                return
            if self._gated():
                return
            ready, packet = self._input[0]
            addr = self._request_addr(packet)
            if packet.size_bytes <= 8:          # read request
                if self.l2.access(addr, is_write=False).hit:
                    self._input.popleft()
                    self.reads += 1
                    self._send_reply(packet, cycle)
                elif self.dram.can_accept():
                    self._input.popleft()
                    self.reads += 1
                    self.dram.enqueue(DramRequest(
                        addr, is_write=False, size_bytes=64,
                        payload=packet), cycle)
                else:
                    return                       # DRAM queue full: stall
            else:                                # 64 B write request
                self._input.popleft()
                self.writes += 1
                result = self.l2.write_allocate_no_fetch(addr)
                if result.writeback is not None:
                    self._writebacks.append(result.writeback)

    def _drain_writebacks(self) -> None:
        while self._writebacks and self.dram.can_accept():
            line = self._writebacks.popleft()
            self.dram.enqueue(DramRequest(line, is_write=True,
                                          size_bytes=64), self._icnt_cycle)

    def _dram_done(self, request: DramRequest, _mclk: int) -> None:
        if request.is_write:
            return
        packet = request.payload
        result = self.l2.fill(request.addr)
        if result.writeback is not None:
            self._writebacks.append(result.writeback)
        self._send_reply(packet, self._icnt_cycle)

    def _send_reply(self, request_packet: Packet, cycle: int) -> None:
        reply = read_reply(self.coord, request_packet.src, created=cycle,
                           payload=request_packet.payload)
        self._replies.append(reply)

    @staticmethod
    def _request_addr(packet: Packet) -> int:
        payload = packet.payload
        addr = getattr(payload, "local_addr", None)
        if addr is None:
            raise ValueError(
                "request payload must expose .local_addr (channel-local)")
        return addr

    # -- read-only introspection (invariant checker) -------------------------

    def pending_request_packets(self) -> List[Packet]:
        """Request packets sitting in the L2-lookup input pipeline."""
        return [packet for _ready, packet in self._input]

    def queued_replies(self) -> List[Packet]:
        """Reply packets waiting for the reply network to accept them."""
        return list(self._replies)

    @property
    def input_queue_depth(self) -> int:
        """Requests sitting in the L2-lookup input pipeline right now."""
        return len(self._input)

    @property
    def reply_backlog_depth(self) -> int:
        """Replies waiting for the reply network to accept them."""
        return len(self._replies)

    @property
    def gated(self) -> bool:
        """True while the reply backlog gates request processing — the
        instantaneous form of the Figure 11 stall state, sampled by the
        telemetry time series."""
        return self._gated()

    # -- stats ---------------------------------------------------------------

    def stall_fraction(self) -> float:
        """Fraction of interconnect cycles the reply injection was blocked
        (Figure 11)."""
        return self.blocked_cycles / self.cycles if self.cycles else 0.0

    @property
    def idle(self) -> bool:
        return not (self._input or self._replies or self._writebacks
                    or self.dram.busy)
