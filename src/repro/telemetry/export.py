"""Telemetry artifact formats: JSONL / CSV writers and key encodings.

Every JSONL artifact starts with a header line carrying a ``schema`` tag so
offline tooling can validate what it is reading; the schema strings below
are pinned by the telemetry tests and must only change together with a
version bump.  Coordinates and links are encoded as compact strings
(``"x,y"`` and ``"x,y->x,y"``) because JSON objects need string keys.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from ..noc.topology import Coord

#: Schema tags written into artifact headers (pinned by tests).
TRACE_SCHEMA = "repro-telemetry-trace-v1"
SAMPLES_SCHEMA = "repro-telemetry-samples-v1"
SUMMARY_SCHEMA = "repro-telemetry-summary-v1"


def coord_key(coord: Coord) -> str:
    """``Coord(x, y)`` -> ``"x,y"``."""
    return f"{coord.x},{coord.y}"


def parse_coord(key: str) -> Coord:
    """Inverse of :func:`coord_key`."""
    x, y = key.split(",")
    return Coord(int(x), int(y))


def link_key(src: Coord, dst: Coord) -> str:
    """Directed link -> ``"x,y->x,y"``."""
    return f"{coord_key(src)}->{coord_key(dst)}"


def parse_link(key: str) -> Tuple[Coord, Coord]:
    """Inverse of :func:`link_key`."""
    src, dst = key.split("->")
    return parse_coord(src), parse_coord(dst)


def write_jsonl(path: Union[str, Path], header: dict,
                rows: Iterable[dict]) -> int:
    """Write a header line followed by one JSON object per row; returns the
    number of data rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path]) -> Tuple[dict, List[dict]]:
    """Read a telemetry JSONL file back: (header, rows)."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"empty telemetry file: {path}")
    header, rows = lines[0], lines[1:]
    if "schema" not in header:
        raise ValueError(f"not a telemetry file (no schema header): {path}")
    return header, rows


def write_csv(path: Union[str, Path], rows: List[dict]) -> List[str]:
    """Flatten rows to CSV keeping scalar columns only (nested per-node
    maps stay in the JSONL); returns the column names written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: List[str] = []
    for row in rows:
        for key, value in row.items():
            if isinstance(value, (str, int, float, bool)) \
                    and key not in columns:
                columns.append(key)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})
    return columns
