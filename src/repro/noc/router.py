"""Cycle-level virtual-channel wormhole router.

Models the paper's baseline router (Table III): input-queued, virtual-channel
flow control with credit-based backpressure, a configurable pipeline depth
(4 stages baseline, 3 for half-routers, 1 for the "aggressive router" study
of Section III-C), iSLIP-style separable switch allocation, input speedup 1.

The pipeline is modelled by a per-flit ready time: a flit entering an input
buffer at cycle ``t`` may not traverse the switch before
``t + pipeline_latency - 1``, so an uncontended hop costs
``pipeline_latency + channel_latency`` cycles (5 for the baseline, matching
Section III-B's "5-cycle per hop delay").

Half-routers (Section IV-A, Figure 13) restrict connectivity: packets may
not change dimension — East connects only to West (and vice versa), North
only to South — while injection and ejection ports connect to everything.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Tuple

from .arbiter import RoundRobinArbiter, SeparableAllocator
from .packet import Flit, Packet, RouteGroup
from .routing import RoutingAlgorithm
from .topology import Coord, Direction, PortId, ejection_port, injection_port
from .vc import VcConfig

MESH_DIRECTIONS = (Direction.NORTH, Direction.SOUTH,
                   Direction.EAST, Direction.WEST)


class RoutingViolation(RuntimeError):
    """Raised when a route would require an illegal turn, e.g. a dimension
    change inside a half-router."""


@dataclass
class RouterSpec:
    """Static description of one router used by network assembly."""

    coord: Coord
    half: bool = False
    pipeline_latency: int = 4
    num_inject_ports: int = 1
    num_eject_ports: int = 1


class _InputVc:
    """State of one input virtual channel."""

    __slots__ = ("buffer", "out_port", "out_vc")

    def __init__(self) -> None:
        self.buffer: Deque[Flit] = deque()
        self.out_port: Optional[PortId] = None   # route computation result
        self.out_vc: Optional[int] = None        # VC allocation result

    def reset_route(self) -> None:
        self.out_port = None
        self.out_vc = None


class _OutputPort:
    """Credit and ownership state for one output port."""

    __slots__ = ("port_id", "credits", "owner", "channel", "sink",
                 "vc_pointers")

    def __init__(self, port_id: PortId, num_vcs: int, buffer_depth: int,
                 channel=None, sink=None) -> None:
        self.port_id = port_id
        self.channel = channel          # mesh channel toward the next router
        self.sink = sink                # terminal ejection sink
        if sink is not None:
            # Terminal ejection: the node always drains, credits unbounded.
            self.credits = [1 << 30] * num_vcs
        else:
            self.credits = [buffer_depth] * num_vcs
        self.owner: List[Optional[Tuple[PortId, int]]] = [None] * num_vcs
        #: One rotation pointer per distinct ``allowed`` set.  A single
        #: shared pointer reused modulo ``len(allowed)`` across different
        #: sets (request vs reply classes, XY vs YX route splits) biases
        #: the rotation and couples the classes to each other.
        self.vc_pointers: Dict[Tuple[int, ...], int] = {}

    def free_vc(self, allowed: Tuple[int, ...]) -> Optional[int]:
        """Pick a free VC among ``allowed``, rotating for fairness."""
        n = len(allowed)
        pointer = self.vc_pointers.get(allowed, 0)
        for offset in range(n):
            vc = allowed[(pointer + offset) % n]
            if self.owner[vc] is None:
                self.vc_pointers[allowed] = (pointer + offset + 1) % n
                return vc
        return None


def full_connectivity(in_port: PortId, out_port: PortId) -> bool:
    """Legal turns of a conventional 5-port mesh router (no U-turns)."""
    if isinstance(in_port, tuple):          # injection port: to anywhere
        return not (isinstance(out_port, tuple) and out_port[0] == "inj")
    if isinstance(out_port, tuple):
        return out_port[0] == "ej"
    # Input ports are named for the side a flit enters on, so a U-turn is
    # out_port == in_port (back toward the neighbor it came from).
    return out_port != in_port


def half_connectivity(in_port: PortId, out_port: PortId) -> bool:
    """Legal connections of a half-router (Figure 13): straight-through on
    each dimension plus full injection/ejection connectivity."""
    if isinstance(in_port, tuple):
        return not (isinstance(out_port, tuple) and out_port[0] == "inj")
    if isinstance(out_port, tuple):
        return out_port[0] == "ej"
    return out_port == in_port.opposite()


class Router:
    """One mesh router instance."""

    def __init__(self, spec: RouterSpec, vc_config: VcConfig,
                 buffer_depth: int, routing: RoutingAlgorithm) -> None:
        # Note: the credit-return delay is owned by the *channel*
        # (``NocParams.credit_delay`` -> ``Channel``); the router has no
        # say in it, so it deliberately takes no such parameter.
        self.coord = spec.coord
        self.spec = spec
        self.vc_config = vc_config
        self.num_vcs = vc_config.num_vcs
        self.buffer_depth = buffer_depth
        self.routing = routing
        self.pipeline_latency = spec.pipeline_latency
        self.connectivity: Callable[[PortId, PortId], bool] = (
            half_connectivity if spec.half else full_connectivity)

        self.in_ports: Dict[PortId, List[_InputVc]] = {}
        self.out_ports: Dict[PortId, _OutputPort] = {}
        #: Mesh channel feeding each mesh input port (for credit returns).
        self.in_channels: Dict[PortId, object] = {}
        for k in range(spec.num_inject_ports):
            self._add_input(injection_port(k))
        self._eject_ids = tuple(ejection_port(k)
                                for k in range(spec.num_eject_ports))
        self._eject_pointer = 0
        self._allocator: Optional[SeparableAllocator] = None
        self._input_order: Tuple[PortId, ...] = ()
        self._ordered_inputs: Tuple[Tuple[PortId, List[_InputVc]], ...] = ()
        self._va_rotate = 0
        #: Flits currently buffered; routers with zero occupancy are skipped.
        self.occupancy = 0
        #: Opt-in per-hop packet tracer (``repro.telemetry``); ``None``
        #: keeps each event site at a single attribute test.
        self.tracer = None

    # -- assembly ----------------------------------------------------------

    def _add_input(self, port_id: PortId) -> None:
        self.in_ports[port_id] = [_InputVc() for _ in range(self.num_vcs)]

    def attach_input_channel(self, direction: Direction, channel) -> None:
        """Attach an incoming mesh channel (flits arrive from a neighbor)."""
        self._add_input(direction)
        self.in_channels[direction] = channel

    def attach_output_channel(self, direction: Direction, channel) -> None:
        self.out_ports[direction] = _OutputPort(
            direction, self.num_vcs, self.buffer_depth, channel=channel)

    def attach_ejection(self, sink) -> None:
        for port_id in self._eject_ids:
            self.out_ports[port_id] = _OutputPort(
                port_id, self.num_vcs, self.buffer_depth, sink=sink)

    def finalize(self) -> None:
        """Build the switch allocator once all ports are attached."""
        self._input_order = tuple(sorted(self.in_ports, key=str))
        # The allocation loops walk the inputs every cycle; resolve the
        # port -> VC-list mapping once instead of per cycle.
        self._ordered_inputs = tuple(
            (port, self.in_ports[port]) for port in self._input_order)
        self._allocator = SeparableAllocator(
            self._input_order, self.num_vcs,
            tuple(sorted(self.out_ports, key=str)))

    # -- runtime -----------------------------------------------------------

    def deliver_flit(self, port: PortId, vc: int, flit: Flit,
                     cycle: int) -> None:
        """A flit arrives from a channel (or from the injection source)."""
        state = self.in_ports[port][vc]
        if len(state.buffer) >= self.buffer_depth and not isinstance(port, tuple):
            raise RuntimeError(
                f"buffer overflow at {self.coord} port {port} vc {vc}: "
                "credit accounting violated")
        # Uncontended per-hop latency = pipeline_latency + channel latency
        # (5 cycles for the 4-stage baseline, Section III-B).
        flit.ready = cycle + self.pipeline_latency
        state.buffer.append(flit)
        self.occupancy += 1
        tracer = self.tracer
        if tracer is not None and flit.is_head:
            tracer.on_hop_arrive(flit.packet, self.coord, port, cycle)

    def deliver_credit(self, port: PortId, vc: int) -> None:
        self.out_ports[port].credits[vc] += 1

    def injection_space(self, port: PortId, vc: int) -> int:
        return self.buffer_depth - len(self.in_ports[port][vc].buffer)

    def step(self, cycle: int) -> List[Tuple[Flit, PortId]]:
        """Advance one cycle: route computation, VC allocation, switch
        allocation and traversal.  Returns ejected (flit, port) pairs."""
        if self.occupancy == 0:
            return []
        self._route_and_allocate(cycle)
        return self._switch(cycle)

    # Route computation + VC allocation.
    def _route_and_allocate(self, cycle: int) -> None:
        inputs = self._ordered_inputs
        n = len(inputs)
        rotate = self._va_rotate
        self._va_rotate = (rotate + 1) % max(1, n)
        for i in range(n):
            in_port, in_vcs = inputs[(i + rotate) % n]
            for in_vc, vc_state in enumerate(in_vcs):
                buf = vc_state.buffer
                if not buf:
                    continue
                head = buf[0]
                if not head.is_head:
                    if vc_state.out_port is None:
                        raise RuntimeError(
                            f"body flit at head of VC without route at "
                            f"{self.coord}: {head!r}")
                    continue
                if head.ready > cycle:
                    continue
                packet = head.packet
                if vc_state.out_port is None:
                    direction = self.routing.next_port(self.coord, packet)
                    if direction is Direction.EJECT:
                        vc_state.out_port = Direction.EJECT
                    else:
                        if not self.connectivity(in_port, direction):
                            raise RoutingViolation(
                                f"illegal turn at {self.coord} "
                                f"({'half' if self.spec.half else 'full'}): "
                                f"{in_port} -> {direction} for packet "
                                f"{packet.src}->{packet.dest} "
                                f"group={packet.group}")
                        vc_state.out_port = direction
                if vc_state.out_vc is None:
                    self._vc_allocate(in_port, in_vc, vc_state, packet,
                                      cycle)

    def _vc_allocate(self, in_port: PortId, in_vc: int, vc_state: _InputVc,
                     packet: Packet, cycle: int) -> None:
        allowed = self.vc_config.allowed_vcs(packet.traffic_class,
                                             packet.group)
        if vc_state.out_port is Direction.EJECT:
            candidates = self._eject_candidates()
        else:
            candidates = (vc_state.out_port,)
        for port_id in candidates:
            out = self.out_ports[port_id]
            vc = out.free_vc(allowed)
            if vc is not None:
                out.owner[vc] = (in_port, in_vc)
                vc_state.out_vc = vc
                vc_state.out_port = port_id
                tracer = self.tracer
                if tracer is not None:
                    tracer.on_vc_alloc(packet, self.coord, port_id, vc,
                                       cycle)
                return

    def _eject_candidates(self) -> Tuple[PortId, ...]:
        ids = self._eject_ids
        if len(ids) == 1:
            return ids
        p = self._eject_pointer
        self._eject_pointer = (p + 1) % len(ids)
        return ids[p:] + ids[:p]

    # Switch allocation + traversal.
    def _switch(self, cycle: int) -> List[Tuple[Flit, PortId]]:
        requests: Dict[PortId, Dict[int, PortId]] = {}
        for in_port, in_vcs in self._ordered_inputs:
            vc_requests: Dict[int, PortId] = {}
            for vc_idx, vc_state in enumerate(in_vcs):
                if vc_state.out_vc is None or not vc_state.buffer:
                    continue
                flit = vc_state.buffer[0]
                if flit.ready > cycle:
                    continue
                out = self.out_ports[vc_state.out_port]
                if out.credits[vc_state.out_vc] <= 0:
                    continue
                vc_requests[vc_idx] = vc_state.out_port
            if vc_requests:
                requests[in_port] = vc_requests

        ejected: List[Tuple[Flit, PortId]] = []
        if not requests:
            return ejected
        tracer = self.tracer
        for in_port, vc_idx, out_port_id in self._allocator.allocate(requests):
            vc_state = self.in_ports[in_port][vc_idx]
            flit = vc_state.buffer.popleft()
            self.occupancy -= 1
            out = self.out_ports[out_port_id]
            out_vc = vc_state.out_vc
            out.credits[out_vc] -= 1
            if tracer is not None and flit.is_head:
                tracer.on_switch(flit.packet, self.coord, out_port_id, cycle)
            if out.sink is not None:
                ejected.append((flit, out_port_id))
            else:
                out.channel.send_flit(flit, out_vc, cycle)
            # Return a credit upstream for the freed buffer slot.
            channel = self.in_channels.get(in_port)
            if channel is not None:
                channel.send_credit(vc_idx, cycle)
            if flit.is_tail:
                out.owner[out_vc] = None
                vc_state.reset_route()
        return ejected
