"""Tests for the programmatic experiment harness."""

import pytest

from repro.core.builder import BASELINE, CP_DOR, DOUBLE_BW
from repro.experiments import (classify_benchmarks, compare_designs,
                               load_latency_curves)
from repro.noc.traffic import HotspotManyToFew, UniformManyToFew
from repro.workloads.profiles import profile

SUBSET = [profile(a) for a in ("RD", "AES")]


@pytest.fixture(scope="module")
def comparison():
    return compare_designs([BASELINE, CP_DOR, DOUBLE_BW],
                           profiles=SUBSET, warmup=200, measure=400)


class TestCompareDesigns:
    def test_all_designs_and_benchmarks_present(self, comparison):
        assert set(comparison.results) == {"TB-DOR", "CP-DOR", "2x-TB-DOR"}
        for per_bench in comparison.results.values():
            assert set(per_bench) == {"RD", "AES"}

    def test_baseline_is_first_design(self, comparison):
        assert comparison.baseline == "TB-DOR"
        assert comparison.hm_speedup("TB-DOR") == pytest.approx(0.0)

    def test_speedups_directionally_correct(self, comparison):
        assert comparison.speedups("2x-TB-DOR")["RD"] > 0.2
        assert abs(comparison.speedups("2x-TB-DOR")["AES"]) < 0.05

    def test_summary_excludes_baseline(self, comparison):
        summary = comparison.summary()
        assert "TB-DOR" not in summary
        assert set(summary) == {"CP-DOR", "2x-TB-DOR"}

    def test_explicit_baseline_inserted(self):
        comp = compare_designs([CP_DOR], profiles=SUBSET, baseline=BASELINE,
                               warmup=100, measure=200)
        assert comp.baseline == "TB-DOR"
        assert "TB-DOR" in comp.results


class TestClassify:
    def test_subset_classification(self):
        # AES sits just under the 1 B/cycle traffic boundary, so use the
        # standard measurement window to avoid short-window inflation.
        result = classify_benchmarks(BASELINE, profiles=SUBSET,
                                     warmup=400, measure=800)
        by_abbr = {b.abbr: b for b in result.benchmarks}
        assert by_abbr["RD"].measured_group == "HH"
        assert by_abbr["AES"].measured_group == "LL"
        assert result.agreement == 1.0
        assert result.hm_perfect_speedup("HH") > 0.3
        with pytest.raises(ValueError):
            result.hm_perfect_speedup("LH")


class TestLoadLatency:
    def test_curves_shape(self):
        curves = load_latency_curves([BASELINE], rates=[0.005, 0.15],
                                     pattern_factory=UniformManyToFew,
                                     warmup=300, measure=600)
        (curve,) = curves
        assert curve.design == "TB-DOR"
        assert len(curve.points) == 2
        assert curve.points[0].mean_latency < 100
        assert curve.saturation_rate() == 0.15

    def test_unsaturated_curve_reports_inf(self):
        curves = load_latency_curves([BASELINE], rates=[0.002],
                                     pattern_factory=UniformManyToFew,
                                     warmup=200, measure=400)
        assert curves[0].saturation_rate() == float("inf")

    def test_hotspot_pattern_factory(self):
        curves = load_latency_curves(
            [BASELINE], rates=[0.005],
            pattern_factory=lambda mcs: HotspotManyToFew(mcs, 0.2),
            pattern_name="hotspot", warmup=200, measure=400)
        assert curves[0].pattern == "hotspot"
