"""Per-hop packet lifetime tracing.

The tracer observes the event points wired through the NoC —

* ``on_offer``     — accepted into a source queue (``packet.created``
  already holds the creation stamp; the offer marks which network slice).
* ``on_hop_arrive``— head flit buffered at a router input.
* ``on_vc_alloc``  — output VC granted at that router.
* ``on_switch``    — head flit traverses the crossbar toward its output.
* ``on_link``      — any flit enters a mesh channel (per-link accounting).
* ``on_eject``     — tail flit reassembled at the destination.

— and decomposes each packet's latency into a *telescoping* sum of
components that add up **exactly** to ``packet.latency``:

* ``queue``         = injected − created (source-queue wait),
* per hop ``vc_wait``     = vc_alloc − arrive (route + VC allocation wait),
* per hop ``switch_wait`` = switch − vc_alloc (switch allocation + credit
  stalls; includes the router pipeline),
* per hop ``channel``     = next hop's arrive − this hop's switch,
* ``serialization`` = ejected − last switch (body flits draining through
  the ejection port),
* ``inject_wait``   = first arrive − injected (0 in the current model; kept
  so the telescoping identity is structural, not coincidental).

Everything is read-only: the tracer never touches packets, flits or router
state, so simulation results are bit-identical with tracing on or off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..noc.packet import Packet, TrafficClass
from ..noc.topology import Coord

#: Component keys in presentation order.
COMPONENTS = ("queue", "inject_wait", "vc_wait", "switch_wait", "channel",
              "serialization")


class HopRecord:
    """Timing of one packet's head flit through one router."""

    __slots__ = ("coord", "in_port", "arrive", "vc_alloc", "switch",
                 "out_port", "out_vc")

    def __init__(self, coord: Coord, in_port, arrive: int) -> None:
        self.coord = coord
        self.in_port = in_port
        self.arrive = arrive
        self.vc_alloc: Optional[int] = None
        self.switch: Optional[int] = None
        self.out_port = None
        self.out_vc: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.vc_alloc is not None and self.switch is not None


class PacketTrace:
    """Full lifetime record of one packet."""

    __slots__ = ("pid", "network", "tclass", "src", "dest", "size_bytes",
                 "group", "created", "injected", "ejected", "hops")

    def __init__(self, packet: Packet, network: str, cycle: int) -> None:
        self.pid = packet.pid
        self.network = network
        self.tclass = packet.traffic_class
        self.src = packet.src
        self.dest = packet.dest
        self.size_bytes = packet.size_bytes
        self.group = packet.group
        self.created = packet.created
        self.injected = -1
        self.ejected = -1
        self.hops: List[HopRecord] = []

    @property
    def latency(self) -> int:
        return self.ejected - self.created

    @property
    def network_latency(self) -> int:
        return self.ejected - self.injected

    @property
    def num_hops(self) -> int:
        return len(self.hops)

    def components(self) -> Dict[str, int]:
        """Latency decomposition; the values sum exactly to
        :attr:`latency` (pinned by tests)."""
        hops = self.hops
        parts = {
            "queue": self.injected - self.created,
            "inject_wait": hops[0].arrive - self.injected,
            "vc_wait": 0,
            "switch_wait": 0,
            "channel": 0,
            "serialization": self.ejected - hops[-1].switch,
        }
        for i, hop in enumerate(hops):
            parts["vc_wait"] += hop.vc_alloc - hop.arrive
            parts["switch_wait"] += hop.switch - hop.vc_alloc
            if i + 1 < len(hops):
                parts["channel"] += hops[i + 1].arrive - hop.switch
        return parts

    def to_json(self) -> dict:
        """One JSONL trace row (schema pinned by tests)."""
        from .export import coord_key
        return {
            "pid": self.pid,
            "network": self.network,
            "class": self.tclass.name,
            "src": coord_key(self.src),
            "dest": coord_key(self.dest),
            "bytes": self.size_bytes,
            "created": self.created,
            "injected": self.injected,
            "ejected": self.ejected,
            "latency": self.latency,
            "network_latency": self.network_latency,
            "hops": [{
                "router": coord_key(hop.coord),
                "arrive": hop.arrive,
                "vc_alloc": hop.vc_alloc,
                "switch": hop.switch,
                "out_vc": hop.out_vc,
            } for hop in self.hops],
            "components": self.components(),
        }


class _Aggregate:
    """Running component sums for one (class) or (route) bucket."""

    __slots__ = ("packets", "latency_sum", "network_latency_sum", "hops_sum",
                 "component_sums")

    def __init__(self) -> None:
        self.packets = 0
        self.latency_sum = 0
        self.network_latency_sum = 0
        self.hops_sum = 0
        self.component_sums = {key: 0 for key in COMPONENTS}

    def add(self, trace: PacketTrace, components: Dict[str, int]) -> None:
        self.packets += 1
        self.latency_sum += trace.latency
        self.network_latency_sum += trace.network_latency
        self.hops_sum += trace.num_hops
        sums = self.component_sums
        for key, value in components.items():
            sums[key] += value

    def to_json(self) -> dict:
        n = self.packets
        return {
            "packets": n,
            "mean_latency": self.latency_sum / n if n else 0.0,
            "mean_network_latency":
                self.network_latency_sum / n if n else 0.0,
            "mean_hops": self.hops_sum / n if n else 0.0,
            "mean_components": {key: value / n if n else 0.0
                                for key, value in
                                self.component_sums.items()},
        }


class PacketTracer:
    """Collects per-hop traces plus per-class / per-route aggregates.

    Completed traces are retained up to ``max_traces`` (aggregates keep
    counting beyond that; ``dropped_traces`` records how many full traces
    were discarded, so truncation is never silent).
    """

    def __init__(self, max_traces: int = 100_000) -> None:
        self.max_traces = max_traces
        self.live: Dict[int, PacketTrace] = {}
        self.completed: List[PacketTrace] = []
        self.dropped_traces = 0
        #: Packets ejected with an incomplete hop record (offered before
        #: the tracer attached); excluded from aggregates.
        self.incomplete = 0
        self.per_class: Dict[TrafficClass, _Aggregate] = {}
        self.per_route: Dict[Tuple[Coord, Coord, TrafficClass],
                             _Aggregate] = {}
        #: (src coord, dst coord) -> [flits by protocol class index].
        self.link_flits: Dict[Tuple[Coord, Coord], List[int]] = {}

    # -- event points (called from the NoC hot path) -------------------------

    def on_offer(self, packet: Packet, network: str, cycle: int) -> None:
        self.live[packet.pid] = PacketTrace(packet, network, cycle)

    def on_hop_arrive(self, packet: Packet, coord: Coord, in_port,
                      cycle: int) -> None:
        trace = self.live.get(packet.pid)
        if trace is not None:
            if not trace.hops:
                trace.injected = packet.injected
            trace.hops.append(HopRecord(coord, in_port, cycle))

    def on_vc_alloc(self, packet: Packet, coord: Coord, out_port,
                    out_vc: int, cycle: int) -> None:
        trace = self.live.get(packet.pid)
        if trace is not None and trace.hops:
            hop = trace.hops[-1]
            hop.vc_alloc = cycle
            hop.out_port = out_port
            hop.out_vc = out_vc

    def on_switch(self, packet: Packet, coord: Coord, out_port,
                  cycle: int) -> None:
        trace = self.live.get(packet.pid)
        if trace is not None and trace.hops:
            trace.hops[-1].switch = cycle

    def on_link(self, channel, flit, cycle: int) -> None:
        key = (channel.src_router.coord, channel.dst_router.coord)
        counts = self.link_flits.get(key)
        if counts is None:
            counts = self.link_flits[key] = [0, 0]
        counts[flit.packet.traffic_class] += 1

    def on_eject(self, packet: Packet, cycle: int) -> None:
        trace = self.live.pop(packet.pid, None)
        if trace is None:
            return
        if not trace.hops or not all(hop.complete for hop in trace.hops):
            self.incomplete += 1
            return
        trace.ejected = cycle
        components = trace.components()
        self._aggregate_class(trace.tclass).add(trace, components)
        self._aggregate_route(trace).add(trace, components)
        if len(self.completed) < self.max_traces:
            self.completed.append(trace)
        else:
            self.dropped_traces += 1

    # -- aggregation ---------------------------------------------------------

    def _aggregate_class(self, tclass: TrafficClass) -> _Aggregate:
        agg = self.per_class.get(tclass)
        if agg is None:
            agg = self.per_class[tclass] = _Aggregate()
        return agg

    def _aggregate_route(self, trace: PacketTrace) -> _Aggregate:
        key = (trace.src, trace.dest, trace.tclass)
        agg = self.per_route.get(key)
        if agg is None:
            agg = self.per_route[key] = _Aggregate()
        return agg

    @property
    def traced_packets(self) -> int:
        """Completed packets folded into the aggregates."""
        return sum(agg.packets for agg in self.per_class.values())

    def summary(self) -> dict:
        """Aggregate view for the run summary (JSON-compatible)."""
        from .export import coord_key, link_key
        routes = sorted(self.per_route.items(),
                        key=lambda item: (-item[1].packets,
                                          item[0][0], item[0][1],
                                          item[0][2]))
        return {
            "traced_packets": self.traced_packets,
            "retained_traces": len(self.completed),
            "dropped_traces": self.dropped_traces,
            "incomplete": self.incomplete,
            "per_class": {tclass.name: agg.to_json()
                          for tclass, agg in sorted(self.per_class.items())},
            "per_route": [{
                "src": coord_key(src), "dest": coord_key(dest),
                "class": tclass.name, **agg.to_json(),
            } for (src, dest, tclass), agg in routes],
            "link_flits": {
                link_key(src, dst): {
                    TrafficClass.REQUEST.name: counts[0],
                    TrafficClass.REPLY.name: counts[1],
                }
                for (src, dst), counts in sorted(self.link_flits.items())
            },
        }
