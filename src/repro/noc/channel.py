"""Mesh channels: pipelined flit delivery plus upstream credit return."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .packet import Flit
from .topology import Direction, PortId


class Channel:
    """A unidirectional channel between two routers.

    Flits travel downstream with ``latency`` cycles of delay; credits travel
    upstream (toward the sending router's output port) with ``credit_delay``
    cycles of delay.  Delivery is performed by the network at the start of
    each cycle, before routers are stepped.
    """

    __slots__ = ("latency", "credit_delay", "src_router", "src_port",
                 "dst_router", "dst_port", "_flits", "_credits",
                 "flits_carried", "watch", "tracer", "delivered_credits")

    def __init__(self, latency: int = 1, credit_delay: int = 1) -> None:
        if latency < 1:
            raise ValueError("channel latency must be at least 1 cycle")
        self.latency = latency
        self.credit_delay = credit_delay
        self.src_router = None
        self.src_port: Optional[PortId] = None
        self.dst_router = None
        self.dst_port: Optional[PortId] = None
        self._flits: Deque[Tuple[int, Flit, int]] = deque()
        self._credits: Deque[Tuple[int, int]] = deque()
        self.flits_carried = 0
        #: Optional callback fired when the channel becomes busy; the
        #: network uses it to keep an active-channel set so that idle
        #: channels are skipped entirely by the cycle loop.
        self.watch = None
        #: Opt-in per-link flit tracer (``repro.telemetry``); ``None``
        #: keeps the send path at a single attribute test.
        self.tracer = None
        #: Credits handed upstream by the last ``deliver`` call; the
        #: event-driven network reads it to wake the credit-receiving
        #: router (a blocked router sleeps until credits arrive).
        self.delivered_credits = 0

    def connect(self, src_router, src_port: PortId,
                dst_router, dst_port: PortId) -> None:
        self.src_router = src_router
        self.src_port = src_port
        self.dst_router = dst_router
        self.dst_port = dst_port

    def send_flit(self, flit: Flit, vc: int, cycle: int) -> None:
        self._flits.append((cycle + self.latency, flit, vc))
        self.flits_carried += 1
        if self.watch is not None:
            self.watch(self)
        if self.tracer is not None:
            self.tracer.on_link(self, flit, cycle)

    def send_credit(self, vc: int, cycle: int) -> None:
        self._credits.append((cycle + self.credit_delay, vc))
        if self.watch is not None:
            self.watch(self)

    @property
    def busy(self) -> bool:
        return bool(self._flits or self._credits)

    # -- read-only introspection (invariant checker / state dumps) ----------

    def flits_in_flight(self, vc: Optional[int] = None) -> int:
        """Flits currently travelling this channel (optionally one VC's)."""
        if vc is None:
            return len(self._flits)
        return sum(1 for _, _, fvc in self._flits if fvc == vc)

    def credits_in_flight(self, vc: Optional[int] = None) -> int:
        """Credits currently travelling upstream (optionally one VC's)."""
        if vc is None:
            return len(self._credits)
        return sum(1 for _, cvc in self._credits if cvc == vc)

    def peek_flits(self):
        """Yield (flit, vc) for every flit in flight, delivery order."""
        for _, flit, vc in self._flits:
            yield flit, vc

    def deliver(self, cycle: int) -> int:
        """Deliver all flits and credits whose delay has elapsed; returns
        the number of flits (not credits) handed to the downstream router,
        so the network knows whether any router just became busy."""
        delivered = 0
        flits = self._flits
        while flits and flits[0][0] <= cycle:
            _, flit, vc = flits.popleft()
            self.dst_router.deliver_flit(self.dst_port, vc, flit, cycle)
            delivered += 1
        credits = self._credits
        ncred = 0
        while credits and credits[0][0] <= cycle:
            _, vc = credits.popleft()
            self.src_router.deliver_credit(self.src_port, vc)
            ncred += 1
        self.delivered_credits = ncred
        return delivered
