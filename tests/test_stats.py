"""Tests for network statistics and merging."""

from repro.noc.packet import TrafficClass, read_reply, read_request
from repro.noc.stats import NetworkStats, merge_stats
from repro.noc.topology import Coord

SRC, DST = Coord(0, 0), Coord(3, 3)


def ejected_packet(created=0, injected=2, ejected=10, reply=False):
    p = (read_reply if reply else read_request)(SRC, DST, created=created)
    p.injected, p.ejected = injected, ejected
    return p


class TestNetworkStats:
    def test_injection_recording(self):
        s = NetworkStats()
        s.record_injection(read_request(SRC, DST), 1)
        assert s.packets_injected == 1
        assert s.flits_injected == 1
        assert s.node_injected_flits[SRC] == 1

    def test_ejection_recording(self):
        s = NetworkStats()
        p = ejected_packet()
        s.record_ejection(p, 1)
        assert s.packets_ejected == 1
        assert s.per_class[TrafficClass.REQUEST].packets == 1
        assert s.node_ejected_flits[DST] == 1

    def test_latency_means(self):
        s = NetworkStats()
        s.record_ejection(ejected_packet(ejected=10), 1)
        s.record_ejection(ejected_packet(ejected=20), 1)
        assert s.mean_packet_latency() == 15.0
        assert s.mean_network_latency() == 13.0

    def test_in_flight(self):
        s = NetworkStats()
        s.record_injection(read_request(SRC, DST), 1)
        assert s.packets_in_flight == 1
        s.record_ejection(ejected_packet(), 1)
        assert s.packets_in_flight == 0

    def test_rates(self):
        s = NetworkStats()
        s.cycles = 100
        s.record_injection(read_request(SRC, DST), 4)
        s.record_ejection(ejected_packet(reply=True), 4)
        assert s.injection_rate(SRC) == 0.04
        assert s.accepted_flit_rate() == 0.04
        assert s.mean_injection_rate([SRC, DST]) == 0.02

    def test_zero_cycles_safe(self):
        s = NetworkStats()
        assert s.accepted_flit_rate() == 0.0
        assert s.mean_packet_latency() == 0.0

    def test_offer_recording(self):
        s = NetworkStats()
        s.record_offer(read_reply(SRC, DST), 4)
        assert s.packets_offered == 1
        assert s.flits_offered == 4

    def test_source_queued_is_offered_minus_injected(self):
        """A packet accepted but parked in a source FIFO is visible as
        offered-but-not-injected — the skew the old stats hid."""
        s = NetworkStats()
        s.record_offer(read_reply(SRC, DST), 4)
        s.record_offer(read_request(SRC, DST), 1)
        assert s.packets_source_queued == 2
        assert s.flits_source_queued == 5
        s.record_injection(read_reply(SRC, DST), 4)
        assert s.packets_source_queued == 1
        assert s.flits_source_queued == 1
        assert s.packets_outstanding == 2

    def test_outstanding_counts_down_on_ejection(self):
        s = NetworkStats()
        s.record_offer(read_request(SRC, DST), 1)
        s.record_injection(read_request(SRC, DST), 1)
        s.record_ejection(ejected_packet(), 1)
        assert s.packets_outstanding == 0
        assert s.packets_source_queued == 0


class TestMerge:
    def test_merge_sums_counts(self):
        a, b = NetworkStats(), NetworkStats()
        a.cycles = b.cycles = 100
        a.record_injection(read_request(SRC, DST), 1)
        b.record_injection(read_reply(SRC, DST), 4)
        a.record_ejection(ejected_packet(), 1)
        b.record_ejection(ejected_packet(reply=True), 4)
        m = merge_stats([a, b])
        assert m.flits_injected == 5
        assert m.packets_ejected == 2
        assert m.node_injected_flits[SRC] == 5
        assert m.cycles == 100

    def test_merge_latency_sums(self):
        a, b = NetworkStats(), NetworkStats()
        a.record_ejection(ejected_packet(ejected=10), 1)
        b.record_ejection(ejected_packet(ejected=30, reply=True), 4)
        m = merge_stats([a, b])
        assert m.mean_packet_latency() == 20.0

    def test_merge_empty_list(self):
        m = merge_stats([])
        assert m.packets_injected == 0

    def test_merge_sums_offered(self):
        a, b = NetworkStats(), NetworkStats()
        a.record_offer(read_request(SRC, DST), 1)
        b.record_offer(read_reply(SRC, DST), 4)
        b.record_injection(read_reply(SRC, DST), 4)
        m = merge_stats([a, b])
        assert m.packets_offered == 2
        assert m.flits_offered == 5
        assert m.packets_source_queued == 1
