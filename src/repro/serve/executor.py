"""Submission validation and execution.

``validate_job`` normalizes a raw submission into a fully-defaulted spec
(rejecting unknown kinds, designs, benchmarks, patterns and presets with
did-you-mean hints *before* the job enters the queue), and
``execute_job`` runs a validated spec through the exact library entry
points a direct caller would use.  That routing is the bit-identity
guarantee: a served sweep is :func:`repro.experiments.load_latency_curves`,
a served compare is :func:`repro.experiments.compare_designs`, a served
exploration is :func:`repro.dse.explore_preset` — same task construction,
same seed derivation, same SHA-keyed cache entries, so the server's
payloads are field-for-field what the harness would have returned
(explore payloads exclude host-side timing by construction).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..core.builder import design_by_name
from ..obs import log as obs_log
from ..noc.traffic import NAMED_PATTERNS, named_pattern_factory
from ..workloads.profiles import profile

JOB_KINDS = ("sweep", "compare", "explore")

#: Per-kind defaults, matching the underlying library defaults so an
#: unadorned submission equals an unadorned direct call.
SWEEP_DEFAULTS = {"pattern": "uniform", "warmup": 1000, "measure": 3000,
                  "seed": 7}
COMPARE_DEFAULTS = {"warmup": 400, "measure": 800, "seed": 11}


class JobSpecError(ValueError):
    """A submission failed validation (never enqueued)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def _int_field(spec: Dict[str, Any], name: str, minimum: int = 0) -> int:
    value = spec[name]
    _require(isinstance(value, int) and not isinstance(value, bool)
             and value >= minimum,
             f"{name!r} must be an integer >= {minimum}, got {value!r}")
    return value


def _design_name(name: Any) -> str:
    _require(isinstance(name, str), f"design must be a string, got {name!r}")
    try:
        design_by_name(name)
    except KeyError as exc:
        raise JobSpecError(exc.args[0]) from None
    return name


def validate_job(job: Any) -> Dict[str, Any]:
    """Normalize a raw submission into a defaulted, validated spec.

    Raises :class:`JobSpecError` with an actionable message for anything
    the executor would choke on; the returned dict is safe to enqueue and
    canonical enough to log.
    """
    _require(isinstance(job, dict), "job must be a JSON object")
    kind = job.get("kind")
    _require(kind in JOB_KINDS,
             f"unknown job kind {kind!r}; known: {list(JOB_KINDS)}")

    if kind == "sweep":
        spec = {**SWEEP_DEFAULTS, **job}
        spec["design"] = _design_name(spec.get("design"))
        rates = spec.get("rates")
        _require(isinstance(rates, (list, tuple)) and len(rates) > 0,
                 "sweep needs a non-empty 'rates' list")
        _require(all(isinstance(r, (int, float))
                     and not isinstance(r, bool) and r >= 0
                     for r in rates),
                 f"rates must be numbers >= 0, got {rates!r}")
        spec["rates"] = [float(r) for r in rates]
        pattern = spec["pattern"]
        try:
            named_pattern_factory(pattern)
        except KeyError as exc:
            raise JobSpecError(exc.args[0]) from None
        for name in ("warmup", "measure", "seed"):
            spec[name] = _int_field(spec, name)
        return spec

    if kind == "compare":
        spec = {**COMPARE_DEFAULTS, **job}
        designs = spec.get("designs")
        _require(isinstance(designs, (list, tuple)) and len(designs) > 0,
                 "compare needs a non-empty 'designs' list")
        spec["designs"] = [_design_name(n) for n in designs]
        benchmarks = spec.get("benchmarks")
        if benchmarks is not None:
            _require(isinstance(benchmarks, (list, tuple))
                     and len(benchmarks) > 0,
                     "'benchmarks' must be a non-empty list when given")
            for abbr in benchmarks:
                try:
                    profile(abbr)
                except KeyError as exc:
                    raise JobSpecError(str(exc.args[0])) from None
            spec["benchmarks"] = list(benchmarks)
        for name in ("warmup", "measure", "seed"):
            spec[name] = _int_field(spec, name)
        return spec

    # kind == "explore"
    spec = dict(job)
    from ..dse import PRESETS
    from ..core.builder import _did_you_mean
    preset_name = spec.get("preset")
    if preset_name not in PRESETS:
        hint = _did_you_mean(str(preset_name), PRESETS)
        raise JobSpecError(f"unknown preset {preset_name!r};{hint} "
                           f"known: {sorted(PRESETS)}")
    if spec.get("seed") is not None:
        spec["seed"] = _int_field(spec, "seed")
    else:
        spec["seed"] = None
    return spec


def execute_job(spec: Dict[str, Any], *, jobs: Optional[int] = None,
                cache=None, progress: Optional[Callable] = None
                ) -> Dict[str, Any]:
    """Run a validated spec and return its result payload.

    ``jobs``/``cache``/``progress`` forward to
    :func:`repro.parallel.run_tasks` through the library entry point for
    the spec's kind; the payload carries the same ``to_json`` encoding a
    direct caller would serialize.
    """
    kind = spec["kind"]
    # Machine-only records (no message): silent in text mode, one JSON
    # line each under REPRO_LOG_FORMAT=json, correlated by the job_id
    # the server bound around this call.
    obs_log.emit("job_execute", kind=kind)
    if kind == "sweep":
        from ..experiments import load_latency_curves
        (curve,) = load_latency_curves(
            [design_by_name(spec["design"])], spec["rates"],
            named_pattern_factory(spec["pattern"]),
            pattern_name=spec["pattern"], warmup=spec["warmup"],
            measure=spec["measure"], seed=spec["seed"], jobs=jobs,
            cache=cache, progress=progress)
        payload = {"kind": "sweep", "curve": curve.to_json()}
    elif kind == "compare":
        from ..experiments import compare_designs
        profiles = ([profile(a) for a in spec["benchmarks"]]
                    if spec.get("benchmarks") else None)
        comparison = compare_designs(
            [design_by_name(n) for n in spec["designs"]],
            profiles=profiles, warmup=spec["warmup"],
            measure=spec["measure"], seed=spec["seed"], jobs=jobs,
            cache=cache, progress=progress)
        payload = {"kind": "compare", "comparison": comparison.to_json()}
    elif kind == "explore":
        from ..dse import explore_preset
        result = explore_preset(spec["preset"], seed=spec.get("seed"),
                                jobs=jobs, cache=cache, progress=progress)
        payload = {"kind": "explore", "exploration": result.to_json()}
    else:
        raise JobSpecError(f"unknown job kind {kind!r}")
    obs_log.emit("job_executed", kind=kind)
    return payload
