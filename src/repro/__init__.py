"""repro — reproduction of *Throughput-Effective On-Chip Networks for
Manycore Accelerators* (Bakhoda, Kim, Aamodt; MICRO 2010).

The package is organised as one subpackage per subsystem:

* :mod:`repro.noc` — cycle-level NoC substrate (mesh, VC wormhole routers,
  iSLIP allocation, DOR routing, ideal networks, open-loop harness).
* :mod:`repro.core` — the paper's contribution: checkerboard placement,
  half-routers, checkerboard routing, channel slicing, multi-port MC
  routers, and the named design points of the evaluation.
* :mod:`repro.mem` — caches, MSHRs, GDDR3 DRAM with FR-FCFS, MC nodes.
* :mod:`repro.gpu` — SIMT compute cores (warps, coalescing, L1).
* :mod:`repro.workloads` — the Table I benchmark suite as synthetic
  traffic-faithful kernels.
* :mod:`repro.system` — the closed-loop chip, clock domains, metrics and
  the bandwidth limit study.
* :mod:`repro.area` — ORION-calibrated area model and the
  throughput-effectiveness (IPC/mm²) metric.
* :mod:`repro.dse` — design-space exploration: constrained search over
  the design axes, multi-fidelity evaluation, Pareto frontier.

Quickstart::

    from repro.core import THROUGHPUT_EFFECTIVE
    from repro.system import build_chip
    from repro.workloads import profile

    chip = build_chip(profile("RD"), design=THROUGHPUT_EFFECTIVE)
    result = chip.run(warmup=1000, measure=3000)
    print(result.ipc)
"""

__version__ = "1.0.0"

from . import (area, core, dse, experiments, gpu, mem, noc, system,
               telemetry, workloads)

__all__ = ["area", "core", "dse", "experiments", "gpu", "mem", "noc",
           "system", "telemetry", "workloads",
           "__version__"]
