"""Virtual-channel configuration.

The VC space of a network is organized as ``num_classes`` protocol classes
(request / reply — needed for protocol deadlock avoidance when one physical
network carries both) times ``vcs_per_class`` routing VCs.  Checkerboard
routing needs two routing VCs per class (one for XY-routed, one for
YX-routed packets, Section IV-B); plain DOR treats all VCs of a class as
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .packet import RouteGroup, TrafficClass


@dataclass(frozen=True)
class VcConfig:
    """Describes how VC indices map to (protocol class, route group)."""

    vcs_per_class: int = 2
    #: Maps a packet's traffic class to a class index within this network.
    #: A shared network uses {REQUEST: 0, REPLY: 1}; a dedicated network in
    #: the channel-sliced design maps its single class to 0.
    class_map: Tuple[Tuple[TrafficClass, int], ...] = (
        (TrafficClass.REQUEST, 0),
        (TrafficClass.REPLY, 1),
    )
    #: When True, the first half of each class's VCs carries XY packets and
    #: the second half carries YX packets (checkerboard routing).
    route_split: bool = False

    @property
    def num_classes(self) -> int:
        return len(set(idx for _, idx in self.class_map))

    @property
    def num_vcs(self) -> int:
        return self.num_classes * self.vcs_per_class

    def class_index(self, tclass: TrafficClass) -> int:
        for klass, idx in self.class_map:
            if klass == tclass:
                return idx
        raise ValueError(f"this network does not carry {tclass!r}")

    def carries(self, tclass: TrafficClass) -> bool:
        return any(klass == tclass for klass, _ in self.class_map)

    def allowed_vcs(self, tclass: TrafficClass,
                    group: RouteGroup) -> Tuple[int, ...]:
        """VC indices a packet of (class, route group) may occupy."""
        base = self.class_index(tclass) * self.vcs_per_class
        vcs = tuple(range(base, base + self.vcs_per_class))
        if not self.route_split or group is RouteGroup.ANY:
            return vcs
        half = self.vcs_per_class // 2
        if half == 0:
            raise ValueError("route_split needs at least 2 VCs per class")
        if group is RouteGroup.XY:
            return vcs[:half]
        if group is RouteGroup.YX:
            return vcs[half:]
        raise ValueError(f"unknown route group {group!r}")

    # -- read-only introspection (telemetry labels) --------------------------

    def classes_of_vc(self, vc: int) -> Tuple[TrafficClass, ...]:
        """Traffic classes a VC index may carry (several for a shared class
        index, one for dedicated networks)."""
        if not 0 <= vc < self.num_vcs:
            raise ValueError(f"VC {vc} out of range 0..{self.num_vcs - 1}")
        idx = vc // self.vcs_per_class
        return tuple(klass for klass, i in self.class_map if i == idx)

    def route_group_of_vc(self, vc: int) -> RouteGroup:
        """Route group a VC index serves (``ANY`` without route splitting)."""
        if not self.route_split:
            return RouteGroup.ANY
        half = self.vcs_per_class // 2
        return (RouteGroup.XY if vc % self.vcs_per_class < half
                else RouteGroup.YX)

    def describe_vc(self, vc: int) -> str:
        """Human-readable VC label, e.g. ``"REQUEST/xy"`` — used by the
        telemetry sampler's per-VC occupancy breakdown."""
        classes = "+".join(k.name for k in self.classes_of_vc(vc))
        group = self.route_group_of_vc(vc)
        return f"{classes}/{group.value}"


def shared_vc_config(vcs_per_class: int = 1,
                     route_split: bool = False) -> VcConfig:
    """One physical network carrying both protocol classes (baseline)."""
    return VcConfig(vcs_per_class=vcs_per_class,
                    class_map=((TrafficClass.REQUEST, 0),
                               (TrafficClass.REPLY, 1)),
                    route_split=route_split)


def dedicated_vc_config(tclass: TrafficClass, num_vcs: int = 2,
                        route_split: bool = False) -> VcConfig:
    """A network dedicated to one protocol class (channel-sliced design,
    Section IV-C: no extra VCs needed for protocol deadlock)."""
    return VcConfig(vcs_per_class=num_vcs,
                    class_map=((tclass, 0),),
                    route_split=route_split)
