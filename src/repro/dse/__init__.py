"""Design-space exploration: constrained search, multi-fidelity
evaluation, and the Pareto frontier of throughput-effectiveness.

The paper's central artifact is a ranked design space (Figure 2); this
subsystem searches it instead of replaying seven hand-picked points:

* :mod:`repro.dse.space` — declarative :class:`SearchSpace` over
  :class:`~repro.core.builder.NetworkDesign` axes plus a mesh-size
  pseudo-axis, with the named constraint pass rejecting every illegal
  combination before any simulation;
* :mod:`repro.dse.engine` — the :func:`explore` fidelity ladder
  (open-loop screen → successive halving → full-mix confirm), fanned out
  through :mod:`repro.parallel` with deterministic seeds and the on-disk
  cache;
* :mod:`repro.dse.pareto` — exact two-objective (IPC, mm²) and
  three-objective (IPC, mm², W) frontiers with dominated-point
  bookkeeping;
* :mod:`repro.dse.result` — :class:`ExplorationResult` with pinned
  JSON/CSV artifact schemas;
* :mod:`repro.dse.presets` — ``figure2`` (the paper's walk,
  reproduced exactly), ``smoke`` (CI-sized), ``extended`` and ``power``
  (``figure2`` plus the 65/45/32/22 nm technology sweep).

Quickstart::

    from repro.dse import explore, preset

    result = explore(preset("figure2"), jobs=4, cache=True)
    print(result.ranking[0])          # "Throughput-Effective"
    result.write_artifacts("results/figure2")
"""

from .engine import (SEED_POLICIES, ExplorationSpec, FidelityLadder,
                     StageReport, explore, explore_preset)
from .pareto import (ParetoPoint, ParetoPoint3, ParetoResult, dominates,
                     dominates3, pareto_frontier, pareto_frontier3)
from .presets import (FIGURE2_DESIGNS, FULL_MIX, PRESETS, ROUND_MIX,
                      extended, figure2, power, preset, smoke)
from .result import (CSV_COLUMNS, NODE_CSV_COLUMNS, READABLE_SCHEMAS,
                     SCHEMA_VERSION, CandidateResult, ExplorationResult,
                     StageOutcome)
from .space import (MESH_AXIS, Axis, Candidate, RejectedPoint, SearchSpace,
                    design_label)

__all__ = [
    "Axis", "Candidate", "CandidateResult", "CSV_COLUMNS",
    "ExplorationResult", "ExplorationSpec", "FidelityLadder",
    "FIGURE2_DESIGNS", "FULL_MIX", "MESH_AXIS", "NODE_CSV_COLUMNS",
    "ParetoPoint", "ParetoPoint3", "ParetoResult", "PRESETS",
    "READABLE_SCHEMAS", "RejectedPoint", "ROUND_MIX", "SCHEMA_VERSION",
    "SearchSpace", "SEED_POLICIES", "StageOutcome", "StageReport",
    "design_label", "dominates", "dominates3", "explore",
    "explore_preset", "extended", "figure2", "pareto_frontier",
    "pareto_frontier3", "power", "preset", "smoke",
]
