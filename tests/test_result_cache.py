"""Correctness tests for the on-disk result cache.

A cache key must cover every result-determining field — seed, warmup,
measure, design, benchmark profile and every ChipConfig field — so a hit is
only ever served for an exactly identical experiment specification.
"""

from dataclasses import replace

import pytest

from repro.core.builder import BASELINE, CP_DOR
from repro.experiments import compare_designs
from repro.parallel import (EXECUTION_COUNTER, ResultCache, SimTask,
                            as_cache, default_cache_dir)
from repro.system.config import paper_config
from repro.workloads.profiles import profile

PROF = profile("AES")
FAST = dict(warmup=20, measure=40)


def executed_by(fn):
    """Run ``fn`` and return how many simulations it actually executed."""
    before = EXECUTION_COUNTER.executed
    result = fn()
    return EXECUTION_COUNTER.executed - before, result


class TestCacheHits:
    def test_second_run_executes_zero_simulations(self, tmp_path):
        run = lambda: compare_designs([BASELINE, CP_DOR], profiles=[PROF],
                                      cache=tmp_path, seed=11, **FAST)
        cold, first = executed_by(run)
        assert cold == 2
        warm, second = executed_by(run)
        assert warm == 0, "second identical run must be fully cached"
        assert first.to_json() == second.to_json()

    def test_cached_equals_uncached(self, tmp_path):
        cached = compare_designs([BASELINE], profiles=[PROF],
                                 cache=tmp_path, seed=11, **FAST)
        recached = compare_designs([BASELINE], profiles=[PROF],
                                   cache=tmp_path, seed=11, **FAST)
        plain = compare_designs([BASELINE], profiles=[PROF], seed=11, **FAST)
        assert cached.to_json() == recached.to_json() == plain.to_json()


class TestCacheMisses:
    @pytest.fixture()
    def warm_cache(self, tmp_path):
        compare_designs([BASELINE], profiles=[PROF], cache=tmp_path,
                        seed=11, **FAST)
        return tmp_path

    def run_missing(self, cache, **overrides):
        kwargs = dict(designs=[BASELINE], profiles=[PROF], cache=cache,
                      seed=11, **FAST)
        kwargs.update(overrides)
        designs = kwargs.pop("designs")
        executed, _ = executed_by(lambda: compare_designs(designs, **kwargs))
        return executed

    def test_seed_misses(self, warm_cache):
        assert self.run_missing(warm_cache, seed=12) == 1

    def test_warmup_misses(self, warm_cache):
        assert self.run_missing(warm_cache, warmup=21) == 1

    def test_measure_misses(self, warm_cache):
        assert self.run_missing(warm_cache, measure=41) == 1

    def test_design_misses(self, warm_cache):
        assert self.run_missing(warm_cache, designs=[CP_DOR]) == 1

    def test_design_field_misses(self, warm_cache):
        tweaked = replace(BASELINE, name="TB-DOR", vc_buffer_depth=4)
        assert self.run_missing(warm_cache, designs=[tweaked]) == 1

    def test_chip_config_field_misses(self, warm_cache):
        config = paper_config()
        tweaked = replace(config,
                          clocks=replace(config.clocks, core_mhz=1300.0))
        assert self.run_missing(warm_cache, config=tweaked) == 1

    def test_explicit_paper_config_hits(self, warm_cache):
        """config=None and config=paper_config() are the same experiment."""
        assert self.run_missing(warm_cache, config=paper_config()) == 0


class TestResultCacheStore:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultCache(tmp_path)
        key = SimTask(kind="closed", label="x", seed=1, warmup=20,
                      measure=40, design=BASELINE,
                      profile=PROF).cache_key()
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None

    def test_put_get_clear(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("abc", {"result": {"x": 1}})
        assert store.get("abc") == {"result": {"x": 1}}
        assert len(store) == 1
        assert store.clear() == 1
        assert store.get("abc") is None
        assert len(store) == 0

    def test_as_cache_coercions(self, tmp_path, monkeypatch):
        assert as_cache(None) is None
        assert as_cache(False) is None
        assert as_cache(tmp_path).root == tmp_path
        store = ResultCache(tmp_path)
        assert as_cache(store) is store
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert as_cache(True).root == tmp_path / "env"
        assert default_cache_dir() == tmp_path / "env"


class TestPayloadSchemaVersioning:
    """The cache key embeds the result-payload schema, so entries written
    by older code (older payload layouts) are never served — they simply
    miss and the task re-executes under the new key."""

    @staticmethod
    def task():
        return SimTask(kind="closed", label="x", seed=1, warmup=20,
                       measure=40, design=BASELINE, profile=PROF)

    @staticmethod
    def spec(schema):
        from repro.system.config import paper_config
        return {"schema": schema, "kind": "closed", "seed": 1,
                "warmup": 20, "measure": 40, "design": BASELINE,
                "profile": PROF, "config": paper_config(),
                "pattern": None, "rate": None}

    def test_current_schema_is_pinned(self):
        # 3 = per-component activity counters for the power model; bump
        # this spec (and the constant in SimTask.cache_key) together.
        from repro.parallel import stable_key
        assert self.task().cache_key() == stable_key(self.spec(3))

    def test_stale_schema_entry_reexecutes(self, tmp_path):
        from repro.parallel import run_tasks, stable_key
        task = self.task()
        old_key = stable_key(self.spec(2))     # pre-power payload layout
        assert old_key != task.cache_key()
        store = ResultCache(tmp_path)
        store.put(old_key, {"result": {"stale": True}})
        executed, payloads = executed_by(
            lambda: run_tasks([task], cache=store))
        assert executed == 1, "stale-schema entry must not be served"
        assert payloads[0]["result"].get("stale") is None
        assert store.get(task.cache_key()) is not None
