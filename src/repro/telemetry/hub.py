"""Telemetry hub: configuration, wiring and artifact output.

:class:`TelemetrySpec` is the frozen, picklable description of what to
collect (carried by CLI flags and :class:`repro.parallel.SimTask`);
:class:`TelemetryHub` is the live object that attaches the tracer /
sampler / profiler to a network system or a closed-loop chip and writes
the artifact files:

* ``trace.jsonl``   — one row per retained packet trace,
* ``samples.jsonl`` — one row per time-series sample,
* ``samples.csv``   — scalar columns of the same rows,
* ``heatmaps.txt``  — rendered link/node heatmaps,
* ``summary.json``  — aggregates (latency decomposition, per-route stats,
  host profile, node rates, link utilization) consumed by ``repro report``.

The zero-perturbation contract: every hook is read-only, the simulation's
RNG streams are untouched, and with no hub attached each event site costs
one attribute test — golden tests pin bit-identical results either way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .export import (SAMPLES_SCHEMA, SUMMARY_SCHEMA, TRACE_SCHEMA,
                     coord_key, link_key, write_csv, write_jsonl)
from .heatmap import render_link_heatmap, render_node_heatmap
from .profiler import HostProfiler
from .sampler import TimeSeriesSampler
from .trace import PacketTracer


@dataclass(frozen=True)
class TelemetrySpec:
    """What to collect.  Frozen and picklable so it can ride on a
    :class:`repro.parallel.SimTask` into worker processes; excluded from
    cache keys because telemetry never changes results."""

    trace: bool = False
    sample_interval: int = 0
    out_dir: Optional[str] = None
    max_traces: int = 100_000

    @property
    def enabled(self) -> bool:
        return self.trace or self.sample_interval > 0 \
            or self.out_dir is not None


class TelemetryHub:
    """Owns the tracer, sampler and profiler for one simulation."""

    def __init__(self, spec: TelemetrySpec) -> None:
        self.spec = spec
        self.tracer: Optional[PacketTracer] = (
            PacketTracer(spec.max_traces) if spec.trace else None)
        self.sampler: Optional[TimeSeriesSampler] = (
            TimeSeriesSampler(spec.sample_interval)
            if spec.sample_interval > 0 else None)
        self.profiler = HostProfiler()
        self._networks: List[object] = []
        self._chip = None

    # -- wiring --------------------------------------------------------------

    def attach_network(self, network) -> None:
        """Attach to a :class:`MeshNetwork` or a sliced
        :class:`NetworkSystem` (every physical slice is instrumented)."""
        for net in getattr(network, "networks", [network]):
            if not hasattr(net, "routers"):
                continue                    # ideal networks: nothing to hook
            self._networks.append(net)
            if self.tracer is not None:
                net.enable_tracer(self.tracer)
            if self.sampler is not None:
                self.sampler.attach_network(net)

    def attach_chip(self, chip) -> None:
        """Attach to a closed-loop accelerator: hooks its network(s), the
        memory-system sampler columns, and the per-cycle telemetry call."""
        self.attach_network(chip.network)
        self._chip = chip
        if self.sampler is not None:
            self.sampler.attach_chip(chip)
        chip.telemetry = self

    # -- per-cycle hook (called from instrumented step loops) ----------------

    def on_cycle(self, cycle: int) -> None:
        self.profiler.cycles += 1
        sampler = self.sampler
        if sampler is not None and cycle % sampler.interval == 0:
            sampler.sample(cycle)

    # -- reporting -----------------------------------------------------------

    def _network_summaries(self) -> List[dict]:
        summaries = []
        for net in self._networks:
            cycles = net.stats.cycles
            node_injection = {
                coord_key(coord): flits / cycles
                for coord, flits in sorted(
                    net.stats.node_injected_flits.items())
            } if cycles else {}
            node_ejection = {
                coord_key(coord): flits / cycles
                for coord, flits in sorted(
                    net.stats.node_ejected_flits.items())
            } if cycles else {}
            summaries.append({
                "name": net.name,
                "cycles": cycles,
                "mesh": [net.mesh.cols, net.mesh.rows],
                # The always-on power-model counters (DESIGN.md §17), so
                # `repro report` can show activity — and a PowerReport is
                # derivable from any archived summary.json.
                "activity": {
                    "crossbar_traversals": net.stats.crossbar_traversals,
                    "buffer_reads": net.stats.buffer_reads,
                    "buffer_writes": net.stats.buffer_writes,
                    "link_flit_hops": net.stats.link_flit_hops,
                    "flits_injected": net.stats.flits_injected,
                    "flits_ejected": net.stats.flits_ejected,
                },
                "latency": net.stats.latency_summary(),
                "network_latency":
                    net.stats.latency_summary(network_only=True),
                "node_injection_rate": node_injection,
                "node_ejection_rate": node_ejection,
                "link_utilization": {
                    link_key(src, dst): util
                    for (src, dst), util in sorted(
                        net.channel_utilization().items())
                },
            })
        return summaries

    def summary(self) -> dict:
        """The ``summary.json`` payload."""
        data = {
            "schema": SUMMARY_SCHEMA,
            "host": self.profiler.summary(),
            "networks": self._network_summaries(),
        }
        if self.tracer is not None:
            data["trace"] = self.tracer.summary()
        if self.sampler is not None:
            data["samples"] = {
                "interval": self.sampler.interval,
                "rows": len(self.sampler.rows),
            }
        return data

    def heatmaps(self) -> str:
        """Render link-utilization and node injection/ejection heatmaps
        for every attached physical network."""
        blocks = []
        for summary in self._network_summaries():
            blocks.append(render_summary_heatmaps(summary))
        return "\n\n".join(blocks)

    # -- artifacts -----------------------------------------------------------

    def write_artifacts(self, out_dir: Union[str, Path, None] = None
                        ) -> Dict[str, Path]:
        """Write all artifact files into ``out_dir`` (default: the spec's
        ``out_dir``); returns {artifact name: path}."""
        target = out_dir if out_dir is not None else self.spec.out_dir
        if target is None:
            raise ValueError("no telemetry output directory configured")
        root = Path(target)
        root.mkdir(parents=True, exist_ok=True)
        written: Dict[str, Path] = {}

        if self.tracer is not None:
            path = root / "trace.jsonl"
            write_jsonl(path, {"schema": TRACE_SCHEMA,
                               "retained": len(self.tracer.completed),
                               "dropped": self.tracer.dropped_traces},
                        (trace.to_json()
                         for trace in self.tracer.completed))
            written["trace"] = path

        if self.sampler is not None:
            rows = self.sampler.rows
            path = root / "samples.jsonl"
            write_jsonl(path, {"schema": SAMPLES_SCHEMA,
                               "interval": self.sampler.interval,
                               "rows": len(rows)}, rows)
            written["samples"] = path
            csv_path = root / "samples.csv"
            write_csv(csv_path, rows)
            written["samples_csv"] = csv_path

        heat_path = root / "heatmaps.txt"
        heat_path.write_text(self.heatmaps() + "\n", encoding="utf-8")
        written["heatmaps"] = heat_path

        summary_path = root / "summary.json"
        with open(summary_path, "w", encoding="utf-8") as fh:
            json.dump(self.summary(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        written["summary"] = summary_path
        return written


def render_summary_heatmaps(network_summary: dict) -> str:
    """Render the heatmap block for one network's summary dict (shared by
    the live hub and the offline ``repro report`` command)."""
    from .export import parse_coord, parse_link
    cols, rows = network_summary["mesh"]
    name = network_summary["name"]
    link_util = {parse_link(key): value
                 for key, value in network_summary["link_utilization"]
                 .items()}
    injection = {parse_coord(key): value
                 for key, value in network_summary["node_injection_rate"]
                 .items()}
    ejection = {parse_coord(key): value
                for key, value in network_summary["node_ejection_rate"]
                .items()}
    return "\n\n".join([
        render_link_heatmap(cols, rows, link_util,
                            f"link utilization [{name}] (flits/cycle)"),
        render_node_heatmap(cols, rows, injection,
                            f"node injection rate [{name}] (flits/cycle)"),
        render_node_heatmap(cols, rows, ejection,
                            f"node ejection rate [{name}] (flits/cycle)"),
    ])
