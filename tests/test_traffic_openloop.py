"""Tests for traffic patterns and the open-loop harness."""

import random

import pytest

from repro.core import BASELINE, build, open_loop_variant
from repro.noc.openloop import OpenLoopRunner
from repro.noc.topology import Coord
from repro.noc.traffic import (BernoulliInjector, HotspotManyToFew,
                               UniformManyToFew, UniformRandom)

MCS = [Coord(1, 0), Coord(2, 0), Coord(3, 0), Coord(4, 0)]


class TestPatterns:
    def test_uniform_targets_only_mcs(self):
        pat = UniformManyToFew(MCS)
        rng = random.Random(0)
        for _ in range(200):
            assert pat.pick(Coord(0, 0), rng) in MCS

    def test_uniform_roughly_even(self):
        pat = UniformManyToFew(MCS)
        rng = random.Random(0)
        counts = {m: 0 for m in MCS}
        for _ in range(4000):
            counts[pat.pick(Coord(0, 0), rng)] += 1
        for c in counts.values():
            assert 800 < c < 1200

    def test_uniform_requires_mcs(self):
        with pytest.raises(ValueError):
            UniformManyToFew([])

    @pytest.mark.parametrize("n_mcs", (1, 2, 3, 4, 5, 7, 8))
    def test_pick_matches_random_choice(self, n_mcs):
        """Draw-identity contract of the inlined rejection sampler: for
        any MC count (power of two or not), ``pick`` consumes exactly the
        bits ``Random.choice`` would and returns the same node — so perf
        work on the injection path can never shift an RNG stream."""
        mcs = [Coord(x, 0) for x in range(n_mcs)]
        pat = UniformManyToFew(mcs)
        fast, oracle = random.Random(42), random.Random(42)
        for _ in range(500):
            assert pat.pick(Coord(0, 1), fast) == oracle.choice(mcs)
        assert fast.getstate() == oracle.getstate()

    def test_pick_falls_back_for_rng_subclasses(self):
        """Test doubles (Random subclasses) keep the ``choice`` protocol."""

        class Scripted(random.Random):
            def choice(self, seq):
                return seq[-1]

        pat = UniformManyToFew(MCS)
        assert pat.pick(Coord(0, 1), Scripted()) == MCS[-1]

    def test_hotspot_fraction(self):
        pat = HotspotManyToFew(MCS, hotspot_fraction=0.2)
        rng = random.Random(0)
        hot = sum(pat.pick(Coord(0, 0), rng) == MCS[0]
                  for _ in range(10000))
        assert 0.17 < hot / 10000 < 0.23

    def test_hotspot_must_be_an_mc(self):
        with pytest.raises(ValueError):
            HotspotManyToFew(MCS, hotspot=Coord(0, 0))

    def test_hotspot_fraction_validated(self):
        with pytest.raises(ValueError):
            HotspotManyToFew(MCS, hotspot_fraction=1.5)

    def test_uniform_random_excludes_source(self):
        pat = UniformRandom([Coord(0, 0), Coord(1, 0), Coord(2, 0)])
        rng = random.Random(0)
        for _ in range(100):
            assert pat.pick(Coord(1, 0), rng) != Coord(1, 0)

    def test_bernoulli_rate(self):
        inj = BernoulliInjector(0.3, random.Random(0))
        fires = sum(inj.fires() for _ in range(10000))
        assert 0.27 < fires / 10000 < 0.33

    def test_bernoulli_rejects_negative(self):
        with pytest.raises(ValueError):
            BernoulliInjector(-0.1, random.Random(0))


class TestOpenLoopRunner:
    def _runner(self, rate):
        system = build(open_loop_variant(BASELINE))
        return OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                              UniformManyToFew(system.mc_nodes), rate)

    def test_low_load_not_saturated(self):
        point = self._runner(0.01).run(warmup=200, measure=500)
        assert not point.saturated
        assert point.packets_measured > 0
        assert point.mean_latency < 100

    def test_reply_traffic_generated(self):
        point = self._runner(0.02).run(warmup=200, measure=500)
        assert point.mean_reply_latency > 0
        # Replies are 4x larger, so they dominate accepted flits.
        assert point.accepted_flits_per_cycle > 0

    def test_latency_increases_with_load(self):
        low = self._runner(0.01).run(warmup=200, measure=600)
        high = self._runner(0.06).run(warmup=200, measure=600)
        assert high.mean_latency > low.mean_latency

    def test_heavy_load_saturates(self):
        point = self._runner(0.5).run(warmup=300, measure=600)
        assert point.saturated
