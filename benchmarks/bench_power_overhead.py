"""Activity-counter overhead: the power model's counting must be free.

The four always-on :class:`repro.noc.stats.NetworkStats` activity
counters (``crossbar_traversals`` / ``buffer_reads`` / ``buffer_writes``
/ ``link_flit_hops`` — DESIGN.md §17) are incremented on the hottest
paths of all three cycle cores, so their cost is bounded here in the
regime where it matters most: the saturated open-loop mesh on the
batched SoA core, the fastest stepper and therefore the worst case for
*relative* overhead.

Enforcing the ``< 2%`` contract follows the same reasoning as
``bench_obs_overhead.py``: the per-event cost is a handful of integer
attribute adds (~50–100 ns worth per *batch*, nanoseconds per flit)
while end-to-end run time on a shared CI box jitters by milliseconds,
so differencing two run-time distributions cannot resolve it — and the
counters have no off switch to difference against anyway (always-on is
the contract).  Instead the enforced number is deterministic and
deliberately an *upper bound*: the benchmark times a bare
``stats.<counter> += 1`` in a tight loop, prices every unit of every
counter as one such increment (the shipped code batches —
``+= moved`` / ``+= n`` per router or channel per cycle — so it
executes far fewer), and divides by the measured saturated run time.
If even the overcounted bound sits under the floor, the real cost does
too.

The saturated run is re-timed over ``REPRO_BENCH_REPS`` rounds (default
3) with up to ``REPRO_BENCH_EXTRA_REPS`` retry rounds (default 4) while
the floor is unmet — per-round minima only sharpen with more samples,
so retries converge to the clean-machine number instead of flaking on a
noise burst.  Writes ``benchmarks/results/BENCH_power.json``.
"""

from __future__ import annotations

import json
import os
import time

from common import RESULTS_DIR, SEED, once, report
from repro.core.builder import build, design_by_name, open_loop_variant
from repro.noc.openloop import OpenLoopRunner
from repro.noc.stats import NetworkStats
from repro.noc.topology import Mesh
from repro.noc.traffic import UniformManyToFew

BENCH_SCHEMA = 1
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))
EXTRA_REPS = max(0, int(os.environ.get("REPRO_BENCH_EXTRA_REPS", "4")))
FLOOR_PCT = float(os.environ.get("REPRO_BENCH_POWER_FLOOR_PCT", "2.0"))
COST_LOOPS = 200_000

#: The saturated open-loop workload from ``bench_core_throughput`` — the
#: batched core's home regime, where per-cycle simulation work is at its
#: cheapest relative to the flit traffic being counted.
DESIGN = "TB-DOR"
MESH = (20, 20)
WARMUP, MEASURE = 300, 800
SATURATED_RATE = 0.30

COUNTERS = ("crossbar_traversals", "buffer_reads", "buffer_writes",
            "link_flit_hops")


def _increment_cost_ns() -> float:
    """Nanoseconds for one bare ``stats.<counter> += 1``.

    Min of 3 rounds over a real :class:`NetworkStats` instance, so a GC
    pause or scheduler preemption cannot inflate the enforced number.
    """
    stats = NetworkStats()
    rounds = []
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(COST_LOOPS):
            stats.crossbar_traversals += 1
        rounds.append((time.perf_counter() - start) / COST_LOOPS * 1e9)
    return min(rounds)


def _saturated_run():
    """One saturated open-loop run on the batched core.

    Returns (wall seconds, total counter units incremented, payload).
    """
    system = build(open_loop_variant(design_by_name(DESIGN)),
                   Mesh(*MESH), num_mcs=8, seed=SEED)
    system.use_batched_stepper()
    runner = OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                            UniformManyToFew(system.mc_nodes),
                            SATURATED_RATE, seed=SEED)
    start = time.perf_counter()
    point = runner.run(warmup=WARMUP, measure=MEASURE)
    seconds = time.perf_counter() - start
    units = sum(getattr(net.stats, name) for net in system.networks
                for name in COUNTERS)
    return seconds, units, point.to_json()


def _experiment():
    cost_ns = _increment_cost_ns()

    best_seconds = None
    units = None
    golden = None
    reps = 0

    def one_round():
        nonlocal best_seconds, units, golden, reps
        seconds, round_units, payload = _saturated_run()
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
        if golden is None:
            golden, units = payload, round_units
        elif payload != golden or round_units != units:
            raise AssertionError(
                "saturated run is not deterministic across repetitions")
        reps += 1

    def overhead_pct():
        return units * cost_ns / (best_seconds * 1e9) * 100.0

    for _ in range(REPS):
        one_round()
    for _ in range(EXTRA_REPS):
        if overhead_pct() < FLOOR_PCT:
            break
        one_round()

    pct = round(overhead_pct(), 3)
    payload = {
        "schema": BENCH_SCHEMA,
        "workload": {"design": DESIGN, "mesh": list(MESH),
                     "rate": SATURATED_RATE, "warmup": WARMUP,
                     "measure": MEASURE, "stepper": "batched"},
        "reps": reps,
        "floor_pct": FLOOR_PCT,
        "increment_cost_ns": round(cost_ns, 2),
        "counter_units": units,
        "best_run_seconds": round(best_seconds, 4),
        "overhead_pct_upper_bound": pct,
        "deterministic": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_power.json"
    out.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    if pct >= FLOOR_PCT:
        raise AssertionError(
            f"activity counters price at {units} x {cost_ns:.1f} ns = "
            f"{pct:.2f}% of a {best_seconds:.3f}s saturated run "
            f"(upper bound), over the {FLOOR_PCT}% floor after {reps} "
            "rounds")

    return [
        f"increment cost          {cost_ns:8.1f} ns per bare += 1 "
        "(measured directly, min of 3 rounds)",
        f"counter units           {units:8d} increments priced "
        "(every unit as its own += 1; shipped code batches)",
        f"saturated run (batched) {best_seconds:8.3f} s best of "
        f"{reps} rounds",
        f"counter overhead        {pct:+8.2f} % of saturated throughput "
        f"(upper bound; floor {FLOOR_PCT}%)",
        "(details in results/BENCH_power.json)",
    ]


def test_power_overhead(benchmark):
    report("power_overhead", once(benchmark, _experiment))


if __name__ == "__main__":
    # Plain-script entry for CI (no pytest-benchmark dependency).
    report("power_overhead", _experiment())
