"""Job-server throughput: warm-cache hit latency, machine-readable.

Boots a :class:`repro.serve.ThreadedServer` on a fresh cache, submits a
pinned sweep workload cold (every point simulated), then re-submits it
repeatedly warm — every answer must come from the SHA-keyed result cache
without re-simulation and be bit-identical to the cold payload.  Writes
``benchmarks/results/BENCH_serve.json`` with the warm-hit latency
percentiles (p50/p90/p99 milliseconds, round-trip over a real socket)
and the warm submission throughput, so future PRs can compare the
serving overhead against this baseline.

Environment knobs (see ``common``): ``REPRO_BENCH_WARMUP`` /
``REPRO_BENCH_MEASURE`` shape the simulated window, ``REPRO_JOBS`` the
per-job ``run_tasks`` fan-out, ``REPRO_BENCH_SERVE_REPEATS`` the warm
sample count (default 50).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from common import JOBS, MEASURE, RESULTS_DIR, WARMUP, once, report
from repro.serve import ServeClient, ServerConfig, ThreadedServer

BENCH_SCHEMA = 1
REPEATS = int(os.environ.get("REPRO_BENCH_SERVE_REPEATS", "50"))

SWEEP_JOB = {"kind": "sweep", "design": "CP-DOR",
             "rates": [0.005, 0.02, 0.04], "warmup": WARMUP,
             "measure": MEASURE}


def _percentile(sorted_values, p):
    rank = max(1, -(-len(sorted_values) * p // 100))
    return sorted_values[rank - 1]


def _experiment():
    with tempfile.TemporaryDirectory(prefix="serve-bench-cache-") as cache:
        config = ServerConfig(port=0, cache=cache, job_jobs=JOBS)
        with ThreadedServer(config) as server:
            host, port = server.address
            with ServeClient(host=host, port=port,
                             client_id="bench") as client:
                start = time.perf_counter()
                cold = client.submit(SWEEP_JOB)
                cold_seconds = time.perf_counter() - start

                latencies = []
                identical = 0
                executed_warm = 0
                for _ in range(REPEATS):
                    events = []
                    start = time.perf_counter()
                    warm = client.submit(SWEEP_JOB, events=events)
                    latencies.append(time.perf_counter() - start)
                    identical += warm == cold
                    executed_warm += events[-1]["stats"]["executed"]
                stats = client.stats()

    if identical != REPEATS:
        raise AssertionError(f"only {identical}/{REPEATS} warm results "
                             "were bit-identical to the cold payload")
    if executed_warm:
        raise AssertionError(f"warm submissions re-simulated "
                             f"{executed_warm} tasks; expected 0")

    latencies.sort()
    warm_ms = {f"p{p}": round(_percentile(latencies, p) * 1e3, 3)
               for p in (50, 90, 99)}
    warm_total = sum(latencies)
    payload = {
        "schema": BENCH_SCHEMA,
        "job": SWEEP_JOB,
        "jobs": JOBS,
        "repeats": REPEATS,
        "cold_seconds": round(cold_seconds, 3),
        "warm_hit_ms": warm_ms,
        "warm_submissions_per_second": (round(REPEATS / warm_total, 1)
                                        if warm_total > 0 else 0.0),
        "counters": stats["counters"],
        "cache": stats["cache"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    return [
        f"cold submission        {cold_seconds:8.2f} s "
        f"({len(SWEEP_JOB['rates'])} sweep points simulated)",
        f"warm hit latency       p50 {warm_ms['p50']:7.2f} ms   "
        f"p90 {warm_ms['p90']:7.2f} ms   p99 {warm_ms['p99']:7.2f} ms",
        f"warm throughput        "
        f"{payload['warm_submissions_per_second']:8.1f} submissions/s "
        f"({REPEATS} repeats, all bit-identical, 0 re-simulated)",
        "(percentiles in results/BENCH_serve.json)",
    ]


def test_serve_throughput(benchmark):
    report("serve_throughput", once(benchmark, _experiment))
