"""SIMT compute core (Figure 4).

Execution-driven warp model: 8-wide SIMD pipelines execute 32-thread warps
over four core clocks; a dispatch queue of up to 32 warps is scheduled
round-robin; global memory instructions pass through coalescing, the L1
data cache (write-back, write-allocate) and a 64-entry MSHR file, producing
8 B read requests and 64 B write(-back) requests into the request network.
Read replies fill the L1 and wake blocked warps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from ..mem.cache import CacheConfig, SetAssociativeCache
from ..mem.mshr import MshrFile
from ..noc.packet import Packet, read_request, write_request
from ..noc.topology import Coord
from .instruction import InstrKind, WarpInstruction
from .warp import RoundRobinWarpScheduler, Warp


@dataclass(frozen=True)
class CoreConfig:
    """Per-core machine parameters (Table II)."""

    warp_size: int = 32
    simd_width: int = 8
    max_warps: int = 32
    mshr_entries: int = 64
    l1_size_bytes: int = 16 * 1024
    l1_line_bytes: int = 64
    l1_associativity: int = 8
    alu_latency: int = 16            # core cycles before the warp re-issues
    shared_latency: int = 24
    l1_hit_latency: int = 12
    store_latency: int = 4

    @property
    def issue_interval(self) -> int:
        """Core cycles one warp instruction occupies the issue stage."""
        return self.warp_size // self.simd_width


@dataclass
class MemoryToken:
    """Request payload: everything needed to service and return a miss."""

    core: Coord
    line_addr: int       # global line address (L1 fill key)
    local_addr: int      # channel-local address (MC/DRAM key)


class SimtCore:
    """One compute node.  ``step`` runs at the core clock; replies arrive
    via ``on_reply`` from the reply network's ejection handler."""

    def __init__(self, coord: Coord, config: CoreConfig, program,
                 route_request: Callable[[int], Tuple[Coord, int]],
                 num_warps: Optional[int] = None) -> None:
        self.coord = coord
        self.config = config
        self.program = program
        self.route_request = route_request
        n = num_warps if num_warps is not None else config.max_warps
        if not 1 <= n <= config.max_warps:
            raise ValueError(f"warp count {n} outside 1..{config.max_warps}")
        self.warps = [Warp(i) for i in range(n)]
        self.scheduler = RoundRobinWarpScheduler(self.warps)
        self.l1 = SetAssociativeCache(CacheConfig(
            config.l1_size_bytes, config.l1_line_bytes,
            config.l1_associativity))
        self.mshrs = MshrFile(config.mshr_entries)
        #: Request packets waiting to enter the NoC (drained by the chip
        #: model at the interconnect clock; bounded in effect by the MSHRs).
        self.outbound: Deque[Packet] = deque()
        self._stalled: List[Optional[WarpInstruction]] = [None] * n
        self._issue_busy_until = 0
        #: Earliest core cycle the next ``step`` can do anything.  The
        #: chip's event-driven loop skips the call entirely before then; a
        #: skipped step is provably a no-op (every early return above the
        #: wake assignment mutates nothing).  Reset to 0 by ``on_reply``.
        self.wake = 0
        # Statistics.
        self.retired_scalar = 0
        self.issued_instructions = 0
        self.structural_stalls = 0
        self.global_loads = 0
        self.global_stores = 0

    # -- execution -----------------------------------------------------------

    def step(self, cycle: int) -> None:
        if self._issue_busy_until > cycle:
            self.wake = self._issue_busy_until
            return
        warp, wake = self.scheduler.pick_or_wake(cycle)
        if warp is None:
            self.wake = wake
            return
        instr = self._stalled[warp.warp_id]
        if instr is None:
            instr = self.program.next_instruction(self.coord, warp.warp_id)
            if instr is None:
                warp.finished = True
                self.wake = cycle + 1
                return
        if instr.is_global and not self._issue_global(warp, instr, cycle):
            # Structural stall: retry the same instruction next time.
            self._stalled[warp.warp_id] = instr
            self.structural_stalls += 1
            warp.ready_at = cycle + 1
            self.wake = cycle + 1
            return
        self._stalled[warp.warp_id] = None
        if instr.kind is InstrKind.ALU:
            warp.ready_at = cycle + self.config.alu_latency
        elif instr.kind is InstrKind.SHARED:
            warp.ready_at = cycle + self.config.shared_latency
        self._retire(warp, instr)
        self._issue_busy_until = cycle + self.config.issue_interval
        self.wake = self._issue_busy_until

    def _issue_global(self, warp: Warp, instr: WarpInstruction,
                      cycle: int) -> bool:
        is_store = instr.kind is InstrKind.GLOBAL_STORE
        lines = list(dict.fromkeys(instr.line_addrs))   # dedup, keep order
        misses = [line for line in lines if not self.l1.contains(line)]
        new_entries = sum(1 for line in misses
                          if self.mshrs.lookup(line) is None)
        if len(self.mshrs) + new_entries > self.mshrs.num_entries:
            return False
        for line in misses:
            if not self.mshrs.can_accept(line) and (
                    self.mshrs.lookup(line) is not None):
                return False                       # merge limit reached
        # Resources are available: commit all effects.
        for line in lines:
            if line not in misses:
                self.l1.access(line, is_write=is_store)
        blocking = 0
        for line in misses:
            self.l1.misses += 1      # probe-without-allocate: count it here
            entry = self.mshrs.allocate(
                line, (warp if not is_store else None, is_store))
            if not entry.issued:
                entry.issued = True
                self._send_read_request(line, cycle)
            if not is_store:
                blocking += 1
        if is_store:
            self.global_stores += 1
            warp.ready_at = cycle + self.config.store_latency
        else:
            self.global_loads += 1
            warp.pending_loads += blocking
            if blocking == 0:
                warp.ready_at = cycle + self.config.l1_hit_latency
        return True

    def _retire(self, warp: Warp, instr: WarpInstruction) -> None:
        warp.retired += instr.active_threads
        self.retired_scalar += instr.active_threads
        self.issued_instructions += 1

    # -- memory-system plumbing ----------------------------------------------

    def _send_read_request(self, line_addr: int, cycle: int) -> None:
        mc, local = self.route_request(line_addr)
        token = MemoryToken(self.coord, line_addr, local)
        self.outbound.append(read_request(self.coord, mc, created=cycle,
                                          payload=token))

    def _send_write_request(self, line_addr: int, cycle: int) -> None:
        mc, local = self.route_request(line_addr)
        token = MemoryToken(self.coord, line_addr, local)
        self.outbound.append(write_request(self.coord, mc, created=cycle,
                                           payload=token))

    def on_reply(self, packet: Packet, cycle: int) -> None:
        """Reply-network ejection handler: an L1 fill returned."""
        token = packet.payload
        if not isinstance(token, MemoryToken):
            raise TypeError("reply payload is not a MemoryToken")
        waiters = self.mshrs.complete(token.line_addr)
        dirty = any(is_store for _w, is_store in waiters)
        result = self.l1.fill(token.line_addr, dirty=dirty)
        if result.writeback is not None:
            self._send_write_request(result.writeback, cycle)
        for warp, is_store in waiters:
            if is_store or warp is None:
                continue
            warp.pending_loads -= 1
            if warp.pending_loads < 0:
                raise RuntimeError("pending-load underflow")
        # A warp may have unblocked: step again at the next opportunity.
        self.wake = 0

    def flush_l1(self, cycle: int) -> int:
        """Software-managed coherence (Section II): flush every dirty L1
        line to the L2 as a 64 B write request.  Returns the number of
        lines written back."""
        lines = self.l1.drain_dirty_lines()
        for line_addr in lines:
            self._send_write_request(line_addr, cycle)
        return len(lines)

    # -- status ----------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return (self.scheduler.all_finished() and not self.outbound
                and len(self.mshrs) == 0)

    def ipc(self, core_cycles: int) -> float:
        """Scalar instructions per core clock."""
        return self.retired_scalar / core_cycles if core_cycles else 0.0

    def warp_fairness(self) -> float:
        """Min/max ratio of per-warp retired instructions — the paper notes
        (Section V-B) that global fairness effects can slow a few warps and
        cost overall performance (WP's 6 % loss under CP)."""
        retired = [w.retired for w in self.warps]
        top = max(retired)
        return min(retired) / top if top else 1.0
