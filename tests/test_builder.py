"""Tests for design points, placement and network assembly."""

import dataclasses

import pytest

from repro.core.builder import (BASELINE, CP_CR, CP_DOR, DOUBLE_BW,
                                DOUBLE_CP_CR, DOUBLE_CP_CR_2P,
                                DOUBLE_CP_CR_DEDICATED, NAMED_DESIGNS,
                                THROUGHPUT_EFFECTIVE, NetworkDesign,
                                build, design_by_name, open_loop_variant)
from repro.core.placement import (DEFAULT_CHECKERBOARD_6X6,
                                  checkerboard_placement, compute_nodes,
                                  random_checkerboard_placements,
                                  top_bottom_placement,
                                  validate_checkerboard_placement)
from repro.noc.packet import TrafficClass, read_reply, read_request
from repro.noc.topology import Coord, Mesh

MESH = Mesh(6, 6)


class TestPlacement:
    def test_top_bottom_rows(self):
        mcs = top_bottom_placement(MESH, 8)
        assert len(mcs) == 8
        assert sum(1 for m in mcs if m.y == 0) == 4
        assert sum(1 for m in mcs if m.y == 5) == 4

    def test_checkerboard_default_is_valid(self):
        mcs = checkerboard_placement(MESH, 8)
        assert mcs == list(DEFAULT_CHECKERBOARD_6X6)
        validate_checkerboard_placement(MESH, mcs)

    def test_checkerboard_spreads_edges(self):
        mcs = checkerboard_placement(MESH, 8)
        assert any(m.y == 0 for m in mcs)
        assert any(m.y == 5 for m in mcs)
        assert any(m.x == 0 for m in mcs)
        assert any(m.x == 5 for m in mcs)

    def test_validation_rejects_full_router_tiles(self):
        with pytest.raises(ValueError):
            validate_checkerboard_placement(MESH, [Coord(0, 0)])

    def test_validation_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validate_checkerboard_placement(
                MESH, [Coord(1, 0), Coord(1, 0)])

    def test_validation_rejects_outside(self):
        with pytest.raises(ValueError):
            validate_checkerboard_placement(MESH, [Coord(7, 0)])

    def test_compute_nodes_complement(self):
        mcs = checkerboard_placement(MESH, 8)
        cores = compute_nodes(MESH, mcs)
        assert len(cores) == 28
        assert set(cores).isdisjoint(mcs)

    def test_random_placements_valid_and_distinct(self):
        placements = list(random_checkerboard_placements(MESH, 8, 5, seed=1))
        assert len(placements) == 5
        seen = set()
        for p in placements:
            validate_checkerboard_placement(MESH, p)
            seen.add(tuple(p))
        assert len(seen) == 5

    def test_generic_mesh_placement(self):
        mesh = Mesh(8, 8)
        mcs = checkerboard_placement(mesh, 8)
        validate_checkerboard_placement(mesh, mcs)


class TestDesignValidation:
    def test_cr_requires_half_routers(self):
        with pytest.raises(ValueError):
            dataclasses.replace(BASELINE, routing="cr",
                                vcs_per_class=2).validate()

    def test_cr_requires_two_vcs(self):
        with pytest.raises(ValueError):
            dataclasses.replace(CP_CR, vcs_per_class=1).validate()

    def test_half_routers_require_checkerboard_placement(self):
        with pytest.raises(ValueError):
            dataclasses.replace(BASELINE, half_routers=True).validate()

    def test_unknown_slice_mode(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DOUBLE_CP_CR, slice_mode="x").validate()

    def test_named_designs_all_valid(self):
        for design in NAMED_DESIGNS.values():
            design.validate()

    def test_design_by_name(self):
        assert design_by_name("TB-DOR") is BASELINE
        with pytest.raises(KeyError):
            design_by_name("nope")

    def test_throughput_effective_composition(self):
        d = THROUGHPUT_EFFECTIVE
        assert d.placement == "checkerboard"
        assert d.routing == "cr"
        assert d.half_routers
        assert d.double_network
        assert d.mc_inject_ports == 2
        assert d.mc_eject_ports == 1    # paper drops the extra ejection port

    def test_open_loop_variant(self):
        assert open_loop_variant(BASELINE).source_queue_flits is None


class TestBuild:
    def test_baseline_structure(self):
        system = build(BASELINE)
        assert len(system.networks) == 1
        assert len(system.mc_nodes) == 8
        assert len(system.compute_nodes) == 28
        net = system.networks[0]
        assert net.params.channel_width == 16
        assert net.vc_config.num_vcs == 2
        assert all(not r.spec.half for r in net.routers.values())

    def test_cp_cr_structure(self):
        system = build(CP_CR)
        net = system.networks[0]
        assert net.vc_config.num_vcs == 4
        halves = [c for c, r in net.routers.items() if r.spec.half]
        assert len(halves) == 18
        assert all(c.parity() == 1 for c in halves)
        assert all(mc.parity() == 1 for mc in system.mc_nodes)

    def test_half_router_pipeline_shorter(self):
        system = build(CP_CR)
        net = system.networks[0]
        assert net.routers[Coord(1, 0)].pipeline_latency == 3
        assert net.routers[Coord(0, 0)].pipeline_latency == 4

    def test_double_network_structure(self):
        system = build(DOUBLE_CP_CR)
        assert len(system.networks) == 2
        for net in system.networks:
            assert net.params.channel_width == 8

    def test_dedicated_slices_carry_one_class(self):
        system = build(DOUBLE_CP_CR_DEDICATED)
        req = read_request(system.compute_nodes[0], system.mc_nodes[0])
        rep = read_reply(system.mc_nodes[0], system.compute_nodes[0])
        carriers_req = [n for n in system.networks if n.carries(req)]
        carriers_rep = [n for n in system.networks if n.carries(rep)]
        assert len(carriers_req) == 1
        assert len(carriers_rep) == 1
        assert carriers_req[0] is not carriers_rep[0]

    def test_balanced_slices_carry_both(self):
        system = build(DOUBLE_CP_CR)
        req = read_request(system.compute_nodes[0], system.mc_nodes[0])
        assert all(n.carries(req) for n in system.networks)

    def test_balanced_round_robin_split(self):
        system = build(DOUBLE_CP_CR)
        src, dst = system.compute_nodes[0], system.mc_nodes[0]
        for _ in range(10):
            system.try_inject(read_request(src, dst), 0)
        injected = [len(n._sources[src][0].fifo) for n in system.networks]
        assert injected == [5, 5]

    def test_multiport_only_at_mcs(self):
        system = build(DOUBLE_CP_CR_2P)
        for net in system.networks:
            for coord, router in net.routers.items():
                expected = 2 if coord in set(system.mc_nodes) else 1
                assert router.spec.num_inject_ports == expected

    def test_2x_bandwidth_width(self):
        system = build(DOUBLE_BW)
        assert system.networks[0].params.channel_width == 32

    def test_mc_coords_override(self):
        custom = [Coord(1, 0), Coord(3, 0), Coord(0, 1), Coord(5, 2),
                  Coord(0, 3), Coord(5, 4), Coord(2, 5), Coord(4, 5)]
        design = dataclasses.replace(CP_CR, mc_coords=tuple(custom))
        system = build(design)
        assert system.mc_nodes == custom

    def test_invalid_mc_override_rejected(self):
        design = dataclasses.replace(CP_CR, mc_coords=(Coord(0, 0),) * 8)
        with pytest.raises(ValueError):
            build(design)


class TestNetworkSystemInterface:
    def test_stats_merged_across_slices(self):
        system = build(DOUBLE_CP_CR)
        src, dst = system.compute_nodes[0], system.mc_nodes[0]
        system.set_ejection_handler(dst, lambda p, c: None)
        for _ in range(4):
            system.try_inject(read_request(src, dst), 0)
        system.run_until_idle()
        assert system.stats.packets_ejected == 4

    def test_end_to_end_request_reply(self):
        system = build(THROUGHPUT_EFFECTIVE)
        src, dst = system.compute_nodes[5], system.mc_nodes[3]
        got = []
        system.set_ejection_handler(dst, lambda p, c: got.append(p))
        system.set_ejection_handler(src, lambda p, c: got.append(p))
        system.try_inject(read_request(src, dst), 0)
        for _ in range(200):
            system.step()
            if got:
                break
        assert got and got[0].dest == dst
        system.try_inject(read_reply(dst, src), system.cycle)
        system.run_until_idle()
        assert len(got) == 2
