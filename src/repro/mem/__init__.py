"""Memory-system substrate: caches, MSHRs, GDDR3 DRAM and the MC node."""

from .cache import AccessResult, CacheConfig, SetAssociativeCache
from .controller import (MC_INTERLEAVE_BYTES, AddressMap, McConfig,
                         MemoryController)
from .dram import DramRequest, DramTiming, GddrChannel
from .mshr import MshrEntry, MshrFile

__all__ = [
    "AccessResult", "AddressMap", "CacheConfig", "DramRequest",
    "DramTiming", "GddrChannel", "MC_INTERLEAVE_BYTES", "McConfig",
    "MemoryController", "MshrEntry", "MshrFile", "SetAssociativeCache",
]
