"""Network statistics: latency, throughput and per-node injection rates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .histogram import StreamingHistogram, merge_histograms
from .packet import Packet, TrafficClass
from .topology import Coord


@dataclass
class _ClassStats:
    packets: int = 0
    flits: int = 0
    latency_sum: int = 0
    network_latency_sum: int = 0
    latency_hist: StreamingHistogram = field(
        default_factory=StreamingHistogram)
    network_latency_hist: StreamingHistogram = field(
        default_factory=StreamingHistogram)

    def mean_latency(self) -> float:
        return self.latency_sum / self.packets if self.packets else 0.0

    def mean_network_latency(self) -> float:
        return self.network_latency_sum / self.packets if self.packets else 0.0


class NetworkStats:
    """Counters kept by each network (and by the ideal-network models)."""

    def __init__(self) -> None:
        self.cycles = 0
        #: Accepted by ``try_inject`` — includes packets still parked in a
        #: source FIFO, which ``*_injected`` (recorded at source-drain
        #: time) does not see.  The gap is the backpressure the Figure 11
        #: MC-stall analysis needs to distinguish queued from in-network
        #: traffic.
        self.packets_offered = 0
        self.flits_offered = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.packets_injected = 0
        self.packets_ejected = 0
        #: Always-on per-component activity counters for the power model
        #: (DESIGN.md §17).  Pure integer accounting over quantities every
        #: stepper already computes, so keeping them on cannot perturb
        #: results: a crossbar traversal is a switch-allocation grant
        #: (every flit popped from an input VC, including ejection), a
        #: buffer read accompanies each traversal, a buffer write is a
        #: flit landing in a router input VC (source drain or channel
        #: delivery), and a link flit-hop is one flit delivered over one
        #: channel (credits excluded).
        self.crossbar_traversals = 0
        self.buffer_reads = 0
        self.buffer_writes = 0
        self.link_flit_hops = 0
        self.per_class: Dict[TrafficClass, _ClassStats] = {
            TrafficClass.REQUEST: _ClassStats(),
            TrafficClass.REPLY: _ClassStats(),
        }
        self.node_injected_flits: Dict[Coord, int] = {}
        self.node_ejected_flits: Dict[Coord, int] = {}
        #: Per-slice source stats when this instance was produced by
        #: :func:`merge_stats`; empty for a plain single network.  Rate
        #: methods consult it so that slices measured over different cycle
        #: counts are aggregated per slice rather than dividing summed
        #: counters by ``max(cycles)``.
        self._slice_stats: List["NetworkStats"] = []

    # -- recording ----------------------------------------------------------

    def record_offer(self, packet: Packet, num_flits: int) -> None:
        """A packet was accepted into a source queue (may not yet have
        entered the network)."""
        self.packets_offered += 1
        self.flits_offered += num_flits

    def record_injection(self, packet: Packet, num_flits: int) -> None:
        self.packets_injected += 1
        self.flits_injected += num_flits
        node = self.node_injected_flits
        node[packet.src] = node.get(packet.src, 0) + num_flits

    def record_ejection(self, packet: Packet, num_flits: int) -> None:
        self.packets_ejected += 1
        self.flits_ejected += num_flits
        cs = self.per_class[packet.traffic_class]
        cs.packets += 1
        cs.flits += num_flits
        cs.latency_sum += packet.latency
        cs.network_latency_sum += packet.network_latency
        cs.latency_hist.add(packet.latency)
        cs.network_latency_hist.add(packet.network_latency)
        node = self.node_ejected_flits
        node[packet.dest] = node.get(packet.dest, 0) + num_flits

    # -- derived metrics ----------------------------------------------------

    @property
    def packets_in_flight(self) -> int:
        return self.packets_injected - self.packets_ejected

    @property
    def packets_source_queued(self) -> int:
        """Packets accepted but still parked in a source FIFO."""
        return self.packets_offered - self.packets_injected

    @property
    def flits_source_queued(self) -> int:
        """Flits of packets accepted but not yet draining into a router."""
        return self.flits_offered - self.flits_injected

    @property
    def packets_outstanding(self) -> int:
        """Everything accepted and not yet delivered: source-queued plus
        in-network."""
        return self.packets_offered - self.packets_ejected

    def mean_packet_latency(self) -> float:
        packets = sum(c.packets for c in self.per_class.values())
        if not packets:
            return 0.0
        total = sum(c.latency_sum for c in self.per_class.values())
        return total / packets

    def mean_network_latency(self) -> float:
        packets = sum(c.packets for c in self.per_class.values())
        if not packets:
            return 0.0
        total = sum(c.network_latency_sum for c in self.per_class.values())
        return total / packets

    def latency_histogram(self, network_only: bool = False
                          ) -> StreamingHistogram:
        """All-class latency distribution (a fresh merged copy).

        ``network_only`` selects network latency (injection to ejection)
        instead of full packet latency (creation to ejection)."""
        return merge_histograms(
            (cs.network_latency_hist if network_only else cs.latency_hist)
            for cs in self.per_class.values())

    def latency_summary(self, network_only: bool = False) -> Dict[str, float]:
        """count / min / max / p50 / p95 / p99 over all ejected packets."""
        return self.latency_histogram(network_only).summary()

    def accepted_flit_rate(self) -> float:
        """Ejected flits per cycle, summed over all nodes.

        For merged sliced stats whose slices ran different cycle counts the
        rate is the sum of per-slice rates (see :func:`merge_stats`)."""
        slices = self._slice_stats
        if slices and any(s.cycles != self.cycles for s in slices):
            return sum(s.accepted_flit_rate() for s in slices)
        return self.flits_ejected / self.cycles if self.cycles else 0.0

    def injection_rate(self, node: Coord) -> float:
        """Injected flits per cycle at ``node`` (per-slice aware, like
        :meth:`accepted_flit_rate`)."""
        slices = self._slice_stats
        if slices and any(s.cycles != self.cycles for s in slices):
            return sum(s.injection_rate(node) for s in slices)
        if not self.cycles:
            return 0.0
        return self.node_injected_flits.get(node, 0) / self.cycles

    def mean_injection_rate(self, nodes: List[Coord]) -> float:
        if not nodes:
            return 0.0
        return sum(self.injection_rate(n) for n in nodes) / len(nodes)


def merge_stats(stats_list: List[NetworkStats]) -> NetworkStats:
    """Aggregate statistics across the sub-networks of a sliced design.

    Contract: counters (packets, flits, latency sums, per-node flit counts)
    are summed; ``cycles`` is the **master clock** — ``max`` across slices —
    because the slices of a double network advance in lockstep and their
    cycle counts are equal in every normal run.  When they are *not* equal
    (merging stats windows of different lengths), dividing summed flit
    counters by one slice's cycles would misstate the rates, so the merged
    instance keeps the per-slice stats and :meth:`NetworkStats.\
accepted_flit_rate` / :meth:`NetworkStats.injection_rate` switch to summing
    per-slice rates in that case.  The equal-cycles case deliberately keeps
    the single-division arithmetic so merged rates stay bit-identical to
    historical outputs (``a/c + b/c != (a+b)/c`` in floating point).
    """
    merged = NetworkStats()
    for stats in stats_list:
        merged.cycles = max(merged.cycles, stats.cycles)
        merged.packets_offered += stats.packets_offered
        merged.flits_offered += stats.flits_offered
        merged.flits_injected += stats.flits_injected
        merged.flits_ejected += stats.flits_ejected
        merged.packets_injected += stats.packets_injected
        merged.packets_ejected += stats.packets_ejected
        merged.crossbar_traversals += stats.crossbar_traversals
        merged.buffer_reads += stats.buffer_reads
        merged.buffer_writes += stats.buffer_writes
        merged.link_flit_hops += stats.link_flit_hops
        for tclass, cs in stats.per_class.items():
            target = merged.per_class[tclass]
            target.packets += cs.packets
            target.flits += cs.flits
            target.latency_sum += cs.latency_sum
            target.network_latency_sum += cs.network_latency_sum
            target.latency_hist.merge(cs.latency_hist)
            target.network_latency_hist.merge(cs.network_latency_hist)
        for node, flits in stats.node_injected_flits.items():
            merged.node_injected_flits[node] = (
                merged.node_injected_flits.get(node, 0) + flits)
        for node, flits in stats.node_ejected_flits.items():
            merged.node_ejected_flits[node] = (
                merged.node_ejected_flits.get(node, 0) + flits)
    merged._slice_stats = list(stats_list)
    return merged
