"""Job-server tests: golden bit-identity, back-pressure, fairness.

The load-bearing guarantees pinned here:

* results served through the job server are **bit-identical** to direct
  library calls — cold cache and warm cache, ``job_jobs`` 1 and 4;
* a warm-cache submission is answered **without re-simulation** (the
  terminal event's stats report ``executed == 0``);
* saturating the pending queue triggers the documented back-pressure
  response (``rejected`` + ``retry_after``) instead of unbounded queue
  growth;
* scheduling is priority-then-round-robin fair across clients;
* a failing job surfaces the failing task's label to the client.

The blocked-executor tests monkeypatch ``repro.serve.server.execute_job``
— the :class:`ThreadedServer` runs in-process, so the patch is visible to
the worker coroutines.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.experiments import compare_designs, load_latency_curves
from repro.noc.traffic import named_pattern_factory
from repro.parallel import TaskError
from repro.serve import (FairPriorityQueue, JobFailed, JobSpecError,
                         QueueSaturated, ServeClient, ServerConfig,
                         ThreadedServer, validate_job)
from repro.serve.executor import COMPARE_DEFAULTS, SWEEP_DEFAULTS

SWEEP_JOB = {"kind": "sweep", "design": "CP-DOR", "rates": [0.01, 0.02],
             "warmup": 50, "measure": 100}
COMPARE_JOB = {"kind": "compare", "designs": ["CP-DOR", "TB-DOR"],
               "benchmarks": ["RD"], "warmup": 60, "measure": 120}


def serve(tmp_path, name="cache", **overrides):
    """A ThreadedServer on an OS-assigned port with a fresh cache dir."""
    config = ServerConfig(port=0, cache=str(tmp_path / name), **overrides)
    return ThreadedServer(config)


def connect(server, **kw) -> ServeClient:
    host, port = server.address
    return ServeClient(host=host, port=port, **kw)


def wait_until(predicate, timeout=20.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within "
                         f"{timeout}s: {predicate}")


class _Record:
    """A minimal queue entry (the queue only reads .priority/.client)."""

    def __init__(self, client, priority=0, tag=None):
        self.client = client
        self.priority = priority
        self.tag = tag


class TestFairPriorityQueue:
    def test_higher_priority_first(self):
        q = FairPriorityQueue()
        q.push(_Record("a", priority=0, tag="low"))
        q.push(_Record("a", priority=5, tag="high"))
        q.push(_Record("a", priority=-1, tag="neg"))
        assert [q.pop().tag for _ in range(3)] == ["high", "low", "neg"]
        assert q.pop() is None

    def test_round_robin_within_level(self):
        q = FairPriorityQueue()
        for tag in ("a1", "a2", "a3"):
            q.push(_Record("alice", tag=tag))
        q.push(_Record("bob", tag="b1"))
        # alice's backlog cannot starve bob: one job per client per turn.
        assert [q.pop().tag for _ in range(4)] == ["a1", "b1", "a2", "a3"]

    def test_fifo_within_client(self):
        q = FairPriorityQueue()
        for tag in ("first", "second", "third"):
            q.push(_Record("solo", tag=tag))
        assert [q.pop().tag for _ in range(3)] == ["first", "second",
                                                  "third"]

    def test_len_and_pending_by_client(self):
        q = FairPriorityQueue()
        q.push(_Record("a", priority=1))
        q.push(_Record("a", priority=0))
        q.push(_Record("b", priority=0))
        assert len(q) == 3
        assert q.pending_by_client() == {"a": 2, "b": 1}
        q.pop()
        assert len(q) == 2


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(JobSpecError, match="unknown job kind"):
            validate_job({"kind": "teleport"})

    def test_unknown_design_carries_hint(self):
        with pytest.raises(JobSpecError, match="unknown design"):
            validate_job({"kind": "sweep", "design": "TB-DORR",
                          "rates": [0.01]})

    def test_bad_rates(self):
        with pytest.raises(JobSpecError, match="rates"):
            validate_job({"kind": "sweep", "design": "CP-DOR",
                          "rates": []})
        with pytest.raises(JobSpecError, match="rates"):
            validate_job({"kind": "sweep", "design": "CP-DOR",
                          "rates": [0.01, "fast"]})

    def test_unknown_pattern(self):
        with pytest.raises(JobSpecError, match="unknown traffic pattern"):
            validate_job({"kind": "sweep", "design": "CP-DOR",
                          "rates": [0.01], "pattern": "tornado"})

    def test_unknown_benchmark(self):
        with pytest.raises(JobSpecError, match="unknown benchmark"):
            validate_job({"kind": "compare", "designs": ["CP-DOR"],
                          "benchmarks": ["NOPE"]})

    def test_unknown_preset(self):
        with pytest.raises(JobSpecError, match="unknown preset"):
            validate_job({"kind": "explore", "preset": "smokey"})

    def test_power_preset_accepted(self):
        spec = validate_job({"kind": "explore", "preset": "power"})
        assert spec["preset"] == "power"

    def test_defaults_match_library_defaults(self):
        # An unadorned submission must equal an unadorned direct call;
        # these literals pin the library signatures' defaults.
        spec = validate_job({"kind": "sweep", "design": "CP-DOR",
                             "rates": [0.01]})
        assert {k: spec[k] for k in SWEEP_DEFAULTS} == SWEEP_DEFAULTS
        spec = validate_job({"kind": "compare", "designs": ["CP-DOR"]})
        assert {k: spec[k] for k in COMPARE_DEFAULTS} == COMPARE_DEFAULTS


def direct_sweep(cache):
    """The direct-call twin of SWEEP_JOB."""
    from repro.core.builder import design_by_name
    (curve,) = load_latency_curves(
        [design_by_name("CP-DOR")],
        SWEEP_JOB["rates"], named_pattern_factory("uniform"),
        pattern_name="uniform", warmup=SWEEP_JOB["warmup"],
        measure=SWEEP_JOB["measure"], seed=SWEEP_DEFAULTS["seed"],
        cache=cache)
    return {"kind": "sweep", "curve": curve.to_json()}


def direct_compare(cache):
    """The direct-call twin of COMPARE_JOB."""
    from repro.core.builder import design_by_name
    from repro.workloads.profiles import profile
    comparison = compare_designs(
        [design_by_name(n) for n in COMPARE_JOB["designs"]],
        profiles=[profile("RD")], warmup=COMPARE_JOB["warmup"],
        measure=COMPARE_JOB["measure"], seed=COMPARE_DEFAULTS["seed"],
        cache=cache)
    return {"kind": "compare", "comparison": comparison.to_json()}


class TestServedBitIdentity:
    """Served results == direct library results, byte for byte."""

    @pytest.mark.parametrize("job_jobs", [None, 4],
                             ids=["jobs1", "jobs4"])
    def test_sweep_cold_and_warm(self, tmp_path, job_jobs):
        direct = direct_sweep(str(tmp_path / "direct"))
        with serve(tmp_path, job_jobs=job_jobs) as server:
            with connect(server) as client:
                events = []
                cold = client.submit(SWEEP_JOB, events=events)
                assert json.dumps(cold, sort_keys=True) == \
                    json.dumps(direct, sort_keys=True)
                done = events[-1]
                assert done["event"] == "done"
                assert done["stats"]["executed"] == len(SWEEP_JOB["rates"])

                warm = client.submit(SWEEP_JOB, events=(warm_events := []))
                assert json.dumps(warm, sort_keys=True) == \
                    json.dumps(direct, sort_keys=True)
                warm_done = warm_events[-1]
                assert warm_done["stats"]["executed"] == 0
                assert warm_done["stats"]["cached"] == \
                    len(SWEEP_JOB["rates"])

    def test_compare_cold_and_warm(self, tmp_path):
        direct = direct_compare(str(tmp_path / "direct"))
        with serve(tmp_path) as server:
            with connect(server) as client:
                cold = client.submit(COMPARE_JOB)
                assert json.dumps(cold, sort_keys=True) == \
                    json.dumps(direct, sort_keys=True)
                warm = client.submit(COMPARE_JOB, events=(events := []))
                assert json.dumps(warm, sort_keys=True) == \
                    json.dumps(direct, sort_keys=True)
                assert events[-1]["stats"]["executed"] == 0

    def test_progress_events_stream_per_task(self, tmp_path):
        with serve(tmp_path) as server:
            with connect(server) as client:
                events = []
                client.submit(SWEEP_JOB, events=events)
        names = [e["event"] for e in events]
        assert names[0] == "accepted" and names[-1] == "done"
        progress = [e for e in events if e["event"] == "progress"]
        assert len(progress) == len(SWEEP_JOB["rates"])
        assert all(not p["cached"] for p in progress)
        assert {p["label"] for p in progress} == {
            f"CP-DOR/uniform@{r:g}" for r in SWEEP_JOB["rates"]}


class TestServedExploreBitIdentity:
    def test_smoke_preset_served_equals_direct(self, tmp_path):
        """One cold exploration through the server, then the direct
        engine against the same cache: identical payloads, and the
        served warm re-submission never re-simulates."""
        from repro.dse import explore_preset
        cache = str(tmp_path / "cache")
        with serve(tmp_path) as server:
            with connect(server) as client:
                cold = client.submit({"kind": "explore",
                                      "preset": "smoke"})
                direct = explore_preset("smoke", cache=cache).to_json()
                assert json.dumps(cold["exploration"], sort_keys=True) \
                    == json.dumps(direct, sort_keys=True)
                # The power fields ride through the server bit-identical;
                # name them explicitly so a regression is named, not just
                # a json.dumps mismatch.
                served = cold["exploration"]
                assert served["tech_nodes"] == direct["tech_nodes"]
                assert served["frontier3d"] == direct["frontier3d"]
                for got, want in zip(served["candidates"],
                                     direct["candidates"]):
                    for key in ("noc_power_w", "ipc_per_watt",
                                "power_by_node", "on_frontier3d",
                                "dominated_by_3d"):
                        assert got[key] == want[key]
                    if got["hm_ipc"] is not None:
                        assert got["noc_power_w"] is not None
                warm = client.submit({"kind": "explore",
                                      "preset": "smoke"},
                                     events=(events := []))
                assert json.dumps(warm, sort_keys=True) == \
                    json.dumps(cold, sort_keys=True)
                assert events[-1]["stats"]["executed"] == 0
                assert events[-1]["stats"]["cached"] > 0


class _GatedExecutor:
    """execute_job stand-in that blocks until released (orders recorded)."""

    def __init__(self):
        self.release = threading.Event()
        self.ran = []
        self.lock = threading.Lock()

    def __call__(self, spec, *, jobs=None, cache=None, progress=None):
        if not self.release.wait(timeout=30):
            raise RuntimeError("gated executor never released")
        with self.lock:
            self.ran.append(spec.get("tag"))
        return {"kind": spec["kind"], "tag": spec.get("tag")}


@pytest.fixture
def gated(monkeypatch):
    executor = _GatedExecutor()
    monkeypatch.setattr("repro.serve.server.execute_job", executor)
    return executor


def submit_raw(client, job, *, client_id="anon", priority=0):
    """Non-streaming submission: returns the immediate reply."""
    return client.request({"cmd": "submit", "client": client_id,
                           "priority": priority, "stream": False,
                           "job": job})


class TestBackPressure:
    def test_saturated_queue_rejects_with_retry_after(self, tmp_path,
                                                      gated):
        with serve(tmp_path, max_pending=2, workers=1) as server:
            with connect(server) as client:
                # Fill the worker, then the queue.
                first = submit_raw(client, SWEEP_JOB)
                assert first["event"] == "accepted"
                wait_until(lambda: client.stats()["running"] == 1)
                for _ in range(2):
                    assert submit_raw(client, SWEEP_JOB)["event"] == \
                        "accepted"
                rejected = submit_raw(client, SWEEP_JOB)
                assert rejected["event"] == "rejected"
                assert rejected["ok"] is False
                assert rejected["retry_after"] > 0
                assert rejected["pending"] == 2
                stats = client.stats()
                assert stats["counters"]["rejected"] == 1
                assert stats["pending"] == 2    # the queue did not grow

                # Streaming client sees the same contract as an exception.
                with connect(server) as other:
                    with pytest.raises(QueueSaturated) as excinfo:
                        other.submit(SWEEP_JOB)
                    assert excinfo.value.retry_after > 0

                gated.release.set()
                wait_until(lambda: client.stats()["counters"]
                           ["completed"] == 3)
                # Once drained, submissions are accepted again.
                assert submit_raw(client, SWEEP_JOB)["event"] == "accepted"
                wait_until(lambda: client.stats()["counters"]
                           ["completed"] == 4)

    def test_rejection_is_cheap_and_does_not_queue(self, tmp_path, gated):
        with serve(tmp_path, max_pending=1, workers=1) as server:
            with connect(server) as client:
                submit_raw(client, SWEEP_JOB)
                wait_until(lambda: client.stats()["running"] == 1)
                submit_raw(client, SWEEP_JOB)
                replies = [submit_raw(client, SWEEP_JOB)
                           for _ in range(10)]
                assert all(r["event"] == "rejected" for r in replies)
                assert client.stats()["pending"] == 1
                gated.release.set()


class TestFairScheduling:
    def test_round_robin_across_clients_end_to_end(self, tmp_path, gated):
        def tagged(tag):
            return {**SWEEP_JOB, "tag": tag}

        with serve(tmp_path, max_pending=16, workers=1) as server:
            with connect(server) as client:
                # First job occupies the worker while the rest queue up.
                submit_raw(client, tagged("a0"), client_id="alice")
                wait_until(lambda: client.stats()["running"] == 1)
                for tag in ("a1", "a2", "a3"):
                    submit_raw(client, tagged(tag), client_id="alice")
                submit_raw(client, tagged("b1"), client_id="bob")
                submit_raw(client, tagged("hi"), client_id="carol",
                           priority=10)
                assert client.stats()["pending_by_client"] == {
                    "alice": 3, "bob": 1, "carol": 1}
                gated.release.set()
                wait_until(lambda: client.stats()["counters"]
                           ["completed"] == 6)
        # Priority first, then alice/bob alternate, then alice's backlog.
        assert gated.ran == ["a0", "hi", "a1", "b1", "a2", "a3"]


class TestFailurePath:
    def test_task_error_label_reaches_client(self, tmp_path, monkeypatch):
        def explode(spec, *, jobs=None, cache=None, progress=None):
            raise TaskError("task 'poison' (index 2) failed: boom",
                            label="poison", index=2)

        monkeypatch.setattr("repro.serve.server.execute_job", explode)
        with serve(tmp_path) as server:
            with connect(server) as client:
                with pytest.raises(JobFailed) as excinfo:
                    client.submit(SWEEP_JOB)
                assert excinfo.value.label == "poison"
                assert "poison" in str(excinfo.value)
                stats = client.stats()
                assert stats["counters"]["failed"] == 1
                # The failure is queryable after the fact too.
                reply = client.request({"cmd": "result",
                                        "job_id": "job-000001"})
                assert reply["event"] == "failed"
                assert reply["label"] == "poison"


class TestProtocolEdges:
    def test_ping_stats_status_result(self, tmp_path):
        with serve(tmp_path) as server:
            with connect(server) as client:
                assert client.ping()["protocol"] == 2
                reply = submit_raw(client, SWEEP_JOB)
                job_id = reply["job_id"]
                wait_until(lambda: client.status(job_id)["state"]
                           == "done")
                record = client.status(job_id)
                assert record["kind"] == "sweep"
                assert record["stats"]["executed"] == \
                    len(SWEEP_JOB["rates"])
                result = client.request({"cmd": "result",
                                         "job_id": job_id})
                assert result["event"] == "result"
                assert result["result"]["kind"] == "sweep"

    def test_invalid_submission_and_unknown_command(self, tmp_path):
        with serve(tmp_path) as server:
            with connect(server) as client:
                reply = submit_raw(client, {"kind": "sweep",
                                            "design": "NOPE",
                                            "rates": [0.01]})
                assert reply["event"] == "invalid"
                assert "unknown design" in reply["error"]
                reply = client.request({"cmd": "frobnicate"})
                assert reply["event"] == "invalid"
                reply = client.request({"cmd": "status",
                                        "job_id": "job-999999"})
                assert reply["ok"] is False
                stats = client.stats()
                assert stats["counters"]["invalid"] == 1
                assert stats["counters"]["submitted"] == 0

    def test_malformed_line_keeps_connection_alive(self, tmp_path):
        with serve(tmp_path) as server:
            with connect(server) as client:
                client._sock.sendall(b"this is not json\n")
                reply = client._recv()
                assert reply["event"] == "invalid"
                assert client.ping()["ok"]   # still usable afterwards

    def test_shutdown_stops_the_server(self, tmp_path):
        server = serve(tmp_path)
        with server:
            with connect(server) as client:
                client.shutdown()
            server._thread.join(timeout=30)
            assert not server._thread.is_alive()

    def test_cache_stats_served(self, tmp_path):
        with serve(tmp_path) as server:
            with connect(server) as client:
                client.submit(SWEEP_JOB)
                cache = client.stats()["cache"]
        assert cache["entries"] == len(SWEEP_JOB["rates"])
        assert cache["bytes"] > 0
