"""Property-based tests of whole-network invariants under random traffic.

These are the heavyweight guarantees: every injected packet is eventually
delivered exactly once to its destination with all flits, for every design
point, under randomized many-to-few request/reply traffic.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.builder import (BASELINE, CP_CR, CP_ROMM, DOUBLE_CP_CR,
                                DOUBLE_CP_CR_2P, DOUBLE_CP_CR_DEDICATED,
                                THROUGHPUT_EFFECTIVE, build,
                                open_loop_variant)
from repro.noc.packet import read_reply, read_request, write_request

ALL_DESIGNS = [BASELINE, CP_CR, CP_ROMM, DOUBLE_CP_CR,
               DOUBLE_CP_CR_DEDICATED, DOUBLE_CP_CR_2P,
               THROUGHPUT_EFFECTIVE]


def random_mc_traffic(system, rng, count):
    """Generate request/reply pairs between cores and MCs."""
    packets = []
    for _ in range(count):
        core = rng.choice(system.compute_nodes)
        mc = rng.choice(system.mc_nodes)
        kind = rng.randrange(3)
        if kind == 0:
            packets.append(read_request(core, mc))
        elif kind == 1:
            packets.append(write_request(core, mc))
        else:
            packets.append(read_reply(mc, core))
    return packets


@pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.name)
def test_exactly_once_delivery(design):
    system = build(open_loop_variant(design))
    rng = random.Random(42)
    received = {}
    for node in list(system.mesh.coords()):
        system.set_ejection_handler(
            node, lambda p, c: received.__setitem__(
                p.pid, received.get(p.pid, 0) + 1))
    packets = random_mc_traffic(system, rng, 120)
    for p in packets:
        assert system.try_inject(p, 0)
    system.run_until_idle(max_cycles=100_000)
    assert len(received) == 120
    assert all(v == 1 for v in received.values())
    for p in packets:
        assert received[p.pid] == 1
        assert p.ejected >= 0


@pytest.mark.parametrize("design", [BASELINE, CP_CR, THROUGHPUT_EFFECTIVE],
                         ids=lambda d: d.name)
def test_latency_timestamps_consistent(design):
    system = build(open_loop_variant(design))
    done = []
    for node in list(system.mesh.coords()):
        system.set_ejection_handler(node, lambda p, c: done.append(p))
    rng = random.Random(7)
    for p in random_mc_traffic(system, rng, 60):
        system.try_inject(p, system.cycle)
    system.run_until_idle(max_cycles=100_000)
    for p in done:
        assert p.injected >= p.created
        assert p.ejected > p.injected
        assert p.network_latency >= 2   # at least a router + channel


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1000), count=st.integers(1, 60))
def test_checkerboard_conserves_random_traffic(seed, count):
    system = build(open_loop_variant(CP_CR))
    rng = random.Random(seed)
    got = []
    for node in list(system.mesh.coords()):
        system.set_ejection_handler(node, lambda p, c: got.append(p))
    for p in random_mc_traffic(system, rng, count):
        system.try_inject(p, 0)
    system.run_until_idle(max_cycles=100_000)
    assert len(got) == count
