"""JSON round-trip tests for the result dataclasses.

The parallel harness transports every result as JSON (worker -> parent and
cache file -> later run), so ``to_json``/``from_json`` must preserve every
field exactly — floats included, which works because Python's JSON encoder
emits ``repr``-exact floats and ``float(repr(x)) == x``.
"""

import dataclasses
import json

import pytest

from repro.core.builder import BASELINE, CP_DOR
from repro.experiments import (DesignComparison, LoadLatencyCurve,
                               compare_designs, load_latency_curves)
from repro.noc.openloop import LoadLatencyPoint
from repro.noc.traffic import UniformManyToFew
from repro.system.accelerator import SimulationResult
from repro.workloads.profiles import profile

#: Awkward floats: repr-long fractions, subnormals, negative zero, inf.
NASTY = [1 / 3, 0.1 + 0.2, 5e-324, -0.0, 1e308, float("inf")]


def make_result(ipc: float = 1 / 3) -> SimulationResult:
    return SimulationResult(
        benchmark="RD", network="TB-DOR", icnt_cycles=800, core_cycles=1722,
        retired_scalar=12345, ipc=ipc,
        accepted_bytes_per_cycle_per_node=0.1 + 0.2,
        mc_injection_rate_flits=2 / 7, mc_injection_rate_bytes=16 / 7,
        mc_stall_fraction=1 / 9, mean_network_latency=28.517341040462426,
        mean_packet_latency=float("inf"), dram_efficiency=0.999999999999999,
        dram_row_hit_rate=5e-324, l1_hit_rate=-0.0, l2_hit_rate=1e-17)


def through_disk(payload: dict) -> dict:
    """Serialise exactly as the cache does (text file round trip)."""
    return json.loads(json.dumps(payload))


class TestSimulationResult:
    def test_round_trip_exact(self):
        result = make_result()
        clone = SimulationResult.from_json(through_disk(result.to_json()))
        for f in dataclasses.fields(result):
            assert repr(getattr(clone, f.name)) == \
                repr(getattr(result, f.name)), f.name
        assert clone == result

    @pytest.mark.parametrize("value", NASTY)
    def test_nasty_floats(self, value):
        result = make_result(ipc=value)
        clone = SimulationResult.from_json(through_disk(result.to_json()))
        assert repr(clone.ipc) == repr(value)

    def test_real_simulation_round_trip(self):
        from repro.system.accelerator import build_chip
        chip = build_chip(profile("AES"), design=BASELINE, seed=5)
        result = chip.run(warmup=50, measure=100)
        assert SimulationResult.from_json(
            through_disk(result.to_json())) == result


class TestLoadLatencyPoint:
    def test_round_trip_exact(self):
        point = LoadLatencyPoint(
            offered_rate=0.02, mean_latency=float("inf"),
            mean_request_latency=28.043956043956044,
            mean_reply_latency=float("inf"),
            accepted_flits_per_cycle=1 / 3, packets_measured=0,
            saturated=True)
        clone = LoadLatencyPoint.from_json(through_disk(point.to_json()))
        assert clone == point
        assert clone.mean_latency == float("inf")

    def test_real_sweep_round_trip(self):
        (curve,) = load_latency_curves(
            [BASELINE], rates=[0.005], pattern_factory=UniformManyToFew,
            warmup=100, measure=200)
        clone = LoadLatencyCurve.from_json(through_disk(curve.to_json()))
        assert clone == curve


class TestDesignComparison:
    def test_round_trip_exact(self):
        comparison = DesignComparison(
            results={"TB-DOR": {"RD": make_result(), "AES": make_result(2.5)},
                     "CP-DOR": {"RD": make_result(1e-17),
                                "AES": make_result(float("inf"))}},
            baseline="TB-DOR")
        clone = DesignComparison.from_json(
            through_disk(comparison.to_json()))
        assert clone == comparison
        assert clone.baseline == "TB-DOR"

    def test_real_comparison_round_trip(self):
        comparison = compare_designs(
            [BASELINE, CP_DOR], profiles=[profile("AES")], warmup=50,
            measure=100)
        clone = DesignComparison.from_json(
            through_disk(comparison.to_json()))
        assert clone == comparison
        assert clone.summary() == comparison.summary()
