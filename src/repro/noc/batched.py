"""Batched struct-of-arrays cycle core for the saturated regime.

The event-driven stepper (DESIGN.md §13) wins by letting idle routers
sleep, but near saturation every router is occupied and the wake heap
degenerates: the scan over per-router Python objects dominates again —
exactly the operating point the paper's throughput-effective analysis
cares about.  This module attacks the dense regime directly.

The :class:`BatchedCore` keeps numpy struct-of-arrays mirrors of the
per-(router, input port, VC) state that decides whether a cell can act
this cycle:

* ``head_ready[c]`` — pipeline ready time of the flit at the front of the
  cell's buffer (``NEVER`` while the buffer is empty),
* ``va_ok[c]`` — the cell holds an output VC and that VC has credits, so
  an eligible front flit is a switch request,
* ``va_need[c]`` — the front flit is a head without an output VC, so an
  eligible head must attempt route computation / VC allocation,
* ``va_blocked[c]`` — that allocation attempt is known to fail (and to
  have no side effects) until a VC frees on the cell's output port.

The fused route+VA+switch pass then becomes one vectorized sweep: a
single ``(head_ready <= now) & (va_ok | (va_need & ~va_blocked))``
screen over *all* cells of the mesh finds every cell the reference scan
would observably mutate this cycle; routers with no such cell are
skipped entirely (their VA rotation is replayed lazily from the
``_last_step`` anchor, exactly like the event core's sleep/replay).
Only the flagged cells are touched by Python code, in the reference's
rotated port order, driving the same ``SeparableAllocator`` pointers,
channels, tracer hooks and stats as the object-based steppers — so
results stay bit-identical (pinned by
``tests/test_stepper_equivalence.py``) and the invariant checker,
telemetry and deadlock watchdog work unchanged.

Two screening arguments carry the skipping beyond the event core:

* A failed VC allocation mutates nothing (``free_vc`` moves its pointer
  only on success; a single eject port never rotates the eject
  pointer), and it keeps failing until an output VC of the *same
  output port* is released — so a blocked cell is skipped until the
  grant loop frees a VC there (``_blocked_lists`` gives the exact
  wake-up set).  Routers with several eject ports are exempt: their
  failed ejection allocations rotate the eject-port pointer.
* A source-drain pass that delivered nothing mutated nothing, and its
  outcome can only change when a grant pops a flit out of an
  injection-port buffer or a fresh packet heads an idle source port —
  tracked by ``MeshNetwork._source_stuck``.

The router objects stay authoritative: the arrays are read-side mirrors,
updated at the few mutation points (flit delivery, credit 0->1, VC
allocation, switch grants).  ``audit_event_scheduling`` cross-checks the
mirrors against the object state when the batched core is active.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .packet import RouteGroup, TrafficClass
from .router import NEVER, Router, RoutingViolation
from .topology import Direction


class BatchedCore:
    """Struct-of-arrays sweep engine attached to one ``MeshNetwork``.

    Construction (and :meth:`detach`) are only legal while the network is
    idle — enforced by ``MeshNetwork.use_batched_stepper`` — but the
    mirrors are seeded from the live object state anyway, so the
    invariants hold from the first cycle regardless.
    """

    def __init__(self, net) -> None:
        self.net = net
        self.routers = net._router_list
        self.num_vcs = net.vc_config.num_vcs
        v = self.num_vcs
        bases: List[int] = []
        ends: List[int] = []
        cell_router: List[int] = []
        cell_info: List[tuple] = []
        total = 0
        for idx, router in enumerate(self.routers):
            bases.append(total)
            for pos, (in_port, in_vcs) in enumerate(router._ordered_inputs):
                for in_vc, vc_state in enumerate(in_vcs):
                    cell_info.append((pos, in_vc, in_port, vc_state))
            ncells = len(router._input_order) * v
            cell_router.extend([idx] * ncells)
            total += ncells
            ends.append(total)
        #: First cell index of each router; cells of one router are
        #: contiguous (input-position major, VC minor), so ascending cell
        #: order is exactly the reference scan's router-then-port order.
        self.bases = bases
        self.ends = ends
        self.cell_router = cell_router
        #: Static per-cell identity ``(pos, in_vc, in_port, vc_state)`` —
        #: the ``_InputVc`` objects and their buffers never move.
        self.cell_info = cell_info
        self.num_cells = total
        self.head_ready = np.full(total, NEVER, dtype=np.int64)
        self.va_ok = np.zeros(total, dtype=bool)
        self.va_need = np.zeros(total, dtype=bool)
        self.va_blocked = np.zeros(total, dtype=bool)
        # Reused per-cycle scratch for the vectorized screen.
        self._elig = np.zeros(total, dtype=bool)
        self._cand = np.zeros(total, dtype=bool)
        #: Static per-router hot-loop state (see ``sweep`` for the unpack
        #: order); binding one tuple beats a dozen attribute lookups per
        #: visited router.
        self._rinfo: List[tuple] = []
        #: Per router, per output position: cell indices blocked on that
        #: port, flushed (unblocked) when the grant loop frees a VC there.
        self._blocked_lists: List[List[List[int]]] = []
        # Pure-DOR designs (``plan_writes_defaults``) admit two extra fast
        # paths: packets keep ``group == ANY`` for life (nothing mutates
        # it), so the allowed-VC tuple is a fixed per-class pair; and
        # ``next_port`` is a pure function of (coord, dest), so each
        # full-connectivity router can memoize dest -> (direction, out
        # position) — only the U-turn guard (the sole illegal full-router
        # turn a Direction input can see) survives on the hit path.
        dor_pure = getattr(net.routing, "plan_writes_defaults", False)
        self._fixed_allowed = None
        if dor_pure:
            ga = net.vc_config._allowed.get
            req = ga((TrafficClass.REQUEST, RouteGroup.ANY))
            rep = ga((TrafficClass.REPLY, RouteGroup.ANY))
            if req is not None and rep is not None:
                self._fixed_allowed = (req, rep)
        for idx, router in enumerate(self.routers):
            allocator = router._allocator
            blockable = len(router._eject_ids) <= 1
            eject_pos = (router._out_pos[router._eject_ids[0]]
                         if router._eject_ids else -1)
            outs = router._out_by_pos
            blocked = [[] for _ in outs]
            self._blocked_lists.append(blocked)
            # Per-output-position flat caches: the output ports, their
            # credit/owner lists and the channel endpoints never move after
            # ``finalize``, so the grant loop indexes plain tuples instead
            # of chasing attributes per moved flit.  ``send_flit`` is None
            # exactly for ejection ports (they have a sink, no channel).
            self._rinfo.append((
                router, bases[idx], len(router._input_order),
                router._req_masks, router._req_outs, router._req_active,
                router._out_pos, router._vc_masks,
                allocator, allocator._in_ptr, allocator._out_ptr,
                allocator._num_vcs, allocator._num_inputs,
                blockable, blocked, eject_pos, router.coord,
                router.net_index, router._grant_scratch,
                tuple(out.credits for out in outs),
                tuple(out.owner for out in outs),
                tuple(out.free_vc for out in outs),
                tuple(out.channel.send_flit
                      if out.channel is not None else None for out in outs),
                tuple(out.port_id for out in outs),
                tuple(ch.send_credit if ch is not None else None
                      for ch in router._in_channel_by_pos),
                {} if dor_pure and not router.spec.half else None,
                tuple(router._out_pos.get(p, -2)
                      if not isinstance(p, tuple) else -2
                      for p in router._input_order),
            ))
            router._soa = self
            router._soa_base = bases[idx]
        self.sync_from_state()

    def detach(self) -> None:
        """Drop the router-side mirror hooks (stepper switched away)."""
        for router in self.routers:
            router._soa = None

    # -- mirror maintenance --------------------------------------------------

    def sync_from_state(self) -> None:
        """Rebuild every mirror cell from the authoritative object state."""
        v = self.num_vcs
        head_ready = self.head_ready
        va_ok = self.va_ok
        va_need = self.va_need
        self.va_blocked[:] = False
        for blocked in self._blocked_lists:
            for bl in blocked:
                del bl[:]
        for idx, router in enumerate(self.routers):
            base = self.bases[idx]
            for pos, (_port, in_vcs) in enumerate(router._ordered_inputs):
                for in_vc, vc_state in enumerate(in_vcs):
                    ci = base + pos * v + in_vc
                    buf = vc_state.buffer
                    head_ready[ci] = buf[0].ready if buf else NEVER
                    out_vc = vc_state.out_vc
                    va_need[ci] = bool(buf) and out_vc is None
                    va_ok[ci] = (
                        out_vc is not None
                        and router.out_ports[vc_state.out_port]
                        .credits[out_vc] > 0)

    # -- the vectorized sweep ------------------------------------------------

    def sweep(self, now: int) -> None:
        """One router phase: screen all cells, touch only the actionable
        ones.  Twin of ``Router.step``/``Router.step_reference`` — any
        semantic change must land in all three backends."""
        np.less_equal(self.head_ready, now, out=self._elig)
        # need & ~blocked (elementwise bool "greater" = and-not), then | ok.
        np.greater(self.va_need, self.va_blocked, out=self._cand)
        np.logical_or(self._cand, self.va_ok, out=self._cand)
        np.logical_and(self._cand, self._elig, out=self._cand)
        idx = np.flatnonzero(self._cand)
        if not idx.size:
            return
        self.process_cells(now, idx.tolist())

    def process_cells(self, now: int, cells: List[int]) -> None:
        """Grant pass over a non-empty, ascending candidate cell list.

        Split from :meth:`sweep` so a fleet screen over many networks can
        dispatch each member's slice of one global candidate vector here
        (cell indices are member-local either way)."""
        cell_router = self.cell_router
        cell_info = self.cell_info
        rinfo = self._rinfo
        ends = self.ends
        vpc = self.num_vcs
        head_ready = self.head_ready
        va_ok = self.va_ok
        va_need = self.va_need
        va_blocked = self.va_blocked
        net = self.net
        net_eject = net._eject
        source_stuck = net._source_stuck
        allowed_vcs = net.vc_config.allowed_vcs
        allowed_get = net.vc_config._allowed.get
        routing = net.routing
        next_port = routing.next_port
        eject = Direction.EJECT
        fixed = self._fixed_allowed
        if fixed is not None:
            fixed_req, fixed_rep = fixed
        else:
            fixed_req = fixed_rep = None
        request_class = TrafficClass.REQUEST
        moved = 0
        i = 0
        n = len(cells)
        # Ascending cell index = ascending router index = the mesh order
        # the reference scan walks (ejection handlers and RNG draws must
        # fire in that order).
        while i < n:
            ci = cells[i]
            r = cell_router[ci]
            (router, base, n_in, req_masks, req_outs, active,
             out_pos_map, vc_masks,
             allocator, in_ptr, out_ptr, a_num_vcs, a_n_in,
             blockable, blocked, eject_pos, coord, node_idx, grants,
             credits_by_pos, owner_by_pos, freevc_by_pos,
             sendf_by_pos, pid_by_pos, sendc_by_pos,
             route_memo, uturn_by_pos) = rinfo[r]
            # Replay the rotation increments of the skipped cycles, exactly
            # as the event core does (see Router.step).
            rotate = (router._va_rotate + now - router._last_step - 1) % n_in
            router._va_rotate = (rotate + 1) % n_in
            router._last_step = now
            end = ends[r]
            j = i + 1
            while j < n and cells[j] < end:
                j += 1
            tracer = router.tracer

            if j - i == 1:
                # Fast path: the router's only actionable cell.  The screen
                # conditions coincide with the switch-request conditions of
                # the reference scan, so a single candidate means at most
                # one switch request — the separable allocator trivially
                # grants it (twin of ``allocate_fast``'s pointer updates).
                i = j
                pos, in_vc, in_port, vc_state = cell_info[ci]
                buf = vc_state.buffer
                out_vc = vc_state.out_vc
                if out_vc is None:
                    # va_need: route (once) and attempt VC allocation.
                    packet = buf[0].packet
                    out_port = vc_state.out_port
                    if out_port is None:
                        memoized = (route_memo.get(packet.dest)
                                    if route_memo is not None else None)
                        if memoized is not None:
                            direction, o = memoized
                            if direction is eject:
                                out_port = vc_state.out_port = eject
                            else:
                                if o == uturn_by_pos[pos]:
                                    raise RoutingViolation(
                                        f"illegal turn at {coord} (full): "
                                        f"{in_port} -> {direction} for "
                                        f"packet {packet.src}->"
                                        f"{packet.dest} "
                                        f"group={packet.group}")
                                out_port = vc_state.out_port = direction
                                vc_state.out_pos = o
                        else:
                            direction = next_port(coord, packet)
                            if direction is eject:
                                out_port = vc_state.out_port = eject
                                if route_memo is not None:
                                    route_memo[packet.dest] = (eject, -1)
                            else:
                                if not router.connectivity(in_port,
                                                           direction):
                                    raise RoutingViolation(
                                        f"illegal turn at {coord} "
                                        f"({'half' if router.spec.half else 'full'}"
                                        f"): {in_port} -> {direction} for packet "
                                        f"{packet.src}->{packet.dest} "
                                        f"group={packet.group}")
                                out_port = vc_state.out_port = direction
                                o = out_pos_map[direction]
                                vc_state.out_pos = o
                                if route_memo is not None:
                                    route_memo[packet.dest] = (direction, o)
                    if out_port is eject:
                        router._vc_allocate(in_port, in_vc, vc_state, packet,
                                            now)
                        out_vc = vc_state.out_vc
                        if out_vc is None:
                            if blockable:
                                va_blocked[ci] = True
                                blocked[eject_pos].append(ci)
                            continue
                        va_need[ci] = False
                        va_ok[ci] = True  # ejection credits are unbounded
                    else:
                        o = vc_state.out_pos
                        if fixed is not None:
                            allowed = (fixed_req
                                       if packet.traffic_class
                                       is request_class else fixed_rep)
                        else:
                            allowed = allowed_get(
                                (packet.traffic_class, packet.group))
                            if allowed is None:
                                allowed = allowed_vcs(packet.traffic_class,
                                                      packet.group)
                        if len(allowed) == 1:
                            # Inline ``free_vc`` for the single-VC class:
                            # no rotation pointer to keep.
                            out_vc = allowed[0]
                            if owner_by_pos[o][out_vc] is not None:
                                out_vc = None
                        else:
                            out_vc = freevc_by_pos[o](allowed)
                        if out_vc is None:
                            va_blocked[ci] = True
                            blocked[o].append(ci)
                            continue
                        owner_by_pos[o][out_vc] = (in_port, in_vc)
                        vc_state.out_vc = out_vc
                        va_need[ci] = False
                        if tracer is not None:
                            tracer.on_vc_alloc(packet, coord, out_port,
                                               out_vc, now)
                        if credits_by_pos[o][out_vc] <= 0:
                            continue
                        va_ok[ci] = True
                o = vc_state.out_pos
                # iSLIP pointer updates for the uncontended grant.
                out_ptr[o] = (pos + 1) % a_n_in
                in_ptr[pos] = (in_vc + 1) % a_num_vcs
                flit = buf.popleft()
                if buf:
                    head_ready[ci] = buf[0].ready
                else:
                    head_ready[ci] = NEVER
                    vc_masks[pos] &= ~(1 << in_vc)
                router.occupancy -= 1
                moved += 1
                credits_list = credits_by_pos[o]
                credits = credits_list[out_vc] - 1
                credits_list[out_vc] = credits
                if tracer is not None and flit.is_head:
                    tracer.on_switch(flit.packet, coord, pid_by_pos[o], now)
                send_flit = sendf_by_pos[o]
                if send_flit is None:
                    net_eject(flit, now)
                else:
                    send_flit(flit, out_vc, now)
                send_credit = sendc_by_pos[pos]
                if send_credit is not None:
                    send_credit(in_vc, now)
                else:
                    # Injection port: space freed, a stuck source node at
                    # this router can make progress again.
                    source_stuck[node_idx] = False
                if flit.is_tail:
                    owner_by_pos[o][out_vc] = None
                    vc_state.reset_route()
                    va_ok[ci] = False
                    if buf:
                        va_need[ci] = True
                    bl = blocked[o]
                    if bl:
                        for bc in bl:
                            va_blocked[bc] = False
                        del bl[:]
                elif credits == 0:
                    va_ok[ci] = False
                continue

            # General path: several actionable cells in this router.
            if rotate:
                # Cells arrive ascending (port-position major); splitting at
                # the rotation pivot preserves relative order, giving the
                # exact rotated port walk of the reference scan.
                pivot = base + rotate * vpc
                k = i
                while k < j and cells[k] < pivot:
                    k += 1
                ordered = cells[k:j] + cells[i:k]
            else:
                ordered = cells[i:j]
            i = j

            reqs = []
            conflict = False
            for ci in ordered:
                pos, in_vc, in_port, vc_state = cell_info[ci]
                if vc_state.out_vc is None:
                    # va_need cell: front flit is an eligible head without
                    # an output VC — route and attempt VC allocation,
                    # mirroring the fused pass in Router.step.
                    packet = vc_state.buffer[0].packet
                    out_port = vc_state.out_port
                    if out_port is None:
                        memoized = (route_memo.get(packet.dest)
                                    if route_memo is not None else None)
                        if memoized is not None:
                            direction, o = memoized
                            if direction is eject:
                                out_port = vc_state.out_port = eject
                            else:
                                if o == uturn_by_pos[pos]:
                                    raise RoutingViolation(
                                        f"illegal turn at {coord} (full): "
                                        f"{in_port} -> {direction} for "
                                        f"packet {packet.src}->"
                                        f"{packet.dest} "
                                        f"group={packet.group}")
                                out_port = vc_state.out_port = direction
                                vc_state.out_pos = o
                        else:
                            direction = next_port(coord, packet)
                            if direction is eject:
                                out_port = vc_state.out_port = eject
                                if route_memo is not None:
                                    route_memo[packet.dest] = (eject, -1)
                            else:
                                if not router.connectivity(in_port,
                                                           direction):
                                    raise RoutingViolation(
                                        f"illegal turn at {coord} "
                                        f"({'half' if router.spec.half else 'full'}"
                                        f"): {in_port} -> {direction} for packet "
                                        f"{packet.src}->{packet.dest} "
                                        f"group={packet.group}")
                                out_port = vc_state.out_port = direction
                                o = out_pos_map[direction]
                                vc_state.out_pos = o
                                if route_memo is not None:
                                    route_memo[packet.dest] = (direction, o)
                    if out_port is eject:
                        router._vc_allocate(in_port, in_vc, vc_state, packet,
                                            now)
                        if vc_state.out_vc is None:
                            if blockable:
                                va_blocked[ci] = True
                                blocked[eject_pos].append(ci)
                            continue
                        va_need[ci] = False
                        va_ok[ci] = True  # ejection credits are unbounded
                    else:
                        o = vc_state.out_pos
                        if fixed is not None:
                            allowed = (fixed_req
                                       if packet.traffic_class
                                       is request_class else fixed_rep)
                        else:
                            allowed = allowed_get(
                                (packet.traffic_class, packet.group))
                            if allowed is None:
                                allowed = allowed_vcs(packet.traffic_class,
                                                      packet.group)
                        if len(allowed) == 1:
                            vc = allowed[0]
                            if owner_by_pos[o][vc] is not None:
                                vc = None
                        else:
                            vc = freevc_by_pos[o](allowed)
                        if vc is None:
                            va_blocked[ci] = True
                            blocked[o].append(ci)
                            continue
                        owner_by_pos[o][vc] = (in_port, in_vc)
                        vc_state.out_vc = vc
                        va_need[ci] = False
                        if tracer is not None:
                            tracer.on_vc_alloc(packet, coord, out_port, vc,
                                               now)
                        if credits_by_pos[o][vc] <= 0:
                            continue
                        va_ok[ci] = True
                # va_ok cell (or a va_need cell that just allocated with
                # credits): an eligible switch request.
                o = vc_state.out_pos
                for req in reqs:
                    if req[0] == pos or req[2] == o:
                        conflict = True
                        break
                reqs.append((pos, in_vc, o, ci, vc_state))

            if not reqs:
                continue
            if conflict:
                # Contended: drive the separable allocator exactly as the
                # reference scan does.
                for pos, in_vc, o, ci, vc_state in reqs:
                    m = req_masks[pos]
                    if not m:
                        active.append(pos)
                    req_masks[pos] = m | (1 << in_vc)
                    req_outs[pos][in_vc] = o
                # Stage order is part of the determinism contract: the
                # allocator walks active inputs in ascending position order.
                active.sort()
                allocator.allocate_fast(active, req_masks, req_outs, grants)
                for pos in active:
                    req_masks[pos] = 0
                del active[:]
                granted = [(pos, vc_idx, o, base + pos * vpc + vc_idx, None)
                           for pos, vc_idx, o in grants]
                del grants[:]
            else:
                # No two requests share an input position or an output
                # port: input-first allocation grants every one of them,
                # advancing exactly the granted pointers.  Sorting gives
                # the allocator's ascending-input grant order (positions
                # are distinct, so later tuple fields never compare).
                reqs.sort()
                granted = reqs

            for pos, vc_idx, o, ci, vc_state in granted:
                if vc_state is None:
                    vc_state = cell_info[ci][3]
                else:
                    # Inline grant: the allocator never ran, so advance
                    # the iSLIP pointers here (grant-only updates).
                    out_ptr[o] = (pos + 1) % a_n_in
                    in_ptr[pos] = (vc_idx + 1) % a_num_vcs
                buf = vc_state.buffer
                flit = buf.popleft()
                if buf:
                    head_ready[ci] = buf[0].ready
                else:
                    head_ready[ci] = NEVER
                    vc_masks[pos] &= ~(1 << vc_idx)
                router.occupancy -= 1
                moved += 1
                out_vc = vc_state.out_vc
                credits_list = credits_by_pos[o]
                credits = credits_list[out_vc] - 1
                credits_list[out_vc] = credits
                if tracer is not None and flit.is_head:
                    tracer.on_switch(flit.packet, coord, pid_by_pos[o], now)
                send_flit = sendf_by_pos[o]
                if send_flit is None:
                    net_eject(flit, now)
                else:
                    send_flit(flit, out_vc, now)
                send_credit = sendc_by_pos[pos]
                if send_credit is not None:
                    send_credit(vc_idx, now)
                else:
                    source_stuck[node_idx] = False
                if flit.is_tail:
                    owner_by_pos[o][out_vc] = None
                    vc_state.reset_route()
                    va_ok[ci] = False
                    if buf:
                        va_need[ci] = True
                    bl = blocked[o]
                    if bl:
                        for bc in bl:
                            va_blocked[bc] = False
                        del bl[:]
                elif credits == 0:
                    va_ok[ci] = False

        self.net._buffered_flits -= moved
        stats = self.net.stats
        stats.crossbar_traversals += moved
        stats.buffer_reads += moved
