"""End-to-end integration tests reproducing the paper's directional claims
on short simulation windows (full-length runs live in benchmarks/)."""

import pytest

from repro.core.builder import (BASELINE, CP_CR, CP_DOR, DOUBLE_BW,
                                DOUBLE_CP_CR, THROUGHPUT_EFFECTIVE,
                                open_loop_variant, build)
from repro.noc.openloop import OpenLoopRunner
from repro.noc.traffic import UniformManyToFew
from repro.system.accelerator import build_chip, perfect_chip
from repro.workloads.profiles import profile

WARMUP, MEASURE = 300, 600


def ipc(design, abbr, seed=11):
    return build_chip(profile(abbr), design=design,
                      seed=seed).run(WARMUP, MEASURE).ipc


class TestClosedLoopDirections:
    def test_perfect_network_speeds_up_hh(self):
        """Figure 7: HH benchmarks gain a lot from a perfect NoC."""
        base = ipc(BASELINE, "SCP")
        perfect = perfect_chip(profile("SCP")).run(WARMUP, MEASURE).ipc
        assert perfect / base > 1.3

    def test_perfect_network_irrelevant_for_ll(self):
        base = ipc(BASELINE, "AES")
        perfect = perfect_chip(profile("AES")).run(WARMUP, MEASURE).ipc
        assert abs(perfect / base - 1) < 0.05

    def test_2x_bandwidth_helps_hh(self):
        """Figure 9: doubling channel width gives large HH speedups."""
        assert ipc(DOUBLE_BW, "RD") / ipc(BASELINE, "RD") > 1.25

    def test_checkerboard_placement_helps_hh(self):
        """Figure 16 direction: staggered MCs beat top-bottom."""
        assert ipc(CP_DOR, "RD") / ipc(BASELINE, "RD") > 1.1

    def test_checkerboard_routing_cheap(self):
        """Figure 17: CR with half-routers ~matches DOR with full routers."""
        ratio = ipc(CP_CR, "KM") / ipc(CP_DOR, "KM")
        assert ratio > 0.9

    def test_double_network_roughly_neutral(self):
        """Figure 18: the (balanced) double network ~matches the single."""
        ratio = ipc(DOUBLE_CP_CR, "RD") / ipc(CP_CR, "RD")
        assert 0.85 < ratio < 1.2

    def test_combined_design_beats_baseline_on_hh(self):
        """Figure 20 direction."""
        assert ipc(THROUGHPUT_EFFECTIVE, "SCP") / ipc(BASELINE, "SCP") > 1.3

    def test_combined_design_harmless_on_ll(self):
        ratio = ipc(THROUGHPUT_EFFECTIVE, "AES") / ipc(BASELINE, "AES")
        assert ratio > 0.95

    def test_mc_stall_high_for_hh_low_for_ll(self):
        """Figure 11 direction."""
        hh = build_chip(profile("RD"), design=BASELINE).run(WARMUP, MEASURE)
        ll = build_chip(profile("BIN"), design=BASELINE).run(WARMUP, MEASURE)
        assert hh.mc_stall_fraction > 0.3
        assert ll.mc_stall_fraction < 0.05


class TestOpenLoopDirections:
    def _latency(self, design, rate):
        system = build(open_loop_variant(design))
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes,
                                UniformManyToFew(system.mc_nodes), rate)
        return runner.run(warmup=400, measure=800)

    def test_throughput_effective_saturates_later(self):
        """Figure 21 direction: at a load where the baseline is saturated,
        the combined design still delivers low latency."""
        rate = 0.045
        base = self._latency(BASELINE, rate)
        te = self._latency(THROUGHPUT_EFFECTIVE, rate)
        assert te.mean_latency < base.mean_latency

    def test_low_load_latencies_comparable(self):
        rate = 0.005
        base = self._latency(BASELINE, rate)
        te = self._latency(THROUGHPUT_EFFECTIVE, rate)
        assert te.mean_latency < base.mean_latency * 1.5
