"""Golden determinism tests for the parallel experiment runner.

The headline acceptance contract of the parallel layer: fanning tasks out
over worker processes produces results that are field-for-field identical
to the serial path, for every registered design; runs with the same seed
are bit-identical, runs with different seeds differ.
"""

import dataclasses
import os
import time

import pytest

from repro.core.builder import BASELINE, CP_DOR, DOUBLE_BW, NAMED_DESIGNS
from repro.experiments import (classify_benchmarks, compare_designs,
                               load_latency_curves)
from repro.noc.traffic import UniformManyToFew
from repro.parallel import derive_seed, resolve_jobs, stable_key
from repro.workloads.profiles import PROFILES, profile

DESIGNS = [BASELINE, CP_DOR, DOUBLE_BW]
SUBSET = [profile(a) for a in ("RD", "AES", "MUM")]


def assert_results_identical(serial, parallel):
    """Field-for-field equality over two DesignComparison result grids."""
    assert set(serial.results) == set(parallel.results)
    for design, per_bench in serial.results.items():
        assert set(per_bench) == set(parallel.results[design])
        for abbr, expected in per_bench.items():
            got = parallel.results[design][abbr]
            for f in dataclasses.fields(expected):
                assert getattr(got, f.name) == getattr(expected, f.name), \
                    f"{design}/{abbr}.{f.name}"


class TestCompareDesignsGolden:
    @pytest.fixture(scope="class")
    def serial(self):
        return compare_designs(DESIGNS, profiles=SUBSET, warmup=100,
                               measure=200, seed=11, jobs=1)

    def test_jobs4_identical_to_serial(self, serial):
        parallel = compare_designs(DESIGNS, profiles=SUBSET, warmup=100,
                                   measure=200, seed=11, jobs=4)
        assert_results_identical(serial, parallel)

    def test_same_seed_bit_identical(self, serial):
        again = compare_designs(DESIGNS, profiles=SUBSET, warmup=100,
                                measure=200, seed=11, jobs=1)
        assert_results_identical(serial, again)
        assert serial.to_json() == again.to_json()

    def test_different_seed_differs(self, serial):
        other = compare_designs(DESIGNS, profiles=SUBSET, warmup=100,
                                measure=200, seed=12, jobs=1)
        assert serial.to_json() != other.to_json()


class TestAllRegisteredDesigns:
    def test_parallel_identical_for_every_design(self):
        designs = [NAMED_DESIGNS[name] for name in sorted(NAMED_DESIGNS)]
        profs = [profile("RD")]
        serial = compare_designs(designs, profiles=profs, warmup=60,
                                 measure=120, seed=3, jobs=1)
        parallel = compare_designs(designs, profiles=profs, warmup=60,
                                   measure=120, seed=3, jobs=4)
        assert set(serial.results) == set(NAMED_DESIGNS)
        assert_results_identical(serial, parallel)


class TestClassifyGolden:
    def test_jobs_identical_to_serial(self):
        serial = classify_benchmarks(BASELINE, profiles=SUBSET[:2],
                                     warmup=100, measure=200, jobs=1)
        parallel = classify_benchmarks(BASELINE, profiles=SUBSET[:2],
                                       warmup=100, measure=200, jobs=4)
        for s, p in zip(serial.benchmarks, parallel.benchmarks):
            assert s.abbr == p.abbr
            assert s.perfect_speedup == p.perfect_speedup
            assert s.measured_group == p.measured_group
            assert s.baseline == p.baseline
            assert s.perfect == p.perfect


class TestOpenLoopGolden:
    def test_jobs_identical_to_serial(self):
        kwargs = dict(rates=[0.005, 0.02], pattern_factory=UniformManyToFew,
                      warmup=200, measure=400, seed=7)
        serial = load_latency_curves([BASELINE, CP_DOR], jobs=1, **kwargs)
        parallel = load_latency_curves([BASELINE, CP_DOR], jobs=4, **kwargs)
        assert [c.to_json() for c in serial] == \
            [c.to_json() for c in parallel]

    def test_per_point_seeds_are_independent(self):
        """Every (design, pattern, rate) point draws from its own stream."""
        seeds = {
            derive_seed(7, "openloop", design, pattern, rate)
            for design in ("TB-DOR", "CP-DOR")
            for pattern in ("uniform", "hotspot")
            for rate in (0.005, 0.02, 0.04)
        }
        assert len(seeds) == 12  # all distinct
        # ... yet stable: the same key always derives the same seed.
        assert derive_seed(7, "openloop", "TB-DOR", "uniform", 0.005) in \
            seeds


class TestSeedDerivation:
    def test_deterministic_across_processes(self):
        """SHA-based derivation must not depend on PYTHONHASHSEED; pin an
        exact value so an accidental switch to ``hash()`` fails loudly."""
        assert derive_seed(11, "closed", "TB-DOR", "RD") == \
            derive_seed(11, "closed", "TB-DOR", "RD")
        assert derive_seed(0) == 15041073954064335159

    def test_sensitive_to_every_part(self):
        base = derive_seed(11, "closed", "TB-DOR", "RD")
        assert derive_seed(12, "closed", "TB-DOR", "RD") != base
        assert derive_seed(11, "openloop", "TB-DOR", "RD") != base
        assert derive_seed(11, "closed", "CP-DOR", "RD") != base
        assert derive_seed(11, "closed", "TB-DOR", "AES") != base

    def test_stable_key_covers_dataclasses(self):
        key = stable_key({"design": BASELINE, "seed": 11})
        assert key == stable_key({"seed": 11, "design": BASELINE})
        assert key != stable_key({"design": CP_DOR, "seed": 11})

    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(4) == 4
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(2) == 2
        with pytest.raises(ValueError):
            resolve_jobs(0)


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup measurement needs >= 4 cores")
class TestParallelSpeedup:
    def test_two_x_speedup_on_four_cores(self):
        """A full 8-benchmark comparison with jobs=4 must be >= 2x faster
        than jobs=1 (acceptance criterion; skipped on small hosts)."""
        profs = list(PROFILES)[:8]
        start = time.perf_counter()
        serial = compare_designs([BASELINE], profiles=profs, warmup=200,
                                 measure=400, jobs=1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = compare_designs([BASELINE], profiles=profs, warmup=200,
                                   measure=400, jobs=4)
        parallel_s = time.perf_counter() - start
        assert_results_identical(serial, parallel)
        assert serial_s / parallel_s >= 2.0, \
            f"speedup {serial_s / parallel_s:.2f}x < 2x"
