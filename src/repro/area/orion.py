"""Router and link area model calibrated against ORION 2.0 (Table VI).

The paper consumes ORION 2.0 outputs at 65 nm (Table IV: matrix crossbar,
SRAM buffers).  We reproduce those outputs with the same functional forms
ORION's numbers obey:

* **Crossbar** — a matrix crossbar's area grows with
  ``inputs x outputs x width²``.  A full-router is a 5x5 matrix (25 units at
  16 B -> 1.73 mm²); a half-router's datapath is four (1+I)-input muxes (one
  per mesh output, selectable against the I injection ports) plus one 4-input
  ejection mux per ejection port — 12 units for the basic half-router, which
  reproduces the paper's 0.83 mm² at 16 B and the ~52 % crossbar saving.
* **Buffers** — SRAM area is linear in total storage:
  ``ports_with_buffers x VCs x depth x flit_bytes``.
  (2 VCs x 8 flits x 16 B x 5 ports -> 0.17 mm².)
* **Allocator** — dominated by VC allocation, growing quadratically in the
  VC count (2 VCs -> 0.004 mm², 4 VCs -> ~0.016 mm²).
* **Links** — linear in channel width (16 B -> 0.175 mm² per link).

Calibration constants are derived directly from the Table VI baseline row,
so every other row of the table is a *prediction* of this model; the
Table VI benchmark checks them against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Calibration anchors from Table VI's baseline row (65 nm, 16-byte flits).
_BASE_WIDTH = 16.0
_FULL_MATRIX_UNITS = 25            # 5x5 matrix crossbar
_K_CROSSBAR = 1.73 / (_FULL_MATRIX_UNITS * _BASE_WIDTH ** 2)
_K_BUFFER = 0.17 / (5 * 2 * 8 * _BASE_WIDTH)   # ports x VCs x depth x bytes
_K_ALLOCATOR = 0.004 / (2 ** 2)                # per VC^2
_K_LINK = 0.175 / _BASE_WIDTH                  # per byte of channel width


@dataclass(frozen=True)
class RouterArea:
    """Per-router area breakdown in mm² (65 nm)."""

    crossbar: float
    buffers: float
    allocator: float

    @property
    def total(self) -> float:
        return self.crossbar + self.buffers + self.allocator


def crossbar_units(half: bool, inject_ports: int = 1,
                   eject_ports: int = 1) -> float:
    """Datapath complexity in matrix-crossbar unit cells."""
    if half:
        # One (1 + I)-input mux per mesh output plus a 4-input mux per
        # ejection port (Figure 13).
        return 4 * (1 + inject_ports) + 4 * eject_ports
    return (4 + inject_ports) * (4 + eject_ports)


def router_area(channel_width: int, num_vcs: int, half: bool = False,
                buffer_depth: int = 8, inject_ports: int = 1,
                eject_ports: int = 1) -> RouterArea:
    """Area of one router instance."""
    if channel_width <= 0 or num_vcs <= 0 or buffer_depth <= 0:
        raise ValueError("router parameters must be positive")
    units = crossbar_units(half, inject_ports, eject_ports)
    crossbar = _K_CROSSBAR * units * channel_width ** 2
    buffered_ports = 4 + inject_ports
    buffers = _K_BUFFER * buffered_ports * num_vcs * buffer_depth * (
        channel_width)
    allocator = _K_ALLOCATOR * num_vcs ** 2
    return RouterArea(crossbar, buffers, allocator)


def link_area(channel_width: int) -> float:
    """Area of one unidirectional mesh link."""
    if channel_width <= 0:
        raise ValueError("channel width must be positive")
    return _K_LINK * channel_width


def mesh_link_count(cols: int, rows: int) -> int:
    """Unidirectional links of a cols x rows mesh (120 for 6x6)."""
    return 2 * ((cols - 1) * rows + cols * (rows - 1))
