"""Network design points and assembly.

A :class:`NetworkDesign` names one point in the paper's design space
(Table V abbreviations): placement (TB / CP), routing (DOR / CR), full or
checkerboard routers, channel width, VC count, channel slicing into a
dedicated double network, and multi-port MC routers.  ``build`` turns a
design plus a mesh into a :class:`NetworkSystem` — one or two
:class:`~repro.noc.network.MeshNetwork` instances behind the single
interface the closed-loop simulator and open-loop harness drive.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..noc.invariants import (DeadlockError, audit_system,
                              format_system_state)
from ..noc.network import MeshNetwork, NocParams, _StepperContext
from ..noc.packet import Packet, TrafficClass
from ..noc.router import RouterSpec
from ..noc.routing import DorXY, DorYX, Romm2Phase, RoutingAlgorithm
from ..noc.stats import NetworkStats, merge_stats
from ..noc.topology import Coord, Mesh
from ..noc.vc import VcConfig, dedicated_vc_config, shared_vc_config
from .checkerboard_routing import CheckerboardRouting
from .placement import (HALF_ROUTER_PARITY, checkerboard_placement,
                        compute_nodes, top_bottom_placement,
                        validate_checkerboard_placement)


@dataclass(frozen=True)
class NetworkDesign:
    """One NoC design point."""

    name: str
    placement: str = "top_bottom"        # "top_bottom" | "checkerboard"
    routing: str = "dor"                 # "dor" | "cr"
    half_routers: bool = False
    channel_width: int = 16              # bytes; total across all slices
    vcs_per_class: int = 1               # routing VCs per protocol class
    double_network: bool = False         # channel slicing (Section IV-C)
    #: How the two slices carry traffic.  "dedicated" follows the paper's
    #: description (one slice for requests, one for replies — no protocol
    #: VCs needed).  "balanced" lets both slices carry both classes with
    #: protocol VCs in each, splitting packets across slices round-robin;
    #: this keeps the reply path's effective bandwidth equal to the single
    #: network's for the byte-asymmetric many-to-few-to-many traffic.
    slice_mode: str = "dedicated"
    mc_inject_ports: int = 1
    mc_eject_ports: int = 1
    #: How CR picks the two-phase intermediate full-router: "random" (the
    #: paper) or "first" (deterministic; ablation).
    cr_intermediate: str = "random"
    router_latency: int = 4
    half_router_latency: int = 3
    channel_latency: int = 1
    vc_buffer_depth: int = 8
    source_queue_flits: Optional[int] = 16
    mc_coords: Optional[Sequence[Coord]] = None  # override the placement
    #: Self-check knobs (read-only audits; results are bit-identical with
    #: them on or off).  ``check_interval`` > 0 audits flit/credit/VC
    #: invariants every that many cycles; ``watchdog_cycles`` > 0 arms the
    #: deadlock watchdog.  See ``repro.noc.invariants``.
    check_interval: int = 0
    watchdog_cycles: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on the first constraint violation.

        The full rule set (with stable rule names, used by the design-space
        exploration engine to reject illegal points up front) lives in
        :func:`design_constraint_violations`.
        """
        violations = design_constraint_violations(self)
        if violations:
            raise ValueError(violations[0].reason)


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated design-legality rule.

    ``rule`` is a stable kebab-case identifier (safe to match on in tests
    and exploration artifacts); ``reason`` is the human-readable message
    :meth:`NetworkDesign.validate` raises.
    """

    rule: str
    reason: str


def design_constraint_violations(design: NetworkDesign,
                                 mesh: Optional[Mesh] = None,
                                 num_mcs: int = 8
                                 ) -> List[ConstraintViolation]:
    """Every constraint ``design`` violates, each with a named rule.

    With ``mesh`` given, placement feasibility on that mesh is checked too
    (MC capacity, half-router neighborhoods, explicit ``mc_coords``).  The
    design-space exploration engine runs this pass over a whole candidate
    space so illegal axis combinations are rejected up front — with a
    reason — instead of failing (or deadlocking) mid-simulation.
    """
    v: List[ConstraintViolation] = []

    def bad(rule: str, reason: str) -> None:
        v.append(ConstraintViolation(rule, reason))

    if design.placement not in ("top_bottom", "checkerboard"):
        bad("unknown-placement", f"unknown placement {design.placement!r}")
    if design.routing not in ("dor", "dor_yx", "cr", "romm"):
        bad("unknown-routing", f"unknown routing {design.routing!r}")
    if design.slice_mode not in ("dedicated", "balanced"):
        bad("unknown-slice-mode", f"unknown slice mode {design.slice_mode!r}")
    if design.cr_intermediate not in ("random", "first"):
        bad("unknown-cr-intermediate",
            f"unknown CR intermediate policy {design.cr_intermediate!r}")

    if design.routing == "cr":
        if not design.half_routers:
            bad("cr-requires-half-routers",
                "checkerboard routing implies half-routers")
        if design.vcs_per_class < 2:
            bad("cr-needs-two-routing-vcs",
                "CR needs 2 routing VCs per class (XY/YX)")
    if design.routing == "romm":
        if design.half_routers:
            bad("romm-needs-full-routers",
                "ROMM turns anywhere and needs full routers")
        if design.vcs_per_class < 2:
            bad("romm-needs-two-routing-vcs",
                "ROMM needs one routing VC per phase")
    if design.half_routers:
        if design.placement != "checkerboard":
            bad("half-routers-need-checkerboard-placement",
                "half-routers require MCs on half-router tiles, i.e. the "
                "checkerboard placement")
        if design.routing in ("dor", "dor_yx"):
            bad("half-routers-need-checkerboard-routing",
                "half-routers only pass traffic straight through; DOR "
                "turns at arbitrary tiles would strand packets at "
                "half-routers — use checkerboard routing (cr)")
    if design.double_network and design.channel_width % 2:
        bad("slicing-needs-even-channel-width",
            "channel slicing halves the channel width")

    min_width = 2 if design.double_network else 1
    if design.channel_width < min_width:
        bad("positive-channel-width",
            f"channel width must cover every slice, got "
            f"{design.channel_width}")
    if design.vcs_per_class < 1:
        bad("positive-vc-count",
            f"need at least one VC per class, got {design.vcs_per_class}")
    if design.vc_buffer_depth < 1:
        bad("positive-vc-buffer-depth",
            f"VC buffers need at least one flit slot, got "
            f"{design.vc_buffer_depth}")
    if design.mc_inject_ports < 1 or design.mc_eject_ports < 1:
        bad("positive-mc-ports",
            "MC routers need at least one injection and one ejection port")
    if design.router_latency < 1 or design.half_router_latency < 1:
        bad("positive-router-latency",
            "router pipelines need at least one stage")
    if design.channel_latency < 0:
        bad("non-negative-channel-latency",
            "channel latency cannot be negative")
    if design.source_queue_flits is not None \
            and design.source_queue_flits < 1:
        bad("positive-source-queue",
            "bounded source queues need at least one flit slot")

    if mesh is not None:
        v.extend(_placement_violations(design, mesh, num_mcs))
    return v


def _placement_violations(design: NetworkDesign, mesh: Mesh,
                          num_mcs: int) -> List[ConstraintViolation]:
    """Mesh-dependent feasibility rules (placement capacity, half-router
    neighborhoods, explicit MC coordinate overrides)."""
    v: List[ConstraintViolation] = []
    half_tiles = [c for c in mesh.coords()
                  if c.parity() == HALF_ROUTER_PARITY]
    if mesh.num_nodes <= num_mcs:
        v.append(ConstraintViolation(
            "mesh-too-small-for-cores",
            f"{mesh.cols}x{mesh.rows} mesh has no compute tiles left "
            f"after placing {num_mcs} MCs"))
    if design.mc_coords is not None:
        seen = set()
        for mc in design.mc_coords:
            if not mesh.contains(mc):
                v.append(ConstraintViolation(
                    "mc-outside-mesh", f"MC {mc} outside the mesh"))
            elif design.half_routers \
                    and mc.parity() != HALF_ROUTER_PARITY:
                v.append(ConstraintViolation(
                    "mc-on-full-router-tile",
                    f"MC {mc} is on a full-router tile; checkerboard "
                    "requires MCs (and L2 banks) at half-router tiles"))
            if mc in seen:
                v.append(ConstraintViolation(
                    "duplicate-mc", f"duplicate MC placement {mc}"))
            seen.add(mc)
    elif design.placement == "checkerboard":
        if num_mcs > len(half_tiles):
            v.append(ConstraintViolation(
                "checkerboard-placement-capacity",
                f"not enough half-router tiles for the MCs "
                f"({num_mcs} MCs, {len(half_tiles)} tiles)"))
    else:
        per_row, remainder = divmod(num_mcs, 2)
        if per_row + remainder > mesh.cols:
            v.append(ConstraintViolation(
                "top-bottom-placement-capacity",
                f"too many MCs for the top/bottom rows "
                f"({num_mcs} MCs, {mesh.cols} columns)"))
    if design.half_routers:
        stranded = [c for c in half_tiles
                    if not any(n.parity() != HALF_ROUTER_PARITY
                               for _, n in mesh.neighbors(c))]
        if stranded:
            v.append(ConstraintViolation(
                "half-router-neighborhood",
                f"half-router tiles {stranded} have no full-router "
                "neighbor; every half-router needs a legal full-router "
                "neighborhood to turn through"))
    return v


#: ``NetworkDesign`` fields a search space may enumerate over.
MATERIALIZABLE_FIELDS = frozenset(
    f.name for f in dataclasses.fields(NetworkDesign) if f.name != "name")


def materialize_design(name: str, base: Optional[NetworkDesign] = None,
                       **overrides: Any) -> NetworkDesign:
    """Materialize one design point from a base design plus field overrides.

    This is the space→design step of the exploration engine: ``overrides``
    are checked against the :class:`NetworkDesign` schema (unknown fields
    raise immediately, with a did-you-mean suggestion) but the result is
    *not* validated — run :func:`design_constraint_violations` on it, so an
    illegal point is reported with named reasons rather than an exception.
    """
    base = base if base is not None else BASELINE
    unknown = sorted(set(overrides) - MATERIALIZABLE_FIELDS)
    if unknown:
        hint = _did_you_mean(unknown[0], MATERIALIZABLE_FIELDS)
        raise TypeError(
            f"unknown NetworkDesign field(s) {unknown};{hint} "
            f"materializable: {sorted(MATERIALIZABLE_FIELDS)}")
    return replace(base, name=name, **overrides)


def _did_you_mean(name: str, known) -> str:
    """`` did you mean 'x'?`` hint (empty when nothing is close)."""
    matches = difflib.get_close_matches(name, list(known), n=1, cutoff=0.5)
    return f" did you mean {matches[0]!r}?" if matches else ""


class NetworkSystem:
    """One or two physical networks behind a single injection interface."""

    def __init__(self, design: NetworkDesign, mesh: Mesh,
                 networks: List[MeshNetwork], mc_nodes: List[Coord]) -> None:
        self.design = design
        self.mesh = mesh
        self.networks = networks
        self.mc_nodes = list(mc_nodes)
        self.compute_nodes = compute_nodes(mesh, mc_nodes)
        self.cycle = 0
        self._slice_rr = 0
        # Which slices carry each traffic class is static — computed once
        # instead of filtering the slice list per injected packet.
        self._carriers = {}
        if (len(self.networks) == 1
                and all(self.networks[0].vc_config.carries(t)
                        for t in TrafficClass)):
            # Single slice carrying every class: the per-packet dispatch
            # through ``_network_for`` is a no-op — inject directly.
            self.try_inject = self.networks[0].try_inject

    def _network_for(self, packet: Packet) -> MeshNetwork:
        tclass = packet.traffic_class
        carriers = self._carriers.get(tclass)
        if carriers is None:
            carriers = [n for n in self.networks
                        if n.vc_config.carries(tclass)]
            self._carriers[tclass] = carriers
        if not carriers:
            raise ValueError(f"no network carries {packet.traffic_class!r}")
        if len(carriers) == 1:
            return carriers[0]
        # Balanced slicing: spread packets across the slices round-robin.
        self._slice_rr = (self._slice_rr + 1) % len(carriers)
        return carriers[self._slice_rr]

    def try_inject(self, packet: Packet, cycle: int) -> bool:
        return self._network_for(packet).try_inject(packet, cycle)

    def set_ejection_handler(self, coord: Coord,
                             handler: Callable[[Packet, int], None]) -> None:
        for network in self.networks:
            network.set_ejection_handler(coord, handler)

    def step(self, cycle: Optional[int] = None) -> None:
        self.cycle = self.cycle + 1 if cycle is None else cycle
        for network in self.networks:
            network.step(self.cycle)

    @property
    def idle(self) -> bool:
        return all(network.idle for network in self.networks)

    @property
    def stats(self) -> NetworkStats:
        if len(self.networks) == 1:
            return self.networks[0].stats
        return merge_stats([n.stats for n in self.networks])

    def enable_checks(self, check_interval: int = 64,
                      watchdog_cycles: int = 0) -> None:
        """Attach the invariant checker to every physical slice."""
        for network in self.networks:
            network.enable_checks(check_interval, watchdog_cycles)

    def enable_tracer(self, tracer) -> None:
        """Attach (or detach) a read-only packet tracer to every slice."""
        for network in self.networks:
            network.enable_tracer(tracer)

    def use_reference_stepper(self) -> None:
        """Switch every slice to the exhaustive-scan stepper (idle-only)."""
        for network in self.networks:
            network.use_reference_stepper()

    def use_event_stepper(self) -> None:
        """Switch every slice (back) to the event stepper (idle-only)."""
        for network in self.networks:
            network.use_event_stepper()

    def use_batched_stepper(self) -> None:
        """Switch every slice to the batched SoA stepper (idle-only)."""
        for network in self.networks:
            network.use_batched_stepper()

    @property
    def stepper_backend(self) -> str:
        """Backend every slice runs on (they are switched in lockstep)."""
        backends = {n.stepper_backend for n in self.networks}
        if len(backends) != 1:
            raise RuntimeError(
                f"network slices disagree on the stepper backend: "
                f"{sorted(backends)}")
        return next(iter(backends))

    def use_stepper(self, backend: str):
        """Context manager: run every slice on ``backend``, restoring the
        previous backend on exit (idle-only at both edges, nests)."""
        return _StepperContext(self, backend)

    def audit(self) -> List[str]:
        """Run the full invariant audit on every slice now; returns the
        list of violations (empty = clean)."""
        return audit_system(self)

    def run_until_idle(self, max_cycles: int = 1_000_000) -> int:
        start = self.cycle
        while not self.idle:
            if self.cycle - start > max_cycles:
                raise DeadlockError(
                    f"network system {self.design.name!r} failed to drain "
                    f"within {max_cycles} cycles (deadlock?)\n"
                    + format_system_state(self))
            self.step()
        return self.cycle - start


def mc_placement(design: NetworkDesign, mesh: Mesh,
                 num_mcs: int = 8) -> List[Coord]:
    """MC coordinates for a design: explicit override, staggered
    checkerboard, or the top-bottom baseline."""
    if design.mc_coords is not None:
        mcs = list(design.mc_coords)
    elif design.placement == "checkerboard":
        mcs = checkerboard_placement(mesh, num_mcs)
    else:
        mcs = top_bottom_placement(mesh, num_mcs)
    if design.half_routers:
        validate_checkerboard_placement(mesh, mcs)
    return mcs


def _router_specs(design: NetworkDesign, mesh: Mesh,
                  mcs: Sequence[Coord]) -> Dict[Coord, RouterSpec]:
    mc_set = set(mcs)
    specs = {}
    for coord in mesh.coords():
        half = design.half_routers and coord.parity() == HALF_ROUTER_PARITY
        latency = (design.half_router_latency if half
                   else design.router_latency)
        is_mc = coord in mc_set
        specs[coord] = RouterSpec(
            coord=coord,
            half=half,
            pipeline_latency=latency,
            num_inject_ports=design.mc_inject_ports if is_mc else 1,
            num_eject_ports=design.mc_eject_ports if is_mc else 1,
        )
    return specs


def _make_routing(design: NetworkDesign, mesh: Mesh) -> RoutingAlgorithm:
    if design.routing == "cr":
        return CheckerboardRouting(
            mesh, intermediate_policy=design.cr_intermediate)
    if design.routing == "romm":
        return Romm2Phase(mesh)
    if design.routing == "dor_yx":
        return DorYX(mesh)
    return DorXY(mesh)


def build(design: NetworkDesign, mesh: Optional[Mesh] = None,
          num_mcs: int = 8, seed: int = 1) -> NetworkSystem:
    """Assemble the network(s) described by ``design``."""
    design.validate()
    mesh = mesh if mesh is not None else Mesh(6, 6)
    mcs = mc_placement(design, mesh, num_mcs)
    specs = _router_specs(design, mesh, mcs)
    route_split = design.routing in ("cr", "romm")

    networks: List[MeshNetwork] = []
    if design.double_network:
        width = design.channel_width // 2
        for i in range(2):
            # Section IV-C: the number of VC buffers stays constant across
            # the slicing; each buffer holds the same flit count at half the
            # flit size, so its storage is halved.
            params = NocParams(channel_width=width,
                               vc_buffer_depth=design.vc_buffer_depth,
                               channel_latency=design.channel_latency,
                               source_queue_flits=design.source_queue_flits,
                               check_interval=design.check_interval,
                               watchdog_cycles=design.watchdog_cycles)
            if design.slice_mode == "dedicated":
                tclass = (TrafficClass.REQUEST, TrafficClass.REPLY)[i]
                vc_config = dedicated_vc_config(
                    tclass, num_vcs=design.vcs_per_class,
                    route_split=route_split)
                name = f"{design.name}-{tclass.name.lower()}"
            else:
                vc_config = shared_vc_config(
                    vcs_per_class=design.vcs_per_class,
                    route_split=route_split)
                name = f"{design.name}-slice{i}"
            networks.append(MeshNetwork(
                mesh, specs, params, vc_config,
                _make_routing(design, mesh), seed=seed + i, name=name))
    else:
        params = NocParams(channel_width=design.channel_width,
                           vc_buffer_depth=design.vc_buffer_depth,
                           channel_latency=design.channel_latency,
                           source_queue_flits=design.source_queue_flits,
                           check_interval=design.check_interval,
                           watchdog_cycles=design.watchdog_cycles)
        vc_config = shared_vc_config(vcs_per_class=design.vcs_per_class,
                                     route_split=route_split)
        networks.append(MeshNetwork(mesh, specs, params, vc_config,
                                    _make_routing(design, mesh), seed=seed,
                                    name=design.name))
    return NetworkSystem(design, mesh, networks, mcs)


# ---------------------------------------------------------------------------
# Named design points (Table V abbreviations).
# ---------------------------------------------------------------------------

BASELINE = NetworkDesign(name="TB-DOR")

DOUBLE_BW = replace(BASELINE, name="2x-TB-DOR", channel_width=32)

ONE_CYCLE = replace(BASELINE, name="TB-DOR-1cyc", router_latency=1,
                    half_router_latency=1)

CP_DOR = replace(BASELINE, name="CP-DOR", placement="checkerboard")

CP_DOR_4VC = replace(CP_DOR, name="CP-DOR-4VC", vcs_per_class=2)

CP_CR = replace(CP_DOR, name="CP-CR-4VC", routing="cr", half_routers=True,
                vcs_per_class=2)

# Note on slice_mode: Section IV-C describes a *dedicated* double network
# (one slice per traffic class), but with read replies carrying ~8x the
# request bytes, a dedicated reply slice at half channel width halves the
# usable reply-path bandwidth and cannot reproduce Figure 18's "no change in
# performance".  The named designs therefore default to the load-balanced
# double network; the dedicated variant remains available and is quantified
# by benchmarks/bench_ablation_slicing.py.
#: ROMM on a full-router mesh with checkerboard placement — the related
#: work CR is compared against (same VC budget, pricier routers).
CP_ROMM = replace(CP_DOR_4VC, name="CP-ROMM-4VC", routing="romm")

DOUBLE_CP_CR = replace(CP_CR, name="Double-CP-CR", double_network=True,
                       slice_mode="balanced")

DOUBLE_CP_CR_2P = replace(DOUBLE_CP_CR, name="Double-CP-CR-2P",
                          mc_inject_ports=2)

DOUBLE_CP_CR_2E = replace(DOUBLE_CP_CR, name="Double-CP-CR-2E",
                          mc_eject_ports=2)

DOUBLE_CP_CR_2P2E = replace(DOUBLE_CP_CR, name="Double-CP-CR-2P2E",
                            mc_inject_ports=2, mc_eject_ports=2)

DOUBLE_CP_CR_DEDICATED = replace(CP_CR, name="Double-CP-CR-dedicated",
                                 double_network=True, slice_mode="dedicated")

#: The paper's combined throughput-effective design (Section V, Figure 20):
#: checkerboard placement + checkerboard routing + dedicated double network
#: + 2 injection ports at MC routers.
THROUGHPUT_EFFECTIVE = replace(DOUBLE_CP_CR_2P, name="Throughput-Effective")

NAMED_DESIGNS: Dict[str, NetworkDesign] = {
    d.name: d for d in (
        BASELINE, DOUBLE_BW, ONE_CYCLE, CP_DOR, CP_DOR_4VC, CP_CR,
        CP_ROMM, DOUBLE_CP_CR, DOUBLE_CP_CR_2P, DOUBLE_CP_CR_2E, DOUBLE_CP_CR_2P2E,
        DOUBLE_CP_CR_DEDICATED, THROUGHPUT_EFFECTIVE,
    )
}


def open_loop_variant(design: NetworkDesign) -> NetworkDesign:
    """The same design with unbounded source queues — the open-loop
    convention where source queueing time counts toward packet latency."""
    return replace(design, source_queue_flits=None)


def checked_variant(design: NetworkDesign, check_interval: int = 64,
                    watchdog_cycles: int = 0) -> NetworkDesign:
    """The same design with runtime invariant audits (and optionally the
    deadlock watchdog) enabled.  Audits are read-only: results are
    bit-identical to the unchecked design."""
    return replace(design, check_interval=check_interval,
                   watchdog_cycles=watchdog_cycles)


def design_by_name(name: str) -> NetworkDesign:
    """Look up one of the named design points (Table V abbreviations).

    An unknown name raises ``KeyError`` with a closest-match "did you
    mean?" suggestion, so a CLI typo points at the intended design."""
    try:
        return NAMED_DESIGNS[name]
    except KeyError:
        hint = _did_you_mean(name, NAMED_DESIGNS)
        raise KeyError(
            f"unknown design {name!r};{hint} "
            f"known: {sorted(NAMED_DESIGNS)}"
        ) from None
