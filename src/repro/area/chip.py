"""Chip-level area accounting and throughput-effectiveness (Section V-F).

The paper anchors its estimates on the GeForce GTX 280: 576 mm² at 65 nm,
of which 486 mm² is "compute" (everything that is not the NoC, obtained by
subtracting the baseline mesh's router and link area).  A design's total
chip area is compute area plus its NoC area, and the headline metric is
throughput-effectiveness: application IPC per mm².
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.builder import NetworkDesign
from ..core.placement import HALF_ROUTER_PARITY
from ..noc.topology import Mesh
from .orion import RouterArea, link_area, mesh_link_count, router_area

#: GeForce GTX 280 die area at 65 nm (Section V-F).
GTX280_AREA_MM2 = 576.0


@dataclass(frozen=True)
class NocArea:
    """Area of one NoC design point (all values mm²)."""

    name: str
    router_sum: float
    link_sum: float
    compute_area: float

    @property
    def noc_total(self) -> float:
        return self.router_sum + self.link_sum

    @property
    def total_chip(self) -> float:
        return self.compute_area + self.noc_total

    @property
    def overhead_fraction(self) -> float:
        """NoC overhead as a fraction of the GTX280 die (Table VI column)."""
        return self.noc_total / GTX280_AREA_MM2


def _slice_vcs(design: NetworkDesign) -> int:
    """VCs per router in one physical network of the design."""
    if design.double_network and design.slice_mode == "dedicated":
        return design.vcs_per_class          # one protocol class per slice
    return 2 * design.vcs_per_class          # request + reply classes


def design_noc_area(design: NetworkDesign, mesh: Optional[Mesh] = None,
                    num_mcs: int = 8,
                    compute_area: Optional[float] = None,
                    multiport_both_slices: Optional[bool] = None) -> NocArea:
    """Area of the network(s) described by ``design``.

    ``multiport_both_slices`` controls whether multi-port MC routers are
    counted in both slices of a double network (the balanced slicing
    default) or only in the reply slice (the paper's dedicated layout).
    """
    mesh = mesh if mesh is not None else Mesh(6, 6)
    if compute_area is None:
        compute_area = compute_area_mm2()
    if multiport_both_slices is None:
        multiport_both_slices = (design.slice_mode == "balanced")

    slices = 2 if design.double_network else 1
    width = design.channel_width // slices
    vcs = _slice_vcs(design)
    depth = design.vc_buffer_depth

    half_tiles = sum(1 for c in mesh.coords()
                     if design.half_routers
                     and c.parity() == HALF_ROUTER_PARITY)
    full_tiles = mesh.num_nodes - half_tiles
    # All MC tiles sit at half-routers under the checkerboard organization,
    # at full routers otherwise.
    mc_on_half = design.half_routers

    router_sum = 0.0
    for slice_index in range(slices):
        multiport = (design.mc_inject_ports > 1
                     or design.mc_eject_ports > 1)
        upgraded = multiport and (multiport_both_slices or slice_index == 1
                                  or slices == 1)
        inj = design.mc_inject_ports if upgraded else 1
        ej = design.mc_eject_ports if upgraded else 1
        plain = router_area(width, vcs, half=False, buffer_depth=depth)
        half = router_area(width, vcs, half=True, buffer_depth=depth)
        mc = router_area(width, vcs, half=mc_on_half, buffer_depth=depth,
                         inject_ports=inj, eject_ports=ej)
        if mc_on_half:
            router_sum += (full_tiles * plain.total
                           + (half_tiles - num_mcs) * half.total
                           + num_mcs * mc.total)
        else:
            router_sum += (full_tiles - num_mcs) * plain.total \
                + half_tiles * half.total + num_mcs * mc.total
    link_sum = slices * mesh_link_count(mesh.cols, mesh.rows) \
        * link_area(width)
    return NocArea(design.name, router_sum, link_sum, compute_area)


def baseline_noc_area(mesh: Optional[Mesh] = None) -> NocArea:
    """NoC area of the balanced baseline mesh (Table VI, first row)."""
    from ..core.builder import BASELINE
    return design_noc_area(BASELINE, mesh, compute_area=0.0)


def compute_area_mm2(mesh: Optional[Mesh] = None) -> float:
    """GTX280 die minus the baseline mesh NoC (~486 mm², Section V-F)."""
    return GTX280_AREA_MM2 - baseline_noc_area(mesh).noc_total


def scaled_compute_area_mm2(mesh: Mesh) -> float:
    """Compute area of a scaled machine: the GTX280's per-tile compute area
    (the 6x6 anchor divided by its 36 tiles) times the tile count.

    For the paper's 6x6 mesh this is exactly :func:`compute_area_mm2`; the
    design-space exploration engine uses it to keep throughput-
    effectiveness comparable when a mesh-size axis grows the machine."""
    return compute_area_mm2() / 36.0 * mesh.num_nodes


def design_chip_area_mm2(design: NetworkDesign,
                         mesh: Optional[Mesh] = None,
                         num_mcs: int = 8) -> float:
    """Total chip area (compute + NoC) of ``design`` on ``mesh``.

    The single entry point the exploration engine ranks throughput-
    effectiveness against: on the default 6x6 mesh it equals
    ``design_noc_area(design).total_chip``; on other meshes the compute
    area scales per tile (:func:`scaled_compute_area_mm2`)."""
    mesh = mesh if mesh is not None else Mesh(6, 6)
    return design_noc_area(design, mesh, num_mcs,
                           compute_area=scaled_compute_area_mm2(mesh)
                           ).total_chip


def throughput_effectiveness(ipc: float, total_chip_area: float) -> float:
    """The paper's figure of merit: IPC per mm²."""
    if total_chip_area <= 0:
        raise ValueError("chip area must be positive")
    return ipc / total_chip_area


def throughput_effectiveness_gain(ipc_ratio: float, area_a: float,
                                  area_b: float) -> float:
    """Relative IPC/mm² improvement of design B over design A given B's
    IPC ratio versus A (e.g. 1.17 x 576/537.4 - 1 = 25.4 %)."""
    return ipc_ratio * (area_a / area_b) - 1.0
