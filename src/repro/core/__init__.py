"""The paper's contribution: throughput-effective NoC designs.

* Checkerboard placement of memory controllers (:mod:`placement`).
* The checkerboard full-/half-router organization and its routing algorithm
  (:mod:`checkerboard_routing`, :mod:`half_router`).
* Channel slicing into a dedicated double network and multi-port MC routers
  (design points in :mod:`builder`).
"""

from .builder import (BASELINE, CP_CR, CP_DOR, CP_DOR_4VC, CP_ROMM,
                      DOUBLE_BW,
                      DOUBLE_CP_CR, DOUBLE_CP_CR_2E, DOUBLE_CP_CR_2P,
                      DOUBLE_CP_CR_2P2E, DOUBLE_CP_CR_DEDICATED,
                      MATERIALIZABLE_FIELDS, NAMED_DESIGNS, ONE_CYCLE,
                      THROUGHPUT_EFFECTIVE, ConstraintViolation,
                      NetworkDesign, NetworkSystem, build, design_by_name,
                      design_constraint_violations, materialize_design,
                      mc_placement, open_loop_variant)
from .checkerboard_routing import (CheckerboardRouting, RouteCase,
                                   TracedRoute, UnroutableError, classify,
                                   intermediate_candidates, is_half_router,
                                   trace_route)
from .half_router import CrossbarShape, crossbar_shape
from .placement import (DEFAULT_CHECKERBOARD_6X6, HALF_ROUTER_PARITY,
                        checkerboard_placement, compute_nodes,
                        random_checkerboard_placements, top_bottom_placement,
                        validate_checkerboard_placement)

__all__ = [
    "BASELINE", "CP_CR", "CP_DOR", "CP_DOR_4VC", "CP_ROMM",
    "CheckerboardRouting",
    "CrossbarShape", "DEFAULT_CHECKERBOARD_6X6", "DOUBLE_BW",
    "DOUBLE_CP_CR", "DOUBLE_CP_CR_2E", "DOUBLE_CP_CR_2P",
    "DOUBLE_CP_CR_2P2E", "DOUBLE_CP_CR_DEDICATED", "HALF_ROUTER_PARITY",
    "MATERIALIZABLE_FIELDS", "ConstraintViolation", "NAMED_DESIGNS",
    "NetworkDesign", "NetworkSystem", "ONE_CYCLE", "RouteCase",
    "THROUGHPUT_EFFECTIVE", "TracedRoute", "UnroutableError", "build",
    "checkerboard_placement", "classify", "compute_nodes",
    "crossbar_shape", "design_by_name", "design_constraint_violations",
    "intermediate_candidates",
    "is_half_router", "materialize_design", "mc_placement",
    "random_checkerboard_placements",
    "open_loop_variant", "top_bottom_placement", "trace_route",
    "validate_checkerboard_placement",
]
