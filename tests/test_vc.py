"""Tests for virtual-channel configuration and class/group mapping."""

import pytest

from repro.noc.packet import RouteGroup, TrafficClass
from repro.noc.vc import VcConfig, dedicated_vc_config, shared_vc_config


class TestSharedConfig:
    def test_baseline_two_vcs(self):
        cfg = shared_vc_config(vcs_per_class=1)
        assert cfg.num_vcs == 2
        assert cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.ANY) == (0,)
        assert cfg.allowed_vcs(TrafficClass.REPLY, RouteGroup.ANY) == (1,)

    def test_four_vc_dor(self):
        cfg = shared_vc_config(vcs_per_class=2)
        assert cfg.num_vcs == 4
        assert cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.ANY) == (0, 1)
        assert cfg.allowed_vcs(TrafficClass.REPLY, RouteGroup.ANY) == (2, 3)

    def test_checkerboard_split(self):
        cfg = shared_vc_config(vcs_per_class=2, route_split=True)
        assert cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.XY) == (0,)
        assert cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.YX) == (1,)
        assert cfg.allowed_vcs(TrafficClass.REPLY, RouteGroup.XY) == (2,)
        assert cfg.allowed_vcs(TrafficClass.REPLY, RouteGroup.YX) == (3,)

    def test_split_disjoint_and_covering(self):
        cfg = shared_vc_config(vcs_per_class=2, route_split=True)
        for tclass in TrafficClass:
            xy = set(cfg.allowed_vcs(tclass, RouteGroup.XY))
            yx = set(cfg.allowed_vcs(tclass, RouteGroup.YX))
            both = set(cfg.allowed_vcs(tclass, RouteGroup.ANY))
            assert xy.isdisjoint(yx)
            assert xy | yx == both

    def test_classes_disjoint(self):
        cfg = shared_vc_config(vcs_per_class=2)
        req = set(cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.ANY))
        rep = set(cfg.allowed_vcs(TrafficClass.REPLY, RouteGroup.ANY))
        assert req.isdisjoint(rep)

    def test_carries_both(self):
        cfg = shared_vc_config()
        assert cfg.carries(TrafficClass.REQUEST)
        assert cfg.carries(TrafficClass.REPLY)


class TestDedicatedConfig:
    def test_reply_slice(self):
        cfg = dedicated_vc_config(TrafficClass.REPLY, num_vcs=2)
        assert cfg.num_vcs == 2
        assert cfg.carries(TrafficClass.REPLY)
        assert not cfg.carries(TrafficClass.REQUEST)

    def test_wrong_class_rejected(self):
        cfg = dedicated_vc_config(TrafficClass.REPLY, num_vcs=2)
        with pytest.raises(ValueError):
            cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.ANY)

    def test_split_on_dedicated(self):
        cfg = dedicated_vc_config(TrafficClass.REQUEST, num_vcs=2,
                                  route_split=True)
        assert cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.XY) == (0,)
        assert cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.YX) == (1,)

    def test_split_needs_two_vcs(self):
        cfg = dedicated_vc_config(TrafficClass.REQUEST, num_vcs=1,
                                  route_split=True)
        with pytest.raises(ValueError):
            cfg.allowed_vcs(TrafficClass.REQUEST, RouteGroup.XY)


class TestValidation:
    def test_unknown_group_rejected(self):
        cfg = shared_vc_config(vcs_per_class=2, route_split=True)
        with pytest.raises(ValueError):
            cfg.allowed_vcs(TrafficClass.REQUEST, "diagonal")
