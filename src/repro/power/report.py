"""Chip-level power accounting: activity counts → :class:`PowerReport`.

The bridge between the simulator's always-on activity counters
(``NetworkStats.crossbar_traversals`` / ``buffer_reads`` /
``buffer_writes`` / ``link_flit_hops``, surfaced on every
``SimulationResult`` and ``LoadLatencyPoint``) and the per-event energy
model in :mod:`repro.power.orion`.  Because the counters ride along in
every result payload, a :class:`PowerReport` is computable from any
cached or served result *without rerunning the simulation* — and
technology scaling is purely analytic, so one simulation prices a design
at every node of the sweep.

Attribution follows the area model's structure split
(:func:`repro.area.chip.design_noc_area`): leakage is exact per
structure group (plain routers, half-routers, MC routers, links); for
dynamic energy the aggregate counters are distributed over router
instances uniformly (the counters are chip-wide sums, not per-router),
so each traversal is priced at the tile-count-weighted mean per-event
energy of the design's router mix.  Both choices are documented
contracts pinned by the power goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..area.chip import _slice_vcs, design_noc_area
from ..area.orion import link_area, mesh_link_count, router_area
from ..core.builder import NetworkDesign
from ..core.placement import HALF_ROUTER_PARITY
from ..noc.topology import Mesh
from .orion import (crossbar_energy_pj, buffer_energy_pj,
                    allocator_energy_pj, link_energy_pj, leakage_w)
from .tech import TechNode, tech_node


@dataclass(frozen=True)
class ActivityCounts:
    """Chip-wide activity over one measurement window (all slices)."""

    cycles: int
    crossbar_traversals: int
    buffer_reads: int
    buffer_writes: int
    link_flit_hops: int
    flits_ejected: int = 0

    @classmethod
    def from_result(cls, result) -> "ActivityCounts":
        """Extract counts from a ``SimulationResult`` (window cycles are
        ``icnt_cycles``) or a ``LoadLatencyPoint`` (whole-run
        ``cycles``)."""
        cycles = getattr(result, "icnt_cycles", None)
        if cycles is None:
            cycles = getattr(result, "cycles", 0)
        return cls(cycles=cycles,
                   crossbar_traversals=result.crossbar_traversals,
                   buffer_reads=result.buffer_reads,
                   buffer_writes=result.buffer_writes,
                   link_flit_hops=result.link_flit_hops,
                   flits_ejected=result.flits_ejected)


@dataclass(frozen=True)
class PowerReport:
    """Power of one NoC design point under one activity window.

    Dynamic components are watts at the node's interconnect clock;
    leakage is split by structure group.  All values are chip-wide.
    """

    name: str
    tech_nm: int
    frequency_ghz: float
    cycles: int
    # dynamic (W)
    crossbar_w: float
    buffer_w: float
    allocator_w: float
    link_w: float
    # leakage (W) by structure group
    leak_routers_w: float
    leak_links_w: float
    # derived
    energy_per_flit_pj: float        # total window energy / ejected flits
    ipc_per_watt: Optional[float] = None

    @property
    def dynamic_w(self) -> float:
        return (self.crossbar_w + self.buffer_w + self.allocator_w
                + self.link_w)

    @property
    def leakage_w(self) -> float:
        return self.leak_routers_w + self.leak_links_w

    @property
    def total_w(self) -> float:
        """Chip-total NoC power: dynamic + leakage."""
        return self.dynamic_w + self.leakage_w

    def as_dict(self) -> dict:
        from dataclasses import asdict
        data = asdict(self)
        data["dynamic_w"] = self.dynamic_w
        data["leakage_w"] = self.leakage_w
        data["total_w"] = self.total_w
        return data

    def to_json(self) -> dict:
        """JSON-compatible dict (derived totals included for tooling)."""
        return self.as_dict()

    @classmethod
    def from_json(cls, data: dict) -> "PowerReport":
        """Inverse of :meth:`to_json` (derived totals are recomputed)."""
        data = {k: v for k, v in data.items()
                if k not in ("dynamic_w", "leakage_w", "total_w")}
        return cls(**data)


def _router_mix(design: NetworkDesign, mesh: Mesh, num_mcs: int):
    """Tile counts per structure group, mirroring ``design_noc_area``:
    (plain full routers, plain half-routers, MC routers, mc_on_half)."""
    half_tiles = sum(1 for c in mesh.coords()
                     if design.half_routers
                     and c.parity() == HALF_ROUTER_PARITY)
    full_tiles = mesh.num_nodes - half_tiles
    mc_on_half = design.half_routers
    if mc_on_half:
        return full_tiles, half_tiles - num_mcs, num_mcs, True
    return full_tiles - num_mcs, half_tiles, num_mcs, False


def design_power(design: NetworkDesign, activity: ActivityCounts,
                 mesh: Optional[Mesh] = None, num_mcs: int = 8,
                 node: int = 65, ipc: Optional[float] = None,
                 multiport_both_slices: Optional[bool] = None
                 ) -> PowerReport:
    """Price one design point under ``activity`` at technology ``node``.

    The structure walk (slices, per-slice width and VCs, half-router
    parity, multi-port MC upgrades) deliberately mirrors
    :func:`repro.area.chip.design_noc_area` so power and area price the
    same layout.  ``ipc`` (if given) yields the throughput-per-watt
    figure of merit ``ipc / total_w``.
    """
    mesh = mesh if mesh is not None else Mesh(6, 6)
    tech: TechNode = tech_node(node)
    if multiport_both_slices is None:
        multiport_both_slices = (design.slice_mode == "balanced")

    slices = 2 if design.double_network else 1
    width = design.channel_width // slices
    vcs = _slice_vcs(design)
    depth = design.vc_buffer_depth

    plain_n, half_n, mc_n, mc_on_half = _router_mix(design, mesh, num_mcs)

    # Tile-count-weighted mean crossbar energy per traversal across the
    # design's router mix (the counters are chip-wide aggregates).  The
    # multi-port MC upgrade is averaged over slices exactly as the area
    # model counts it.
    multiport = (design.mc_inject_ports > 1 or design.mc_eject_ports > 1)
    xbar_sum = 0.0
    for slice_index in range(slices):
        upgraded = multiport and (multiport_both_slices or slice_index == 1
                                  or slices == 1)
        inj = design.mc_inject_ports if upgraded else 1
        ej = design.mc_eject_ports if upgraded else 1
        xbar_sum += (
            plain_n * crossbar_energy_pj(width, half=False)
            + half_n * crossbar_energy_pj(width, half=True)
            + mc_n * crossbar_energy_pj(width, half=mc_on_half,
                                        inject_ports=inj, eject_ports=ej))
    xbar_pj = xbar_sum / (slices * mesh.num_nodes)

    write_pj = buffer_energy_pj(width, vcs, depth, write=True)
    read_pj = buffer_energy_pj(width, vcs, depth, write=False)
    alloc_pj = allocator_energy_pj(vcs)
    hop_pj = link_energy_pj(width)

    # Window energy (pJ) at 65 nm, then node-scaled; P = E · f / cycles.
    dyn = tech.dynamic_scale
    hz = tech.frequency_ghz * 1e9
    cycles = activity.cycles

    def watts(events: int, pj_per_event: float) -> float:
        if not cycles:
            return 0.0
        return events * pj_per_event * dyn * 1e-12 * hz / cycles

    crossbar_w = watts(activity.crossbar_traversals, xbar_pj)
    buffer_w = (watts(activity.buffer_reads, read_pj)
                + watts(activity.buffer_writes, write_pj))
    allocator_w = watts(activity.crossbar_traversals, alloc_pj)
    link_w = watts(activity.link_flit_hops, hop_pj)

    # Leakage: exact per structure group from the area model's layout.
    area = design_noc_area(design, mesh, num_mcs, compute_area=0.0,
                           multiport_both_slices=multiport_both_slices)
    leak_scale = tech.leakage_area_scale
    leak_routers = leakage_w(area.router_sum) * leak_scale
    leak_links = leakage_w(area.link_sum) * leak_scale

    total_w = (crossbar_w + buffer_w + allocator_w + link_w
               + leak_routers + leak_links)
    window_energy_pj = total_w / hz * cycles * 1e12 if cycles else 0.0
    energy_per_flit = (window_energy_pj / activity.flits_ejected
                       if activity.flits_ejected else 0.0)
    return PowerReport(
        name=design.name,
        tech_nm=node,
        frequency_ghz=tech.frequency_ghz,
        cycles=cycles,
        crossbar_w=crossbar_w,
        buffer_w=buffer_w,
        allocator_w=allocator_w,
        link_w=link_w,
        leak_routers_w=leak_routers,
        leak_links_w=leak_links,
        energy_per_flit_pj=energy_per_flit,
        ipc_per_watt=(ipc / total_w if ipc is not None and total_w > 0
                      else None),
    )


def power_report(design: NetworkDesign, result, mesh: Optional[Mesh] = None,
                 num_mcs: int = 8, node: int = 65) -> PowerReport:
    """Price ``design`` from any result carrying activity counters
    (``SimulationResult`` or ``LoadLatencyPoint``) — no rerun needed."""
    return design_power(design, ActivityCounts.from_result(result),
                        mesh=mesh, num_mcs=num_mcs, node=node,
                        ipc=getattr(result, "ipc", None))


def node_sweep(design: NetworkDesign, activity: ActivityCounts,
               nodes, mesh: Optional[Mesh] = None, num_mcs: int = 8,
               ipc: Optional[float] = None) -> Dict[int, PowerReport]:
    """One simulation, every node: the same activity window priced at
    each technology node (simulated behaviour is node-independent)."""
    return {nm: design_power(design, activity, mesh=mesh, num_mcs=num_mcs,
                             node=nm, ipc=ipc)
            for nm in nodes}
