"""Router/network timing details: streaming throughput, wormhole body
behaviour, credit-limited throughput with shallow buffers."""

import dataclasses

import pytest

from repro.noc.network import MeshNetwork, NocParams
from repro.noc.packet import read_reply, read_request
from repro.noc.router import RouterSpec
from repro.noc.routing import DorXY
from repro.noc.topology import Coord, Mesh
from repro.noc.vc import shared_vc_config


def line_network(length=6, latency=4, depth=8, vcs=1):
    mesh = Mesh(length, 1)
    params = NocParams(channel_width=16, vc_buffer_depth=depth,
                       source_queue_flits=None)
    specs = {c: RouterSpec(c, pipeline_latency=latency)
             for c in mesh.coords()}
    return MeshNetwork(mesh, specs, params, shared_vc_config(vcs),
                       DorXY(mesh), seed=1)


class TestStreamingThroughput:
    def test_one_flit_per_cycle_steady_state(self):
        """A saturated link moves one flit per cycle once the pipeline
        fills: N back-to-back 4-flit packets eject ~4N cycles apart."""
        net = line_network()
        times = []
        dst = Coord(5, 0)
        net.set_ejection_handler(dst, lambda p, c: times.append(c))
        n = 12
        for _ in range(n):
            net.try_inject(read_reply(Coord(0, 0), dst), 0)
        net.run_until_idle()
        assert len(times) == n
        spacing = [b - a for a, b in zip(times, times[1:])]
        # steady state: one 4-flit packet per 4 cycles
        assert all(s == 4 for s in spacing[3:])

    def test_shallow_buffers_throttle_throughput(self):
        """With 2-flit buffers the credit round trip limits the rate."""
        deep = line_network(depth=8)
        shallow = line_network(depth=2)
        results = {}
        for name, net in (("deep", deep), ("shallow", shallow)):
            times = []
            dst = Coord(5, 0)
            net.set_ejection_handler(dst, lambda p, c: times.append(c))
            for _ in range(10):
                net.try_inject(read_reply(Coord(0, 0), dst), 0)
            net.run_until_idle()
            results[name] = times[-1] - times[0]
        assert results["shallow"] > results["deep"]

    def test_pipeline_fill_time(self):
        """First ejection after ~hops x (pipeline + channel) cycles."""
        net = line_network(latency=4)
        times = []
        dst = Coord(5, 0)
        net.set_ejection_handler(dst, lambda p, c: times.append(c))
        net.try_inject(read_request(Coord(0, 0), dst), 0)
        net.run_until_idle()
        assert 6 * 5 - 2 <= times[0] <= 6 * 5 + 4


class TestWormholeBodies:
    def test_interleaving_across_vcs_not_within(self):
        """Two packets on different VCs may interleave on the link, but
        each packet's flits stay in order."""
        net = line_network(vcs=2)
        dst = Coord(5, 0)
        arrivals = []
        net.set_ejection_handler(dst, lambda p, c: arrivals.append(p.pid))
        a = read_reply(Coord(0, 0), dst)
        b = read_reply(Coord(0, 0), dst)
        net.try_inject(a, 0)
        net.try_inject(b, 0)
        net.run_until_idle()
        assert set(arrivals) == {a.pid, b.pid}

    def test_blocked_head_blocks_bodies(self):
        """With one VC, a packet blocked behind another cannot overtake."""
        net = line_network(vcs=1)
        order = []
        for x, dst in ((0, Coord(5, 0)), (1, Coord(4, 0))):
            net.set_ejection_handler(dst, lambda p, c, d=dst: order.append(d))
        first = read_reply(Coord(0, 0), Coord(5, 0))
        second = read_reply(Coord(0, 0), Coord(4, 0))
        net.try_inject(first, 0)
        net.try_inject(second, 0)
        net.run_until_idle()
        assert order[0] == Coord(5, 0) or order[0] == Coord(4, 0)
        assert len(order) == 2


class TestChannelLatencyKnob:
    @pytest.mark.parametrize("channel_latency", [1, 2, 4])
    def test_latency_scales_with_channel_delay(self, channel_latency):
        mesh = Mesh(6, 1)
        params = NocParams(channel_width=16, channel_latency=channel_latency,
                           source_queue_flits=None)
        specs = {c: RouterSpec(c, pipeline_latency=1)
                 for c in mesh.coords()}
        net = MeshNetwork(mesh, specs, params, shared_vc_config(1),
                          DorXY(mesh), seed=1)
        times = []
        dst = Coord(5, 0)
        net.set_ejection_handler(dst, lambda p, c: times.append(c))
        net.try_inject(read_request(Coord(0, 0), dst), 0)
        net.run_until_idle()
        expected = 6 * (1 + channel_latency)
        assert abs(times[0] - expected) <= 3
