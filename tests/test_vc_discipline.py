"""VC discipline in live networks: protocol classes and routing groups
never share virtual channels."""

import random

from repro.core.builder import CP_CR, build, open_loop_variant
from repro.noc.packet import RouteGroup, TrafficClass, read_reply, \
    read_request
from repro.noc.vc import shared_vc_config


def observed_vc_usage(system, packets, cycles=4000):
    """Run traffic and record which VC indices each (class, group) pair
    occupied, by auditing output-port ownership every cycle."""
    for node in list(system.mesh.coords()):
        system.set_ejection_handler(node, lambda p, c: None)
    for p in packets:
        system.try_inject(p, 0)
    usage = {}
    net = system.networks[0]
    for _ in range(cycles):
        system.step()
        for router in net.routers.values():
            for in_port, vcs in router.in_ports.items():
                for vc_idx, vc in enumerate(vcs):
                    if vc.buffer:
                        pkt = vc.buffer[0].packet
                        # Two-phase packets flip group at the intermediate
                        # while flits allocated under the old group are
                        # still buffered; audit them under both groups.
                        two_phase = pkt.intermediate is not None
                        usage.setdefault(
                            (pkt.traffic_class, pkt.group, two_phase),
                            set()).add(vc_idx)
        if system.idle:
            break
    assert system.idle, "traffic did not drain"
    return usage


class TestVcDiscipline:
    def test_classes_and_groups_partition_vcs(self):
        system = build(open_loop_variant(CP_CR))
        rng = random.Random(0)
        packets = []
        for _ in range(60):
            core = rng.choice(system.compute_nodes)
            mc = rng.choice(system.mc_nodes)
            packets.append(read_request(core, mc))
            packets.append(read_reply(mc, core))
        usage = observed_vc_usage(system, packets)

        from repro.noc.packet import RouteGroup as RG
        cfg = system.networks[0].vc_config
        for (tclass, group, two_phase), vcs in usage.items():
            allowed = set(cfg.allowed_vcs(tclass, group))
            if two_phase:
                allowed |= set(cfg.allowed_vcs(tclass, RG.XY))
                allowed |= set(cfg.allowed_vcs(tclass, RG.YX))
            assert vcs <= allowed, (tclass, group, vcs, allowed)

    def test_request_and_reply_vcs_disjoint_in_flight(self):
        system = build(open_loop_variant(CP_CR))
        rng = random.Random(1)
        packets = []
        for _ in range(40):
            core = rng.choice(system.compute_nodes)
            mc = rng.choice(system.mc_nodes)
            packets.append(read_request(core, mc))
            packets.append(read_reply(mc, core))
        usage = observed_vc_usage(system, packets)
        request_vcs = set()
        reply_vcs = set()
        for (tclass, _group, _tp), vcs in usage.items():
            (request_vcs if tclass is TrafficClass.REQUEST
             else reply_vcs).update(vcs)
        assert request_vcs.isdisjoint(reply_vcs)

    def test_xy_and_yx_groups_use_distinct_vcs(self):
        system = build(open_loop_variant(CP_CR))
        rng = random.Random(2)
        packets = [read_reply(mc, core)
                   for mc in system.mc_nodes
                   for core in rng.sample(system.compute_nodes, 10)]
        usage = observed_vc_usage(system, packets)
        # Exclude two-phase packets, which legitimately use both groups.
        xy = usage.get((TrafficClass.REPLY, RouteGroup.XY, False), set())
        yx = usage.get((TrafficClass.REPLY, RouteGroup.YX, False), set())
        assert xy and yx, "both routing groups should be exercised"
        assert xy.isdisjoint(yx)
