"""Tests for system-level statistics: warp fairness, hot-spot high-water
marks, SimulationResult plumbing."""

import pytest

from repro.core.builder import BASELINE
from repro.system.accelerator import build_chip
from repro.workloads.profiles import profile


@pytest.fixture(scope="module")
def hh_chip():
    chip = build_chip(profile("KM"), design=BASELINE)
    chip.result = chip.run(warmup=300, measure=600)
    return chip


class TestWarpFairness:
    def test_fairness_in_unit_range(self, hh_chip):
        for core in hh_chip.cores:
            assert 0.0 <= core.warp_fairness() <= 1.0

    def test_compute_bound_benchmark_is_fair(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        chip.run(warmup=200, measure=400)
        # Short windows quantize per-warp counts (~10 instr/warp), so allow
        # a couple of instructions of skew.
        assert min(c.warp_fairness() for c in chip.cores) > 0.5

    def test_fresh_core_fairness_is_one(self):
        chip = build_chip(profile("AES"), design=BASELINE)
        assert chip.cores[0].warp_fairness() == 1.0


class TestHotspotHighWater:
    def test_high_water_tracked(self, hh_chip):
        marks = [mc.max_queue_depth for mc in hh_chip.mcs]
        assert all(m >= 1 for m in marks)

    def test_temporary_hotspots_exceed_steady_state(self, hh_chip):
        """Section V-E: closed-loop traffic shows temporary hot-spots —
        the instantaneous peak exceeds the per-MC mean occupancy."""
        marks = [mc.max_queue_depth for mc in hh_chip.mcs]
        assert max(marks) >= 2


class TestSimulationResultPlumbing:
    def test_as_dict_round_trip(self, hh_chip):
        d = hh_chip.result.as_dict()
        assert d["benchmark"] == "KM"
        assert d["ipc"] == hh_chip.result.ipc
        assert set(d) >= {"mc_stall_fraction", "dram_efficiency",
                          "l1_hit_rate", "l2_hit_rate"}

    def test_hit_rates_in_range(self, hh_chip):
        r = hh_chip.result
        assert 0.0 <= r.l1_hit_rate <= 1.0
        assert 0.0 <= r.l2_hit_rate <= 1.0
        assert 0.0 <= r.dram_row_hit_rate <= 1.0
        assert 0.0 <= r.dram_efficiency <= 1.0

    def test_reuse_produces_l1_hits(self, hh_chip):
        # KM has reuse 0.30, so a visible share of L1 hits must appear.
        assert hh_chip.result.l1_hit_rate > 0.1
