"""Round-robin arbiters and the separable (iSLIP-style) switch allocator.

The baseline router uses an iSLIP allocator (Table III).  We implement a
single-iteration separable input-first allocator with the iSLIP pointer
update rule: a round-robin pointer only advances past a requester when that
requester is granted, which gives the allocator its fairness and
desynchronization properties.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple


class RoundRobinArbiter:
    """Round-robin arbiter over an arbitrary, stable set of client keys."""

    def __init__(self, clients: Sequence[Hashable]) -> None:
        self._clients: List[Hashable] = list(clients)
        self._pointer = 0

    @property
    def clients(self) -> Sequence[Hashable]:
        return tuple(self._clients)

    def arbitrate(self, requests: Iterable[Hashable],
                  advance: bool = True) -> Optional[Hashable]:
        """Grant one of ``requests``.

        ``requests`` must be a subset of the client set.  With ``advance``
        (the iSLIP rule) the pointer moves one past the winner.
        """
        request_set = set(requests)
        if not request_set:
            return None
        n = len(self._clients)
        for offset in range(n):
            candidate = self._clients[(self._pointer + offset) % n]
            if candidate in request_set:
                if advance:
                    self._pointer = (self._pointer + offset + 1) % n
                return candidate
        raise ValueError(f"requests {request_set!r} not among clients")


class SeparableAllocator:
    """Single-iteration input-first separable allocator.

    Stage 1 (input arbitration): each input port picks one of its requesting
    VCs.  Stage 2 (output arbitration): each output port picks one winning
    input among the stage-1 survivors that target it.  Pointers follow the
    iSLIP update rule: they advance only on a stage-2 grant, so an input VC
    that won stage 1 but lost stage 2 keeps priority.

    The allocator keeps its pointer state in flat arrays indexed by port
    position.  ``allocate`` is the general dict-keyed API; ``allocate_fast``
    is the position-indexed hot path the router's event-driven step uses —
    both drive the same pointers, so they are interchangeable mid-run.
    """

    def __init__(self, input_ports: Sequence[Hashable],
                 vcs_per_input: int,
                 output_ports: Sequence[Hashable]) -> None:
        self._inputs: Tuple[Hashable, ...] = tuple(input_ports)
        self._outputs: Tuple[Hashable, ...] = tuple(output_ports)
        self._in_index: Dict[Hashable, int] = {
            port: i for i, port in enumerate(self._inputs)}
        self._out_index: Dict[Hashable, int] = {
            port: i for i, port in enumerate(self._outputs)}
        self._num_vcs = vcs_per_input
        self._num_inputs = len(self._inputs)
        #: iSLIP pointers: per input over VC indices, per output over
        #: input-port positions.
        self._in_ptr: List[int] = [0] * self._num_inputs
        self._out_ptr: List[int] = [0] * len(self._outputs)
        # Reused scratch for allocate_fast (cleared after every call).
        self._s1_vc: List[int] = [0] * self._num_inputs
        self._contenders: List[int] = [0] * len(self._outputs)
        self._out_seen: List[int] = []

    def allocate(
        self,
        requests: Dict[Hashable, Dict[int, Hashable]],
    ) -> List[Tuple[Hashable, int, Hashable]]:
        """Allocate the crossbar for one cycle.

        ``requests`` maps input port -> {vc index -> requested output port}.
        Returns a list of (input port, vc, output port) grants such that each
        input port and each output port appears at most once.
        """
        num_vcs = self._num_vcs
        # Stage 1: per-input VC selection (do not advance pointers yet; the
        # iSLIP rule updates pointers only on a full grant).
        stage1: Dict[int, Tuple[int, Hashable]] = {}
        for in_port, vc_requests in requests.items():
            if not vc_requests:
                continue
            i = self._in_index[in_port]
            ptr = self._in_ptr[i]
            for offset in range(num_vcs):
                vc = (ptr + offset) % num_vcs
                if vc in vc_requests:
                    stage1[i] = (vc, vc_requests[vc])
                    break
            else:
                raise ValueError(
                    f"requests {set(vc_requests)!r} not among clients")

        # Stage 2: per-output arbitration among stage-1 survivors.
        by_output: Dict[Hashable, List[int]] = {}
        for i, (_vc, out_port) in stage1.items():
            by_output.setdefault(out_port, []).append(i)

        grants: List[Tuple[Hashable, int, Hashable]] = []
        n_in = self._num_inputs
        for out_port, contenders in by_output.items():
            o = self._out_index[out_port]
            ptr = self._out_ptr[o]
            winner = -1
            for offset in range(n_in):
                i = (ptr + offset) % n_in
                if i in contenders:
                    winner = i
                    break
            if winner < 0:
                continue
            self._out_ptr[o] = (winner + 1) % n_in
            vc, _ = stage1[winner]
            # Advance the winner's input pointer past the granted VC.
            self._in_ptr[winner] = (vc + 1) % num_vcs
            grants.append((self._inputs[winner], vc, out_port))
        return grants

    def allocate_fast(
        self,
        active: List[int],
        req_masks: List[int],
        req_outs: List[List[int]],
        grants: List[Tuple[int, int, int]],
    ) -> None:
        """Position-indexed allocation (same pointers as ``allocate``).

        ``active`` lists requesting input positions, ``req_masks[i]`` is a
        bitmask of requesting VCs for input ``i``, ``req_outs[i][vc]`` is the
        requested output position.  Grants ``(in_pos, vc, out_pos)`` are
        appended to the caller-owned ``grants`` list.
        """
        num_vcs = self._num_vcs
        n_in = self._num_inputs
        if len(active) == 1:
            # Uncontended input: stage 1 picks its first requesting VC
            # at/after the pointer, stage 2 grants the lone contender.
            # Same pointer updates as the general path below.
            i = active[0]
            mask = req_masks[i]
            if mask & (mask - 1):
                ptr = self._in_ptr[i]
                for offset in range(num_vcs):
                    vc = (ptr + offset) % num_vcs
                    if mask >> vc & 1:
                        break
            else:
                vc = mask.bit_length() - 1
            out = req_outs[i][vc]
            self._out_ptr[out] = (i + 1) % n_in
            self._in_ptr[i] = (vc + 1) % num_vcs
            grants.append((i, vc, out))
            return
        s1_vc = self._s1_vc
        contenders = self._contenders
        out_seen = self._out_seen
        # Stage 1: first requesting VC at/after the input pointer.
        for i in active:
            mask = req_masks[i]
            ptr = self._in_ptr[i]
            for offset in range(num_vcs):
                vc = (ptr + offset) % num_vcs
                if mask >> vc & 1:
                    s1_vc[i] = vc
                    out = req_outs[i][vc]
                    if not contenders[out]:
                        out_seen.append(out)
                    contenders[out] |= 1 << i
                    break
        # Stage 2: per contended output (first-appearance order, matching
        # the setdefault grouping in ``allocate``), first contending input
        # at/after the output pointer.
        for out in out_seen:
            cmask = contenders[out]
            contenders[out] = 0
            ptr = self._out_ptr[out]
            for offset in range(n_in):
                i = (ptr + offset) % n_in
                if cmask >> i & 1:
                    self._out_ptr[out] = (i + 1) % n_in
                    vc = s1_vc[i]
                    self._in_ptr[i] = (vc + 1) % num_vcs
                    grants.append((i, vc, out))
                    break
        del out_seen[:]
