#!/usr/bin/env python3
"""Design-space exploration (Figure 2): rank the paper's NoC design points
by throughput-effectiveness (IPC/mm²) via the :mod:`repro.dse` engine.

Run:  python examples/design_space_exploration.py [--full] [--jobs N]

By default the ``figure2`` preset evaluates the seven named designs on a
representative 9-benchmark mix (3 per class) closed-loop; --full uses all
31 benchmarks of Table I.  --jobs fans the (design x benchmark) grid out
over worker processes through repro.parallel — results are bit-identical
to the serial run — and --cache reuses finished simulations on re-runs.
"""

import argparse
import dataclasses

from repro.dse import FULL_MIX, explore, figure2
from repro.parallel import log_progress


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Figure 2 design-space walk on the repro.dse engine")
    parser.add_argument("--full", action="store_true",
                        help="all 31 benchmarks of Table I (default: the "
                             "representative 9-benchmark mix)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="on-disk result cache directory")
    parser.add_argument("--progress", action="store_true",
                        help="per-task wall-clock progress on stderr")
    args = parser.parse_args()

    spec = figure2()
    if args.full:
        spec = dataclasses.replace(spec, mix=FULL_MIX)
    print(f"evaluating {spec.space.size()} designs on {len(spec.mix)} "
          "benchmarks (closed loop)\n")
    result = explore(spec, jobs=args.jobs, cache=args.cache,
                     progress=log_progress if args.progress else None)

    base_te = result["TB-DOR"].throughput_effectiveness
    print(f"{'design':22s} {'HM IPC':>8s} {'chip mm2':>9s} "
          f"{'IPC/mm2':>8s} {'vs baseline':>12s}")
    for name in result.ranking:
        c = result[name]
        print(f"{name:22s} {c.hm_ipc:8.1f} {c.chip_area_mm2:9.1f} "
              f"{c.throughput_effectiveness:8.4f} "
              f"{c.throughput_effectiveness / base_te - 1:+11.1%}")

    print(f"\nPareto frontier (HM IPC vs NoC mm2): "
          f"{', '.join(result.frontier)}")
    print("reading the table: designs above the TB-DOR row are "
          "throughput-effective improvements; '2x-TB-DOR' buys IPC with "
          "disproportionate area, 'TB-DOR-1cyc' buys latency nobody "
          "needs.  `python -m repro explore --preset extended` searches "
          "beyond the paper's seven points.")


if __name__ == "__main__":
    main()
