"""Tests for the chip configuration (Tables II/III as dataclasses)."""

import pytest

from repro.system.config import ChipConfig, paper_config, scaled_config


class TestPaperConfig:
    def test_table2_values(self):
        cfg = paper_config()
        assert cfg.num_compute_cores == 28
        assert cfg.num_memory_channels == 8
        assert cfg.core.warp_size == 32
        assert cfg.core.simd_width == 8
        assert cfg.core.max_warps == 32
        assert cfg.core.mshr_entries == 64
        assert cfg.core.l1_size_bytes == 16 * 1024
        assert cfg.mc.l2_size_bytes == 128 * 1024
        assert cfg.mc.dram.queue_capacity == 32
        assert cfg.clocks.core_mhz == 1296.0

    def test_peak_ipc(self):
        assert paper_config().peak_scalar_ipc == 224

    def test_peak_dram_bandwidth(self):
        cfg = paper_config()
        # 8 MCs x 16 B/mclk x (1107/602)
        assert cfg.peak_dram_bytes_per_icnt_cycle() == \
            pytest.approx(8 * 16 * 1107 / 602)

    def test_node_count_must_match_mesh(self):
        with pytest.raises(ValueError):
            ChipConfig(num_compute_cores=20, num_memory_channels=8)

    def test_scaled_config(self):
        cfg = scaled_config(56, 8, 8, 8)
        assert cfg.num_compute_cores == 56
        assert cfg.mesh_cols == 8
        assert cfg.peak_scalar_ipc == 448
        with pytest.raises(ValueError):
            scaled_config(10, 8, 8, 8)
