"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_run_defaults(self):
        args = make_parser().parse_args(["run", "--benchmark", "RD"])
        assert args.design == "TB-DOR"
        assert args.warmup == 500


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "TB-DOR" in out
        assert "Throughput-Effective" in out
        assert "MUM" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "TB-DOR" in out and "576.00" in out

    def test_area_single_design(self, capsys):
        assert main(["area", "--design", "CP-CR-4VC"]) == 0
        assert "566" in capsys.readouterr().out

    def test_run(self, capsys):
        assert main(["run", "--benchmark", "AES", "--warmup", "50",
                     "--measure", "100"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "AES" in out

    def test_run_perfect(self, capsys):
        assert main(["run", "--benchmark", "AES", "--design", "perfect",
                     "--warmup", "50", "--measure", "100"]) == 0
        assert "PerfectNetwork" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--benchmark", "AES",
                     "--designs", "TB-DOR,CP-DOR",
                     "--warmup", "50", "--measure", "100"]) == 0
        out = capsys.readouterr().out
        assert "CP-DOR" in out and "speedup" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--design", "TB-DOR", "--rates", "0.01",
                     "--warmup", "100", "--measure", "200"]) == 0
        out = capsys.readouterr().out
        assert "saturated" in out

    def test_sweep_hotspot(self, capsys):
        assert main(["sweep", "--design", "CP-CR-4VC", "--rates", "0.01",
                     "--hotspot", "--warmup", "100",
                     "--measure", "200"]) == 0
        assert "hotspot" in capsys.readouterr().out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--benchmark", "NOPE", "--warmup", "10",
                  "--measure", "10"])


class TestUnknownDesignErrors:
    """run/compare/sweep/explore turn the unknown-name KeyError into a
    clean exit carrying the did-you-mean hint."""

    def test_run_suggests_closest_design(self):
        with pytest.raises(SystemExit,
                           match="did you mean 'TB-DOR'") as exc:
            main(["run", "--benchmark", "RD", "--design", "TB-DORR",
                  "--warmup", "10", "--measure", "10"])
        assert "unknown design 'TB-DORR'" in str(exc.value)

    def test_compare_suggests_closest_design(self):
        with pytest.raises(SystemExit, match="did you mean 'CP-DOR'"):
            main(["compare", "--benchmark", "RD",
                  "--designs", "TB-DOR,CP-DORE",
                  "--warmup", "10", "--measure", "10"])

    def test_sweep_suggests_closest_design(self):
        with pytest.raises(SystemExit,
                           match="did you mean 'Throughput-Effective'"):
            main(["sweep", "--design", "Throughput-Efective",
                  "--rates", "0.01", "--warmup", "10", "--measure", "10"])

    def test_area_suggests_closest_design(self):
        with pytest.raises(SystemExit, match="did you mean 'CP-CR-4VC'"):
            main(["area", "--design", "CP-CR-4V"])

    def test_explore_suggests_closest_preset(self):
        with pytest.raises(SystemExit, match="did you mean 'figure2'"):
            main(["explore", "--preset", "figur2"])

    def test_no_close_match_still_lists_known(self):
        with pytest.raises(SystemExit, match="known:") as exc:
            main(["area", "--design", "zzzzzz"])
        assert "did you mean" not in str(exc.value)


class TestExplore:
    @pytest.fixture
    def tiny_preset(self, monkeypatch):
        """Register a two-point preset so the CLI path runs in seconds."""
        import repro.dse as dse

        def tiny():
            space = dse.SearchSpace(
                name="tiny",
                axes=(dse.Axis("placement",
                               ("top_bottom", "checkerboard")),))
            return dse.ExplorationSpec(
                name="tiny", space=space, mix=("RD",), round_mix=("RD",),
                ladder=dse.FidelityLadder(screen=False, halving_rounds=0,
                                          confirm_warmup=40,
                                          confirm_measure=80,
                                          min_survivors=2),
                seed=11)

        monkeypatch.setitem(dse.presets.PRESETS, "tiny", tiny)
        return tiny

    def test_explore_end_to_end(self, tiny_preset, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["explore", "--preset", "tiny",
                     "--cache", str(tmp_path / "cache"),
                     "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "exploring preset 'tiny': 2 raw points" in out
        assert "confirm" in out and "Pareto frontier" in out
        assert (out_dir / "exploration.json").is_file()
        assert (out_dir / "candidates.csv").is_file()
        assert (out_dir / "frontier.csv").is_file()

    def test_explore_seed_override_changes_payload(self, tiny_preset,
                                                   tmp_path, capsys):
        import repro.dse as dse
        spec = dse.preset("tiny")
        baseline = dse.explore(spec, jobs=1,
                               cache=str(tmp_path / "cache"))
        assert main(["explore", "--preset", "tiny", "--seed", "99",
                     "--cache", str(tmp_path / "cache"),
                     "--out", str(tmp_path / "out")]) == 0
        capsys.readouterr()
        import json
        payload = json.loads(
            (tmp_path / "out" / "exploration.json").read_text())
        assert payload["seed"] == 99
        assert payload["seed"] != baseline.seed
