"""Pareto-frontier correctness properties (hypothesis-driven).

The pinned properties: no frontier member is dominated by any point;
every non-frontier point is dominated by some frontier member (its
recorded ``dominated_by``); identical-objective points are all on the
frontier; the result is independent of input order; ties break
deterministically by name."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import ParetoPoint, dominates, pareto_frontier

objective = st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False)


@st.composite
def point_sets(draw, max_size=12):
    n = draw(st.integers(min_value=0, max_value=max_size))
    return [ParetoPoint(f"p{i}", draw(objective), draw(objective))
            for i in range(n)]


class TestDominates:
    def test_strictly_better_on_both(self):
        assert dominates(ParetoPoint("a", 2.0, 1.0),
                         ParetoPoint("b", 1.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        a = ParetoPoint("a", 1.0, 1.0)
        b = ParetoPoint("b", 1.0, 1.0)
        assert not dominates(a, b) and not dominates(b, a)

    def test_tradeoff_is_incomparable(self):
        a = ParetoPoint("a", 2.0, 2.0)   # more IPC, more area
        b = ParetoPoint("b", 1.0, 1.0)
        assert not dominates(a, b) and not dominates(b, a)

    def test_same_ipc_smaller_area_dominates(self):
        assert dominates(ParetoPoint("a", 1.0, 1.0),
                         ParetoPoint("b", 1.0, 2.0))


class TestFrontierProperties:
    @settings(max_examples=200, deadline=None)
    @given(point_sets())
    def test_no_frontier_member_is_dominated(self, points):
        result = pareto_frontier(points)
        members = {p.name: p for p in points}
        for name in result.frontier:
            assert not any(dominates(other, members[name])
                           for other in points)

    @settings(max_examples=200, deadline=None)
    @given(point_sets())
    def test_every_dominated_point_names_a_frontier_dominator(self, points):
        result = pareto_frontier(points)
        members = {p.name: p for p in points}
        on_frontier = set(result.frontier)
        assert on_frontier.isdisjoint(result.dominated_by)
        assert on_frontier | set(result.dominated_by) == set(members)
        for name, dominator in result.dominated_by.items():
            assert dominator in on_frontier
            assert dominates(members[dominator], members[name])

    @settings(max_examples=100, deadline=None)
    @given(point_sets(), st.randoms(use_true_random=False))
    def test_order_independent(self, points, rng):
        baseline = pareto_frontier(points)
        shuffled = list(points)
        rng.shuffle(shuffled)
        assert pareto_frontier(shuffled) == baseline

    @settings(max_examples=100, deadline=None)
    @given(objective, objective, st.integers(min_value=2, max_value=5))
    def test_identical_objectives_all_on_frontier(self, ipc, area, n):
        twins = [ParetoPoint(f"t{i}", ipc, area) for i in range(n)]
        result = pareto_frontier(twins)
        assert sorted(result.frontier) == sorted(t.name for t in twins)
        assert result.dominated_by == {}


class TestFrontierDeterminism:
    def test_frontier_ordered_strongest_first(self):
        points = [ParetoPoint("cheap", 1.0, 1.0),
                  ParetoPoint("fast", 3.0, 5.0),
                  ParetoPoint("mid", 2.0, 2.0)]
        assert pareto_frontier(points).frontier == ("fast", "mid", "cheap")

    def test_ties_break_by_name(self):
        points = [ParetoPoint("b", 1.0, 1.0), ParetoPoint("a", 1.0, 1.0)]
        assert pareto_frontier(points).frontier == ("a", "b")

    def test_dominator_is_the_strongest(self):
        points = [ParetoPoint("weak", 1.0, 5.0),
                  ParetoPoint("ok", 2.0, 4.0),
                  ParetoPoint("best", 3.0, 3.0)]
        result = pareto_frontier(points)
        assert result.frontier == ("best",)
        assert result.dominated_by == {"weak": "best", "ok": "best"}

    def test_empty_input(self):
        result = pareto_frontier([])
        assert result.frontier == () and result.dominated_by == {}

    def test_duplicate_names_rejected(self):
        points = [ParetoPoint("a", 1.0, 1.0), ParetoPoint("a", 2.0, 2.0)]
        with pytest.raises(ValueError, match="duplicate point names"):
            pareto_frontier(points)


# -- three objectives ---------------------------------------------------------

from repro.dse import ParetoPoint3, dominates3, pareto_frontier3  # noqa: E402


@st.composite
def point_sets3(draw, max_size=12):
    n = draw(st.integers(min_value=0, max_value=max_size))
    return [ParetoPoint3(f"p{i}", draw(objective), draw(objective),
                         draw(objective))
            for i in range(n)]


class TestFrontier3Properties:
    @given(point_sets3())
    @settings(max_examples=60, deadline=None)
    def test_partition_and_dominance(self, points):
        result = pareto_frontier3(points)
        frontier = set(result.frontier)
        assert frontier | set(result.dominated_by) == {p.name
                                                       for p in points}
        assert frontier.isdisjoint(result.dominated_by)
        by_name = {p.name: p for p in points}
        for member in frontier:
            assert not any(dominates3(other, by_name[member])
                           for other in points)
        for name, dominator in result.dominated_by.items():
            assert dominator in frontier
            assert dominates3(by_name[dominator], by_name[name])

    @given(point_sets3())
    @settings(max_examples=60, deadline=None)
    def test_order_independent(self, points):
        result = pareto_frontier3(points)
        assert pareto_frontier3(list(reversed(points))) == result

    @given(point_sets3())
    @settings(max_examples=60, deadline=None)
    def test_2d_frontier_members_stay_non_dominated(self, points):
        # Adding an objective can only *add* frontier members: any point
        # on the (IPC, area) frontier is still non-dominated in 3-D.
        flat = pareto_frontier([ParetoPoint(p.name, p.ipc, p.area)
                                for p in points])
        cube = pareto_frontier3(points)
        # A 2-D frontier member may be 3-D-dominated only by a point
        # with identical (ipc, area) and strictly lower watts; rule
        # those ties out to get the strict superset property.
        by_name = {p.name: p for p in points}
        distinct = {(p.ipc, p.area) for p in points}
        if len(distinct) == len(points):
            assert set(flat.frontier) <= set(cube.frontier), by_name

    def test_watts_objective_adds_members(self):
        points = [ParetoPoint3("fast", 3.0, 3.0, 3.0),
                  ParetoPoint3("frugal", 2.0, 3.0, 1.0)]
        flat = pareto_frontier([ParetoPoint(p.name, p.ipc, p.area)
                                for p in points])
        cube = pareto_frontier3(points)
        assert flat.frontier == ("fast",)
        assert cube.frontier == ("fast", "frugal")

    def test_duplicate_names_rejected(self):
        points = [ParetoPoint3("a", 1.0, 1.0, 1.0),
                  ParetoPoint3("a", 2.0, 2.0, 2.0)]
        with pytest.raises(ValueError, match="duplicate point names"):
            pareto_frontier3(points)
