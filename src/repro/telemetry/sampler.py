"""Time-series sampling of NoC and memory-system state.

Every ``interval`` cycles the sampler snapshots, per attached network:
per-router buffer occupancy, per-channel link utilization (flits moved in
the window, not cumulative), source-queue depth, and the in-flight /
source-queued packet split; and, when attached to a closed-loop chip:
per-core MSHR occupancy, per-MC input-queue depth, reply backlog, the
instantaneous gated/stall state, and windowed DRAM row-hit rate.

Rows are plain dicts (columnar-friendly: scalar columns plus sparse
``"x,y"``-keyed maps) exported as JSONL and CSV by the hub.  Sampling is
read-only and runs outside the per-cycle hot path — the hub's ``on_cycle``
does one modulo check per cycle when enabled and nothing at all when not.
"""

from __future__ import annotations

from typing import Dict, List

from .export import coord_key, link_key


class TimeSeriesSampler:
    """Snapshots simulation state at a fixed cycle interval."""

    def __init__(self, interval: int) -> None:
        if interval < 1:
            raise ValueError("sample interval must be >= 1 cycle")
        self.interval = interval
        self.rows: List[dict] = []
        self._networks: List[object] = []
        self._chip = None
        #: id(channel) -> flits_carried at the previous sample.
        self._prev_carried: Dict[int, int] = {}
        #: id(mc) -> (row_hits, row_misses) at the previous sample.
        self._prev_rows: Dict[int, tuple] = {}

    # -- wiring --------------------------------------------------------------

    def attach_network(self, network) -> None:
        """Attach one physical :class:`~repro.noc.network.MeshNetwork`."""
        self._networks.append(network)

    def attach_chip(self, chip) -> None:
        """Attach a closed-loop :class:`~repro.system.accelerator.\
Accelerator` for memory-system columns."""
        self._chip = chip

    # -- sampling ------------------------------------------------------------

    def wants(self, cycle: int) -> bool:
        return cycle % self.interval == 0

    def sample(self, cycle: int) -> None:
        """Record one row per attached network (plus one chip row)."""
        for net in self._networks:
            self.rows.append(self._network_row(net, cycle))
        if self._chip is not None:
            self.rows.append(self._chip_row(self._chip, cycle))

    def _network_row(self, net, cycle: int) -> dict:
        router_occupancy = {}
        vc_occupancy: Dict[str, int] = {}
        for coord, router in net.routers.items():
            if router.occupancy:
                router_occupancy[coord_key(coord)] = router.occupancy
            for vcs in router.in_ports.values():
                for vc_idx, state in enumerate(vcs):
                    n = len(state.buffer)
                    if n:
                        label = net.vc_config.describe_vc(vc_idx)
                        vc_occupancy[label] = vc_occupancy.get(label, 0) + n
        link_util = {}
        peak = 0.0
        for channel in net.channels:
            key = id(channel)
            prev = self._prev_carried.get(key, 0)
            moved = channel.flits_carried - prev
            self._prev_carried[key] = channel.flits_carried
            if moved:
                util = moved / self.interval
                link = link_key(channel.src_router.coord,
                                channel.dst_router.coord)
                link_util[link] = util
                if util > peak:
                    peak = util
        source_occupancy = {
            coord_key(coord): occ
            for coord, occ in sorted(net._source_occupancy.items())
            if occ
        }
        stats = net.stats
        return {
            "kind": "network",
            "cycle": cycle,
            "network": net.name,
            "buffer_occupancy": sum(router_occupancy.values()),
            "source_queue_flits": net._source_flits,
            "packets_in_flight": stats.packets_in_flight,
            "packets_source_queued": stats.packets_source_queued,
            "link_util_peak": peak,
            "link_util_mean": (sum(link_util.values()) / len(net.channels)
                               if net.channels else 0.0),
            "router_occupancy": router_occupancy,
            "vc_occupancy": vc_occupancy,
            "source_occupancy": source_occupancy,
            "link_utilization": link_util,
        }

    def _chip_row(self, chip, cycle: int) -> dict:
        mshr_total = 0
        mshr_by_core = {}
        for core in chip.cores:
            occ = core.mshrs.occupancy
            mshr_total += occ
            if occ:
                mshr_by_core[coord_key(core.coord)] = occ
        mc_rows = {}
        gated = 0
        row_hits_window = 0
        row_total_window = 0
        for mc in chip.mcs:
            key = id(mc)
            hits, misses = mc.dram.row_hits, mc.dram.row_misses
            prev_hits, prev_misses = self._prev_rows.get(key, (0, 0))
            self._prev_rows[key] = (hits, misses)
            row_hits_window += hits - prev_hits
            row_total_window += (hits - prev_hits) + (misses - prev_misses)
            if mc.gated:
                gated += 1
            mc_rows[coord_key(mc.coord)] = {
                "input_queue": mc.input_queue_depth,
                "reply_backlog": mc.reply_backlog_depth,
                "gated": mc.gated,
                "blocked_cycles": mc.blocked_cycles,
                "dram_queue": mc.dram.queue_occupancy,
            }
        return {
            "kind": "chip",
            "cycle": cycle,
            "mshr_occupancy": mshr_total,
            "mc_gated": gated,
            "dram_row_hit_rate_window": (
                row_hits_window / row_total_window
                if row_total_window else 0.0),
            "mshr_by_core": mshr_by_core,
            "mc": mc_rows,
        }
