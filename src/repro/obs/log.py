"""Structured one-line-JSON logging with correlation ids.

Every operational message in the serving/execution stack flows through
:func:`emit`.  The output format is an environment escape hatch, not an
API choice, so existing CI greps keep working:

* ``REPRO_LOG_FORMAT=text`` (the default) prints only the
  human-readable ``message`` — byte-for-byte what the scattered stderr
  prints used to produce.  Events without a message are silent.
* ``REPRO_LOG_FORMAT=json`` prints one JSON object per line with a
  pinned schema: ``schema`` (:data:`SCHEMA`), ``ts`` (unix seconds),
  ``event`` (the record type), plus any bound context and per-call
  fields, and ``message`` when one was given.  Keys are sorted, so
  records are stable under ``grep``/``jq``.

Correlation: :func:`bind` pushes fields (``job_id``, ``client``,
``kind``) onto a :class:`contextvars.ContextVar`, so every record
emitted underneath — including from ``asyncio.to_thread`` executor
threads, which copy the caller's context — carries the job's identity
without any plumbing through function signatures.  That is how one
``job_id`` threads from ``submit`` through the queue, the worker, the
executor, ``run_tasks``, and the response.

The reserved keys ``schema``/``ts``/``event`` can never be shadowed by
context or fields.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import sys
import time
from typing import Any, Dict, Iterator, Optional, TextIO

#: Bumped whenever the record shape changes incompatibly.
SCHEMA = 1

FORMATS = ("text", "json")

_RESERVED = ("schema", "ts", "event")

_CONTEXT: contextvars.ContextVar[Optional[Dict[str, Any]]] = \
    contextvars.ContextVar("repro_log_context", default=None)


def log_format() -> str:
    """The active format: ``REPRO_LOG_FORMAT``, defaulting to ``text``."""
    value = os.environ.get("REPRO_LOG_FORMAT", "").strip().lower()
    if not value:
        return "text"
    if value not in FORMATS:
        raise ValueError(f"REPRO_LOG_FORMAT must be one of {FORMATS}, "
                         f"got {value!r}")
    return value


@contextlib.contextmanager
def bind(**fields: Any) -> Iterator[None]:
    """Attach ``fields`` to every record emitted inside the block (and
    in threads started from it via ``asyncio.to_thread``)."""
    merged = dict(_CONTEXT.get() or {})
    merged.update(fields)
    token = _CONTEXT.set(merged)
    try:
        yield
    finally:
        _CONTEXT.reset(token)


def context() -> Dict[str, Any]:
    """The currently bound correlation fields (a copy)."""
    return dict(_CONTEXT.get() or {})


def emit(event: str, message: Optional[str] = None, *,
         stream: Optional[TextIO] = None, **fields: Any) -> None:
    """Emit one log record.

    In text mode, prints ``message`` (if any) and nothing else — events
    that only exist for machines are silent, which is what keeps the
    human-readable output byte-stable.  In json mode, prints the full
    record regardless.
    """
    mode = log_format()
    out = stream if stream is not None else sys.stderr
    if mode == "text":
        if message is not None:
            print(message, file=out)
        return
    record: Dict[str, Any] = {}
    record.update(_CONTEXT.get() or {})
    record.update(fields)
    for key in _RESERVED:
        record.pop(key, None)
    record["schema"] = SCHEMA
    record["ts"] = round(time.time(), 6)
    record["event"] = str(event)
    if message is not None:
        record["message"] = message
    print(json.dumps(record, sort_keys=True, separators=(",", ":"),
                     default=str), file=out)
