"""Tests for mesh channels (flit delay, credit return)."""

import pytest

from repro.noc.channel import Channel
from repro.noc.packet import read_request
from repro.noc.topology import Coord, Direction


class _Recorder:
    def __init__(self):
        self.flits = []
        self.credits = []

    def deliver_flit(self, port, vc, flit, cycle):
        self.flits.append((port, vc, flit, cycle))

    def deliver_credit(self, port, vc):
        self.credits.append((port, vc))


def make_channel(latency=1, credit_delay=1):
    ch = Channel(latency, credit_delay)
    src, dst = _Recorder(), _Recorder()
    ch.connect(src, Direction.EAST, dst, Direction.WEST)
    return ch, src, dst


def flit():
    return read_request(Coord(0, 0), Coord(1, 0)).make_flits(16)[0]


class TestChannel:
    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            Channel(0)

    def test_flit_arrives_after_latency(self):
        ch, _src, dst = make_channel(latency=2)
        f = flit()
        ch.send_flit(f, 0, cycle=10)
        ch.deliver(11)
        assert dst.flits == []
        ch.deliver(12)
        assert dst.flits == [(Direction.WEST, 0, f, 12)]

    def test_credit_returns_upstream(self):
        ch, src, _dst = make_channel(credit_delay=2)
        ch.send_credit(1, cycle=5)
        ch.deliver(6)
        assert src.credits == []
        ch.deliver(7)
        assert src.credits == [(Direction.EAST, 1)]

    def test_in_order_delivery(self):
        ch, _src, dst = make_channel()
        f1, f2 = flit(), flit()
        ch.send_flit(f1, 0, cycle=0)
        ch.send_flit(f2, 0, cycle=1)
        ch.deliver(5)
        assert [x[2] for x in dst.flits] == [f1, f2]

    def test_busy_flag(self):
        ch, _src, _dst = make_channel()
        assert not ch.busy
        ch.send_flit(flit(), 0, cycle=0)
        assert ch.busy
        ch.deliver(10)
        assert not ch.busy

    def test_flit_count_stat(self):
        ch, _src, _dst = make_channel()
        for _ in range(3):
            ch.send_flit(flit(), 0, cycle=0)
        assert ch.flits_carried == 3

    def test_late_deliver_flushes_everything_due(self):
        ch, _src, dst = make_channel(latency=1)
        ch.send_flit(flit(), 0, cycle=0)
        ch.send_flit(flit(), 1, cycle=3)
        ch.deliver(100)
        assert len(dst.flits) == 2
