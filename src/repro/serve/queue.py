"""Priority scheduling with per-client fairness.

Jobs are grouped into priority levels (higher value = served first).
Inside a level, clients take turns round-robin — one job per turn, FIFO
within a client — so a client that dumps a hundred submissions cannot
starve a client that submitted one.  Scheduling is fully deterministic:
level order, then client rotation order (arrival order, rotated), then
submission order.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Optional


class FairPriorityQueue:
    """Deterministic priority + round-robin-per-client job queue."""

    def __init__(self) -> None:
        #: priority -> client -> FIFO of jobs; the OrderedDict's key
        #: order IS the round-robin rotation for that level.
        self._levels: Dict[int, "OrderedDict[str, Deque[Any]]"] = {}
        self._size = 0

    def push(self, job: Any) -> None:
        """Enqueue ``job`` (reads ``job.priority`` and ``job.client``)."""
        level = self._levels.setdefault(job.priority, OrderedDict())
        level.setdefault(job.client, deque()).append(job)
        self._size += 1

    def pop(self) -> Optional[Any]:
        """Dequeue the next job, or ``None`` when empty: highest
        priority level first, then the level's least-recently-served
        client, then that client's oldest job."""
        for priority in sorted(self._levels, reverse=True):
            level = self._levels[priority]
            if not level:
                continue
            client, jobs = next(iter(level.items()))
            job = jobs.popleft()
            if jobs:
                level.move_to_end(client)   # rotate: one job per turn
            else:
                del level[client]
            if not level:
                del self._levels[priority]
            self._size -= 1
            return job
        return None

    def pending_by_client(self) -> Dict[str, int]:
        """Queued-job counts per client (for the stats endpoint)."""
        counts: Dict[str, int] = {}
        for level in self._levels.values():
            for client, jobs in level.items():
                counts[client] = counts.get(client, 0) + len(jobs)
        return counts

    def pending_by_priority(self) -> Dict[int, int]:
        """Queued-job counts per priority level (for the
        ``repro_queue_depth_by_priority`` gauge)."""
        return {priority: sum(len(jobs) for jobs in level.values())
                for priority, level in self._levels.items() if level}

    def __len__(self) -> int:
        return self._size
