"""Wire protocol for the job server: newline-delimited JSON.

Every message — request or event — is one JSON object on one line,
UTF-8, ``\\n``-terminated.  A connection carries a sequence of requests;
a streaming submission (``"stream": true``) holds the connection and
receives ``progress`` events followed by one terminal ``done``/``failed``
event.

Requests (``cmd``):

``ping``
    → ``{"ok": true, "event": "pong", "protocol": 2}``
``submit``
    ``{"cmd": "submit", "client": "...", "priority": 0,
    "stream": true, "job": {"kind": "sweep"|"compare"|"explore", ...}}``
    → ``accepted`` (with ``job_id``), ``rejected`` (back-pressure, with
    ``retry_after`` seconds) or ``invalid`` (validation error).
``status`` / ``result``
    ``{"cmd": "status", "job_id": "..."}`` → the job record / its result.
``stats``
    → queue depth, running/served counters, cache entry/byte totals and
    lifetime counters, and the retry estimator's state.
``metrics``
    ``{"cmd": "metrics", "format": "text"|"json"}`` → the server's
    metrics registry (plus the process-wide library registry) as
    Prometheus text exposition (``"text"``, the default) or a JSON
    snapshot (``"json"``); with observability disabled the reply carries
    ``"enabled": false`` and empty payloads.
``shutdown``
    → ``{"ok": true, "event": "bye"}``; the server finishes running
    jobs, drops queued ones and exits.

Back-pressure contract: once the pending queue holds ``max_pending``
jobs, every further submission is rejected with ``retry_after`` — an
estimate of when a slot frees up (p90 of recent job wall-clocks scaled
by queue depth over worker count) — instead of growing the queue
without bound.  Rejection is explicit and cheap; clients are expected
to back off and resubmit.

Version history: 1 (PR 7, initial) → 2 (adds the ``metrics`` command;
``stats`` replaces ``ema_job_seconds`` with ``retry_estimator`` and
gains ``observability``; ``status`` job records gain ``span``).
"""

from __future__ import annotations

import json
from typing import Any, Dict

PROTOCOL_VERSION = 2

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Largest accepted request line (1 MiB): submissions are small command
#: objects, so anything bigger is a framing error, not a workload.
MAX_LINE_BYTES = 1 << 20


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol message as a complete wire line."""
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises ``ValueError`` on malformed input."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol message must be a JSON object")
    return message
