"""Host-side profiling: wall-clock per simulation component.

The Python hot path is the ROADMAP's main scaling risk; this profiler
answers "where do the seconds go" without ``cProfile``'s overhead.  The
instrumented step loops (``Accelerator._step_instrumented``,
``OpenLoopRunner``'s telemetry path) bracket each phase with
``perf_counter`` reads and feed the deltas here; the summary reports
per-section seconds plus simulated cycles per wall-clock second.

Host timing never influences simulation state, so it cannot perturb
results — it only runs when telemetry is enabled at all.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class HostProfiler:
    """Accumulates wall-clock seconds per named simulation section."""

    __slots__ = ("sections", "cycles", "_started")

    def __init__(self) -> None:
        self.sections: Dict[str, float] = {}
        self.cycles = 0
        self._started = time.perf_counter()

    @staticmethod
    def clock() -> float:
        return time.perf_counter()

    def add_since(self, name: str, start: float) -> float:
        """Charge the time since ``start`` to ``name``; returns the new
        timestamp so phases chain without extra clock reads."""
        now = time.perf_counter()
        self.sections[name] = self.sections.get(name, 0.0) + (now - start)
        return now

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Charge the wall-clock time of a ``with`` block to ``name`` —
        the coarse-grained phase counterpart of :meth:`add_since`, used by
        the exploration engine to time its fidelity-ladder stages."""
        start = self.clock()
        try:
            yield
        finally:
            self.add_since(name, start)

    def tick(self, count: int = 1) -> None:
        self.cycles += count

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    def cycles_per_second(self) -> float:
        elapsed = self.elapsed
        return self.cycles / elapsed if elapsed > 0 else 0.0

    def summary(self) -> dict:
        """JSON-compatible profile (sections sorted by cost)."""
        total = sum(self.sections.values())
        return {
            "wall_seconds": self.elapsed,
            "simulated_cycles": self.cycles,
            "cycles_per_second": self.cycles_per_second(),
            "sections": dict(sorted(self.sections.items(),
                                    key=lambda kv: -kv[1])),
            "instrumented_seconds": total,
        }

    def format(self) -> str:
        """Human-readable profile block for CLI output."""
        data = self.summary()
        lines = [f"host profile: {data['simulated_cycles']} cycles in "
                 f"{data['wall_seconds']:.2f}s "
                 f"({data['cycles_per_second']:.0f} cycles/s)"]
        total = data["instrumented_seconds"]
        for name, seconds in data["sections"].items():
            share = seconds / total if total else 0.0
            lines.append(f"  {name:16s} {seconds:8.3f}s {share:6.1%}")
        return "\n".join(lines)
