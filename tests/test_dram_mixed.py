"""DRAM tests with mixed read/write streams and long-run schedules."""

import random

import pytest

from repro.mem.dram import DramRequest, DramTiming, GddrChannel


def run_stream(requests, timing=None):
    ch = GddrChannel(timing or DramTiming())
    done = []
    ch.on_complete = lambda r, now: done.append(r)
    pending = list(requests)
    cycle = 0
    while pending or ch.busy:
        cycle += 1
        if cycle > 100_000:
            raise AssertionError("stream did not drain")
        if pending and ch.can_accept():
            ch.enqueue(pending.pop(0), cycle)
        ch.step(cycle)
    return ch, done


class TestMixedStreams:
    def test_reads_and_writes_all_complete(self):
        rng = random.Random(0)
        reqs = [DramRequest(rng.randrange(1 << 22) & ~63,
                            is_write=bool(rng.randrange(2)))
                for _ in range(150)]
        ch, done = run_stream(reqs)
        assert len(done) == 150
        assert ch.requests_serviced == 150

    def test_interleaved_rows_still_find_hits(self):
        """Two interleaved sequential streams (different banks) keep both
        row buffers warm under FR-FCFS."""
        t = DramTiming()
        stream_a = [DramRequest(i * 64, False) for i in range(40)]
        stream_b = [DramRequest(t.row_bytes + i * 64, False)
                    for i in range(40)]
        mixed = [r for pair in zip(stream_a, stream_b) for r in pair]
        ch, _ = run_stream(mixed)
        assert ch.row_hit_rate() > 0.7

    def test_completion_times_monotone_per_bank(self):
        reqs = [DramRequest(i * 64, False) for i in range(30)]
        _, done = run_stream(reqs)
        per_bank = {}
        for r in done:
            per_bank.setdefault(r.bank, []).append(r.complete_time)
        for times in per_bank.values():
            assert times == sorted(times)

    def test_data_bus_never_double_booked(self):
        rng = random.Random(3)
        reqs = [DramRequest(rng.randrange(1 << 20) & ~63, False)
                for _ in range(80)]
        _, done = run_stream(reqs)
        windows = sorted((r.complete_time - 4, r.complete_time)
                         for r in done)
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s2 >= e1, "data transfers overlap on the bus"

    def test_throughput_bounded_by_pins(self):
        """Even a perfect row-hit stream cannot beat 16 B/mclk."""
        reqs = [DramRequest(i * 64, False) for i in range(200)]
        ch, done = run_stream(reqs)
        span = max(r.complete_time for r in done) - \
            min(r.issue_time for r in done)
        bytes_moved = 200 * 64
        assert bytes_moved / span <= ch.timing.bytes_per_cycle + 1e-9


class TestTimingEdgeCases:
    def test_single_bank_configuration(self):
        t = DramTiming(num_banks=1)
        reqs = [DramRequest(i * t.row_bytes, False) for i in range(5)]
        ch, done = run_stream(reqs, t)
        assert len(done) == 5
        assert ch.row_hit_rate() == 0.0
        # Row cycles serialize on the single bank: ~tRC apart.
        times = sorted(r.complete_time for r in done)
        for a, b in zip(times, times[1:]):
            assert b - a >= t.tRRD

    def test_non_default_burst(self):
        t = DramTiming(bytes_per_cycle=8)
        assert t.burst_cycles(64) == 8
        ch, done = run_stream([DramRequest(0, False)], t)
        assert done[0].complete_time - done[0].issue_time == \
            t.tRCD + t.tCL + 8
