"""Declarative design-space definition and constrained enumeration.

A :class:`SearchSpace` names a set of axes over :class:`NetworkDesign`
fields (placement, routing, channel width, VC count, buffer depth,
half-routers, double network, MC ports, ...) plus the pseudo-axis
``mesh`` (``(cols, rows)`` tuples, which scale the machine rather than the
design dataclass).  Enumeration takes the cross product, materializes each
point through :func:`repro.core.builder.materialize_design`, and runs the
named constraint pass (:func:`design_constraint_violations`) so every
illegal combination is rejected *up front with a reason* — e.g.
checkerboard routing without checkerboard placement, or half-routers with
no legal full-router neighborhood — instead of failing or deadlocking
mid-simulation.

Explicit design points (``designs=``) can be listed alongside or instead
of axes; the ``figure2`` preset is exactly the paper's seven named points.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from ..core.builder import (BASELINE, MATERIALIZABLE_FIELDS,
                            ConstraintViolation, NetworkDesign,
                            design_constraint_violations, materialize_design)
from ..noc.topology import Mesh
from ..system.config import ChipConfig, scaled_config

#: The pseudo-axis that scales the mesh (values are ``(cols, rows)``).
MESH_AXIS = "mesh"

#: Axis fields with a compact fixed position in generated labels; anything
#: else (e.g. ``router_latency``) is appended as ``field-value``.
_LABEL_PLACEMENT = {"top_bottom": "tb", "checkerboard": "cp"}
_LABEL_ROUTING = {"dor": "dor", "dor_yx": "yx", "cr": "cr", "romm": "romm"}
_LABELLED_FIELDS = ("placement", "routing", "channel_width",
                    "vcs_per_class", "vc_buffer_depth", "half_routers",
                    "double_network", "slice_mode", "mc_inject_ports",
                    "mc_eject_ports")


@dataclass(frozen=True)
class Axis:
    """One search axis: a design field (or :data:`MESH_AXIS`) and the
    values it sweeps."""

    field: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.field!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.field!r} repeats values: "
                             f"{self.values}")
        if self.field != MESH_AXIS \
                and self.field not in MATERIALIZABLE_FIELDS:
            raise ValueError(
                f"unknown axis field {self.field!r}; axes cover "
                f"NetworkDesign fields {sorted(MATERIALIZABLE_FIELDS)} "
                f"or {MESH_AXIS!r}")
        if self.field == MESH_AXIS:
            for value in self.values:
                cols, rows = value     # raises on malformed entries
                if cols < 1 or rows < 1:
                    raise ValueError(f"bad mesh size {value}")


@dataclass(frozen=True)
class Candidate:
    """One legal design point of a space, ready to evaluate."""

    name: str
    design: NetworkDesign
    mesh_cols: int = 6
    mesh_rows: int = 6
    num_mcs: int = 8

    @property
    def mesh(self) -> Mesh:
        return Mesh(self.mesh_cols, self.mesh_rows)

    def chip_config(self) -> Optional[ChipConfig]:
        """Closed-loop machine config: ``None`` (the paper's Table II
        machine) on the default 6x6/8-MC geometry, a scaled machine with
        the same per-node parameters otherwise."""
        if (self.mesh_cols, self.mesh_rows) == (6, 6) and self.num_mcs == 8:
            return None
        nodes = self.mesh_cols * self.mesh_rows
        return scaled_config(nodes - self.num_mcs, self.num_mcs,
                             self.mesh_cols, self.mesh_rows)


@dataclass(frozen=True)
class RejectedPoint:
    """One enumerated point the constraint pass refused, with every named
    rule it violated."""

    name: str
    violations: Tuple[ConstraintViolation, ...]

    @property
    def rules(self) -> Tuple[str, ...]:
        return tuple(v.rule for v in self.violations)


def design_label(design: NetworkDesign, mesh_cols: int = 6,
                 mesh_rows: int = 6,
                 extra_fields: Sequence[str] = ()) -> str:
    """Deterministic compact label for a materialized design point.

    Always encodes the placement/routing/width/VC/buffer axes (so two
    points differing anywhere in :data:`_LABELLED_FIELDS` can never
    collide); other overridden fields are appended explicitly via
    ``extra_fields``."""
    parts = [
        _LABEL_PLACEMENT.get(design.placement, str(design.placement)),
        _LABEL_ROUTING.get(design.routing, str(design.routing)),
        f"w{design.channel_width}",
        f"v{design.vcs_per_class}",
        f"b{design.vc_buffer_depth}",
    ]
    if design.half_routers:
        parts.append("half")
    if design.double_network:
        parts.append("dbl" + ("bal" if design.slice_mode == "balanced"
                              else "ded"))
    if design.mc_inject_ports != 1:
        parts.append(f"i{design.mc_inject_ports}")
    if design.mc_eject_ports != 1:
        parts.append(f"e{design.mc_eject_ports}")
    if (mesh_cols, mesh_rows) != (6, 6):
        parts.append(f"{mesh_cols}x{mesh_rows}")
    for name in extra_fields:
        if name in _LABELLED_FIELDS or name == MESH_AXIS:
            continue
        parts.append(f"{name.replace('_', '')}-{getattr(design, name)}")
    return "-".join(parts)


@dataclass(frozen=True)
class SearchSpace:
    """Axes (cross product) and/or explicit designs to explore."""

    name: str
    axes: Tuple[Axis, ...] = ()
    designs: Tuple[NetworkDesign, ...] = ()
    base: NetworkDesign = field(default_factory=lambda: BASELINE)
    num_mcs: int = 8

    def __post_init__(self) -> None:
        seen = set()
        for axis in self.axes:
            if axis.field in seen:
                raise ValueError(f"duplicate axis {axis.field!r}")
            seen.add(axis.field)
        if not self.axes and not self.designs:
            raise ValueError(f"space {self.name!r} is empty: give axes "
                             "and/or explicit designs")

    def size(self) -> int:
        """Raw point count before the constraint pass."""
        total = len(self.designs)
        if self.axes:
            product = 1
            for axis in self.axes:
                product *= len(axis.values)
            total += product
        return total

    def enumerate(self) -> Tuple[List[Candidate], List[RejectedPoint]]:
        """All points of the space, split into legal candidates and
        constraint-rejected points (both in deterministic order).

        No simulation happens here — the constraint pass is pure
        bookkeeping over the design dataclass and mesh geometry, which is
        what lets a whole space be vetted in microseconds before the first
        cycle is simulated."""
        candidates: List[Candidate] = []
        rejected: List[RejectedPoint] = []
        names = set()

        def admit(name: str, design: NetworkDesign, cols: int,
                  rows: int) -> None:
            if name in names:
                raise ValueError(
                    f"space {self.name!r} produced duplicate point "
                    f"{name!r}; make axis values distinguishable")
            names.add(name)
            violations = design_constraint_violations(
                design, Mesh(cols, rows), self.num_mcs)
            if violations:
                rejected.append(RejectedPoint(name, tuple(violations)))
            else:
                candidates.append(Candidate(name, design, cols, rows,
                                            self.num_mcs))

        for design in self.designs:
            admit(design.name, design, 6, 6)

        if self.axes:
            axis_fields = [axis.field for axis in self.axes]
            for combo in itertools.product(
                    *(axis.values for axis in self.axes)):
                overrides = dict(zip(axis_fields, combo))
                cols, rows = overrides.pop(MESH_AXIS, (6, 6))
                design = materialize_design("point", self.base, **overrides)
                label = design_label(design, cols, rows,
                                     extra_fields=axis_fields)
                admit(label, dataclasses.replace(design, name=label),
                      cols, rows)
        return candidates, rejected
