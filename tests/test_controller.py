"""Tests for the memory-controller node and the address map."""

import pytest

from repro.mem.controller import AddressMap, McConfig, MemoryController
from repro.noc.packet import (TrafficClass, read_reply, read_request,
                              write_request)
from repro.noc.topology import Coord

MC = Coord(1, 0)
CORE = Coord(3, 3)


class Token:
    def __init__(self, local_addr):
        self.local_addr = local_addr


class Harness:
    """Wires an MC to a fake reply network and drives both clocks."""

    def __init__(self, config=None, accept_replies=True):
        self.replies = []
        self.accept = accept_replies
        self.mc = MemoryController(MC, config or McConfig(),
                                   inject=self._inject)
        self.icnt = 0
        self.mclk = 0

    def _inject(self, packet, cycle):
        if not self.accept:
            return False
        self.replies.append(packet)
        return True

    def request(self, addr, write=False):
        make = write_request if write else read_request
        packet = make(CORE, MC, created=self.icnt, payload=Token(addr))
        self.mc.on_packet(packet, self.icnt)
        return packet

    def run(self, icnt_cycles):
        for _ in range(icnt_cycles):
            self.icnt += 1
            self.mc.icnt_step(self.icnt)
            # ~1.84 DRAM clocks per interconnect clock
            for _ in range(2 if self.icnt % 2 else 1):
                self.mclk += 1
                self.mc.dram_step(self.mclk)

    def run_until_idle(self, limit=20_000):
        for _ in range(limit):
            if self.mc.idle:
                return
            self.run(1)
        raise AssertionError("MC did not go idle")


class TestAddressMap:
    def test_interleaving_every_256_bytes(self):
        amap = AddressMap(8)
        assert amap.mc_index(0) == 0
        assert amap.mc_index(255) == 0
        assert amap.mc_index(256) == 1
        assert amap.mc_index(256 * 8) == 0

    def test_local_addresses_compact(self):
        amap = AddressMap(8)
        # Consecutive chunks owned by MC0 are locally consecutive.
        assert amap.local_address(0) == 0
        assert amap.local_address(256 * 8) == 256
        assert amap.local_address(256 * 16 + 5) == 512 + 5

    def test_single_mc(self):
        amap = AddressMap(1)
        assert amap.mc_index(123456) == 0
        assert amap.local_address(123456) == 123456

    def test_rejects_zero_mcs(self):
        with pytest.raises(ValueError):
            AddressMap(0)


class TestReadPath:
    def test_read_miss_goes_to_dram_and_replies(self):
        h = Harness()
        h.request(0x1000)
        h.run_until_idle()
        assert len(h.replies) == 1
        reply = h.replies[0]
        assert reply.traffic_class is TrafficClass.REPLY
        assert reply.dest == CORE
        assert h.mc.reads == 1

    def test_read_hit_served_by_l2(self):
        h = Harness()
        h.request(0x1000)
        h.run_until_idle()
        dram_before = h.mc.dram.requests_serviced
        h.request(0x1000)
        h.run_until_idle()
        assert len(h.replies) == 2
        assert h.mc.dram.requests_serviced == dram_before
        assert h.mc.l2.hits == 1

    def test_l2_latency_delays_processing(self):
        h = Harness(McConfig(l2_latency=8))
        h.request(0x1000)
        h.run(7)
        assert h.mc.reads == 0
        h.run(3)
        assert h.mc.reads == 1

    def test_reply_payload_echoed(self):
        h = Harness()
        pkt = h.request(0x2000)
        h.run_until_idle()
        assert h.replies[0].payload is pkt.payload


class TestWritePath:
    def test_write_fills_l2_dirty(self):
        h = Harness()
        h.request(0x3000, write=True)
        h.run_until_idle()
        assert h.mc.writes == 1
        assert h.replies == []          # writes get no reply
        assert h.mc.l2.contains(0x3000)

    def test_dirty_eviction_reaches_dram(self):
        h = Harness(McConfig(l2_size_bytes=1024, l2_associativity=2))
        # Fill one set beyond associativity with dirty lines.
        sets = h.mc.l2.config.num_sets
        for i in range(3):
            h.request(i * sets * 64, write=True)
        h.run_until_idle()
        writes = h.mc.dram.requests_serviced
        assert writes >= 1              # at least one writeback


class TestStallAccounting:
    def test_blocked_when_network_refuses(self):
        h = Harness(accept_replies=False)
        h.request(0x1000)
        h.run(600)
        assert h.mc.blocked_cycles > 0
        assert h.mc.stall_fraction() > 0

    def test_gating_stops_input_when_blocked(self):
        config = McConfig(reply_backlog_limit=2)
        h = Harness(config, accept_replies=False)
        for i in range(200):
            h.request(0x1000 + i * 64)
        h.run(1000)
        reads_then = h.mc.reads
        h.run(1000)
        # Once the reply backlog forms, no further requests are processed.
        assert h.mc.reads == reads_then
        assert h.mc.reads < 200

    def test_unblocked_mc_not_stalled(self):
        h = Harness()
        h.request(0x1000)
        h.run_until_idle()
        assert h.mc.stall_fraction() == 0.0

    def test_rejects_reply_packets(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.mc.on_packet(read_reply(CORE, MC), 0)

    def test_requires_local_addr_payload(self):
        h = Harness()
        packet = read_request(CORE, MC, payload="nope")
        h.mc.on_packet(packet, 0)
        with pytest.raises(ValueError):
            h.run(20)


class TestAddressMapProperties:
    def test_roundtrip_density(self):
        """local addresses of one MC tile the local space contiguously."""
        amap = AddressMap(8)
        locals_ = sorted(amap.local_address(a)
                         for a in range(0, 8 * 256 * 4, 256)
                         if amap.mc_index(a) == 3)
        assert locals_ == [0, 256, 512, 768]

    def test_global_space_partitioned(self):
        import random as _r
        amap = AddressMap(8)
        rng = _r.Random(0)
        seen = {}
        for _ in range(500):
            addr = rng.randrange(1 << 30)
            key = (amap.mc_index(addr), amap.local_address(addr))
            assert key not in seen or seen[key] // 256 == addr // 256
            seen[key] = addr
