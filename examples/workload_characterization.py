#!/usr/bin/env python3
"""Workload characterization (Section III / Figure 7): run each benchmark
closed-loop on the baseline mesh and on a perfect NoC, and classify it into
LL / LH / HH by perfect-NoC speedup and accepted traffic.

Run:  python examples/workload_characterization.py [ABBR ...]
(default: one representative benchmark per class from each suite)
"""

import sys

from repro.core.builder import BASELINE
from repro.system.accelerator import build_chip, perfect_chip
from repro.system.metrics import classify
from repro.workloads.profiles import PROFILES, profile

DEFAULT = ("AES", "HSP", "SLA", "CON", "NNC", "TRA", "MUM", "SCP", "RD")


def main() -> None:
    args = [a.upper() for a in sys.argv[1:]]
    profiles = ([profile(a) for a in args] if args
                else [profile(a) for a in DEFAULT])
    print(f"{'bench':6s} {'base IPC':>9s} {'perfect IPC':>12s} "
          f"{'speedup':>8s} {'traffic':>8s} {'class':>6s} {'paper':>6s}")
    agree = 0
    for prof in profiles:
        base = build_chip(prof, design=BASELINE).run(500, 1200)
        perfect = perfect_chip(prof).run(500, 1200)
        speedup = perfect.ipc / base.ipc - 1
        traffic = perfect.accepted_bytes_per_cycle_per_node
        group = classify(speedup, traffic)
        agree += group == prof.expected_group
        print(f"{prof.abbr:6s} {base.ipc:9.1f} {perfect.ipc:12.1f} "
              f"{speedup:+8.0%} {traffic:8.2f} {group:>6s} "
              f"{prof.expected_group:>6s}")
    print(f"\n{agree}/{len(profiles)} match the paper's Figure 7 classes")
    print("LL: network-insensitive and light; LH: heavy but satisfied by "
          "the balanced mesh; HH: reply-path bound (the paper's target)")


if __name__ == "__main__":
    main()
