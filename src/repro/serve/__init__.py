"""Simulation-as-a-service: a long-running job server over the harness.

The paper's conclusions come from sweeping thousands of design points;
this package promotes :mod:`repro.parallel` and the DSE engine from a
per-invocation process pool into a service that answers warm-cache
design-point queries in milliseconds:

* :mod:`repro.serve.protocol` — the newline-delimited-JSON wire
  protocol: submission kinds (``sweep``/``compare``/``explore``),
  validation with did-you-mean hints, event shapes and defaults;
* :mod:`repro.serve.executor` — routes every accepted submission
  through the *exact* library entry points a direct caller would use
  (:func:`repro.experiments.load_latency_curves`,
  :func:`repro.experiments.compare_designs`,
  :func:`repro.dse.explore_preset`), so served results are bit-identical
  to direct runs;
* :mod:`repro.serve.queue` — priority scheduling with per-client
  round-robin fairness inside each priority level;
* :mod:`repro.serve.server` — the asyncio :class:`JobServer` (TCP or
  unix socket): back-pressure with ``retry_after`` (p90 of recent job
  wall-clocks) once the pending queue saturates, streaming
  :class:`repro.parallel.TaskReport` progress to subscribed clients, a
  shared SHA-keyed :class:`repro.parallel.ResultCache` with LRU size
  budget, ``stats`` and ``metrics`` endpoints, per-job
  :class:`repro.obs.JobSpan` stage timing, and structured job-lifecycle
  logs (see :mod:`repro.obs`);
* :mod:`repro.serve.client` — a thin blocking client
  (:class:`ServeClient`) underneath ``repro submit``, ``repro metrics``
  and ``repro top``.

Quickstart::

    # terminal 1
    python -m repro serve --port 8642 --cache ~/.cache/repro-noc

    # terminal 2
    python -m repro submit sweep --design TB-DOR --rates 0.01,0.03
    python -m repro submit explore --preset smoke
    python -m repro submit stats
    python -m repro metrics          # Prometheus text exposition
    python -m repro top              # live dashboard
"""

from .client import (JobFailed, JobRejected, QueueSaturated, ServeClient,
                     ServeError)
from .executor import JOB_KINDS, JobSpecError, execute_job, validate_job
from .protocol import DEFAULT_HOST, DEFAULT_PORT, PROTOCOL_VERSION
from .queue import FairPriorityQueue
from .server import JobRecord, JobServer, ServerConfig, ThreadedServer

__all__ = [
    "DEFAULT_HOST", "DEFAULT_PORT", "FairPriorityQueue", "JOB_KINDS",
    "JobFailed", "JobRecord", "JobRejected", "JobServer", "JobSpecError",
    "PROTOCOL_VERSION", "QueueSaturated", "ServeClient", "ServeError",
    "ServerConfig", "ThreadedServer", "execute_job", "validate_job",
]
