"""Figure 11: fraction of time the MC injection ports are blocked because
the reply network cannot accept packets.

Paper: up to ~70 % for some HH benchmarks, near zero for LL."""

from common import bench_profiles, once, report, run_design
from repro.core.builder import BASELINE


def _experiment():
    rows = []
    by_group = {"LL": [], "LH": [], "HH": []}
    for prof in bench_profiles():
        res = run_design(prof, BASELINE)
        by_group[prof.expected_group].append(res.mc_stall_fraction)
        rows.append(f"{prof.abbr:4s} stalled={res.mc_stall_fraction:6.1%} "
                    f"({prof.expected_group})")
    for group, vals in by_group.items():
        if vals:
            rows.append(f"group {group}: mean stalled = "
                        f"{sum(vals)/len(vals):6.1%}")
    rows.append("(paper: HH up to ~70%, LL near zero)")
    return rows


def test_fig11_mc_stall(benchmark):
    report("fig11_mc_stall", once(benchmark, _experiment))
