"""Figure 10: interconnect latency reduction of 1-cycle versus 4-cycle
routers.

Paper: network latency drops substantially (ratios ~0.5-0.9) yet overall
performance barely moves (Figure 9) — the workloads are bandwidth-, not
latency-sensitive."""

from common import bench_profiles, once, report, run_design
from repro.core.builder import BASELINE, ONE_CYCLE


def _experiment():
    rows = []
    ratios = []
    for prof in bench_profiles():
        slow = run_design(prof, BASELINE)
        fast = run_design(prof, ONE_CYCLE)
        if slow.mean_network_latency <= 0:
            continue
        ratio = fast.mean_network_latency / slow.mean_network_latency
        ratios.append(ratio)
        rows.append(f"{prof.abbr:4s} latency ratio = {ratio:5.2f} "
                    f"({fast.mean_network_latency:6.1f} / "
                    f"{slow.mean_network_latency:6.1f} cycles)")
    rows.append(f"mean ratio = {sum(ratios)/len(ratios):.2f} "
                "(paper: ~0.5-0.9, all below 1)")
    assert all(r < 1.05 for r in ratios)
    return rows


def test_fig10_latency_ratio(benchmark):
    report("fig10_latency_ratio", once(benchmark, _experiment))
