"""Ideal network models used in the paper's limit studies.

* :class:`PerfectNetwork` — zero latency, infinite bandwidth (Figure 7's
  "perfect interconnection network").
* :class:`BandwidthLimitedNetwork` — zero latency once a flit is accepted,
  but a global cap on flits accepted per cycle (Figure 6's limit study).
  Multiple sources may transmit to one destination in a single cycle and a
  source may send multiple flits per cycle, exactly as described in
  Section III-A.

Both expose the same interface as :class:`repro.noc.network.MeshNetwork`
(``try_inject`` / ``step`` / ``set_ejection_handler`` / ``stats``) so the
closed-loop simulator can swap them in for the real mesh.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from .packet import Packet, TrafficClass
from .stats import NetworkStats
from .topology import Coord


class _IdealBase:
    """Shared bookkeeping for the ideal-network models."""

    def __init__(self, channel_width: int = 16) -> None:
        self.channel_width = channel_width
        self.cycle = 0
        self.stats = NetworkStats()
        self._handlers: Dict[Coord, Callable[[Packet, int], None]] = {}

    def set_ejection_handler(self, coord: Coord,
                             handler: Callable[[Packet, int], None]) -> None:
        self._handlers[coord] = handler

    def carries(self, packet: Packet) -> bool:
        return True

    def _deliver(self, packet: Packet, now: int) -> None:
        num_flits = packet.num_flits(self.channel_width)
        packet.ejected = now
        self.stats.record_ejection(packet, num_flits)
        handler = self._handlers.get(packet.dest)
        if handler is not None:
            handler(packet, now)


class PerfectNetwork(_IdealBase):
    """Zero-latency, infinite-bandwidth interconnect."""

    def __init__(self, channel_width: int = 16) -> None:
        super().__init__(channel_width)
        self._pending: Deque[Packet] = deque()

    def try_inject(self, packet: Packet, cycle: int) -> bool:
        packet.injected = cycle
        self.stats.record_injection(
            packet, packet.num_flits(self.channel_width))
        self._pending.append(packet)
        return True

    def step(self, cycle: Optional[int] = None) -> None:
        self.cycle = self.cycle + 1 if cycle is None else cycle
        self.stats.cycles = self.cycle
        while self._pending:
            self._deliver(self._pending.popleft(), self.cycle)

    @property
    def idle(self) -> bool:
        return not self._pending


class BandwidthLimitedNetwork(_IdealBase):
    """Zero-latency interconnect with an aggregate bandwidth cap.

    ``flits_per_cycle`` is the total number of flits the network accepts per
    interconnect cycle; fractional budgets accumulate across cycles.  A
    packet is accepted only when the whole packet fits in the remaining
    budget, and is delivered instantly on acceptance.
    """

    def __init__(self, flits_per_cycle: float,
                 channel_width: int = 16) -> None:
        super().__init__(channel_width)
        if flits_per_cycle <= 0:
            raise ValueError("bandwidth cap must be positive")
        self.flits_per_cycle = flits_per_cycle
        self._allowance = 0.0
        self._queue: Deque[Packet] = deque()

    def try_inject(self, packet: Packet, cycle: int) -> bool:
        packet.injected = cycle
        self.stats.record_injection(
            packet, packet.num_flits(self.channel_width))
        self._queue.append(packet)
        return True

    def step(self, cycle: Optional[int] = None) -> None:
        self.cycle = self.cycle + 1 if cycle is None else cycle
        self.stats.cycles = self.cycle
        self._allowance = min(
            self._allowance + self.flits_per_cycle,
            # Never bank more than a few cycles of budget; keeps bursts
            # bounded the way a real channel would.
            4.0 * self.flits_per_cycle)
        while self._queue:
            flits = self._queue[0].num_flits(self.channel_width)
            if flits > self._allowance:
                break
            self._allowance -= flits
            self._deliver(self._queue.popleft(), self.cycle)

    @property
    def idle(self) -> bool:
        return not self._queue
