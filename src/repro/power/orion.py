"""Per-component router and link energy model (ORION-style, 65 nm anchor).

Mirrors the calibration discipline of :mod:`repro.area.orion`: each
component's energy obeys the functional form ORION 2.0's numbers obey,
with one calibration constant per component anchored at the baseline
configuration (65 nm, 16-byte flits, 2 VCs × 8-flit buffers, 5×5 matrix
crossbar).  Every other configuration is a *prediction* of the form; the
power-model goldens pin the anchors exactly and check predictions within
tolerance.

* **Crossbar** — a matrix crossbar's switched capacitance grows with its
  datapath complexity (the same ``crossbar_units`` cell count the area
  model uses) times ``width²``: a 5×5 full crossbar moving one 16-byte
  flit costs 1.2 pJ; a half-router's 12-unit datapath is priced by the
  same constant.
* **Buffers** — SRAM access energy grows with the accessed row (flit
  bytes) and with the array size (VCs × depth), since longer bitlines
  switch more capacitance: ``E ∝ VCs · depth · flit_bytes``.  Anchors:
  0.62 pJ per write and 0.48 pJ per read at 2 VCs × 8 × 16 B.
* **Allocator** — dominated by VC allocation, quadratic in the VC count
  like its area: 0.024 pJ per granted traversal at 2 VCs.
* **Links** — one flit-traversal of a mesh link switches capacitance
  linear in the channel width: 1.75 pJ at 16 B (deliberately echoing the
  0.175 mm²-per-link area anchor).
* **Leakage** — proportional to layout area per structure:
  2.5 mW per mm² at 65 nm, scaled per node by the technology table.

All dynamic energies are per *event* at the 65 nm anchor; technology
scaling multiplies them by :attr:`repro.power.tech.TechNode.dynamic_scale`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..area.orion import crossbar_units

#: Calibration anchors (65 nm, 16-byte flits) — pinned by the goldens.
_BASE_WIDTH = 16.0
_FULL_MATRIX_UNITS = 25                       # 5x5 matrix crossbar
E_CROSSBAR_ANCHOR_PJ = 1.2                    # full 5x5 crossbar, 16 B
E_BUFFER_WRITE_ANCHOR_PJ = 0.62               # 2 VCs x 8 deep x 16 B
E_BUFFER_READ_ANCHOR_PJ = 0.48                # 2 VCs x 8 deep x 16 B
E_ALLOCATOR_ANCHOR_PJ = 0.024                 # 2 VCs
E_LINK_ANCHOR_PJ = 1.75                       # 16 B channel
LEAKAGE_MW_PER_MM2 = 2.5                      # 65 nm

_K_CROSSBAR = E_CROSSBAR_ANCHOR_PJ / (_FULL_MATRIX_UNITS * _BASE_WIDTH ** 2)
_K_BUF_WRITE = E_BUFFER_WRITE_ANCHOR_PJ / (2 * 8 * _BASE_WIDTH)
_K_BUF_READ = E_BUFFER_READ_ANCHOR_PJ / (2 * 8 * _BASE_WIDTH)
_K_ALLOCATOR = E_ALLOCATOR_ANCHOR_PJ / (2 ** 2)
_K_LINK = E_LINK_ANCHOR_PJ / _BASE_WIDTH


@dataclass(frozen=True)
class RouterEnergy:
    """Per-event energies of one router instance (pJ, 65 nm)."""

    crossbar_pj: float       # per switch traversal
    buffer_write_pj: float   # per flit written into an input VC
    buffer_read_pj: float    # per flit read out of an input VC
    allocator_pj: float      # per granted traversal

    @property
    def traversal_pj(self) -> float:
        """Energy of one full flit pass through the router: buffer write
        + buffer read + allocation + crossbar."""
        return (self.crossbar_pj + self.buffer_write_pj
                + self.buffer_read_pj + self.allocator_pj)


def crossbar_energy_pj(channel_width: int, half: bool = False,
                       inject_ports: int = 1, eject_ports: int = 1) -> float:
    """Energy of one flit traversal of the crossbar (pJ, 65 nm)."""
    if channel_width <= 0:
        raise ValueError("channel width must be positive")
    units = crossbar_units(half, inject_ports, eject_ports)
    return _K_CROSSBAR * units * channel_width ** 2


def buffer_energy_pj(channel_width: int, num_vcs: int,
                     buffer_depth: int = 8, write: bool = True) -> float:
    """Energy of one buffer access (pJ, 65 nm): grows with the accessed
    flit and with the per-port array size (VCs × depth)."""
    if channel_width <= 0 or num_vcs <= 0 or buffer_depth <= 0:
        raise ValueError("buffer parameters must be positive")
    k = _K_BUF_WRITE if write else _K_BUF_READ
    return k * num_vcs * buffer_depth * channel_width


def allocator_energy_pj(num_vcs: int) -> float:
    """Energy of one switch/VC allocation (pJ, 65 nm), quadratic in VCs."""
    if num_vcs <= 0:
        raise ValueError("VC count must be positive")
    return _K_ALLOCATOR * num_vcs ** 2


def link_energy_pj(channel_width: int) -> float:
    """Energy of one flit-traversal of one mesh link (pJ, 65 nm)."""
    if channel_width <= 0:
        raise ValueError("channel width must be positive")
    return _K_LINK * channel_width


def leakage_w(area_mm2: float) -> float:
    """Leakage power of ``area_mm2`` of NoC layout at 65 nm (watts)."""
    if area_mm2 < 0:
        raise ValueError("area must be non-negative")
    return LEAKAGE_MW_PER_MM2 * area_mm2 * 1e-3


def router_energy(channel_width: int, num_vcs: int, half: bool = False,
                  buffer_depth: int = 8, inject_ports: int = 1,
                  eject_ports: int = 1) -> RouterEnergy:
    """Per-event energy breakdown of one router instance (65 nm)."""
    return RouterEnergy(
        crossbar_pj=crossbar_energy_pj(channel_width, half,
                                       inject_ports, eject_ports),
        buffer_write_pj=buffer_energy_pj(channel_width, num_vcs,
                                         buffer_depth, write=True),
        buffer_read_pj=buffer_energy_pj(channel_width, num_vcs,
                                        buffer_depth, write=False),
        allocator_pj=allocator_energy_pj(num_vcs),
    )
