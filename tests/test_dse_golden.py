"""Exploration determinism goldens.

The engine's contract: an exploration's payload is bit-identical across
``jobs`` counts and cache states (cold or warm), and the ``figure2``
preset reproduces the throughput-effectiveness ordering the original
``examples/design_space_exploration.py`` printed at full windows.

The cross-jobs/cross-cache matrix runs the real figure2 space at small
windows to stay fast; the full-window ordering test runs the actual
preset (the expensive honest check — use a warm cache to make re-runs
free)."""

import dataclasses
import json

import pytest

from repro.dse import (CSV_COLUMNS, NODE_CSV_COLUMNS, ExplorationResult,
                       FidelityLadder, explore, figure2, power)
from repro.parallel import ReportCollector

#: The head example's Figure 2 ordering, best throughput-effectiveness
#: first — the acceptance golden for `repro explore --preset figure2`.
FIGURE2_ORDERING = [
    "Throughput-Effective",
    "Double-CP-CR",
    "CP-CR-4VC",
    "CP-DOR",
    "2x-TB-DOR",
    "TB-DOR-1cyc",
    "TB-DOR",
]


def tiny_figure2():
    """The figure2 space and seed policy at test-sized windows/mix."""
    spec = figure2()
    return dataclasses.replace(
        spec, mix=("RD", "HSP", "BLK"),
        ladder=FidelityLadder(screen=False, halving_rounds=0,
                              confirm_warmup=60, confirm_measure=120,
                              min_survivors=7))


def tiny_power():
    """The power preset at the same test-sized windows/mix: its
    simulation tasks must be byte-identical to ``tiny_figure2``'s."""
    return dataclasses.replace(tiny_figure2(), name="power",
                               tech_nodes=power().tech_nodes)


class TestBitIdenticalAcrossJobsAndCache:
    def test_jobs_and_cache_matrix(self, tmp_path):
        spec = tiny_figure2()
        runs = {}
        stats = {}
        # cache A: serial cold, then parallel warm;
        # cache B: parallel cold, then serial warm.
        for key, jobs, cache in (("serial-cold", 1, tmp_path / "a"),
                                 ("parallel-warm", 4, tmp_path / "a"),
                                 ("parallel-cold", 4, tmp_path / "b"),
                                 ("serial-warm", 1, tmp_path / "b")):
            collector = ReportCollector()
            result = explore(spec, jobs=jobs, cache=str(cache),
                             progress=collector)
            runs[key] = result.to_json()
            stats[key] = collector
        # the cache states are what the labels claim
        assert stats["serial-cold"].cached == 0
        assert stats["parallel-cold"].cached == 0
        assert stats["parallel-warm"].executed == 0
        assert stats["serial-warm"].executed == 0
        # ... and every payload is bit-identical
        golden = runs["serial-cold"]
        for key, payload in runs.items():
            assert payload == golden, f"{key} diverged from serial-cold"

    def test_host_stats_excluded_from_payload(self, tmp_path):
        result = explore(tiny_figure2(), jobs=1,
                         cache=str(tmp_path / "cache"))
        assert result.host is not None
        assert result.host["tasks"] > 0
        assert "host" not in result.to_json()

    def test_payload_round_trips_and_artifacts_pin_schema(self, tmp_path):
        result = explore(tiny_figure2(), jobs=1,
                         cache=str(tmp_path / "cache"))
        clone = ExplorationResult.from_json(result.to_json())
        assert clone.to_json() == result.to_json()
        assert clone == dataclasses.replace(result, host=None)

        written = result.write_artifacts(tmp_path / "out")
        assert sorted(written) == ["candidates.csv", "exploration.json",
                                   "frontier.csv", "host.json",
                                   "tech_nodes.csv"]
        payload = json.loads(written["exploration.json"].read_text())
        assert payload["schema"] == 2
        assert ExplorationResult.from_json(payload).to_json() \
            == result.to_json()
        header = written["candidates.csv"].read_text().splitlines()[0]
        assert header == ",".join(CSV_COLUMNS)
        body = written["candidates.csv"].read_text().splitlines()[1:]
        assert len(body) == len(result.candidates)
        frontier_rows = written["frontier.csv"].read_text().splitlines()[1:]
        assert len(frontier_rows) == len(result.frontier)
        node_header = written["tech_nodes.csv"].read_text().splitlines()[0]
        assert node_header == ",".join(NODE_CSV_COLUMNS)

    def test_old_two_objective_artifacts_still_readable(self, tmp_path):
        # A schema-1 artifact (pre-power) must load with the power
        # fields defaulting to "not computed".
        result = explore(tiny_figure2(), jobs=1,
                         cache=str(tmp_path / "cache"))
        legacy = result.to_json()
        legacy["schema"] = 1
        for key in ("tech_nodes", "frontier3d"):
            del legacy[key]
        for candidate in legacy["candidates"]:
            for key in ("noc_power_w", "ipc_per_watt", "power_by_node",
                        "on_frontier3d", "dominated_by_3d"):
                del candidate[key]
        loaded = ExplorationResult.from_json(
            json.loads(json.dumps(legacy)))
        assert loaded.tech_nodes == [65]
        assert loaded.frontier3d == []
        assert loaded.ranking == result.ranking
        assert loaded.frontier == result.frontier
        for old, new in zip(loaded.candidates, result.candidates):
            assert old.noc_power_w is None
            assert old.power_by_node is None
            assert old.hm_ipc == new.hm_ipc
            assert old.on_frontier == new.on_frontier

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            ExplorationResult.from_json({"schema": 99})

    def test_power_projection_bit_identical_to_figure2(self, tmp_path):
        # The power preset runs byte-identical simulation tasks, so its
        # (IPC, mm²) numbers, 2-D frontier and ranking match figure2
        # exactly — and its tasks hit figure2's cache entries.
        cache = str(tmp_path / "cache")
        base = explore(tiny_figure2(), jobs=1, cache=cache)
        collector = ReportCollector()
        swept = explore(tiny_power(), jobs=1, cache=cache,
                        progress=collector)
        assert collector.executed == 0          # every task cache-shared
        assert swept.tech_nodes == [65, 45, 32, 22]
        assert swept.ranking == base.ranking
        assert swept.frontier == base.frontier
        assert set(swept.frontier) <= set(swept.frontier3d)
        for b, s in zip(base.candidates, swept.candidates):
            assert s.hm_ipc == b.hm_ipc         # bit-identical, not approx
            assert s.noc_area_mm2 == b.noc_area_mm2
            assert s.noc_power_w == b.noc_power_w   # 65 nm base matches
            assert len(s.power_by_node) == 4
            # Smaller nodes must improve IPC/W monotonically (frequency
            # rises while dynamic and leakage both shrink).
            ipws = [r["ipc_per_watt"] for r in s.power_by_node]
            assert ipws == sorted(ipws)


class TestFigure2FullOrdering:
    def test_reproduces_head_example_ordering(self):
        # Full 400/1000-cycle windows over the 9-benchmark mix — the
        # honest acceptance check (~90 s cold; free on a warm cache).
        result = explore(figure2(), jobs=1, cache=True)
        assert result.ranking == FIGURE2_ORDERING
        assert result.rejected == []
        for c in result.candidates:
            assert c.fidelity == "confirm"
            assert c.hm_ipc is not None and c.hm_ipc > 0
            assert c.throughput_effectiveness \
                == pytest.approx(c.hm_ipc / c.chip_area_mm2)
        # Figure 2's frontier: the big-IPC point and the two
        # small-area/high-IPC points survive; plain meshes are dominated
        assert "Throughput-Effective" in result.frontier
        assert "TB-DOR" not in result.frontier


class TestPowerPresetFullSweep:
    def test_power_preset_projects_onto_figure2(self, tmp_path):
        # Acceptance: `--preset power` shares figure2's tasks exactly
        # (free on the cache the figure2 test warmed) and its (IPC, mm²)
        # projection is bit-identical at the 65 nm base node.
        base = explore(figure2(), jobs=1, cache=True)
        result = explore(power(), jobs=1, cache=True)
        assert result.ranking == FIGURE2_ORDERING
        assert result.frontier == base.frontier
        assert result.tech_nodes == [65, 45, 32, 22]
        for b, s in zip(base.candidates, result.candidates):
            assert s.hm_ipc == b.hm_ipc
            assert s.noc_area_mm2 == b.noc_area_mm2
        # The throughput-effective checkerboard design leads the IPC/W
        # ordering at every swept node (the sweep only widens its lead:
        # leakage shrinks faster than the plain mesh's dynamic share).
        rows = result._node_rows()
        leaders = {row["tech_nm"]: row["name"] for row in rows
                   if row["rank_at_node"] == 1}
        assert len(leaders) >= 3
        assert set(leaders.values()) == {"Throughput-Effective"}
        # ... and it is on the 3-D frontier with the frontier a superset
        # of the 2-D one.
        assert "Throughput-Effective" in result.frontier3d
        assert set(result.frontier) <= set(result.frontier3d)
