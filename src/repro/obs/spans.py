"""Job spans: per-stage wall-clock decomposition of one submission.

The same invariant style as the telemetry layer's packet decomposition
(PR 3): a job's end-to-end latency decomposes into stage durations that
**telescope exactly** — their sum equals the whole, not approximately
but bit-for-bit.  Packet latencies telescope because they are integer
cycles; wall-clock floats would not (``(b-a)+(c-b) != c-a`` in
binary64), so spans record **integer nanoseconds** from
``time.perf_counter_ns()``: stage ``i`` is ``t[i+1]-t[i]``, the total
is ``t[n]-t[0]``, and integer subtraction telescopes by construction.

A span is a list of named marks.  The serving pipeline marks
``submit`` (implicit, at construction) → ``validate`` → ``enqueue`` →
``dequeue`` → ``execute`` → ``respond``; the stage *named* ``dequeue``
therefore measures the queue wait, and ``execute`` the job's
wall-clock.  Spans are persisted on the job record and served by the
``status`` command, so a slow job can be decomposed after the fact the
same way Figure 11 decomposes a slow packet.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bumped whenever the serialized span shape changes.
SCHEMA = 1

#: The serving pipeline's stage marks, in order (``submit`` is the
#: implicit starting mark, not a stage).
STAGES = ("validate", "enqueue", "dequeue", "execute", "respond")


class JobSpan:
    """Ordered monotonic marks; stage durations telescope exactly."""

    __slots__ = ("marks", "_clock")

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter_ns
        self.marks: List[Tuple[str, int]] = [("submit", self._clock())]

    def mark(self, stage: str) -> None:
        """Record that ``stage`` just finished."""
        now = self._clock()
        last = self.marks[-1][1]
        if now < last:
            # perf_counter_ns is monotonic; defend against injected
            # clocks so durations stay non-negative.
            now = last
        self.marks.append((stage, now))

    def stage_durations(self) -> List[Tuple[str, int]]:
        """``(stage, nanoseconds)`` per stage, in pipeline order."""
        return [(name, self.marks[i][1] - self.marks[i - 1][1])
                for i, (name, _) in enumerate(self.marks) if i > 0]

    def duration_ns(self, stage: str) -> int:
        """Duration of one named stage (0 if never marked)."""
        for name, nanos in self.stage_durations():
            if name == stage:
                return nanos
        return 0

    @property
    def total_ns(self) -> int:
        """End-to-end nanoseconds, first mark to last.  Equals the sum
        of :meth:`stage_durations` exactly (integer telescoping)."""
        return self.marks[-1][1] - self.marks[0][1]

    def complete(self) -> bool:
        return bool(self.marks) and self.marks[-1][0] == STAGES[-1]

    def to_json(self) -> Dict[str, Any]:
        """Pinned serialization served by the ``status`` command."""
        return {
            "schema": SCHEMA,
            "stages": [{"stage": name, "ns": nanos}
                       for name, nanos in self.stage_durations()],
            "total_ns": self.total_ns,
            "total_seconds": round(self.total_ns / 1e9, 6),
            "complete": self.complete(),
        }

    def __repr__(self) -> str:
        stages = ">".join(name for name, _ in self.marks)
        return f"JobSpan({stages}, total={self.total_ns}ns)"
