"""Event-driven cycle core throughput: wake scheduling vs exhaustive scan.

Times the same pinned workloads under both cycle cores — the event-driven
stepper (wake-scheduled routers, allocation fast paths, idle-component
skipping) and the reference exhaustive scan (``use_reference_stepper``) —
and writes ``benchmarks/results/BENCH_core.json`` with before/after
cycles-per-second and flits-per-second plus the speedup:

* ``closed_loop_smoke`` — a finite BIN kernel on TB-DOR whose drained tail
  exercises the idle fast paths (cores finished, MCs idle, networks empty).
  The event core must be at least 2x the reference here.
* ``open_loop_light`` — 8x8 mesh at a light injection rate (informational;
  most routers idle, the wake heap stays nearly empty).
* ``open_loop_saturated`` — the same mesh driven past saturation, where the
  scan is genuinely busy: every router holds flits, but most are blocked
  upstream of the MC hot links and zero-grant routers sleep until a credit
  arrives.  The event core must be at least 1.3x the reference here.

Both steppers must also produce bit-identical results (the determinism
contract pinned by ``tests/test_event_core.py``), so the bench doubles as
a determinism canary.  Host timing on shared runners is noisy, so each
mode runs ``REPRO_BENCH_REPS`` times (default 3), interleaved, and the
per-mode minimum is compared — the minimum of a deterministic workload is
the stable estimator under scheduler noise.
"""

from __future__ import annotations

import json
import os
import time

from common import RESULTS_DIR, SEED, once, report
from repro.core.builder import build, design_by_name, open_loop_variant
from repro.noc.openloop import OpenLoopRunner
from repro.noc.topology import Mesh
from repro.noc.traffic import UniformManyToFew
from repro.system.accelerator import build_chip
from repro.workloads.profiles import profile

BENCH_SCHEMA = 1
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))

# Closed loop: finite kernel, measured to well past its drained tail.
CLOSED_PROFILE = "BIN"
CLOSED_DESIGN = "TB-DOR"
CLOSED_IPW = 16
CLOSED_WARMUP, CLOSED_MEASURE = 200, 4800
CLOSED_FLOOR = 2.0

# Open loop: a mesh large enough that saturation leaves most routers
# blocked (occupied but unable to grant) rather than actively draining —
# with 8 MCs on 16x16, the ejection hot links cap per-node throughput at
# ~0.03 flits/cycle, so rate 0.30 is deep saturation and 0.01 is light.
OPEN_DESIGN = "TB-DOR"
OPEN_MESH = (20, 20)
OPEN_WARMUP, OPEN_MEASURE = 300, 800
LIGHT_RATE = 0.01
SATURATED_RATE = 0.30
SATURATED_FLOOR = 1.3
#: Extra interleaved rep pairs allowed when a floor check lands short —
#: per-mode minima only sharpen with more samples, so retries converge
#: to the clean-machine ratio instead of flaking on a noise burst.
EXTRA_REPS = max(0, int(os.environ.get("REPRO_BENCH_EXTRA_REPS", "4")))


def _flits_ejected(network) -> int:
    return sum(net.stats.flits_ejected
               for net in getattr(network, "networks", [network]))


def _closed_run(reference: bool):
    chip = build_chip(profile(CLOSED_PROFILE),
                      design=design_by_name(CLOSED_DESIGN), seed=SEED,
                      instructions_per_warp=CLOSED_IPW)
    if reference:
        chip.use_reference_stepper()
    start = time.perf_counter()
    result = chip.run(warmup=CLOSED_WARMUP, measure=CLOSED_MEASURE)
    seconds = time.perf_counter() - start
    return seconds, chip.icnt_cycle, _flits_ejected(chip.network), \
        result.to_json()


def _open_run(rate: float, reference: bool):
    system = build(open_loop_variant(design_by_name(OPEN_DESIGN)),
                   Mesh(*OPEN_MESH), num_mcs=8, seed=SEED)
    if reference:
        system.use_reference_stepper()
    runner = OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                            UniformManyToFew(system.mc_nodes), rate,
                            seed=SEED)
    start = time.perf_counter()
    point = runner.run(warmup=OPEN_WARMUP, measure=OPEN_MEASURE)
    seconds = time.perf_counter() - start
    return seconds, OPEN_WARMUP + OPEN_MEASURE, _flits_ejected(system), \
        point.to_json()


def _measure(name: str, run, floor):
    """Interleave ``REPS`` reference/event pairs; compare per-mode minima.

    Also asserts the determinism contract: every rep of every mode must
    produce the same result payload, and the event payload must equal the
    reference payload bit for bit.
    """
    best = {}
    payloads = {}

    def one_pair():
        for mode, reference in (("reference", True), ("event", False)):
            seconds, cycles, flits, payload = run(reference)
            if mode not in best or seconds < best[mode][0]:
                best[mode] = (seconds, cycles, flits)
            expected = payloads.setdefault(mode, payload)
            if payload != expected:
                raise AssertionError(
                    f"{name}: {mode} stepper is not deterministic "
                    "across repetitions")

    reps = REPS
    for _ in range(REPS):
        one_pair()
    if floor is not None:
        for _ in range(EXTRA_REPS):
            if best["reference"][0] / best["event"][0] >= floor:
                break
            one_pair()
            reps += 1
    if payloads["event"] != payloads["reference"]:
        raise AssertionError(
            f"{name}: event-driven result differs from the reference "
            "exhaustive scan")

    def stats(mode):
        seconds, cycles, flits = best[mode]
        return {
            "best_seconds": round(seconds, 4),
            "cycles": cycles,
            "flits_ejected": flits,
            "cycles_per_second": round(cycles / seconds, 1),
            "flits_per_second": round(flits / seconds, 1),
        }

    entry = {
        "reps": reps,
        "reference": stats("reference"),
        "event": stats("event"),
        "speedup": round(best["reference"][0] / best["event"][0], 3),
        "identical": True,
    }
    if floor is not None:
        entry["floor"] = floor
        if entry["speedup"] < floor:
            raise AssertionError(
                f"{name}: event core speedup {entry['speedup']}x is below "
                f"the {floor}x floor (reference "
                f"{entry['reference']['best_seconds']}s vs event "
                f"{entry['event']['best_seconds']}s over {reps} "
                "interleaved reps)")
    return entry


def _experiment():
    configs = {
        "closed_loop_smoke": _measure(
            "closed_loop_smoke", _closed_run, CLOSED_FLOOR),
        "open_loop_light": _measure(
            "open_loop_light",
            lambda reference: _open_run(LIGHT_RATE, reference), None),
        "open_loop_saturated": _measure(
            "open_loop_saturated",
            lambda reference: _open_run(SATURATED_RATE, reference),
            SATURATED_FLOOR),
    }
    payload = {
        "schema": BENCH_SCHEMA,
        "reps": REPS,
        "workloads": {
            "closed_loop_smoke": {
                "profile": CLOSED_PROFILE, "design": CLOSED_DESIGN,
                "instructions_per_warp": CLOSED_IPW,
                "warmup": CLOSED_WARMUP, "measure": CLOSED_MEASURE,
            },
            "open_loop_light": {
                "design": OPEN_DESIGN, "mesh": list(OPEN_MESH),
                "rate": LIGHT_RATE,
                "warmup": OPEN_WARMUP, "measure": OPEN_MEASURE,
            },
            "open_loop_saturated": {
                "design": OPEN_DESIGN, "mesh": list(OPEN_MESH),
                "rate": SATURATED_RATE,
                "warmup": OPEN_WARMUP, "measure": OPEN_MEASURE,
            },
        },
        "configs": configs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_core.json"
    out.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    rows = [
        f"{'config':22s} {'ref s':>8s} {'event s':>8s} {'speedup':>8s} "
        f"{'kcyc/s':>8s} {'floor':>6s}",
    ]
    for name, entry in configs.items():
        floor = entry.get("floor")
        rows.append(
            f"{name:22s} {entry['reference']['best_seconds']:8.2f} "
            f"{entry['event']['best_seconds']:8.2f} "
            f"{entry['speedup']:7.2f}x "
            f"{entry['event']['cycles_per_second'] / 1e3:8.1f} "
            f"{(f'{floor:.1f}x' if floor else '-'):>6s}")
    rows.append(f"(min over {REPS} interleaved reps per mode; both "
                "steppers bit-identical; details in "
                "results/BENCH_core.json)")
    return rows


def test_core_throughput(benchmark):
    report("core_throughput", once(benchmark, _experiment))


if __name__ == "__main__":
    # Plain-script entry for CI (no pytest-benchmark dependency).
    report("core_throughput", _experiment())
