"""Integration tests for the mesh network (delivery, latency, flow control)."""

import random

import pytest

from repro.noc.network import MeshNetwork, NocParams
from repro.noc.packet import (TrafficClass, read_reply, read_request,
                              write_request)
from repro.noc.router import RouterSpec
from repro.noc.routing import DorXY
from repro.noc.topology import Coord, Mesh
from repro.noc.vc import shared_vc_config


def make_network(cols=6, rows=6, latency=4, width=16, vcs_per_class=1,
                 source_queue=None, specs=None):
    mesh = Mesh(cols, rows)
    params = NocParams(channel_width=width,
                       source_queue_flits=source_queue)
    specs = specs or {c: RouterSpec(c, pipeline_latency=latency)
                      for c in mesh.coords()}
    return MeshNetwork(mesh, specs, params, shared_vc_config(vcs_per_class),
                       DorXY(mesh), seed=1)


def run_packet(net, packet):
    done = []
    net.set_ejection_handler(packet.dest, lambda p, c: done.append(p))
    assert net.try_inject(packet, net.cycle)
    for _ in range(500):
        net.step()
        if done:
            return done[0]
    raise AssertionError("packet never arrived")


class TestDelivery:
    def test_single_packet_arrives(self):
        net = make_network()
        p = run_packet(net, read_request(Coord(0, 0), Coord(5, 5)))
        assert p.ejected > 0

    def test_multi_flit_packet_arrives_whole(self):
        net = make_network()
        p = run_packet(net, read_reply(Coord(1, 1), Coord(4, 3)))
        assert net.stats.flits_ejected == 4

    def test_local_delivery(self):
        net = make_network()
        p = run_packet(net, read_request(Coord(2, 2), Coord(2, 2)))
        assert p.ejected > 0

    def test_uncontended_latency_matches_hop_model(self):
        """Per-hop cost = pipeline + channel latency (5 cycles baseline),
        plus the same cost at the final router before ejection."""
        net = make_network(latency=4)
        p = run_packet(net, read_request(Coord(0, 2), Coord(3, 2)))
        hops = 3
        expected = (hops + 1) * (4 + 1)
        assert abs(p.network_latency - expected) <= 2

    def test_one_cycle_router_latency(self):
        net = make_network(latency=1)
        p = run_packet(net, read_request(Coord(0, 2), Coord(3, 2)))
        expected = 4 * (1 + 1)
        assert abs(p.network_latency - expected) <= 2

    def test_latency_scales_with_distance(self):
        net = make_network()
        near = run_packet(net, read_request(Coord(0, 0), Coord(1, 0)))
        far = run_packet(net, read_request(Coord(0, 0), Coord(5, 5)))
        assert far.network_latency > near.network_latency


class TestWormhole:
    def test_packets_same_vc_stay_ordered(self):
        net = make_network()
        order = []
        dest = Coord(5, 0)
        net.set_ejection_handler(dest, lambda p, c: order.append(p.pid))
        packets = [read_reply(Coord(0, 0), dest) for _ in range(4)]
        for p in packets:
            net.try_inject(p, net.cycle)
        for _ in range(400):
            net.step()
        assert order == [p.pid for p in packets]

    def test_flit_conservation(self):
        net = make_network()
        rng = random.Random(0)
        nodes = list(net.mesh.coords())
        sent = 0
        for node in nodes:
            net.set_ejection_handler(node, lambda p, c: None)
        for i in range(50):
            src, dst = rng.sample(nodes, 2)
            p = read_reply(src, dst) if i % 2 else read_request(src, dst)
            net.try_inject(p, net.cycle)
            sent += p.num_flits(16)
        net.run_until_idle()
        assert net.stats.flits_ejected == sent
        assert net.stats.packets_ejected == 50


class TestSourceQueue:
    def test_bounded_queue_rejects_when_full(self):
        net = make_network(source_queue=4)
        src = Coord(0, 0)
        ok = [net.try_inject(read_reply(src, Coord(5, 5)), 0)
              for _ in range(3)]
        assert ok == [True, False, False]   # 4-flit packet fills the queue

    def test_unbounded_queue_never_rejects(self):
        net = make_network(source_queue=None)
        src = Coord(0, 0)
        assert all(net.try_inject(read_reply(src, Coord(5, 5)), 0)
                   for _ in range(100))

    def test_queue_drains_over_time(self):
        net = make_network(source_queue=4)
        src = Coord(0, 0)
        net.set_ejection_handler(Coord(5, 5), lambda p, c: None)
        assert net.try_inject(read_reply(src, Coord(5, 5)), 0)
        assert not net.try_inject(read_reply(src, Coord(5, 5)), 0)
        for _ in range(50):
            net.step()
        assert net.try_inject(read_reply(src, Coord(5, 5)), net.cycle)


class TestStats:
    def test_injection_counts_per_node(self):
        net = make_network()
        src, dst = Coord(1, 1), Coord(4, 4)
        net.set_ejection_handler(dst, lambda p, c: None)
        net.try_inject(read_reply(src, dst), 0)
        net.run_until_idle()
        assert net.stats.node_injected_flits[src] == 4
        assert net.stats.node_ejected_flits[dst] == 4

    def test_per_class_latency_split(self):
        net = make_network()
        run_packet(net, read_request(Coord(0, 0), Coord(3, 3)))
        run_packet(net, read_reply(Coord(0, 0), Coord(3, 3)))
        stats = net.stats
        assert stats.per_class[TrafficClass.REQUEST].packets == 1
        assert stats.per_class[TrafficClass.REPLY].packets == 1
        assert stats.mean_packet_latency() > 0

    def test_idle_detection(self):
        net = make_network()
        assert net.idle
        net.try_inject(read_request(Coord(0, 0), Coord(1, 0)), 0)
        assert not net.idle
        net.set_ejection_handler(Coord(1, 0), lambda p, c: None)
        net.run_until_idle()
        assert net.idle


class TestSaturation:
    def test_heavy_load_drains_without_deadlock(self):
        """Saturating many-to-few traffic must still drain (no deadlock)."""
        net = make_network(source_queue=None)
        rng = random.Random(1)
        mcs = [Coord(1, 0), Coord(4, 0), Coord(1, 5), Coord(4, 5)]
        for node in net.mesh.coords():
            net.set_ejection_handler(node, lambda p, c: None)
        for _ in range(300):
            src = Coord(rng.randrange(6), rng.randrange(6))
            net.try_inject(read_request(src, rng.choice(mcs)), 0)
        net.run_until_idle(max_cycles=50_000)
        assert net.stats.packets_ejected == 300


class TestChannelUtilization:
    def test_idle_network_zero(self):
        net = make_network()
        for _ in range(10):
            net.step()
        assert net.peak_channel_utilization() == 0.0

    def test_utilization_reflects_traffic(self):
        net = make_network()
        net.set_ejection_handler(Coord(5, 2), lambda p, c: None)
        for _ in range(10):
            net.try_inject(read_reply(Coord(0, 2), Coord(5, 2)), net.cycle)
            net.step()
        net.run_until_idle()
        util = net.channel_utilization()
        hot = util[(Coord(2, 2), Coord(3, 2))]
        assert hot > 0.1
        assert util[(Coord(2, 0), Coord(3, 0))] == 0.0
        assert net.peak_channel_utilization() >= hot
