"""Opt-in, read-only observability for the NoC and memory system.

The telemetry layer records what the end-of-run aggregates in
:mod:`repro.noc.stats` cannot: *where* each packet's latency went (per-hop
traces), *when* congestion built up (time-series sampling), *which* links
carried it (heatmaps), and where the host's wall-clock goes (profiling).

Design rules, shared with the invariant checker of ``repro.noc.invariants``:

* **Off by default** — with telemetry disabled every event site in the hot
  path costs exactly one attribute test (``if x is not None``).
* **Read-only** — hooks never mutate packets, flits, router state or RNG
  streams, so enabling telemetry leaves results bit-identical (golden
  tests pin this).

Typical use::

    from repro.telemetry import TelemetryHub, TelemetrySpec
    hub = TelemetryHub(TelemetrySpec(trace=True, sample_interval=100,
                                     out_dir="out/telemetry"))
    hub.attach_chip(chip)            # or hub.attach_network(system)
    chip.run(warmup=500, measure=1500)
    hub.write_artifacts()            # trace/samples/heatmaps/summary
"""

from .export import (SAMPLES_SCHEMA, SUMMARY_SCHEMA, TRACE_SCHEMA,
                     coord_key, link_key, parse_coord, parse_link,
                     read_jsonl, write_csv, write_jsonl)
from .heatmap import render_link_heatmap, render_node_heatmap
from .hub import TelemetryHub, TelemetrySpec, render_summary_heatmaps
from .profiler import HostProfiler
from .sampler import TimeSeriesSampler
from .trace import COMPONENTS, HopRecord, PacketTrace, PacketTracer

__all__ = [
    "COMPONENTS", "HopRecord", "HostProfiler", "PacketTrace",
    "PacketTracer", "SAMPLES_SCHEMA", "SUMMARY_SCHEMA", "TRACE_SCHEMA",
    "TelemetryHub", "TelemetrySpec", "TimeSeriesSampler", "coord_key",
    "link_key", "parse_coord", "parse_link", "read_jsonl",
    "render_link_heatmap", "render_node_heatmap",
    "render_summary_heatmaps", "write_csv", "write_jsonl",
]
