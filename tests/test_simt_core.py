"""Tests for the SIMT core: issue, memory path, MSHR pressure, fills."""

import pytest

from repro.gpu.core import CoreConfig, MemoryToken, SimtCore
from repro.gpu.instruction import ALU, SHARED, load, store
from repro.noc.packet import TrafficClass, read_reply
from repro.noc.topology import Coord

CORE = Coord(2, 2)
MC = Coord(1, 0)


class ScriptedProgram:
    """Feeds a fixed per-warp instruction list, then finishes."""

    def __init__(self, script):
        self.script = script
        self.cursor = {}

    def next_instruction(self, core, warp_id):
        i = self.cursor.get(warp_id, 0)
        if i >= len(self.script):
            return None
        self.cursor[warp_id] = i + 1
        item = self.script[i]
        return item(warp_id) if callable(item) else item


def route(line_addr):
    return MC, line_addr


def make_core(script, num_warps=1, **config_kwargs):
    config = CoreConfig(**config_kwargs)
    return SimtCore(CORE, config, ScriptedProgram(script), route,
                    num_warps=num_warps)


def reply_for(core, packet):
    """Build the read reply a MC would send for a request packet."""
    return read_reply(MC, CORE, payload=packet.payload)


class TestIssue:
    def test_alu_retires_32_threads(self):
        core = make_core([ALU])
        core.step(1)
        assert core.retired_scalar == 32
        assert core.issued_instructions == 1

    def test_issue_interval_four_cycles(self):
        core = make_core([ALU] * 10, num_warps=8, alu_latency=1)
        for cycle in range(1, 9):
            core.step(cycle)
        # One warp instruction per 4 cycles (8-wide SIMD, 32 threads).
        assert core.issued_instructions == 2

    def test_alu_latency_blocks_warp(self):
        core = make_core([ALU, ALU], num_warps=1, alu_latency=16)
        core.step(1)
        for cycle in range(2, 16):
            core.step(cycle)
        assert core.issued_instructions == 1
        core.step(17)
        assert core.issued_instructions == 2

    def test_shared_instruction_no_traffic(self):
        core = make_core([SHARED])
        core.step(1)
        assert core.retired_scalar == 32
        assert not core.outbound

    def test_finished_program(self):
        core = make_core([ALU], num_warps=1)
        core.step(1)
        for cycle in range(2, 40):
            core.step(cycle)
        assert core.finished


class TestLoads:
    def test_load_miss_sends_request_and_blocks(self):
        core = make_core([load([0x1000]), ALU])
        core.step(1)
        assert len(core.outbound) == 1
        packet = core.outbound[0]
        assert packet.dest == MC
        assert packet.size_bytes == 8
        assert isinstance(packet.payload, MemoryToken)
        # Warp blocked: no further issue.
        for cycle in range(2, 30):
            core.step(cycle)
        assert core.issued_instructions == 1

    def test_reply_unblocks_warp(self):
        core = make_core([load([0x1000]), ALU])
        core.step(1)
        packet = core.outbound.popleft()
        core.on_reply(reply_for(core, packet), 10)
        core.step(11)
        assert core.issued_instructions == 2

    def test_fill_makes_later_access_hit(self):
        core = make_core([load([0x1000]), load([0x1000])],
                         l1_hit_latency=2)
        core.step(1)
        packet = core.outbound.popleft()
        core.on_reply(reply_for(core, packet), 5)
        core.step(6)            # issue second load: L1 hit
        assert not core.outbound
        assert core.l1.hits >= 1

    def test_divergent_load_counts_lines(self):
        lines = [0x1000 + i * 64 for i in range(8)]
        core = make_core([load(lines)])
        core.step(1)
        assert len(core.outbound) == 8

    def test_duplicate_lines_deduped(self):
        core = make_core([load([0x1000, 0x1000, 0x1040])])
        core.step(1)
        assert len(core.outbound) == 2

    def test_mshr_merge_no_duplicate_request(self):
        core = make_core([load([0x1000]), load([0x1000])], num_warps=2,
                         l1_hit_latency=1)
        core.step(1)        # warp 0 misses
        core.step(5)        # warp 1 same line: merge
        assert len(core.outbound) == 1
        assert core.mshrs.merges == 1


class TestStores:
    def test_store_miss_requests_line_but_does_not_block(self):
        core = make_core([store([0x2000]), ALU], store_latency=1)
        core.step(1)
        assert len(core.outbound) == 1
        core.step(5)
        assert core.issued_instructions == 2   # warp kept running

    def test_store_fill_marks_dirty_and_evicts_later(self):
        core = make_core([store([0x2000])], l1_size_bytes=128,
                         l1_associativity=2)
        core.step(1)
        packet = core.outbound.popleft()
        core.on_reply(reply_for(core, packet), 5)
        assert core.l1.contains(0x2000)
        # Fill conflicting lines to force a dirty eviction.
        sets = core.l1.config.num_sets
        span = sets * 64
        for i, line in enumerate([0x2000 + span, 0x2000 + 2 * span]):
            token = MemoryToken(CORE, line, line)
            core.mshrs.allocate(line, (None, False))
            core.on_reply(read_reply(MC, CORE, payload=token), 10 + i)
        writes = [p for p in core.outbound if p.size_bytes == 64]
        assert len(writes) == 1      # the dirty 0x2000 line written back


class TestStructuralStalls:
    def test_mshr_full_stalls_warp(self):
        # Each warp loads its own line, so no merging can hide the limit.
        core = make_core([lambda w: load([0x1000 + w * 64])],
                         num_warps=4, mshr_entries=2)
        for cycle in range(1, 30):
            core.step(cycle)
        assert len(core.outbound) == 2         # only 2 MSHRs available
        assert core.structural_stalls > 0

    def test_stalled_instruction_retries_after_fill(self):
        core = make_core([lambda w: load([0x1000 + w * 64])],
                         num_warps=2, mshr_entries=1)
        for cycle in range(1, 10):
            core.step(cycle)
        assert len(core.outbound) == 1
        packet = core.outbound.popleft()
        core.on_reply(reply_for(core, packet), 20)
        for cycle in range(21, 40):
            core.step(cycle)
        assert len(core.outbound) == 1          # the stalled one went out


class TestValidation:
    def test_bad_warp_count(self):
        with pytest.raises(ValueError):
            make_core([ALU], num_warps=0)
        with pytest.raises(ValueError):
            make_core([ALU], num_warps=64)

    def test_reply_requires_token(self):
        core = make_core([ALU])
        with pytest.raises(TypeError):
            core.on_reply(read_reply(MC, CORE, payload="x"), 0)

    def test_ipc(self):
        core = make_core([ALU])
        core.step(1)
        assert core.ipc(32) == 1.0
        assert core.ipc(0) == 0.0


class TestL1Flush:
    def test_flush_emits_writebacks(self):
        core = make_core([store([0x2000]), store([0x2040])],
                         store_latency=1)
        for cycle in range(1, 12):
            core.step(cycle)
        for _ in range(2):
            packet = core.outbound.popleft()
            core.on_reply(reply_for(core, packet), 20)
        flushed = core.flush_l1(cycle=30)
        assert flushed == 2
        writes = [p for p in core.outbound if p.size_bytes == 64]
        assert len(writes) == 2

    def test_flush_idempotent(self):
        core = make_core([store([0x2000])])
        core.step(1)
        packet = core.outbound.popleft()
        core.on_reply(reply_for(core, packet), 5)
        assert core.flush_l1(10) == 1
        assert core.flush_l1(11) == 0
