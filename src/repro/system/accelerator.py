"""Closed-loop accelerator simulation.

Couples the SIMT cores, the NoC (real mesh design, perfect network, or
bandwidth-capped ideal network) and the MC nodes (L2 + GDDR3) into the full
feedback loop of Figure 1: core → request network → L2/DRAM → reply
network → core.  All of the paper's closed-loop experiments are runs of
this class under different network designs and workload profiles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.builder import NetworkDesign, NetworkSystem, build
from ..gpu.core import SimtCore
from ..mem.controller import AddressMap, MemoryController
from ..noc.histogram import merge_histograms
from ..noc.ideal import BandwidthLimitedNetwork, PerfectNetwork
from ..noc.network import _StepperContext
from ..noc.invariants import (audit_accelerator, check_accelerator,
                              format_system_state)
from ..noc.topology import Coord, Mesh
from ..core.placement import compute_nodes, top_bottom_placement
from ..workloads.generator import SyntheticKernel
from ..workloads.profiles import BenchmarkProfile
from .clocks import RateAccumulator
from .config import ChipConfig, paper_config


@dataclass
class SimulationResult:
    """Metrics over one measurement window."""

    benchmark: str
    network: str
    icnt_cycles: int
    core_cycles: int
    retired_scalar: int
    ipc: float                           # scalar instr / core clock
    accepted_bytes_per_cycle_per_node: float
    mc_injection_rate_flits: float       # flits / icnt cycle / MC node
    mc_injection_rate_bytes: float
    mc_stall_fraction: float             # Figure 11
    mean_network_latency: float          # cycles (network only)
    mean_packet_latency: float           # includes source queueing
    dram_efficiency: float
    dram_row_hit_rate: float
    l1_hit_rate: float
    l2_hit_rate: float
    # Packet-latency tail statistics over the measurement window (bounded
    # streaming histogram; defaults keep old cached/serialized payloads
    # loadable).
    latency_min: float = 0.0
    latency_max: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    # Per-component activity over the measurement window, summed across
    # physical networks (always-on NetworkStats counters; DESIGN.md §17).
    # They feed the repro.power model post-hoc, so a PowerReport is
    # computable from any cached result without rerunning.  Defaults keep
    # old serialized payloads loadable.
    crossbar_traversals: int = 0
    buffer_reads: int = 0
    buffer_writes: int = 0
    link_flit_hops: int = 0
    flits_injected: int = 0
    flits_ejected: int = 0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        if baseline.ipc == 0:
            raise ZeroDivisionError("baseline IPC is zero")
        return self.ipc / baseline.ipc - 1.0

    def as_dict(self) -> dict:
        """Plain-dict view for JSON/CSV tooling."""
        from dataclasses import asdict
        return asdict(self)

    def to_json(self) -> dict:
        """JSON-compatible dict; floats survive exactly (``repr`` round
        trip), which the parallel harness's transport and cache rely on."""
        return self.as_dict()

    @classmethod
    def from_json(cls, data: dict) -> "SimulationResult":
        """Inverse of :meth:`to_json` with field-for-field equality."""
        return cls(**data)


@dataclass
class _Snapshot:
    core_cycles: int
    retired: int
    icnt_cycles: int
    bytes_ejected: float
    mc_inj_flits: float
    mc_inj_bytes: float
    mc_blocked: int
    mc_cycles: int
    net_latency_sum: int
    packet_latency_sum: int
    packets: int
    dram_busy: int
    dram_pending: int
    dram_row_hits: int
    dram_row_total: int
    l1_hits: int
    l1_accesses: int
    l2_hits: int
    l2_accesses: int
    crossbar_traversals: int = 0
    buffer_reads: int = 0
    buffer_writes: int = 0
    link_flit_hops: int = 0
    flits_injected: int = 0
    flits_ejected: int = 0
    latency_hist: object = None          # StreamingHistogram copy


class Accelerator:
    """The full chip."""

    def __init__(self, network, mc_coords: Sequence[Coord],
                 compute_coords: Sequence[Coord], kernel: SyntheticKernel,
                 config: Optional[ChipConfig] = None) -> None:
        self.config = config if config is not None else paper_config()
        self.network = network
        self.kernel = kernel
        self.mc_coords = list(mc_coords)
        self.compute_coords = list(compute_coords)
        if len(self.mc_coords) != self.config.num_memory_channels:
            raise ValueError("MC count does not match the configuration")
        if len(self.compute_coords) != self.config.num_compute_cores:
            raise ValueError("core count does not match the configuration")

        self.address_map = AddressMap(len(self.mc_coords))
        self.cores: List[SimtCore] = [
            SimtCore(coord, self.config.core, kernel, self._route_request,
                     num_warps=min(kernel.profile.warps_per_core,
                                   self.config.core.max_warps))
            for coord in self.compute_coords
        ]
        self.mcs: List[MemoryController] = [
            MemoryController(coord, self.config.mc, inject=self._inject)
            for coord in self.mc_coords
        ]
        for core in self.cores:
            network.set_ejection_handler(core.coord, core.on_reply)
        for mc in self.mcs:
            network.set_ejection_handler(mc.coord, mc.on_packet)

        clocks = self.config.clocks
        self._core_clock = RateAccumulator(clocks.core_per_icnt)
        self._dram_clock = RateAccumulator(clocks.dram_per_icnt)
        self.icnt_cycle = 0
        self.core_cycle = 0
        self.dram_cycle = 0
        #: System-level audit interval (0 = off); per-network invariant
        #: checkers are configured on the design and run inside
        #: ``network.step`` independently of this.
        self._check_interval = 0
        #: Opt-in telemetry hub (``repro.telemetry``), attached via
        #: ``TelemetryHub.attach_chip``; ``None`` keeps ``step`` at a
        #: single attribute test.
        self.telemetry = None
        #: Debug escape hatch mirroring the network's: run the reference
        #: exhaustive component loops instead of the event-driven ones.
        self._reference = os.environ.get("REPRO_REFERENCE_STEPPER") == "1"

    # -- plumbing -------------------------------------------------------------

    def _route_request(self, line_addr: int):
        index = self.address_map.mc_index(line_addr)
        return (self.mc_coords[index],
                self.address_map.local_address(line_addr))

    def _inject(self, packet, cycle: int) -> bool:
        return self.network.try_inject(packet, cycle)

    def enable_checks(self, check_interval: int = 64) -> None:
        """Audit system-level request conservation (requests issued ==
        in MSHRs + in NoC + at MCs + replied) every ``check_interval``
        interconnect cycles.  Read-only; results are unchanged."""
        if check_interval < 0:
            raise ValueError("check_interval must be non-negative")
        self._check_interval = check_interval

    def audit(self):
        """Run the system-level conservation audit now; returns the list
        of violations (empty = clean)."""
        return audit_accelerator(self)

    # -- simulation loop --------------------------------------------------------

    def step(self) -> None:
        """One interconnect cycle (master clock), event-driven.

        Cores are stepped only when their wake time is due (a skipped
        ``SimtCore.step`` is provably a no-op), drained MCs and idle DRAM
        channels take an inline idle tick that performs exactly the
        mutations their full step would.  ``_step_reference`` is the
        exhaustive twin (the pre-event-core loop); both must change
        together and the golden tests compare them bit for bit.
        """
        telemetry = self.telemetry
        if telemetry is not None:
            self._step_instrumented(telemetry)
            return
        if self._reference:
            self._step_reference()
            return
        self.icnt_cycle += 1
        now = self.icnt_cycle
        for _ in range(self._core_clock.advance()):
            self.core_cycle += 1
            cc = self.core_cycle
            for core in self.cores:
                if core.wake <= cc:
                    core.step(cc)
        for core in self.cores:
            outbound = core.outbound
            while outbound:
                # Cores timestamp in the core clock domain; packet latency
                # is accounted in interconnect cycles, so re-stamp at the
                # network interface.
                outbound[0].created = now
                if not self.network.try_inject(outbound[0], now):
                    break
                outbound.popleft()
        self.network.step(now)
        for mc in self.mcs:
            if mc._input or mc._replies or mc._writebacks:
                mc.icnt_step(now)
            else:
                # Idle tick: exactly what ``icnt_step`` mutates when all
                # three queues are empty (see the contract note there).
                mc.cycles += 1
                mc._icnt_cycle = now
        for _ in range(self._dram_clock.advance()):
            self.dram_cycle += 1
            mclk = self.dram_cycle
            for mc in self.mcs:
                dram = mc.dram
                if dram._queue or dram._in_flight:
                    dram.step(mclk)
                else:
                    # Idle tick: ``GddrChannel.step`` with nothing queued
                    # or in flight only advances its clock.
                    dram.now = mclk
        if self._check_interval and now % self._check_interval == 0:
            check_accelerator(self)

    def _step_reference(self) -> None:
        """Reference exhaustive step (the pre-event-core loop): every core,
        MC and DRAM channel is stepped every cycle.  Twin of :meth:`step`;
        used as the benchmark baseline and bit-identity oracle."""
        self.icnt_cycle += 1
        now = self.icnt_cycle
        for _ in range(self._core_clock.advance()):
            self.core_cycle += 1
            cc = self.core_cycle
            for core in self.cores:
                core.step(cc)
        for core in self.cores:
            outbound = core.outbound
            while outbound:
                outbound[0].created = now
                if not self.network.try_inject(outbound[0], now):
                    break
                outbound.popleft()
        self.network.step(now)
        for mc in self.mcs:
            mc.icnt_step(now)
        for _ in range(self._dram_clock.advance()):
            self.dram_cycle += 1
            mclk = self.dram_cycle
            for mc in self.mcs:
                mc.dram_step(mclk)
        if self._check_interval and now % self._check_interval == 0:
            check_accelerator(self)

    def use_reference_stepper(self) -> None:
        """Run the exhaustive reference loops (chip and network).  Only
        legal before traffic, or while the whole system is drained."""
        self._reference = True
        if hasattr(self.network, "use_reference_stepper"):
            self.network.use_reference_stepper()

    def use_event_stepper(self) -> None:
        """Switch (back) to the event-driven loops.  Drained-state only."""
        self._reference = False
        if hasattr(self.network, "use_event_stepper"):
            self.network.use_event_stepper()

    def use_batched_stepper(self) -> None:
        """Run the networks on the batched SoA core (the chip-level loop
        stays event-driven — there is no batched chip twin, the dense
        regime lives inside the interconnect).  Drained-state only."""
        self._reference = False
        if hasattr(self.network, "use_batched_stepper"):
            self.network.use_batched_stepper()

    @property
    def stepper_backend(self) -> str:
        """Name of the active backend (the chip and its networks are
        switched in lockstep by the ``use_*_stepper`` methods)."""
        if self._reference:
            return "reference"
        return getattr(self.network, "stepper_backend", "event")

    def use_stepper(self, backend: str):
        """Context manager: run on ``backend`` ("reference" | "event" |
        "batched"), restoring the previous backend on exit."""
        return _StepperContext(self, backend)

    def _step_instrumented(self, telemetry) -> None:
        """Telemetry-enabled twin of :meth:`step`: identical simulation
        order (results stay bit-identical — pinned by golden tests) with
        per-phase host timing and the per-cycle telemetry hook.  Kept as a
        separate body so the common path stays branch-free; any change to
        the phase sequence must be made in both."""
        profiler = telemetry.profiler
        t = profiler.clock()
        self.icnt_cycle += 1
        now = self.icnt_cycle
        for _ in range(self._core_clock.advance()):
            self.core_cycle += 1
            cc = self.core_cycle
            for core in self.cores:
                core.step(cc)
        t = profiler.add_since("cores", t)
        for core in self.cores:
            outbound = core.outbound
            while outbound:
                outbound[0].created = now
                if not self.network.try_inject(outbound[0], now):
                    break
                outbound.popleft()
        self.network.step(now)
        t = profiler.add_since("network", t)
        for mc in self.mcs:
            mc.icnt_step(now)
        for _ in range(self._dram_clock.advance()):
            self.dram_cycle += 1
            mclk = self.dram_cycle
            for mc in self.mcs:
                mc.dram_step(mclk)
        t = profiler.add_since("memory", t)
        if self._check_interval and now % self._check_interval == 0:
            check_accelerator(self)
        telemetry.on_cycle(now)
        profiler.add_since("telemetry", t)

    def run(self, warmup: int = 1_000, measure: int = 3_000,
            label: Optional[str] = None) -> SimulationResult:
        """Warm up, then measure a steady-state window."""
        for _ in range(warmup):
            self.step()
        before = self._snapshot()
        for _ in range(measure):
            self.step()
        after = self._snapshot()
        return self._result(before, after, label)

    def run_to_completion(self, max_cycles: int = 2_000_000,
                          label: Optional[str] = None) -> SimulationResult:
        """Run a finite kernel until every warp, queue and channel drains."""
        before = self._snapshot()
        start = self.icnt_cycle
        while not self.finished:
            if self.icnt_cycle - start > max_cycles:
                raise RuntimeError(
                    "simulation did not finish; did you use an infinite "
                    "kernel?\n" + format_system_state(self.network))
            self.step()
        return self._result(before, self._snapshot(), label)

    @property
    def finished(self) -> bool:
        if not all(core.finished for core in self.cores):
            return False
        if not all(mc.idle for mc in self.mcs):
            return False
        return getattr(self.network, "idle", True)

    # -- metrics ------------------------------------------------------------------

    def _network_list(self):
        return getattr(self.network, "networks", [self.network])

    def _bytes_flits(self, node_filter=None):
        """(bytes ejected, flits injected at filtered nodes, bytes injected
        at filtered nodes) across physical networks."""
        total_bytes = 0.0
        inj_flits = 0.0
        inj_bytes = 0.0
        for net in self._network_list():
            width = getattr(net, "params", None)
            width = width.channel_width if width is not None else (
                getattr(net, "channel_width", 16))
            total_bytes += net.stats.flits_ejected * width
            if node_filter:
                for node in node_filter:
                    flits = net.stats.node_injected_flits.get(node, 0)
                    inj_flits += flits
                    inj_bytes += flits * width
        return total_bytes, inj_flits, inj_bytes

    def _snapshot(self) -> _Snapshot:
        bytes_ejected, mc_flits, mc_bytes = self._bytes_flits(self.mc_coords)
        nets = self._network_list()
        net_lat = packet_lat = packets = 0
        for net in nets:
            for cs in net.stats.per_class.values():
                net_lat += cs.network_latency_sum
                packet_lat += cs.latency_sum
                packets += cs.packets
        latency_hist = merge_histograms(
            cs.latency_hist for net in nets
            for cs in net.stats.per_class.values())
        return _Snapshot(
            core_cycles=self.core_cycle,
            retired=sum(core.retired_scalar for core in self.cores),
            icnt_cycles=self.icnt_cycle,
            bytes_ejected=bytes_ejected,
            mc_inj_flits=mc_flits,
            mc_inj_bytes=mc_bytes,
            mc_blocked=sum(mc.blocked_cycles for mc in self.mcs),
            mc_cycles=sum(mc.cycles for mc in self.mcs),
            net_latency_sum=net_lat,
            packet_latency_sum=packet_lat,
            packets=packets,
            dram_busy=sum(mc.dram.data_busy_cycles for mc in self.mcs),
            dram_pending=sum(mc.dram.pending_cycles for mc in self.mcs),
            dram_row_hits=sum(mc.dram.row_hits for mc in self.mcs),
            dram_row_total=sum(mc.dram.row_hits + mc.dram.row_misses
                               for mc in self.mcs),
            l1_hits=sum(core.l1.hits for core in self.cores),
            l1_accesses=sum(core.l1.accesses for core in self.cores),
            l2_hits=sum(mc.l2.hits for mc in self.mcs),
            l2_accesses=sum(mc.l2.accesses for mc in self.mcs),
            crossbar_traversals=sum(net.stats.crossbar_traversals
                                    for net in nets),
            buffer_reads=sum(net.stats.buffer_reads for net in nets),
            buffer_writes=sum(net.stats.buffer_writes for net in nets),
            link_flit_hops=sum(net.stats.link_flit_hops for net in nets),
            flits_injected=sum(net.stats.flits_injected for net in nets),
            flits_ejected=sum(net.stats.flits_ejected for net in nets),
            latency_hist=latency_hist,
        )

    def _result(self, before: _Snapshot, after: _Snapshot,
                label: Optional[str]) -> SimulationResult:
        d_core = after.core_cycles - before.core_cycles
        d_icnt = after.icnt_cycles - before.icnt_cycles
        d_retired = after.retired - before.retired
        d_packets = after.packets - before.packets
        num_nodes = len(self.mc_coords) + len(self.compute_coords)
        d_mc_cycles = after.mc_cycles - before.mc_cycles

        def rate(num, den):
            return num / den if den else 0.0

        window_hist = after.latency_hist.delta(before.latency_hist)
        tail = window_hist.summary()
        return SimulationResult(
            benchmark=self.kernel.profile.abbr,
            network=label if label is not None else getattr(
                getattr(self.network, "design", None), "name",
                type(self.network).__name__),
            icnt_cycles=d_icnt,
            core_cycles=d_core,
            retired_scalar=d_retired,
            ipc=rate(d_retired, d_core),
            accepted_bytes_per_cycle_per_node=rate(
                after.bytes_ejected - before.bytes_ejected,
                d_icnt * num_nodes),
            mc_injection_rate_flits=rate(
                after.mc_inj_flits - before.mc_inj_flits,
                d_icnt * len(self.mc_coords)),
            mc_injection_rate_bytes=rate(
                after.mc_inj_bytes - before.mc_inj_bytes,
                d_icnt * len(self.mc_coords)),
            mc_stall_fraction=rate(after.mc_blocked - before.mc_blocked,
                                   d_mc_cycles),
            mean_network_latency=rate(
                after.net_latency_sum - before.net_latency_sum, d_packets),
            mean_packet_latency=rate(
                after.packet_latency_sum - before.packet_latency_sum,
                d_packets),
            dram_efficiency=rate(after.dram_busy - before.dram_busy,
                                 after.dram_pending - before.dram_pending),
            dram_row_hit_rate=rate(
                after.dram_row_hits - before.dram_row_hits,
                after.dram_row_total - before.dram_row_total),
            l1_hit_rate=rate(after.l1_hits - before.l1_hits,
                             after.l1_accesses - before.l1_accesses),
            l2_hit_rate=rate(after.l2_hits - before.l2_hits,
                             after.l2_accesses - before.l2_accesses),
            latency_min=tail["min"],
            latency_max=tail["max"],
            latency_p50=tail["p50"],
            latency_p95=tail["p95"],
            latency_p99=tail["p99"],
            crossbar_traversals=(after.crossbar_traversals
                                 - before.crossbar_traversals),
            buffer_reads=after.buffer_reads - before.buffer_reads,
            buffer_writes=after.buffer_writes - before.buffer_writes,
            link_flit_hops=after.link_flit_hops - before.link_flit_hops,
            flits_injected=after.flits_injected - before.flits_injected,
            flits_ejected=after.flits_ejected - before.flits_ejected,
        )


# -----------------------------------------------------------------------------
# Chip factories
# -----------------------------------------------------------------------------

def build_chip(profile: BenchmarkProfile,
               design: Optional[NetworkDesign] = None,
               network=None,
               config: Optional[ChipConfig] = None,
               seed: int = 11,
               instructions_per_warp: Optional[int] = None) -> Accelerator:
    """Assemble a full chip around a mesh design or an ideal network.

    Exactly one of ``design`` / ``network`` must be given.  Ideal networks
    have no placement, so the baseline top-bottom MC coordinates are used
    for node identity.
    """
    if (design is None) == (network is None):
        raise ValueError("give exactly one of design= or network=")
    config = config if config is not None else paper_config()
    kernel = SyntheticKernel(profile, seed=seed,
                             instructions_per_warp=instructions_per_warp)
    if design is not None:
        system = build(design, Mesh(config.mesh_cols, config.mesh_rows),
                       num_mcs=config.num_memory_channels, seed=seed)
        accel = Accelerator(system, system.mc_nodes, system.compute_nodes,
                            kernel, config)
        if design.check_interval:
            # The per-network checkers are already armed by build(); add
            # the system-level request-conservation audit at the same
            # cadence.
            accel.enable_checks(design.check_interval)
        return accel
    mesh = Mesh(config.mesh_cols, config.mesh_rows)
    mcs = top_bottom_placement(mesh, config.num_memory_channels)
    return Accelerator(network, mcs, compute_nodes(mesh, mcs), kernel,
                       config)


def perfect_chip(profile: BenchmarkProfile,
                 config: Optional[ChipConfig] = None,
                 seed: int = 11) -> Accelerator:
    """Closed loop with the zero-latency infinite-bandwidth NoC (Figure 7)."""
    return build_chip(profile, network=PerfectNetwork(), config=config,
                      seed=seed)


def bandwidth_capped_chip(profile: BenchmarkProfile, flits_per_cycle: float,
                          config: Optional[ChipConfig] = None,
                          seed: int = 11) -> Accelerator:
    """Closed loop with the zero-latency bandwidth-capped NoC (Figure 6)."""
    return build_chip(profile,
                      network=BandwidthLimitedNetwork(flits_per_cycle),
                      config=config, seed=seed)
