"""Memory-controller placement on the mesh.

Two placements from the paper:

* **Top-bottom (TB)** — the baseline (Figure 3): MCs occupy the top and
  bottom rows, as in Intel's 80-core design and Tilera TILE64.
* **Checkerboard placement (CP)** — staggered MC positions (Figure 12) that
  spread reply traffic and avoid hotspots.  Under the checkerboard router
  organization every MC must sit on a *half-router* tile (odd parity), which
  is what makes the limited connectivity of half-routers harmless
  (Section IV-A): no full-router-to-full-router traffic exists.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Sequence, Tuple

from ..noc.topology import Coord, Mesh

#: Parity of the tiles that become half-routers in the checkerboard layout.
HALF_ROUTER_PARITY = 1


def top_bottom_placement(mesh: Mesh, num_mcs: int = 8) -> List[Coord]:
    """MCs on the top and bottom rows, centered (Figure 3)."""
    per_row, remainder = divmod(num_mcs, 2)
    if per_row + remainder > mesh.cols:
        raise ValueError("too many MCs for the top/bottom rows")
    start = (mesh.cols - per_row) // 2
    top = [Coord(start + i, 0) for i in range(per_row + remainder)]
    start = (mesh.cols - per_row) // 2
    bottom = [Coord(start + i, mesh.rows - 1) for i in range(per_row)]
    return top + bottom


#: The staggered checkerboard placement used throughout the evaluation.
#: Chosen, as in the paper (Section V-B), as the best of several simulated
#: valid placements: all eight MCs on half-router tiles, spread across all
#: four edges of the die.
DEFAULT_CHECKERBOARD_6X6: Tuple[Coord, ...] = (
    Coord(1, 0), Coord(3, 0),
    Coord(0, 1), Coord(5, 2),
    Coord(0, 3), Coord(5, 4),
    Coord(2, 5), Coord(4, 5),
)


def checkerboard_placement(mesh: Mesh, num_mcs: int = 8) -> List[Coord]:
    """The staggered placement of Figure 12 (for the 6x6 mesh) or a spread
    half-router-tile placement for other mesh sizes."""
    if (mesh.cols, mesh.rows) == (6, 6) and num_mcs == 8:
        return list(DEFAULT_CHECKERBOARD_6X6)
    candidates = [c for c in mesh.coords()
                  if c.parity() == HALF_ROUTER_PARITY]
    if num_mcs > len(candidates):
        raise ValueError("not enough half-router tiles for the MCs")
    stride = len(candidates) / num_mcs
    return [candidates[int(i * stride)] for i in range(num_mcs)]


def validate_checkerboard_placement(mesh: Mesh,
                                    mcs: Sequence[Coord]) -> None:
    """Raise ``ValueError`` unless every MC sits on a half-router tile."""
    seen = set()
    for mc in mcs:
        if not mesh.contains(mc):
            raise ValueError(f"MC {mc} outside the mesh")
        if mc.parity() != HALF_ROUTER_PARITY:
            raise ValueError(
                f"MC {mc} is on a full-router tile; checkerboard requires "
                "MCs (and L2 banks) at half-router tiles")
        if mc in seen:
            raise ValueError(f"duplicate MC placement {mc}")
        seen.add(mc)


def random_checkerboard_placements(mesh: Mesh, num_mcs: int, count: int,
                                   seed: int = 0) -> Iterator[List[Coord]]:
    """Sample distinct valid checkerboard placements (placement ablation)."""
    rng = random.Random(seed)
    candidates = [c for c in mesh.coords()
                  if c.parity() == HALF_ROUTER_PARITY]
    seen = set()
    attempts = 0
    produced = 0
    while produced < count and attempts < 100 * count:
        attempts += 1
        placement = tuple(sorted(rng.sample(candidates, num_mcs)))
        if placement in seen:
            continue
        seen.add(placement)
        produced += 1
        yield list(placement)


def compute_nodes(mesh: Mesh, mcs: Sequence[Coord]) -> List[Coord]:
    """All non-MC nodes, i.e. the compute cores."""
    mc_set = set(mcs)
    return [c for c in mesh.coords() if c not in mc_set]
