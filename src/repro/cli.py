"""Command-line interface.

Usage::

    python -m repro list
    python -m repro run --benchmark RD --design Throughput-Effective
    python -m repro compare --benchmark RD --designs TB-DOR,CP-CR-4VC
    python -m repro area
    python -m repro power --benchmark RD --design Throughput-Effective
    python -m repro sweep --design TB-DOR --rates 0.01,0.03,0.05
    python -m repro explore --preset figure2 --jobs 4 --out results/figure2
    python -m repro explore --preset power --out results/power
    python -m repro run --benchmark RD --trace --sample-interval 100 \
        --telemetry-out out/rd
    python -m repro report out/rd --heatmaps
    python -m repro serve --cache ~/.cache/repro-noc --workers 2
    python -m repro submit sweep --design TB-DOR --rates 0.01,0.03
    python -m repro submit stats
    python -m repro metrics                 # Prometheus exposition
    python -m repro top --interval 2        # live dashboard

The CLI is a thin veneer over the public API; everything it prints can be
obtained programmatically (see examples/).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional

from .area.chip import design_noc_area, throughput_effectiveness
from .core.builder import NAMED_DESIGNS, checked_variant, design_by_name
from .experiments import compare_designs, load_latency_curves
from .noc.traffic import named_pattern_factory
from .obs import log as obs_log
from .parallel import log_progress
from .system.accelerator import build_chip, perfect_chip
from .telemetry import (COMPONENTS, TelemetryHub, TelemetrySpec, read_jsonl,
                        render_summary_heatmaps)
from .workloads.profiles import PROFILES, profile


def _design(name: str):
    """Design lookup that turns the unknown-name KeyError (which carries
    the did-you-mean hint) into a clean CLI error instead of a traceback."""
    try:
        return design_by_name(name)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None


def _cmd_list(_args) -> int:
    print("network designs:")
    for name, design in sorted(NAMED_DESIGNS.items()):
        parts = [design.placement, design.routing,
                 f"{design.channel_width}B"]
        if design.half_routers:
            parts.append("half-routers")
        if design.double_network:
            parts.append(f"double({design.slice_mode})")
        if design.mc_inject_ports > 1:
            parts.append(f"{design.mc_inject_ports} inj ports")
        print(f"  {name:26s} {' · '.join(parts)}")
    print("\nbenchmarks (Table I):")
    for p in PROFILES:
        print(f"  {p.abbr:4s} [{p.expected_group}] {p.name}")
    return 0


def _print_result(result) -> None:
    print(f"benchmark           {result.benchmark}")
    print(f"network             {result.network}")
    print(f"IPC                 {result.ipc:.2f} (scalar/core clock)")
    print(f"accepted traffic    "
          f"{result.accepted_bytes_per_cycle_per_node:.2f} B/cycle/node")
    print(f"MC injection rate   {result.mc_injection_rate_flits:.3f} "
          f"flits/cycle/MC")
    print(f"MC reply stall      {result.mc_stall_fraction:.1%}")
    print(f"packet latency      {result.mean_packet_latency:.1f} cycles "
          f"(network {result.mean_network_latency:.1f})")
    print(f"DRAM row hits       {result.dram_row_hit_rate:.1%}  "
          f"efficiency {result.dram_efficiency:.1%}")
    print(f"L1 / L2 hit rate    {result.l1_hit_rate:.1%} / "
          f"{result.l2_hit_rate:.1%}")
    if result.latency_max:
        print(f"latency tail        p50 {result.latency_p50:.0f} / "
              f"p95 {result.latency_p95:.0f} / "
              f"p99 {result.latency_p99:.0f} cycles "
              f"(max {result.latency_max:.0f})")


def _telemetry_spec(args) -> Optional[TelemetrySpec]:
    """Fold --trace / --sample-interval / --telemetry-out into a spec."""
    spec = TelemetrySpec(trace=args.trace,
                         sample_interval=args.sample_interval,
                         out_dir=args.telemetry_out)
    return spec if spec.enabled else None


def _task_telemetry(args) -> Optional[TelemetrySpec]:
    """Telemetry spec for task-based commands (compare/sweep), where the
    simulations run in worker processes and artifacts on disk are the only
    way to get the data back."""
    spec = _telemetry_spec(args)
    if spec is not None and spec.out_dir is None:
        raise SystemExit("--telemetry-out DIR is required with --trace/"
                         "--sample-interval here: tasks run in worker "
                         "processes and write their artifacts there")
    return spec


def _print_decomposition(trace: dict) -> None:
    """Figure 11's per-class latency decomposition from per-hop traces.
    Components telescope: they sum exactly to the mean packet latency."""
    print(f"\nlatency decomposition ({trace['traced_packets']} packets "
          f"traced, {trace['retained_traces']} full traces retained)")
    widths = {c: max(len(c), 7) for c in COMPONENTS}
    head = " ".join(f"{c:>{widths[c]}s}" for c in COMPONENTS)
    print(f"  {'class':8s} {'packets':>8s} {'latency':>8s} {head}")
    for name, agg in trace["per_class"].items():
        comps = agg["mean_components"]
        row = " ".join(f"{comps[c]:{widths[c]}.1f}" for c in COMPONENTS)
        print(f"  {name:8s} {agg['packets']:8d} "
              f"{agg['mean_latency']:8.1f} {row}")
        total = agg["mean_latency"]
        if total:
            queued = comps["queue"]
            print(f"  {'':8s} queued {queued:.1f} ({queued / total:.0%})  "
                  f"in-network {total - queued:.1f} "
                  f"({(total - queued) / total:.0%})")


def _print_telemetry(hub: TelemetryHub) -> None:
    """Post-run telemetry block for the `run` command."""
    print()
    print(hub.profiler.format())
    if hub.tracer is not None:
        _print_decomposition(hub.tracer.summary())
    if hub.spec.out_dir is not None:
        written = hub.write_artifacts()
        print()
        for name, path in sorted(written.items()):
            print(f"wrote {name:12s} {path}")


def _apply_checks(design, args):
    """Fold the --check / --watchdog-cycles flags into a design."""
    if not (args.check or args.watchdog_cycles):
        return design
    return checked_variant(
        design,
        check_interval=args.check_interval if args.check else 0,
        watchdog_cycles=args.watchdog_cycles)


def _cmd_run(args) -> int:
    prof = profile(args.benchmark.upper())
    if args.design.lower() == "perfect":
        if args.check or args.watchdog_cycles:
            print("note: --check/--watchdog-cycles ignored for the "
                  "perfect network (no flow control to audit)",
                  file=sys.stderr)
        chip = perfect_chip(prof, seed=args.seed)
    else:
        design = _apply_checks(_design(args.design), args)
        chip = build_chip(prof, design=design, seed=args.seed)
    spec = _telemetry_spec(args)
    hub = None
    if spec is not None:
        hub = TelemetryHub(spec)
        hub.attach_chip(chip)
    result = chip.run(warmup=args.warmup, measure=args.measure)
    _print_result(result)
    if args.check and args.design.lower() != "perfect":
        problems = chip.audit()
        if problems:
            print("invariant audit FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print("invariant audit       clean (end state)")
    if hub is not None:
        _print_telemetry(hub)
    return 0


def _cmd_compare(args) -> int:
    prof = profile(args.benchmark.upper())
    names = [n.strip() for n in args.designs.split(",")]
    telemetry = _task_telemetry(args)
    comparison = compare_designs(
        [_apply_checks(_design(n), args) for n in names],
        profiles=[prof],
        warmup=args.warmup, measure=args.measure, seed=args.seed,
        jobs=args.jobs, cache=args.cache,
        progress=log_progress if args.progress else None,
        telemetry=telemetry)
    base = comparison.results[names[0]][prof.abbr]
    print(f"{'design':26s} {'IPC':>8s} {'speedup':>8s} {'IPC/mm2':>9s}")
    for name in names:
        result = comparison.results[name][prof.abbr]
        area = design_noc_area(design_by_name(name)).total_chip
        te = throughput_effectiveness(result.ipc, area)
        print(f"{name:26s} {result.ipc:8.2f} "
              f"{result.ipc / base.ipc - 1:+8.1%} {te:9.4f}")
    if telemetry is not None:
        print(f"telemetry artifacts under {telemetry.out_dir} "
              f"(one directory per task; see `repro report`)")
    return 0


def _cmd_area(args) -> int:
    names = ([args.design] if args.design
             else sorted(NAMED_DESIGNS))
    print(f"{'design':26s} {'routers':>8s} {'links':>7s} {'NoC %':>7s} "
          f"{'chip mm2':>9s}")
    for name in names:
        a = design_noc_area(_design(name))
        print(f"{name:26s} {a.router_sum:8.2f} {a.link_sum:7.2f} "
              f"{a.overhead_fraction:7.2%} {a.total_chip:9.2f}")
    return 0


def _cmd_power(args) -> int:
    """Per-component NoC power for one design on one benchmark, priced
    across technology nodes (`repro power`)."""
    from .power import ActivityCounts, design_power
    from .power.tech import tech_node

    try:
        nodes = [int(n) for n in args.nodes.split(",")]
        for nm in nodes:
            tech_node(nm)
    except (ValueError, KeyError) as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    prof = profile(args.benchmark.upper())
    design = _design(args.design)
    chip = build_chip(prof, design=design, seed=args.seed)
    result = chip.run(warmup=args.warmup, measure=args.measure)
    activity = ActivityCounts.from_result(result)
    reports = {nm: design_power(design, activity, node=nm,
                                ipc=result.ipc) for nm in nodes}

    base = reports[nodes[0]]
    print(f"benchmark           {result.benchmark}")
    print(f"design              {design.name}")
    print(f"IPC                 {result.ipc:.2f}  over "
          f"{activity.cycles} icnt cycles")
    print(f"activity            {activity.crossbar_traversals} crossbar · "
          f"{activity.buffer_reads} rd · {activity.buffer_writes} wr · "
          f"{activity.link_flit_hops} link hops")
    print(f"\ncomponent breakdown at {base.tech_nm} nm "
          f"({base.frequency_ghz:.3f} GHz):")
    total = base.total_w
    for label, watts in (("crossbar", base.crossbar_w),
                         ("buffers", base.buffer_w),
                         ("allocators", base.allocator_w),
                         ("links", base.link_w),
                         ("leakage (routers)", base.leak_routers_w),
                         ("leakage (links)", base.leak_links_w)):
        share = watts / total if total else 0.0
        print(f"  {label:18s} {watts * 1e3:8.2f} mW  {share:6.1%}")
    print(f"  {'total':18s} {total * 1e3:8.2f} mW")
    print(f"\n{'node':>5s} {'GHz':>6s} {'dynamic':>9s} {'leakage':>9s} "
          f"{'total':>9s} {'pJ/flit':>8s} {'IPC/W':>8s}")
    for nm in nodes:
        r = reports[nm]
        ipw = f"{r.ipc_per_watt:8.1f}" if r.ipc_per_watt else f"{'-':>8s}"
        print(f"{nm:4d}n {r.frequency_ghz:6.3f} "
              f"{r.dynamic_w * 1e3:7.2f}mW {r.leakage_w * 1e3:7.2f}mW "
              f"{r.total_w * 1e3:7.2f}mW {r.energy_per_flit_pj:8.1f} "
              f"{ipw}")
    return 0


def _cmd_sweep(args) -> int:
    design = _apply_checks(_design(args.design), args)
    rates = [float(r) for r in args.rates.split(",")]
    pattern_name = "hotspot" if args.hotspot else "uniform"
    factory = named_pattern_factory(pattern_name)
    telemetry = _task_telemetry(args)
    (curve,) = load_latency_curves(
        [design], rates, factory, pattern_name=pattern_name,
        warmup=args.warmup, measure=args.measure, seed=args.seed,
        jobs=args.jobs, progress=log_progress if args.progress else None,
        telemetry=telemetry, fleet=args.fleet_size)
    print(f"open-loop sweep of {design.name} ({pattern_name} many-to-few)")
    print(f"{'rate':>8s} {'latency':>9s} {'p99':>8s} {'accepted':>9s} "
          f"{'saturated':>10s}")
    for point in curve.points:
        latency = ("inf" if point.mean_latency == float("inf")
                   else f"{point.mean_latency:.1f}")
        p99 = f"{point.latency_p99:.0f}" if point.packets_measured else "-"
        print(f"{point.offered_rate:8.3f} {latency:>9s} {p99:>8s} "
              f"{point.accepted_flits_per_cycle:9.2f} "
              f"{'yes' if point.saturated else 'no':>10s}")
    if telemetry is not None:
        print(f"telemetry artifacts under {telemetry.out_dir} "
              f"(one directory per task; see `repro report`)")
    return 0


def _cmd_explore(args) -> int:
    """Design-space exploration (`repro explore --preset figure2`)."""
    from . import dse
    try:
        spec = dse.preset(args.preset)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    if args.seed is not None:
        spec = dataclasses.replace(spec, seed=args.seed)

    raw = spec.space.size()
    print(f"exploring preset '{spec.name}': {raw} raw points, "
          f"mix {','.join(spec.mix)}, seed {spec.seed} "
          f"({spec.seed_policy})")
    # explore_preset is the shared CLI/job-server entry point: routing
    # through it is what makes served explorations bit-identical to this
    # command's output.
    result = dse.explore_preset(args.preset, seed=args.seed,
                                jobs=args.jobs, cache=args.cache,
                                progress=log_progress if args.progress
                                else None, fleet=args.fleet_size)

    if result.rejected:
        rules: dict = {}
        for point in result.rejected:
            for violation in point["violations"]:
                rules[violation["rule"]] = rules.get(violation["rule"],
                                                     0) + 1
        hist = "  ".join(f"{rule} x{n}" for rule, n in sorted(
            rules.items(), key=lambda kv: (-kv[1], kv[0])))
        print(f"rejected {len(result.rejected)} illegal points up front: "
              f"{hist}")
    host = result.host or {}
    for stage in host.get("stages", []):
        print(f"  {stage['stage']:8s} {stage['evaluated']:3d} -> "
              f"{stage['kept']:3d} kept   {stage['tasks']} tasks "
              f"({stage['executed']} run, {stage['cached']} cached, "
              f"{stage['seconds']:.1f}s)")

    base_node = result.tech_nodes[0]
    print(f"\n{'rank':>4s} {'design':26s} {'fidelity':9s} {'HM IPC':>8s} "
          f"{'NoC mm2':>8s} {'chip mm2':>9s} {'IPC/mm2':>8s} "
          f"{'NoC mW':>7s} {'IPC/W':>7s} {'Pareto':>7s}")
    for rank, name in enumerate(result.ranking, start=1):
        c = result[name]
        hm = f"{c.hm_ipc:8.1f}" if c.hm_ipc is not None else f"{'-':>8s}"
        te = (f"{c.throughput_effectiveness:8.4f}"
              if c.throughput_effectiveness is not None else f"{'-':>8s}")
        mw = (f"{c.noc_power_w * 1e3:7.1f}"
              if c.noc_power_w is not None else f"{'-':>7s}")
        ipw = (f"{c.ipc_per_watt:7.1f}"
               if c.ipc_per_watt is not None else f"{'-':>7s}")
        mark = ("*" if c.on_frontier else "") + \
            ("W" if c.on_frontier3d and not c.on_frontier else "")
        print(f"{rank:4d} {name:26s} {c.fidelity:9s} {hm} "
              f"{c.noc_area_mm2:8.2f} {c.chip_area_mm2:9.1f} {te} "
              f"{mw} {ipw} {mark:>7s}")
    print(f"\nPareto frontier (HM IPC vs NoC mm2): "
          f"{', '.join(result.frontier) or '(none)'}")
    print(f"Pareto frontier (IPC, mm2, W @ {base_node} nm): "
          f"{', '.join(result.frontier3d) or '(none)'}")
    if len(result.tech_nodes) > 1:
        print(f"technology sweep: "
              f"{', '.join(f'{n} nm' for n in result.tech_nodes)} "
              f"(see tech_nodes.csv with --out)")

    if args.out:
        written = result.write_artifacts(args.out)
        for name in sorted(written):
            print(f"wrote {name:17s} {written[name]}")
    return 0


def _cmd_serve(args) -> int:
    """Run the simulation job server (`repro serve`)."""
    import asyncio

    from .serve import JobServer, ServerConfig

    config = ServerConfig(
        host=args.host, port=args.port, socket_path=args.socket,
        cache=args.cache if args.cache is not None else True,
        cache_max_mb=args.cache_max_mb, max_pending=args.max_pending,
        workers=args.workers, job_jobs=args.jobs,
        observability=not args.no_obs)
    server = JobServer(config)

    async def _run() -> None:
        await server.start()
        where = (config.socket_path if config.socket_path is not None
                 else "%s:%d" % server.address)
        obs_log.emit(
            "server_listening",
            f"repro job server listening on {where} "
            f"(workers={config.workers}, max_pending="
            f"{config.max_pending})",
            address=str(where), workers=config.workers,
            max_pending=config.max_pending,
            observability=server.obs is not None)
        await server.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        obs_log.emit("server_interrupted",
                     "interrupted; queued jobs dropped")
    return 0


def _submit_client(args):
    from .serve import ServeClient
    return ServeClient(host=args.host, port=args.port,
                       socket_path=args.socket, client_id=args.client)


def _print_event_progress(event: dict) -> None:
    origin = "cache" if event.get("cached") else "run"
    obs_log.emit(
        "task_progress",
        f"[{event['index'] + 1:3d}/{event['total']}] "
        f"{event['label']:40s} {event['seconds']:7.2f}s ({origin})",
        job_id=event.get("job_id"), index=event["index"],
        total=event["total"], label=event["label"],
        seconds=event["seconds"], cached=bool(event.get("cached")))


def _cmd_submit(args) -> int:
    """Submit a job to a running server (`repro submit sweep ...`)."""
    from .serve import JobFailed, JobRejected, ServeError

    if args.job_kind == "stats":
        try:
            with _submit_client(args) as client:
                stats = client.stats()
        except (ServeError, OSError) as exc:
            raise SystemExit(f"error: {exc}") from None
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0

    if args.job_kind == "sweep":
        job = {"kind": "sweep", "design": args.design,
               "rates": [float(r) for r in args.rates.split(",")],
               "pattern": "hotspot" if args.hotspot else "uniform",
               "warmup": args.warmup, "measure": args.measure,
               "seed": args.seed}
    elif args.job_kind == "compare":
        job = {"kind": "compare",
               "designs": [n.strip() for n in args.designs.split(",")],
               "warmup": args.warmup, "measure": args.measure,
               "seed": args.seed}
        if args.benchmarks:
            job["benchmarks"] = [b.strip().upper()
                                 for b in args.benchmarks.split(",")]
    else:   # explore
        job = {"kind": "explore", "preset": args.preset}
        if args.seed is not None:
            job["seed"] = args.seed

    progress = _print_event_progress if args.progress else None
    try:
        with _submit_client(args) as client:
            result = client.submit(job, priority=args.priority,
                                   progress=progress,
                                   max_retries=args.retries)
    except JobFailed as exc:
        label = f" (task {exc.label!r})" if exc.label else ""
        raise SystemExit(f"error: job failed{label}: {exc}") from None
    except JobRejected as exc:    # includes QueueSaturated
        raise SystemExit(f"error: {exc}") from None
    except (ServeError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from None
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_metrics(args) -> int:
    """Scrape a running server's metrics (`repro metrics`)."""
    from .serve import ServeError

    try:
        with _submit_client(args) as client:
            reply = client.metrics(format="json" if args.json else "text")
    except (ServeError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from None
    if not reply.get("enabled"):
        print("observability is disabled on this server "
              "(--no-obs or REPRO_OBS=0)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(reply["metrics"], indent=2, sort_keys=True))
    else:
        sys.stdout.write(reply["text"])
    return 0


def _cmd_top(args) -> int:
    """Live dashboard over a running server (`repro top`)."""
    from .obs import run_top
    from .serve import ServeError

    try:
        with _submit_client(args) as client:
            return run_top(client, interval=args.interval,
                           iterations=args.iterations,
                           clear=not args.no_clear)
    except KeyboardInterrupt:
        return 0
    except (ServeError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from None


def _cmd_report(args) -> int:
    """Offline view of a telemetry artifact directory."""
    root = Path(args.dir)
    summary_path = root / "summary.json"
    if not summary_path.is_file():
        print(f"error: no summary.json under {root} — point `report` at "
              f"one task's telemetry directory", file=sys.stderr)
        return 1
    summary = json.loads(summary_path.read_text(encoding="utf-8"))
    print(f"telemetry report: {root}")
    host = summary.get("host", {})
    if host.get("simulated_cycles"):
        print(f"host: {host['simulated_cycles']} cycles in "
              f"{host['wall_seconds']:.2f}s "
              f"({host['cycles_per_second']:.0f} cycles/s)")
    for net in summary.get("networks", []):
        lat, netlat = net["latency"], net["network_latency"]
        print(f"\nnetwork {net['name']}: {net['cycles']} cycles, "
              f"{net['mesh'][0]}x{net['mesh'][1]} mesh")
        print(f"  latency   p50 {lat['p50']:.0f}  p95 {lat['p95']:.0f}  "
              f"p99 {lat['p99']:.0f}  max {lat['max']:.0f}  "
              f"({lat['count']} packets)")
        print(f"  network   p50 {netlat['p50']:.0f}  "
              f"p95 {netlat['p95']:.0f}  p99 {netlat['p99']:.0f}  "
              f"max {netlat['max']:.0f}")
        activity = net.get("activity")
        if activity:
            print(f"  activity  {activity['crossbar_traversals']} "
                  f"crossbar · {activity['buffer_reads']} rd · "
                  f"{activity['buffer_writes']} wr · "
                  f"{activity['link_flit_hops']} link hops  "
                  f"(power-model counters; price with `repro power`)")
    trace = summary.get("trace")
    if trace and trace.get("per_class"):
        _print_decomposition(trace)
        routes = trace.get("per_route", [])[:args.routes]
        if routes:
            print("\nhottest routes (by packets)")
            print(f"  {'src':>6s} {'dest':>6s} {'class':8s} "
                  f"{'packets':>8s} {'latency':>8s} {'hops':>5s}")
            for r in routes:
                print(f"  {r['src']:>6s} {r['dest']:>6s} {r['class']:8s} "
                      f"{r['packets']:8d} {r['mean_latency']:8.1f} "
                      f"{r['mean_hops']:5.1f}")
    samples_path = root / "samples.jsonl"
    if samples_path.is_file():
        header, rows = read_jsonl(samples_path)
        net_rows = [r for r in rows if r.get("kind") == "network"]
        chip_rows = [r for r in rows if r.get("kind") == "chip"]
        print(f"\nsamples: {len(rows)} rows, every "
              f"{header.get('interval')} cycles")
        if net_rows:
            peak = max(net_rows, key=lambda r: r["link_util_peak"])
            print(f"  peak link utilization   {peak['link_util_peak']:.3f} "
                  f"flits/cycle at cycle {peak['cycle']} "
                  f"[{peak['network']}]")
            busy = max(net_rows, key=lambda r: r["buffer_occupancy"])
            print(f"  peak buffer occupancy   {busy['buffer_occupancy']} "
                  f"flits at cycle {busy['cycle']} [{busy['network']}]")
        if chip_rows:
            m = max(chip_rows, key=lambda r: r["mshr_occupancy"])
            print(f"  peak MSHR occupancy     {m['mshr_occupancy']} "
                  f"at cycle {m['cycle']}")
            g = max(chip_rows, key=lambda r: r["mc_gated"])
            if g["mc_gated"]:
                print(f"  peak gated MCs          {g['mc_gated']} "
                      f"at cycle {g['cycle']}")
    if args.heatmaps:
        for net in summary.get("networks", []):
            print()
            print(render_summary_heatmaps(net))
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Throughput-effective NoC reproduction (MICRO 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list designs and benchmarks")

    def sim_args(p):
        p.add_argument("--warmup", type=int, default=500)
        p.add_argument("--measure", type=int, default=1500)
        p.add_argument("--seed", type=int, default=11)
        check_args(p)
        telemetry_args(p)

    def check_args(p):
        p.add_argument("--check", action="store_true",
                       help="audit flit/credit/VC invariants while "
                            "simulating (read-only; results unchanged)")
        p.add_argument("--check-interval", type=int, default=64,
                       metavar="N", help="cycles between audits "
                       "(with --check; default 64)")
        p.add_argument("--watchdog-cycles", type=int, default=0,
                       metavar="K",
                       help="raise with a full state dump if no flit "
                            "moves for K non-idle cycles (0 = off)")

    def telemetry_args(p):
        p.add_argument("--trace", action="store_true",
                       help="record per-hop packet traces and latency "
                            "decomposition (read-only; results unchanged)")
        p.add_argument("--sample-interval", type=int, default=0,
                       metavar="N",
                       help="snapshot buffer/link/MSHR/DRAM state every "
                            "N cycles (0 = off)")
        p.add_argument("--telemetry-out", default=None, metavar="DIR",
                       help="write trace.jsonl / samples.jsonl+csv / "
                            "heatmaps.txt / summary.json under DIR")

    run = sub.add_parser("run", help="closed-loop run of one benchmark")
    run.add_argument("--benchmark", required=True)
    run.add_argument("--design", default="TB-DOR",
                     help="design name or 'perfect'")
    sim_args(run)

    def positive_int(text):
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
        return value

    def parallel_args(p):
        p.add_argument("--jobs", type=positive_int, default=None,
                       help="worker processes (default: REPRO_JOBS or 1)")
        p.add_argument("--progress", action="store_true",
                       help="print per-task wall-clock progress to stderr")

    def fleet_args(p):
        p.add_argument("--fleet-size", type=positive_int, default=None,
                       dest="fleet_size", metavar="B",
                       help="lockstep-batch up to B compatible open-loop "
                            "simulations per worker (default: REPRO_FLEET "
                            "or 1; results are bit-identical)")

    cmp_ = sub.add_parser("compare", help="compare designs on one benchmark")
    cmp_.add_argument("--benchmark", required=True)
    cmp_.add_argument("--designs", required=True,
                      help="comma-separated design names (first = baseline)")
    cmp_.add_argument("--cache", default=None, metavar="DIR",
                      help="on-disk result cache directory")
    sim_args(cmp_)
    parallel_args(cmp_)

    area = sub.add_parser("area", help="area model (Table VI)")
    area.add_argument("--design")

    power = sub.add_parser(
        "power", help="per-component NoC power across technology nodes")
    power.add_argument("--benchmark", required=True)
    power.add_argument("--design", default="TB-DOR")
    power.add_argument("--nodes", default="65,45,32,22", metavar="NM,...",
                       help="technology nodes to price, first = breakdown "
                            "node (default 65,45,32,22)")
    power.add_argument("--warmup", type=int, default=500)
    power.add_argument("--measure", type=int, default=1500)
    power.add_argument("--seed", type=int, default=11)

    sweep = sub.add_parser("sweep", help="open-loop load-latency sweep")
    sweep.add_argument("--design", default="TB-DOR")
    sweep.add_argument("--rates", default="0.005,0.02,0.04,0.06")
    sweep.add_argument("--hotspot", action="store_true")
    sweep.add_argument("--warmup", type=int, default=800)
    sweep.add_argument("--measure", type=int, default=2500)
    sweep.add_argument("--seed", type=int, default=7)
    check_args(sweep)
    telemetry_args(sweep)
    parallel_args(sweep)
    fleet_args(sweep)

    explore = sub.add_parser(
        "explore", help="design-space exploration (screen/halve/confirm)")
    explore.add_argument("--preset", default="smoke",
                         help="figure2 | smoke | extended | power "
                              "(default: smoke)")
    explore.add_argument("--out", default=None, metavar="DIR",
                         help="write exploration.json / candidates.csv / "
                              "frontier.csv / tech_nodes.csv / host.json "
                              "under DIR")
    explore.add_argument("--cache", default=None, metavar="DIR",
                         help="on-disk result cache directory")
    explore.add_argument("--seed", type=int, default=None,
                         help="override the preset's base seed")
    parallel_args(explore)
    fleet_args(explore)

    from .serve import protocol as serve_protocol

    def endpoint_args(p):
        p.add_argument("--host", default=serve_protocol.DEFAULT_HOST)
        p.add_argument("--port", type=int,
                       default=serve_protocol.DEFAULT_PORT)
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="unix socket path (overrides --host/--port)")

    serve = sub.add_parser(
        "serve", help="run the simulation job server")
    endpoint_args(serve)
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="result cache directory (default: the "
                            "shared REPRO_CACHE_DIR / XDG cache)")
    serve.add_argument("--cache-max-mb", type=float, default=None,
                       metavar="MB",
                       help="LRU-evict the cache past this size budget")
    serve.add_argument("--max-pending", type=positive_int, default=64,
                       help="queued jobs before submissions are rejected "
                            "with retry_after (default 64)")
    serve.add_argument("--workers", type=positive_int, default=1,
                       help="concurrent jobs (default 1)")
    serve.add_argument("--jobs", type=positive_int, default=None,
                       help="worker processes per job (run_tasks fan-out)")
    serve.add_argument("--no-obs", action="store_true",
                       help="disable the metrics registry, job spans and "
                            "structured job events (results unchanged)")

    submit = sub.add_parser(
        "submit", help="submit a job to a running server")
    endpoint_args(submit)
    submit.add_argument("--client", default="cli",
                        help="client id for fairness accounting")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first (default 0)")
    submit.add_argument("--retries", type=int, default=0, metavar="N",
                        help="on back-pressure rejection, honour "
                             "retry_after and resubmit up to N times")
    submit.add_argument("--progress", action="store_true",
                        help="print streamed per-task progress to stderr")
    job_sub = submit.add_subparsers(dest="job_kind", required=True)

    jsweep = job_sub.add_parser("sweep", help="open-loop sweep job")
    jsweep.add_argument("--design", required=True)
    jsweep.add_argument("--rates", default="0.005,0.02,0.04,0.06")
    jsweep.add_argument("--hotspot", action="store_true")
    jsweep.add_argument("--warmup", type=int, default=1000)
    jsweep.add_argument("--measure", type=int, default=3000)
    jsweep.add_argument("--seed", type=int, default=7)

    jcompare = job_sub.add_parser("compare", help="design comparison job")
    jcompare.add_argument("--designs", required=True,
                          help="comma-separated design names")
    jcompare.add_argument("--benchmarks", default=None,
                          help="comma-separated benchmark abbreviations "
                               "(default: full Table I mix)")
    jcompare.add_argument("--warmup", type=int, default=400)
    jcompare.add_argument("--measure", type=int, default=800)
    jcompare.add_argument("--seed", type=int, default=11)

    jexplore = job_sub.add_parser("explore", help="DSE preset job")
    jexplore.add_argument("--preset", default="smoke")
    jexplore.add_argument("--seed", type=int, default=None)

    job_sub.add_parser("stats", help="print server + cache statistics")

    metrics = sub.add_parser(
        "metrics", help="scrape a running server's metrics")
    endpoint_args(metrics)
    metrics.add_argument("--client", default="cli",
                         help=argparse.SUPPRESS)
    metrics.add_argument("--json", action="store_true",
                         help="JSON snapshot instead of Prometheus "
                              "text exposition")

    top = sub.add_parser(
        "top", help="live dashboard over a running server")
    endpoint_args(top)
    top.add_argument("--client", default="cli", help=argparse.SUPPRESS)
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="seconds between frames (default 2)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="render N frames then exit (default: forever)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of redrawing in place")

    report = sub.add_parser(
        "report", help="inspect a telemetry artifact directory")
    report.add_argument("dir", help="directory holding summary.json "
                        "(written by --telemetry-out)")
    report.add_argument("--routes", type=int, default=5, metavar="N",
                        help="show the N hottest routes (default 5)")
    report.add_argument("--heatmaps", action="store_true",
                        help="re-render link/node heatmaps from the "
                             "summary")

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "area": _cmd_area,
    "power": _cmd_power,
    "sweep": _cmd_sweep,
    "explore": _cmd_explore,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
