"""Open-loop latency-versus-load harness (Figure 21).

Compute nodes inject 1-flit read requests following a Bernoulli process;
each MC injects a 4-flit read reply for every request it receives.  Source
queues are unbounded, so queueing delay at a saturated source shows up as
packet latency — the classic open-loop load-latency curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .histogram import StreamingHistogram
from .invariants import InvariantViolation, audit_system, format_system_state
from .packet import READ_REQUEST_BYTES, Packet, TrafficClass, read_reply
from .topology import Coord
from .traffic import DestinationPattern


@dataclass
class LoadLatencyPoint:
    """One point on a load-latency curve."""

    offered_rate: float          # request flits / cycle / compute node
    mean_latency: float          # cycles, all packets, source queue included
    mean_request_latency: float
    mean_reply_latency: float
    accepted_flits_per_cycle: float
    packets_measured: int
    saturated: bool
    # Latency tail over measured packets (Figure 9 curves can report tails,
    # not just means).  Defaults keep old serialized payloads loadable.
    latency_min: float = 0.0
    latency_max: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    # Per-component activity totals over the whole run (warmup + measure),
    # summed across slices — inputs to the repro.power model.  Defaults
    # keep old serialized payloads loadable.
    cycles: int = 0
    crossbar_traversals: int = 0
    buffer_reads: int = 0
    buffer_writes: int = 0
    link_flit_hops: int = 0
    flits_injected: int = 0
    flits_ejected: int = 0

    def to_json(self) -> dict:
        """JSON-compatible dict (``inf`` latencies included); floats
        round-trip exactly for the parallel harness's transport and cache."""
        from dataclasses import asdict
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "LoadLatencyPoint":
        """Inverse of :meth:`to_json` with field-for-field equality."""
        return cls(**data)


class OpenLoopRunner:
    """Drives one network instance at one offered load."""

    def __init__(self, network, compute_nodes: Sequence[Coord],
                 mc_nodes: Sequence[Coord], pattern: DestinationPattern,
                 rate: float, seed: int = 7,
                 saturation_latency: float = 300.0,
                 telemetry=None) -> None:
        self.network = network
        self.compute_nodes = list(compute_nodes)
        self.mc_nodes = list(mc_nodes)
        self.pattern = pattern
        self.rate = rate
        self.saturation_latency = saturation_latency
        self._rng = random.Random(seed)
        self._measuring = False
        self._lat_sum = {TrafficClass.REQUEST: 0, TrafficClass.REPLY: 0}
        self._lat_count = {TrafficClass.REQUEST: 0, TrafficClass.REPLY: 0}
        self._lat_hist = StreamingHistogram()
        self._measure_start = 0
        #: Opt-in :class:`repro.telemetry.TelemetryHub`; its hooks are
        #: read-only, so results are bit-identical with it on or off.
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach_network(network)
        for mc in self.mc_nodes:
            network.set_ejection_handler(mc, self._on_request)
        for core in self.compute_nodes:
            network.set_ejection_handler(core, self._on_reply)

    # -- handlers ------------------------------------------------------------

    def _on_request(self, packet: Packet, cycle: int) -> None:
        self._record(packet)
        reply = read_reply(packet.dest, packet.src, created=cycle,
                           payload=packet.payload)
        accepted = self.network.try_inject(reply, cycle)
        if not accepted:
            raise RuntimeError("open-loop source queues must be unbounded\n"
                               + format_system_state(self.network))

    def _on_reply(self, packet: Packet, cycle: int) -> None:
        self._record(packet)

    def _record(self, packet: Packet) -> None:
        if not self._measuring or packet.payload != "measured":
            return
        self._lat_sum[packet.traffic_class] += packet.latency
        self._lat_count[packet.traffic_class] += 1
        self._lat_hist.add(packet.latency)

    # -- driving -------------------------------------------------------------

    def run(self, warmup: int = 2_000, measure: int = 6_000,
            drain: int = 0) -> LoadLatencyPoint:
        for _ in range(warmup):
            self._cycle(tag=None)
        self._measuring = True
        self._measure_start = self.network.cycle
        for _ in range(measure):
            self._cycle(tag="measured")
        for _ in range(drain):
            self.network.step()
        self._final_audit()
        return self._summarize(measure)

    def _final_audit(self) -> None:
        """If the design enabled self-checks, audit the end state once more
        — per-cycle checks run inside ``network.step`` already, but this
        catches a violation introduced after the last periodic audit."""
        networks = getattr(self.network, "networks", [self.network])
        if not any(getattr(net, "checker", None) is not None
                   and net.checker.check_interval
                   for net in networks):
            return
        problems = audit_system(self.network)
        if problems:
            raise InvariantViolation(
                "open-loop end-state audit failed:\n  - "
                + "\n  - ".join(problems) + "\n"
                + format_system_state(self.network))

    def _cycle(self, tag: Optional[str]) -> None:
        telemetry = self.telemetry
        if telemetry is not None:
            self._cycle_instrumented(telemetry, tag)
            return
        self._inject_cycle(tag)
        self.network.step()

    def _inject_cycle(self, tag: Optional[str]) -> None:
        """Bernoulli injection for one cycle, without stepping the network.

        Split from :meth:`_cycle` so the fleet runner
        (``repro.noc.fleet.FleetRunner``) can inject for every member and
        then advance the whole fleet through one lockstep step."""
        net = self.network
        cycle = net.cycle
        rng = self._rng
        rand = rng.random
        rate = self.rate
        pick = self.pattern.pick
        inject = net.try_inject
        # ``read_request`` unrolled: the wrapper is one call frame per
        # injection attempt, and this loop dominates the harness.
        make = Packet
        size = READ_REQUEST_BYTES
        tclass = TrafficClass.REQUEST
        for core in self.compute_nodes:
            if rand() < rate:
                dest = pick(core, rng)
                inject(make(core, dest, size, tclass, cycle, payload=tag),
                       cycle)

    def _cycle_instrumented(self, telemetry, tag: Optional[str]) -> None:
        """Telemetry-enabled twin of :meth:`_cycle`: identical simulation
        order (results stay bit-identical) plus host timing and the
        per-cycle telemetry hook.  Changes must be made in both bodies."""
        profiler = telemetry.profiler
        t = profiler.clock()
        net = self.network
        cycle = net.cycle
        rng = self._rng
        rand = rng.random
        rate = self.rate
        pick = self.pattern.pick
        inject = net.try_inject
        make = Packet
        size = READ_REQUEST_BYTES
        tclass = TrafficClass.REQUEST
        for core in self.compute_nodes:
            if rand() < rate:
                dest = pick(core, rng)
                inject(make(core, dest, size, tclass, cycle, payload=tag),
                       cycle)
        t = profiler.add_since("injection", t)
        net.step()
        t = profiler.add_since("network", t)
        telemetry.on_cycle(net.cycle)
        profiler.add_since("telemetry", t)

    def _summarize(self, measure: int) -> LoadLatencyPoint:
        req_n = self._lat_count[TrafficClass.REQUEST]
        rep_n = self._lat_count[TrafficClass.REPLY]
        total_n = req_n + rep_n
        total = (self._lat_sum[TrafficClass.REQUEST]
                 + self._lat_sum[TrafficClass.REPLY])
        mean = total / total_n if total_n else float("inf")
        mean_req = (self._lat_sum[TrafficClass.REQUEST] / req_n
                    if req_n else float("inf"))
        mean_rep = (self._lat_sum[TrafficClass.REPLY] / rep_n
                    if rep_n else float("inf"))
        stats = self.network.stats
        accepted = stats.accepted_flit_rate()  # per-slice aware
        # Saturation shows either as latency blow-up or as a growing backlog
        # (packets that never complete inside the measurement window).
        backlog = stats.packets_injected - stats.packets_ejected
        backlogged = stats.packets_injected > 0 and (
            backlog > 0.2 * stats.packets_injected)
        tail = self._lat_hist.summary()
        return LoadLatencyPoint(
            offered_rate=self.rate,
            mean_latency=mean,
            mean_request_latency=mean_req,
            mean_reply_latency=mean_rep,
            accepted_flits_per_cycle=accepted,
            packets_measured=total_n,
            saturated=mean > self.saturation_latency
            or mean_rep > self.saturation_latency     # reply path saturated
            or backlogged or rep_n == 0,
            latency_min=tail["min"],
            latency_max=tail["max"],
            latency_p50=tail["p50"],
            latency_p95=tail["p95"],
            latency_p99=tail["p99"],
            cycles=stats.cycles,
            crossbar_traversals=stats.crossbar_traversals,
            buffer_reads=stats.buffer_reads,
            buffer_writes=stats.buffer_writes,
            link_flit_hops=stats.link_flit_hops,
            flits_injected=stats.flits_injected,
            flits_ejected=stats.flits_ejected,
        )


def sweep_load(network_factory, compute_nodes: Sequence[Coord],
               mc_nodes: Sequence[Coord], pattern_factory, rates,
               warmup: int = 2_000, measure: int = 6_000,
               seed: int = 7) -> List[LoadLatencyPoint]:
    """Run a load sweep, building a fresh network per offered rate.

    ``network_factory`` returns a new network instance; ``pattern_factory``
    maps the MC node list to a :class:`DestinationPattern`.
    """
    points = []
    for rate in rates:
        network = network_factory()
        runner = OpenLoopRunner(network, compute_nodes, mc_nodes,
                                pattern_factory(mc_nodes), rate, seed=seed)
        points.append(runner.run(warmup=warmup, measure=measure))
    return points
