"""Telemetry layer tests.

The pinned contracts:

* zero perturbation — closed-loop and open-loop results are bit-identical
  with telemetry enabled or disabled (the golden tests here);
* exact decomposition — every completed per-hop trace's components sum to
  ``packet.latency`` exactly, on single and double networks;
* the sampler's occupancy columns agree with a direct recount of router
  state;
* artifact schemas (JSONL headers, heatmap text, summary keys) are stable.
"""

import json
import random

import pytest

from repro.cli import main
from repro.core import BASELINE, build, open_loop_variant
from repro.core.builder import design_by_name
from repro.noc.histogram import StreamingHistogram, merge_histograms
from repro.noc.openloop import OpenLoopRunner
from repro.noc.stats import NetworkStats, merge_stats
from repro.noc.topology import Coord
from repro.noc.traffic import UniformManyToFew
from repro.noc.packet import read_reply, read_request
from repro.system.accelerator import build_chip
from repro.telemetry import (COMPONENTS, SAMPLES_SCHEMA, TRACE_SCHEMA,
                             TelemetryHub, TelemetrySpec, coord_key,
                             link_key, parse_coord, parse_link, read_jsonl,
                             render_node_heatmap, write_jsonl)
from repro.workloads.profiles import profile


# ---------------------------------------------------------------------------
# StreamingHistogram


class TestStreamingHistogram:
    def test_exact_below_linear_limit(self):
        h = StreamingHistogram()
        values = [3, 3, 7, 100, 4095]
        for v in values:
            h.add(v)
        assert h.total == 5
        assert len(h) == 4            # distinct buckets
        assert h.min == 3
        assert h.max == 4095
        assert h.percentile(50) == 7
        assert h.mean() == pytest.approx(sum(values) / len(values))

    def test_percentiles_match_sorted_rank(self):
        rng = random.Random(5)
        values = sorted(rng.randrange(2000) for _ in range(999))
        h = StreamingHistogram()
        for v in values:
            h.add(v)
        # Ceil-rank definition: percentile p = value at rank ceil(n*p/100).
        for p in (50, 95, 99):
            rank = -(-len(values) * p // 100)
            assert h.percentile(p) == values[rank - 1]

    def test_rank_is_exact_at_bucket_boundaries(self):
        # p50 boundary: rank ceil((2**53 + 1) / 2) = 2**52 + 1, which is
        # the first sample of the second bucket.  Computing the rank in
        # float arithmetic rounds total * p to 2**53 * 50 and lands one
        # rank low (in the first bucket) — the rank must come from exact
        # integer arithmetic.
        h = StreamingHistogram()
        h.add(0, count=2 ** 52)
        h.add(1, count=2 ** 52 + 1)
        assert h.percentile(50) == 1
        assert h.percentile(100) == 1

        # Exact small boundaries: rank 100 of 200 is the last sample of
        # the first bucket; any p past 50% crosses into the second.
        h = StreamingHistogram()
        h.add(0, count=100)
        h.add(1, count=100)
        assert h.percentile(50) == 0
        assert h.percentile(50.5) == 1

        # Float percentiles are resolved against the float's exact value:
        # 99.9 is binary 99.90000000000000568…, so rank ceil(1000 * p /
        # 100) = 1000, not 999.
        h = StreamingHistogram()
        for v in range(1000):
            h.add(v)
        assert h.percentile(99.9) == 999

    def test_power_of_two_buckets_above_limit(self):
        h = StreamingHistogram()
        h.add(5000)        # 13 bits -> representative 4096
        h.add(70_000)      # 17 bits -> representative 65536
        # min/max stay exact; percentiles use bucket representatives.
        assert h.min == 5000
        assert h.max == 70_000
        assert h.percentile(50) == 4096
        assert h.percentile(99) == 65_536

    def test_merge_and_copy_are_independent(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.add(1)
        b.add(2)
        c = a.copy()
        c.merge(b)
        assert c.total == 2 and a.total == 1
        assert merge_histograms([a, b]).summary() == c.summary()

    def test_delta_isolates_window(self):
        h = StreamingHistogram()
        h.add(10)
        before = h.copy()
        h.add(20)
        h.add(30)
        window = h.delta(before)
        assert window.total == 2
        assert window.min == 20 and window.max == 30

    def test_delta_rejects_non_prefix(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        b.add(9)
        with pytest.raises(ValueError):
            a.delta(b)

    def test_empty_summary_is_zeros(self):
        s = StreamingHistogram().summary()
        assert s == {"count": 0, "min": 0.0, "max": 0.0, "p50": 0.0,
                     "p95": 0.0, "p99": 0.0}


# ---------------------------------------------------------------------------
# merge_stats rate contract (satellite: double-network accounting)


def _stats(cycles, flits_ejected, node=None, node_flits=0):
    s = NetworkStats()
    s.cycles = cycles
    s.flits_ejected = flits_ejected
    if node is not None:
        s.node_injected_flits[node] = node_flits
    return s


class TestMergeStatsRates:
    def test_equal_cycles_keeps_single_division(self):
        a = _stats(1000, 301)
        b = _stats(1000, 77)
        merged = merge_stats([a, b])
        assert merged.cycles == 1000
        # Bit-identical to the historical arithmetic, NOT a/c + b/c.
        assert merged.accepted_flit_rate() == (301 + 77) / 1000

    def test_unequal_cycles_sums_per_slice_rates(self):
        a = _stats(1000, 300)
        b = _stats(500, 300)
        merged = merge_stats([a, b])
        assert merged.cycles == 1000            # master clock
        assert merged.accepted_flit_rate() == pytest.approx(
            300 / 1000 + 300 / 500)

    def test_unequal_cycles_injection_rate(self):
        node = Coord(1, 1)
        a = _stats(1000, 0, node, 100)
        b = _stats(250, 0, node, 100)
        merged = merge_stats([a, b])
        assert merged.injection_rate(node) == pytest.approx(
            100 / 1000 + 100 / 250)

    def test_latency_summary_merges_histograms(self):
        a, b = NetworkStats(), NetworkStats()
        a.record_ejection(_packet(latency=10), 1)
        b.record_ejection(_packet(latency=30), 1)
        merged = merge_stats([a, b])
        summary = merged.latency_summary()
        assert summary["count"] == 2
        assert summary["min"] == 10 and summary["max"] == 30


def _packet(latency):
    p = read_request(Coord(0, 0), Coord(1, 0), created=0)
    p.injected = 0
    p.ejected = latency
    return p


# ---------------------------------------------------------------------------
# Golden bit-identity + exact decomposition


CLOSED_DESIGNS = ["TB-DOR", "Double-CP-CR"]


class TestZeroPerturbation:
    @pytest.mark.parametrize("design", CLOSED_DESIGNS)
    def test_closed_loop_bit_identical(self, design):
        prof = profile("RD")
        plain = build_chip(prof, design=design_by_name(design), seed=11)
        baseline = plain.run(warmup=100, measure=300)

        chip = build_chip(prof, design=design_by_name(design), seed=11)
        hub = TelemetryHub(TelemetrySpec(trace=True, sample_interval=50))
        hub.attach_chip(chip)
        traced = chip.run(warmup=100, measure=300)

        assert traced.to_json() == baseline.to_json()
        # Every retained trace decomposes exactly.
        assert hub.tracer.completed
        for trace in hub.tracer.completed:
            parts = trace.components()
            assert tuple(parts) == COMPONENTS
            assert sum(parts.values()) == trace.latency
            assert trace.network_latency == trace.latency - parts["queue"]
        assert hub.tracer.incomplete == 0

    def test_open_loop_bit_identical(self):
        def point(telemetry):
            system = build(open_loop_variant(BASELINE))
            runner = OpenLoopRunner(
                system, system.compute_nodes, system.mc_nodes,
                UniformManyToFew(system.mc_nodes), 0.03,
                telemetry=telemetry)
            return runner.run(warmup=200, measure=500)

        hub = TelemetryHub(TelemetrySpec(trace=True, sample_interval=100))
        assert point(hub).to_json() == point(None).to_json()
        assert hub.tracer.completed
        for trace in hub.tracer.completed:
            assert sum(trace.components().values()) == trace.latency

    def test_hooks_default_off(self):
        system = build(open_loop_variant(BASELINE))
        for net in system.networks:
            assert net.tracer is None
            for router in net.routers.values():
                assert router.tracer is None
            for channel in net.channels:
                assert channel.tracer is None


class TestTraceAggregates:
    def test_per_class_means_match_traces(self):
        system = build(open_loop_variant(BASELINE))
        hub = TelemetryHub(TelemetrySpec(trace=True))
        runner = OpenLoopRunner(
            system, system.compute_nodes, system.mc_nodes,
            UniformManyToFew(system.mc_nodes), 0.02, telemetry=hub)
        runner.run(warmup=100, measure=400)
        tracer = hub.tracer
        assert tracer.traced_packets == len(tracer.completed)
        for tclass, agg in tracer.per_class.items():
            mine = [t for t in tracer.completed if t.tclass == tclass]
            assert agg.packets == len(mine)
            total = sum(t.latency for t in mine)
            assert agg.to_json()["mean_latency"] == pytest.approx(
                total / len(mine))
        # Per-route packet counts cover every completed trace once.
        assert sum(a.packets for a in tracer.per_route.values()) == \
            len(tracer.completed)


# ---------------------------------------------------------------------------
# Sampler vs direct recount


class TestSampler:
    def test_occupancy_matches_direct_recount(self):
        system = build(open_loop_variant(BASELINE))
        hub = TelemetryHub(TelemetrySpec(sample_interval=25))
        runner = OpenLoopRunner(
            system, system.compute_nodes, system.mc_nodes,
            UniformManyToFew(system.mc_nodes), 0.08, telemetry=hub)
        runner.run(warmup=0, measure=200)

        rows = hub.sampler.rows
        assert rows, "sampler recorded nothing"
        by_cycle = {}
        for row in rows:
            by_cycle.setdefault(row["cycle"], []).append(row)
        # The final sample's state is still live: recount it directly.
        last = max(by_cycle)
        nets = {net.name: net for net in system.networks}
        counted = 0
        for row in by_cycle[last]:
            net = nets[row["network"]]
            direct = sum(
                len(vc.buffer)
                for router in net.routers.values()
                for vcs in router.in_ports.values() for vc in vcs)
            assert row["buffer_occupancy"] == direct
            assert sum(row["router_occupancy"].values()) == direct
            assert sum(row["vc_occupancy"].values()) == direct
            assert row["source_queue_flits"] == net._source_flits
            counted += 1
        assert counted == len(system.networks)

    def test_link_utilization_is_windowed(self):
        system = build(open_loop_variant(BASELINE))
        hub = TelemetryHub(TelemetrySpec(sample_interval=50))
        runner = OpenLoopRunner(
            system, system.compute_nodes, system.mc_nodes,
            UniformManyToFew(system.mc_nodes), 0.05, telemetry=hub)
        runner.run(warmup=0, measure=300)
        for row in hub.sampler.rows:
            if row["kind"] != "network":
                continue
            # flits per cycle over a 50-cycle window can never exceed 1.
            assert 0.0 <= row["link_util_peak"] <= 1.0
            for util in row["link_utilization"].values():
                assert 0.0 < util <= 1.0

    def test_chip_row_memory_columns(self):
        prof = profile("RD")
        chip = build_chip(prof, design=design_by_name("TB-DOR"), seed=3)
        hub = TelemetryHub(TelemetrySpec(sample_interval=40))
        hub.attach_chip(chip)
        chip.run(warmup=80, measure=160)
        chip_rows = [r for r in hub.sampler.rows if r["kind"] == "chip"]
        assert chip_rows
        row = chip_rows[-1]
        assert row["mshr_occupancy"] == sum(
            core.mshrs.occupancy for core in chip.cores)
        assert set(row["mc"]) == {coord_key(mc.coord) for mc in chip.mcs}
        assert 0.0 <= row["dram_row_hit_rate_window"] <= 1.0

    def test_rejects_zero_interval(self):
        from repro.telemetry import TimeSeriesSampler
        with pytest.raises(ValueError):
            TimeSeriesSampler(0)


# ---------------------------------------------------------------------------
# Export schema stability


class TestExportSchemas:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "x.jsonl"
        rows = [{"a": 1, "b": "y"}, {"a": 2, "b": "z"}]
        write_jsonl(path, {"schema": "test-v1", "rows": 2}, rows)
        header, out = read_jsonl(path)
        assert header == {"schema": "test-v1", "rows": 2}
        assert out == rows

    def test_jsonl_rejects_missing_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"rows": 0}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_coord_and_link_keys_round_trip(self):
        c1, c2 = Coord(3, 5), Coord(4, 5)
        assert coord_key(c1) == "3,5"
        assert parse_coord(coord_key(c1)) == c1
        assert link_key(c1, c2) == "3,5->4,5"
        assert parse_link(link_key(c1, c2)) == (c1, c2)

    def test_node_heatmap_exact_text(self):
        values = {Coord(0, 0): 0.5, Coord(1, 1): 1.0}
        text = render_node_heatmap(2, 2, values, "demo")
        assert text == (
            "demo (peak 1.0000)\n"
            "           0       1 \n"
            " y0    0.500+  0.000 \n"
            " y1    0.000   1.000@"
        )


# ---------------------------------------------------------------------------
# Artifacts + CLI round trip


class TestArtifacts:
    def test_write_artifacts_schema(self, tmp_path):
        prof = profile("RD")
        chip = build_chip(prof, design=design_by_name("TB-DOR"), seed=11)
        hub = TelemetryHub(TelemetrySpec(trace=True, sample_interval=50,
                                         out_dir=str(tmp_path / "out")))
        hub.attach_chip(chip)
        result = chip.run(warmup=80, measure=200)
        written = hub.write_artifacts()
        assert set(written) == {"trace", "samples", "samples_csv",
                                "heatmaps", "summary"}

        header, traces = read_jsonl(written["trace"])
        assert header["schema"] == TRACE_SCHEMA
        assert header["retained"] == len(traces)
        for row in traces:
            assert sum(row["components"].values()) == row["latency"]
            assert len(row["hops"]) >= 1

        header, samples = read_jsonl(written["samples"])
        assert header["schema"] == SAMPLES_SCHEMA
        assert header["interval"] == 50
        assert {row["kind"] for row in samples} == {"network", "chip"}

        summary = json.loads(written["summary"].read_text())
        assert summary["trace"]["incomplete"] == 0
        assert summary["trace"]["traced_packets"] > 0
        net = summary["networks"][0]
        assert net["latency"]["count"] > 0
        assert set(net["latency"]) == {"count", "min", "max", "p50",
                                       "p95", "p99"}
        assert result.latency_max > 0
        assert (tmp_path / "out" / "samples.csv").read_text().splitlines()

    def test_result_tail_percentiles_ordered(self):
        prof = profile("RD")
        chip = build_chip(prof, design=design_by_name("TB-DOR"), seed=11)
        result = chip.run(warmup=80, measure=200)
        assert result.latency_min <= result.latency_p50 \
            <= result.latency_p95 <= result.latency_p99 \
            <= result.latency_max
        assert result.latency_max > 0
        assert result.latency_p50 <= result.mean_packet_latency * 2


class TestCliTelemetry:
    def test_run_flags_round_trip(self, tmp_path, capsys):
        out = tmp_path / "tele"
        assert main(["run", "--benchmark", "AES", "--warmup", "50",
                     "--measure", "150", "--trace",
                     "--sample-interval", "50",
                     "--telemetry-out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "latency decomposition" in printed
        assert "host profile" in printed
        for name in ("trace.jsonl", "samples.jsonl", "samples.csv",
                     "heatmaps.txt", "summary.json"):
            assert (out / name).is_file(), name
        assert main(["report", str(out), "--heatmaps"]) == 0
        report = capsys.readouterr().out
        assert "latency decomposition" in report
        assert "link utilization" in report

    def test_run_without_flags_has_no_telemetry_block(self, capsys):
        assert main(["run", "--benchmark", "AES", "--warmup", "50",
                     "--measure", "100"]) == 0
        printed = capsys.readouterr().out
        assert "host profile" not in printed
        assert "latency tail" in printed      # always-on histogram

    def test_sweep_requires_out_dir(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--design", "TB-DOR", "--rates", "0.01",
                  "--trace"])

    def test_sweep_writes_per_task_artifacts(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        assert main(["sweep", "--design", "TB-DOR", "--rates", "0.01",
                     "--warmup", "100", "--measure", "200", "--trace",
                     "--telemetry-out", str(out)]) == 0
        task_dirs = list(out.iterdir())
        assert len(task_dirs) == 1
        assert (task_dirs[0] / "summary.json").is_file()
        assert main(["report", str(task_dirs[0])]) == 0

    def test_report_missing_dir(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "summary.json" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Telemetry through the parallel harness


class TestParallelTelemetry:
    def _task(self, telemetry):
        from repro.parallel import SimTask, derive_seed
        return SimTask(
            kind="openloop", label="TB-DOR/uniform@0.02",
            seed=derive_seed(7, "openloop", "TB-DOR", "uniform", 0.02),
            warmup=100, measure=300,
            design=design_by_name("TB-DOR"),
            pattern_factory=UniformManyToFew, pattern_name="uniform",
            rate=0.02, telemetry=telemetry)

    def test_telemetry_excluded_from_cache_key(self, tmp_path):
        spec = TelemetrySpec(trace=True, out_dir=str(tmp_path))
        assert self._task(None).cache_key() == \
            self._task(spec).cache_key()

    def test_results_identical_and_artifacts_written(self, tmp_path):
        from repro.parallel import run_tasks
        spec = TelemetrySpec(trace=True, sample_interval=100,
                             out_dir=str(tmp_path / "art"))
        plain = run_tasks([self._task(None)])
        traced = run_tasks([self._task(spec)])
        assert plain[0]["result"] == traced[0]["result"]
        art_dir = traced[0]["telemetry_dir"]
        assert art_dir.startswith(str(tmp_path / "art"))
        assert (tmp_path / "art").is_dir()

    def test_cache_hit_bypassed_when_artifacts_missing(self, tmp_path):
        from repro.parallel import ResultCache, run_tasks
        cache = ResultCache(tmp_path / "cache")
        run_tasks([self._task(None)], cache=cache)   # primes the cache
        spec = TelemetrySpec(trace=True, out_dir=str(tmp_path / "art"))
        traced = run_tasks([self._task(spec)], cache=cache)
        # The hit was bypassed so the artifacts exist now...
        art = self._task(spec).telemetry_dir()
        assert art is not None and art.is_dir()
        assert "telemetry_dir" in traced[0]
        # ...and a second run serves the hit since artifacts are present.
        again = run_tasks([self._task(spec)], cache=cache)
        assert again[0]["result"] == traced[0]["result"]
