"""ORION-calibrated area model and throughput-effectiveness metric."""

from .chip import (GTX280_AREA_MM2, NocArea, baseline_noc_area,
                   compute_area_mm2, design_chip_area_mm2, design_noc_area,
                   scaled_compute_area_mm2, throughput_effectiveness,
                   throughput_effectiveness_gain)
from .orion import (RouterArea, crossbar_units, link_area, mesh_link_count,
                    router_area)

__all__ = [
    "GTX280_AREA_MM2", "NocArea", "RouterArea", "baseline_noc_area",
    "compute_area_mm2", "crossbar_units", "design_chip_area_mm2",
    "design_noc_area", "link_area",
    "mesh_link_count", "router_area", "scaled_compute_area_mm2",
    "throughput_effectiveness", "throughput_effectiveness_gain",
]
