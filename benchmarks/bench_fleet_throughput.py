"""Fleet stepper throughput: lockstep/batched planning vs the default
event core, on the two task shapes the fleet layer exists for.

Times ``repro.parallel.run_tasks`` end to end — build, simulate,
serialize — over pinned task batches with fleeting off (``fleet=1``,
every point on the construction-default event core) and on
(``fleet=4``), and writes ``benchmarks/results/BENCH_fleet.json``:

* ``dse_screen`` — a DSE screen cohort: one saturated open-loop point
  (rate 0.35, the ``FidelityLadder`` default) per candidate.  Above
  ``FLEET_LOCKSTEP_MAX_RATE`` the planner runs these solo on the batched
  core, so this measures the adaptive-policy win at high load.
* ``sweep_ladder`` — a load-latency sweep ladder: low-rate points across
  designs and seeds.  These pack into lockstep fleets sharing one
  vectorized screen per cycle, the regime where per-cycle fixed cost
  dominates.

Floors are set from measured, robustly-reproducible speedups on the
development machine; the original optimisation targets (3x on the
screen, 2x on the sweep) are recorded in the JSON as ``target`` for
tracking but are *not* enforced — profiling shows the vectorizable
screen is only ~2-5% of cycle time at these workload sizes, so Amdahl
caps the achievable ratio well below the targets (measurements and
breakdown in DESIGN.md §18).

Fleeting must also change no result bit (the contract pinned by
``tests/test_stepper_equivalence.py`` and ``tests/test_fleet.py``), so
the bench doubles as a determinism canary: both modes' payloads are
compared field for field every round.  Host timing is noisy, so modes
run ``REPRO_BENCH_REPS`` interleaved rounds (default 3) plus up to
``REPRO_BENCH_EXTRA_REPS`` retry rounds when a floor lands short, and
per-mode minima are compared.
"""

from __future__ import annotations

import json
import os
import time

from common import RESULTS_DIR, SEED, once, report
from repro.core.builder import design_by_name
from repro.experiments import open_loop_task
from repro.parallel import run_tasks

BENCH_SCHEMA = 1
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))
EXTRA_REPS = max(0, int(os.environ.get("REPRO_BENCH_EXTRA_REPS", "4")))

#: ``default`` first so every later mode compares against a same-round
#: baseline sample.
MODES = ("default", "fleet")
FLEET_SIZE = 4

#: The original optimisation targets from the fleet-stepper issue —
#: recorded in the JSON for tracking, not enforced (see module
#: docstring).
TARGETS = {"dse_screen": 3.0, "sweep_ladder": 2.0}

# DSE screen shape: the FidelityLadder's saturated screen point per
# candidate, here over a pinned candidate set (designs x seeds).
SCREEN_DESIGNS = ("TB-DOR", "CP-CR-4VC", "Double-CP-CR")
SCREEN_RATE = 0.35
SCREEN_WARMUP, SCREEN_MEASURE = 300, 600
SCREEN_SEEDS = (0, 1)
SCREEN_FLOORS = {"fleet": 1.05}

# Sweep ladder shape: the low-load rungs of a load-latency sweep.
LADDER_DESIGNS = ("TB-DOR", "Double-CP-CR")
LADDER_RATES = (0.005, 0.02, 0.04, 0.06)
LADDER_WARMUP, LADDER_MEASURE = 400, 2000
LADDER_FLOORS = {"fleet": 1.15}


def _screen_tasks():
    return [
        open_loop_task(design_by_name(name), None, "uniform", SCREEN_RATE,
                       base_seed=SEED + s, warmup=SCREEN_WARMUP,
                       measure=SCREEN_MEASURE)
        for name in SCREEN_DESIGNS for s in SCREEN_SEEDS
    ]


def _ladder_tasks():
    return [
        open_loop_task(design_by_name(name), None, "uniform", rate,
                       base_seed=SEED, warmup=LADDER_WARMUP,
                       measure=LADDER_MEASURE)
        for name in LADDER_DESIGNS for rate in LADDER_RATES
    ]


def _patched_tasks(tasks):
    """Attach the pattern factory (kept out of the builders above so the
    task lists stay import-order stable)."""
    import dataclasses

    from repro.noc.traffic import UniformManyToFew
    return [dataclasses.replace(t, pattern_factory=UniformManyToFew)
            for t in tasks]


def _run_batch(make_tasks, mode: str):
    tasks = _patched_tasks(make_tasks())
    start = time.perf_counter()
    payloads = run_tasks(tasks, jobs=1,
                         fleet=FLEET_SIZE if mode == "fleet" else 1)
    seconds = time.perf_counter() - start
    results = [p["result"] for p in payloads]
    cycles = sum(r["cycles"] for r in results)
    flits = sum(r["flits_ejected"] for r in results)
    return seconds, cycles, flits, results


def _measure(name: str, make_tasks, floors):
    """Interleave ``REPS`` rounds over both modes; compare per-mode
    minima against the default-mode minimum, with retry rounds when a
    floor lands short.  Every rep of every mode must produce the same
    result payloads, and fleet payloads must equal default payloads
    field for field."""
    best = {}
    payloads = {}

    def one_round():
        for mode in MODES:
            seconds, cycles, flits, results = _run_batch(make_tasks, mode)
            if mode not in best or seconds < best[mode][0]:
                best[mode] = (seconds, cycles, flits)
            expected = payloads.setdefault(mode, results)
            if results != expected:
                raise AssertionError(
                    f"{name}: {mode} mode is not deterministic across "
                    "repetitions")

    def floors_met():
        base = best["default"][0]
        return all(base / best[mode][0] >= floor
                   for mode, floor in floors.items())

    reps = REPS
    for _ in range(REPS):
        one_round()
    for _ in range(EXTRA_REPS):
        if floors_met():
            break
        one_round()
        reps += 1
    if payloads["fleet"] != payloads["default"]:
        raise AssertionError(
            f"{name}: fleet-mode results differ from fleet-disabled "
            "results — the bit-identity contract is broken")

    def stats(mode):
        seconds, cycles, flits = best[mode]
        return {
            "best_seconds": round(seconds, 4),
            "cycles": cycles,
            "flits_ejected": flits,
            "cycles_per_second": round(cycles / seconds, 1),
            "flits_per_second": round(flits / seconds, 1),
        }

    base_seconds = best["default"][0]
    speedup = round(base_seconds / best["fleet"][0], 3)
    entry = {
        "reps": reps,
        "fleet_size": FLEET_SIZE,
        "modes": {mode: stats(mode) for mode in MODES},
        "speedup": {"fleet": speedup},
        "floors": floors,
        "target": TARGETS[name],
        "target_met": speedup >= TARGETS[name],
        "identical": True,
    }
    for mode, floor in floors.items():
        if entry["speedup"][mode] < floor:
            raise AssertionError(
                f"{name}: fleet speedup {entry['speedup'][mode]}x is "
                f"below the {floor}x floor (default {base_seconds}s vs "
                f"{mode} {best[mode][0]}s over {reps} interleaved "
                "rounds)")
    return entry


def _experiment():
    configs = {
        "dse_screen": _measure("dse_screen", _screen_tasks, SCREEN_FLOORS),
        "sweep_ladder": _measure("sweep_ladder", _ladder_tasks,
                                 LADDER_FLOORS),
    }
    payload = {
        "schema": BENCH_SCHEMA,
        "reps": REPS,
        "fleet_size": FLEET_SIZE,
        "workloads": {
            "dse_screen": {
                "designs": list(SCREEN_DESIGNS), "rate": SCREEN_RATE,
                "seeds": len(SCREEN_SEEDS),
                "warmup": SCREEN_WARMUP, "measure": SCREEN_MEASURE,
            },
            "sweep_ladder": {
                "designs": list(LADDER_DESIGNS),
                "rates": list(LADDER_RATES),
                "warmup": LADDER_WARMUP, "measure": LADDER_MEASURE,
            },
        },
        "configs": configs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_fleet.json"
    out.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    rows = [
        f"{'config':14s} {'default s':>10s} {'fleet s':>8s} "
        f"{'speedup':>8s} {'floor':>6s} {'target':>7s}",
    ]
    for name, entry in configs.items():
        rows.append(
            f"{name:14s} {entry['modes']['default']['best_seconds']:10.2f} "
            f"{entry['modes']['fleet']['best_seconds']:8.2f} "
            f"{entry['speedup']['fleet']:7.2f}x "
            f"{entry['floors']['fleet']:5.2f}x "
            f"{entry['target']:6.1f}x")
    rows.append(
        f"(min over {REPS}+ interleaved rounds; fleet={FLEET_SIZE}; both "
        "modes bit-identical; targets informational — see DESIGN.md §18 "
        "for the measured Amdahl ceiling; details in "
        "results/BENCH_fleet.json)")
    return rows


def test_fleet_throughput(benchmark):
    report("fleet_throughput", once(benchmark, _experiment))


if __name__ == "__main__":
    # Plain-script entry for CI (no pytest-benchmark dependency).
    report("fleet_throughput", _experiment())
