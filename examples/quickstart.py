#!/usr/bin/env python3
"""Quickstart: simulate one benchmark on the baseline mesh and on the
paper's throughput-effective NoC, and compare IPC, area and IPC/mm².

Run:  python examples/quickstart.py [BENCHMARK]   (default: RD)
"""

import sys

from repro.area.chip import design_noc_area, throughput_effectiveness
from repro.core.builder import BASELINE, THROUGHPUT_EFFECTIVE
from repro.system.accelerator import build_chip
from repro.workloads.profiles import profile


def main() -> None:
    abbr = sys.argv[1].upper() if len(sys.argv) > 1 else "RD"
    prof = profile(abbr)
    print(f"benchmark: {prof.abbr} ({prof.name}), "
          f"paper class {prof.expected_group}\n")

    results = {}
    for design in (BASELINE, THROUGHPUT_EFFECTIVE):
        chip = build_chip(prof, design=design)
        result = chip.run(warmup=1000, measure=2000)
        area = design_noc_area(design)
        results[design.name] = (result, area)
        print(f"{design.name}:")
        print(f"  IPC                 {result.ipc:8.1f} scalar instr / core clock")
        print(f"  NoC area            {area.noc_total:8.1f} mm2 "
              f"({area.overhead_fraction:.1%} of the GTX280 die)")
        print(f"  chip area           {area.total_chip:8.1f} mm2")
        print(f"  IPC per mm2         "
              f"{throughput_effectiveness(result.ipc, area.total_chip):8.4f}")
        print(f"  MC reply-port stall {result.mc_stall_fraction:8.1%}")
        print(f"  mean packet latency {result.mean_packet_latency:8.1f} cycles")
        print()

    base_res, base_area = results[BASELINE.name]
    te_res, te_area = results[THROUGHPUT_EFFECTIVE.name]
    speedup = te_res.ipc / base_res.ipc - 1
    te_gain = (te_res.ipc / te_area.total_chip) / \
        (base_res.ipc / base_area.total_chip) - 1
    print(f"throughput-effective vs baseline: IPC {speedup:+.1%}, "
          f"IPC/mm2 {te_gain:+.1%}")
    print("(the paper reports +17% IPC and +25.4% IPC/mm2 averaged over "
          "31 benchmarks)")


if __name__ == "__main__":
    main()
