"""Tests for dimension-ordered routing."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.noc.packet import RouteGroup, TrafficClass, read_request
from repro.noc.routing import DorXY, DorYX, minimal_hops
from repro.noc.topology import Coord, Direction, Mesh

MESH = Mesh(6, 6)
coords = st.builds(Coord, st.integers(0, 5), st.integers(0, 5))


def walk(routing, src, dest, max_hops=50):
    packet = read_request(src, dest)
    routing.plan(packet, random.Random(0))
    path = [src]
    coord = src
    for _ in range(max_hops):
        port = routing.next_port(coord, packet)
        if port is Direction.EJECT:
            return path
        coord = coord.neighbor(port)
        path.append(coord)
    raise AssertionError("route did not terminate")


class TestDorXY:
    def test_same_node_ejects(self):
        r = DorXY(MESH)
        p = read_request(Coord(2, 2), Coord(2, 2))
        r.plan(p)
        assert r.next_port(Coord(2, 2), p) is Direction.EJECT

    def test_x_first(self):
        path = walk(DorXY(MESH), Coord(0, 0), Coord(3, 2))
        # X-coordinate settles before Y moves.
        xs = [c.x for c in path]
        assert xs == sorted(xs)
        assert path[3] == Coord(3, 0)

    def test_turn_node(self):
        path = walk(DorXY(MESH), Coord(1, 4), Coord(4, 1))
        assert Coord(4, 4) in path      # the XY turn node

    def test_plan_uses_any_group(self):
        p = read_request(Coord(0, 0), Coord(3, 3))
        DorXY(MESH).plan(p)
        assert p.group is RouteGroup.ANY

    @given(coords, coords)
    def test_reaches_destination_minimally(self, src, dest):
        path = walk(DorXY(MESH), src, dest)
        assert path[-1] == dest
        assert len(path) - 1 == minimal_hops(src, dest)

    @given(coords, coords)
    def test_at_most_one_turn(self, src, dest):
        path = walk(DorXY(MESH), src, dest)
        turns = 0
        for a, b, c in zip(path, path[1:], path[2:]):
            moved_x = a.x != b.x
            moves_y = b.y != c.y
            if moved_x and moves_y:
                turns += 1
        assert turns <= 1


class TestDorYX:
    def test_y_first(self):
        path = walk(DorYX(MESH), Coord(0, 0), Coord(3, 2))
        ys = [c.y for c in path]
        assert ys == sorted(ys)
        assert path[2] == Coord(0, 2)

    @given(coords, coords)
    def test_reaches_destination_minimally(self, src, dest):
        path = walk(DorYX(MESH), src, dest)
        assert path[-1] == dest
        assert len(path) - 1 == minimal_hops(src, dest)

    @given(coords, coords)
    def test_xy_and_yx_same_length(self, src, dest):
        assert len(walk(DorXY(MESH), src, dest)) == \
            len(walk(DorYX(MESH), src, dest))


class TestMinimalHops:
    def test_values(self):
        assert minimal_hops(Coord(0, 0), Coord(5, 5)) == 10
        assert minimal_hops(Coord(2, 2), Coord(2, 2)) == 0
