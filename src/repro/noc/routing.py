"""Routing algorithms: the base interface and dimension-ordered routing.

A routing algorithm has two duties:

* ``plan(packet)`` — run once at injection; chooses the route group
  (XY / YX / ANY) and, for two-phase checkerboard routes, the intermediate
  full-router.  The paper implements the group choice as a single header bit
  (Section IV-B).
* ``next_port(coord, packet)`` — run at each router's route-computation
  stage; returns the output ``Direction`` or ``Direction.EJECT``.

Checkerboard routing (the paper's contribution) lives in
``repro.core.checkerboard_routing`` and implements this same interface.
"""

from __future__ import annotations

import random
from typing import Optional

from .packet import Packet, RouteGroup
from .topology import Coord, Direction, Mesh


class RoutingAlgorithm:
    """Base class for oblivious routing algorithms on a mesh."""

    #: Number of routing VCs the algorithm needs per protocol class.
    required_route_vcs = 1

    #: True when ``plan`` writes exactly the ``Packet`` routing-state
    #: defaults (group=ANY, intermediate=None, phase=1) — the network's
    #: injection path may then skip the call for freshly built packets.
    plan_writes_defaults = False

    def __init__(self, mesh: Mesh) -> None:
        self.mesh = mesh

    def plan(self, packet: Packet, rng: Optional[random.Random] = None) -> None:
        raise NotImplementedError

    def next_port(self, coord: Coord, packet: Packet) -> Direction:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    def _dor_step(self, coord: Coord, dest: Coord, order: str) -> Direction:
        """One DOR step: complete the first axis of ``order`` then the
        second, then eject."""
        first, second = order[0], order[1]
        for axis in (first, second):
            if axis == "x" and coord.x != dest.x:
                return self.mesh.direction_towards(coord, dest, "x")
            if axis == "y" and coord.y != dest.y:
                return self.mesh.direction_towards(coord, dest, "y")
        return Direction.EJECT


class DorXY(RoutingAlgorithm):
    """Dimension-ordered XY routing (the baseline, Table III)."""

    group = RouteGroup.XY
    plan_writes_defaults = True

    def __init__(self, mesh: Mesh) -> None:
        super().__init__(mesh)
        # DOR is a pure function of (coord, dest); memoizing the per-hop
        # decision takes the arithmetic off the cycle loop.  Bounded by
        # the (coord, dest) pairs actually routed — at most mesh^2.
        self._memo: dict = {}

    def plan(self, packet: Packet, rng: Optional[random.Random] = None) -> None:
        packet.group = RouteGroup.ANY  # any VC of the class may be used
        packet.intermediate = None
        packet.phase = 1

    def next_port(self, coord: Coord, packet: Packet) -> Direction:
        key = (coord, packet.dest)
        port = self._memo.get(key)
        if port is None:
            port = self._memo[key] = self._dor_step(coord, key[1], "xy")
        return port


class DorYX(RoutingAlgorithm):
    """Dimension-ordered YX routing."""

    group = RouteGroup.YX
    plan_writes_defaults = True

    def __init__(self, mesh: Mesh) -> None:
        super().__init__(mesh)
        self._memo: dict = {}

    def plan(self, packet: Packet, rng: Optional[random.Random] = None) -> None:
        packet.group = RouteGroup.ANY
        packet.intermediate = None
        packet.phase = 1

    def next_port(self, coord: Coord, packet: Packet) -> Direction:
        key = (coord, packet.dest)
        port = self._memo.get(key)
        if port is None:
            port = self._memo[key] = self._dor_step(coord, key[1], "yx")
        return port


class Romm2Phase(RoutingAlgorithm):
    """ROMM two-phase randomised minimal routing (Nesson & Johnsson), the
    algorithm the paper compares checkerboard routing against (Section VI).

    Phase one routes XY to a random intermediate inside the minimal
    quadrant, phase two routes XY to the destination.  Each phase uses its
    own routing VC (phase one on the YX-group VC, phase two on the
    XY-group VC), which keeps the VC dependence acyclic.  Requires
    full-router connectivity — ROMM packets may turn anywhere, which is
    exactly why it cannot run on the cheaper checkerboard mesh.
    """

    required_route_vcs = 2

    def plan(self, packet: Packet, rng: Optional[random.Random] = None) -> None:
        rng = rng if rng is not None else random
        src, dest = packet.src, packet.dest
        xs = range(min(src.x, dest.x), max(src.x, dest.x) + 1)
        ys = range(min(src.y, dest.y), max(src.y, dest.y) + 1)
        candidates = [Coord(x, y) for x in xs for y in ys
                      if Coord(x, y) not in (src, dest)]
        if not candidates:
            packet.group = RouteGroup.XY
            packet.intermediate = None
            packet.phase = 1
            return
        packet.intermediate = rng.choice(candidates)
        packet.group = RouteGroup.YX       # phase-one VC
        packet.phase = 0

    def next_port(self, coord: Coord, packet: Packet) -> Direction:
        if packet.phase == 0:
            if coord == packet.intermediate:
                packet.phase = 1
                packet.group = RouteGroup.XY
            else:
                return self._dor_step(coord, packet.intermediate, "xy")
        return self._dor_step(coord, packet.dest, "xy")


def minimal_hops(src: Coord, dest: Coord) -> int:
    """Minimum hop count (router-to-router channel traversals)."""
    return src.manhattan(dest)
