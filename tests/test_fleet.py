"""Fleet packing, run_tasks integration and failure attribution
(DESIGN.md §18).

The bit-identity of the fleet *core* against the other cycle-core
backends is pinned in ``test_stepper_equivalence.py``; this module pins
the harness around it: which tasks the planner may pack together, the
``fleet=``/``REPRO_FLEET`` resolution contract, per-member progress
reporting, and how a fleet failure is attributed back to the guilty
member task.
"""

import dataclasses
import pickle

import pytest

from repro.core.builder import design_by_name
from repro.noc.fleet import FleetRunner
from repro.noc.traffic import UniformManyToFew
from repro.parallel import (FLEET_LOCKSTEP_MAX_RATE, FleetMemberFailure,
                            SimTask, TaskError, _open_loop_runner,
                            _plan_units, derive_seed, resolve_fleet,
                            run_tasks)
from repro.system.config import scaled_config
from repro.telemetry import TelemetrySpec

WARMUP, MEASURE = 60, 150


def _task(rate, seed, design_name="TB-DOR", warmup=WARMUP, measure=MEASURE,
          config=None, telemetry=None, kind="openloop", label=None):
    design = design_by_name(design_name)
    return SimTask(kind=kind,
                   label=label or f"{design_name}-r{rate:g}-s{seed}",
                   seed=derive_seed(seed, "fleet-test", design_name, rate),
                   warmup=warmup, measure=measure, design=design,
                   config=config, pattern_factory=UniformManyToFew,
                   pattern_name="uniform", rate=rate, telemetry=telemetry)


# -- planning --------------------------------------------------------------

def test_plan_units_packing_rules():
    """Only same-shape, same-window, telemetry-free open-loop tasks at
    rates under the lockstep ceiling are fleeted; everything else runs
    solo (batched for fast open-loop points, default backend otherwise).
    """
    low = FLEET_LOCKSTEP_MAX_RATE / 2
    tasks = [
        _task(low, 1),                                     # 0: fleetable
        _task(low, 2),                                     # 1: fleetable
        _task(low, 3, design_name="Double-CP-CR"),         # 2: same group
        _task(0.35, 4),                                    # 3: too hot
        _task(low, 5, warmup=WARMUP + 1),                  # 4: window differs
        _task(low, 6, config=scaled_config(91, 9, 10, 10)),  # 5: other mesh
        _task(low, 7, telemetry=TelemetrySpec(trace=True)),  # 6: telemetry
        SimTask(kind="closed", label="closed", seed=1,     # 7: closed loop
                warmup=WARMUP, measure=MEASURE,
                design=design_by_name("TB-DOR")),
    ]
    units = dict()
    for members, backend in _plan_units(tasks, range(len(tasks)), fleet=4):
        units[members] = backend
    assert units[(0, 1, 2)] is None          # one fleet of the compatibles
    assert units[(3,)] == "batched"          # hot point: solo batched
    assert units[(4,)] == "batched"          # singleton group: solo batched
    assert units[(5,)] == "batched"
    assert units[(6,)] is None               # telemetry: plain solo
    assert units[(7,)] is None               # closed loop: plain solo
    # Units come back ordered by first member index.
    ordered = list(_plan_units(tasks, range(len(tasks)), fleet=4))
    assert [u[0][0] for u in ordered] == sorted(u[0][0] for u in ordered)


def test_plan_units_chunks_to_fleet_size():
    tasks = [_task(0.02, s) for s in range(5)]
    units = _plan_units(tasks, range(5), fleet=2)
    assert [m for m, _ in units] == [(0, 1), (2, 3), (4,)]
    assert units[-1][1] == "batched"         # leftover singleton: solo


def test_plan_units_disabled():
    """``fleet=1`` plans every pending task as a plain solo unit."""
    tasks = [_task(0.02, s) for s in range(3)]
    assert _plan_units(tasks, [0, 2], fleet=1) == [((0,), None),
                                                  ((2,), None)]


# -- resolution ------------------------------------------------------------

def test_resolve_fleet(monkeypatch):
    monkeypatch.delenv("REPRO_FLEET", raising=False)
    monkeypatch.delenv("REPRO_REFERENCE_STEPPER", raising=False)
    assert resolve_fleet() == 1
    assert resolve_fleet(4) == 4
    monkeypatch.setenv("REPRO_FLEET", "6")
    assert resolve_fleet() == 6
    assert resolve_fleet(2) == 2             # explicit beats the env
    monkeypatch.setenv("REPRO_FLEET", "zero")
    with pytest.raises(ValueError):
        resolve_fleet()
    with pytest.raises(ValueError):
        resolve_fleet(0)


def test_resolve_fleet_reference_override(monkeypatch):
    """``REPRO_REFERENCE_STEPPER=1`` disables fleeting entirely: fleets
    need the batched core, and the reference escape hatch must win over
    every other backend request."""
    monkeypatch.setenv("REPRO_REFERENCE_STEPPER", "1")
    monkeypatch.setenv("REPRO_FLEET", "8")
    assert resolve_fleet() == 1
    assert resolve_fleet(8) == 1


# -- run_tasks integration -------------------------------------------------

def _mixed_tasks():
    return ([_task(0.02, s) for s in (1, 2, 3)]
            + [_task(0.05, 4, design_name="Double-CP-CR")]
            + [_task(0.35, 5)])


def test_run_tasks_fleet_bit_identical_serial():
    tasks = _mixed_tasks()
    solo = run_tasks(tasks, jobs=1, fleet=1)
    fleet = run_tasks(tasks, jobs=1, fleet=3)
    assert [p["result"] for p in fleet] == [p["result"] for p in solo]


def test_run_tasks_fleet_bit_identical_pool():
    tasks = _mixed_tasks()
    solo = run_tasks(tasks, jobs=1, fleet=1)
    fleet = run_tasks(tasks, jobs=2, fleet=2)
    assert [p["result"] for p in fleet] == [p["result"] for p in solo]


def test_run_tasks_fleet_env(monkeypatch):
    """``REPRO_FLEET`` alone turns fleeting on, with identical results."""
    tasks = [_task(0.02, s) for s in (1, 2)]
    monkeypatch.delenv("REPRO_FLEET", raising=False)
    solo = run_tasks(tasks, jobs=1)
    monkeypatch.setenv("REPRO_FLEET", "2")
    assert [p["result"] for p in run_tasks(tasks, jobs=1)] == \
        [p["result"] for p in solo]


def test_task_report_fleet_fields():
    """Fleet members report their unit position; solo tasks report the
    defaults.  The serve layer forwards ``dataclasses.asdict`` of these
    reports, so live progress shows members individually."""
    tasks = _mixed_tasks()
    reports = []
    run_tasks(tasks, jobs=1, fleet=4, progress=reports.append)
    by_index = {r.index: r for r in reports}
    assert [(by_index[i].fleet_size, by_index[i].fleet_index)
            for i in range(3)] == [(4, 0), (4, 1), (4, 2)]
    assert (by_index[4].fleet_size, by_index[4].fleet_index) == (1, 0)
    record = dataclasses.asdict(by_index[0])
    assert record["fleet_size"] == 4 and record["fleet_index"] == 0


# -- failure attribution ---------------------------------------------------

class _BoomPattern:
    """Picklable pattern whose first pick raises — a deterministic member
    failure for the attribution tests."""

    def __init__(self, mc_nodes):
        pass

    def pick(self, src, rng):
        raise RuntimeError("kaboom")


def _bad_fleet_tasks():
    tasks = [_task(0.02, s) for s in (1, 2)]
    tasks.append(SimTask(kind="openloop", label="bad-member", seed=5,
                         warmup=WARMUP, measure=MEASURE,
                         design=design_by_name("TB-DOR"),
                         pattern_factory=_BoomPattern,
                         pattern_name="boom", rate=0.02))
    tasks.append(_task(0.02, 6))
    return tasks


@pytest.mark.parametrize("jobs", (1, 2))
def test_fleet_failure_attributed_to_member(jobs):
    """A member whose simulation raises inside the lockstep loop is named
    by label and global task index, with :class:`FleetMemberFailure` in
    the chain — not blamed on the whole fleet."""
    with pytest.raises(TaskError) as info:
        run_tasks(_bad_fleet_tasks(), jobs=jobs, fleet=4)
    assert info.value.index == 2
    assert info.value.label == "bad-member"
    assert "FleetMemberFailure" in str(info.value)


def test_fleet_member_failure_pickles():
    err = FleetMemberFailure(1, "some-task", "RuntimeError: kaboom")
    clone = pickle.loads(pickle.dumps(err))
    assert (clone.member, clone.label, str(clone)) == \
        (1, "some-task", "RuntimeError: kaboom")


# -- FleetRunner validation ------------------------------------------------

def test_fleet_runner_rejects_bad_members():
    with pytest.raises(ValueError, match="empty"):
        FleetRunner([])
    used = _open_loop_runner(_task(0.02, 1))
    used.run(warmup=5, measure=5)
    with pytest.raises(ValueError, match="freshly built"):
        FleetRunner([used])

    class FakeTelemetry:
        profiler = None
    fresh = _open_loop_runner(_task(0.02, 2))
    fresh.telemetry = FakeTelemetry()
    with pytest.raises(ValueError, match="telemetry"):
        FleetRunner([fresh])
