"""Figure 2: the throughput-effective design space.

For each design point the paper plots average application throughput
(harmonic-mean IPC) against inverse chip area; IPC/mm² is the figure of
merit.  Paper points: Balanced Mesh (baseline), 2x BW, Thr.Eff., Ideal NoC.
Headline: Thr.Eff. improves IPC/mm² by 25.4 % over the balanced mesh."""

from common import bench_profiles, fmt_pct, once, report, run_design, \
    run_perfect
from repro.area.chip import compute_area_mm2, design_noc_area
from repro.core.builder import BASELINE, DOUBLE_BW, THROUGHPUT_EFFECTIVE
from repro.system.metrics import harmonic_mean


def _experiment():
    profiles = bench_profiles()
    points = []
    for design in (BASELINE, DOUBLE_BW, THROUGHPUT_EFFECTIVE):
        ipc = harmonic_mean([run_design(p, design).ipc for p in profiles])
        area = design_noc_area(design).total_chip
        points.append((design.name, ipc, area))
    ideal_ipc = harmonic_mean([run_perfect(p).ipc for p in profiles])
    points.append(("Ideal-NoC", ideal_ipc, compute_area_mm2()))

    base_ipc, base_area = points[0][1], points[0][2]
    rows = [f"{'design':22s} {'HM IPC':>8s} {'area mm2':>9s} "
            f"{'1/area':>9s} {'IPC/mm2':>8s} {'vs base':>8s}"]
    for name, ipc, area in points:
        te = ipc / area
        gain = te / (base_ipc / base_area) - 1
        rows.append(f"{name:22s} {ipc:8.2f} {area:9.1f} {1/area:9.6f} "
                    f"{te:8.4f} {fmt_pct(gain)}")
    rows.append("(paper: Thr.Eff. +25.4% IPC/mm2 over the balanced mesh; "
                "2xBW more IPC but worse IPC/mm2)")
    return rows


def test_fig02_design_space(benchmark):
    report("fig02_design_space", once(benchmark, _experiment))
