"""Canonical explorations: ``figure2``, ``smoke``, ``extended``, ``power``.

* ``figure2`` replays the paper's Figure 2 walk exactly: the seven named
  design points, no screening or halving, full-window closed-loop runs on
  the representative nine-benchmark mix with the fixed seed the original
  ``examples/design_space_exploration.py`` used — so its throughput-
  effectiveness ordering is number-for-number the one the example printed.
* ``smoke`` is a tiny constrained space (placement × routing × VCs ×
  buffer depth) sized for CI: the full ladder — open-loop screen, one
  halving round, confirm — in well under a minute serial.
* ``extended`` sweeps beyond the paper's points (routing algorithms,
  channel widths, double networks, MC injection ports): hundreds of raw
  points, roughly a third rejected by the constraint pass up front.  Run
  it with ``--jobs`` and a warm cache; it is never run implicitly.
* ``power`` is ``figure2`` with the full 65/45/32/22 nm technology sweep:
  the *same* simulations (same tasks, same seeds, shared cache entries),
  so its (IPC, mm²) numbers are bit-identical to ``figure2``, plus an
  analytic (IPC, mm², W) frontier and per-node power reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..power.tech import DEFAULT_NODES

from ..core.builder import (BASELINE, CP_CR, CP_DOR, DOUBLE_BW,
                            DOUBLE_CP_CR, ONE_CYCLE, THROUGHPUT_EFFECTIVE,
                            _did_you_mean)
from ..workloads.profiles import PROFILES, QUICK_MIX
from .engine import ExplorationSpec, FidelityLadder
from .space import Axis, SearchSpace

#: The paper's seven Figure 2 design points, in the head example's order.
FIGURE2_DESIGNS = (BASELINE, ONE_CYCLE, DOUBLE_BW, CP_DOR, CP_CR,
                   DOUBLE_CP_CR, THROUGHPUT_EFFECTIVE)

FULL_MIX: Tuple[str, ...] = tuple(p.abbr for p in PROFILES)

#: Small per-class mix for halving rounds (one LL, one LH, one HH point).
ROUND_MIX: Tuple[str, ...] = ("RD", "HSP", "BLK")


def figure2() -> ExplorationSpec:
    """The paper's seven named designs, evaluated exactly as the original
    example did: one fixed seed, full 400/1000-cycle windows, the
    representative nine-benchmark mix, no screening or halving."""
    return ExplorationSpec(
        name="figure2",
        space=SearchSpace(name="figure2", designs=FIGURE2_DESIGNS),
        mix=QUICK_MIX,
        round_mix=ROUND_MIX,
        ladder=FidelityLadder(screen=False, halving_rounds=0,
                              confirm_warmup=400, confirm_measure=1000,
                              min_survivors=len(FIGURE2_DESIGNS)),
        seed=11,
        seed_policy="fixed",
    )


def smoke() -> ExplorationSpec:
    """Tiny constrained exploration for CI and the DSE benchmark: 17 raw
    points (16 axis combinations plus the named CP-CR-4VC), half of them
    rejected up front by ``cr-requires-half-routers``."""
    space = SearchSpace(
        name="smoke",
        axes=(
            Axis("placement", ("top_bottom", "checkerboard")),
            Axis("routing", ("dor", "cr")),
            Axis("vcs_per_class", (1, 2)),
            Axis("vc_buffer_depth", (4, 8)),
        ),
        designs=(CP_CR,),
    )
    return ExplorationSpec(
        name="smoke",
        space=space,
        mix=ROUND_MIX,
        round_mix=ROUND_MIX,
        ladder=FidelityLadder(screen=True, screen_rate=0.35,
                              screen_warmup=300, screen_measure=600,
                              screen_keep=0.5, halving_rounds=1,
                              round_warmup=100, round_measure=200,
                              confirm_warmup=200, confirm_measure=400,
                              min_survivors=3),
        seed=11,
        seed_policy="derived",
    )


def extended() -> ExplorationSpec:
    """The space the paper argued about, beyond its seven points: 512 raw
    axis combinations (placement × routing × half-routers × width × VCs ×
    buffer depth × double network × MC injection ports), about a third
    legal after the constraint pass.  Full ladder with two halving
    rounds; budget minutes, not seconds, and use ``--jobs``."""
    space = SearchSpace(
        name="extended",
        axes=(
            Axis("placement", ("top_bottom", "checkerboard")),
            Axis("routing", ("dor", "dor_yx", "cr", "romm")),
            Axis("half_routers", (False, True)),
            Axis("channel_width", (16, 32)),
            Axis("vcs_per_class", (1, 2)),
            Axis("vc_buffer_depth", (4, 8)),
            Axis("double_network", (False, True)),
            Axis("mc_inject_ports", (1, 2)),
        ),
    )
    return ExplorationSpec(
        name="extended",
        space=space,
        mix=QUICK_MIX,
        round_mix=ROUND_MIX,
        ladder=FidelityLadder(screen=True, screen_rate=0.35,
                              screen_warmup=300, screen_measure=600,
                              screen_keep=0.4, halving_rounds=2,
                              round_warmup=100, round_measure=200,
                              confirm_warmup=400, confirm_measure=1000,
                              min_survivors=4),
        seed=11,
        seed_policy="derived",
    )


def power() -> ExplorationSpec:
    """``figure2`` across the technology table: identical simulation
    tasks (so cache entries and every (IPC, mm²) number are shared
    bit-for-bit with ``figure2``) priced at all of 65/45/32/22 nm, with
    the (IPC, mm², W) frontier at the 65 nm base node."""
    return dataclasses.replace(figure2(), name="power",
                               tech_nodes=DEFAULT_NODES)


PRESETS: Dict[str, object] = {
    "figure2": figure2,
    "smoke": smoke,
    "extended": extended,
    "power": power,
}


def preset(name: str) -> ExplorationSpec:
    """Look up a preset by name; unknown names get a did-you-mean hint."""
    try:
        factory = PRESETS[name]
    except KeyError:
        hint = _did_you_mean(name, PRESETS)
        raise KeyError(f"unknown preset {name!r};{hint} known: "
                       f"{sorted(PRESETS)}") from None
    return factory()
