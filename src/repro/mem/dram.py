"""GDDR3 DRAM channel with FR-FCFS scheduling.

Models one memory channel per MC node with the paper's GDDR3 timing
(Table II, in memory-clock cycles): tCL=9, tRP=13, tRC=34, tRAS=21,
tRCD=12, tRRD=8; an out-of-order FR-FCFS scheduler over a 32-entry request
queue; banked row buffers; and a data bus moving 16 B per memory clock
(a 64 B access occupies the bus for 4 cycles).

DRAM *efficiency* — the fraction of time the data pins are busy while
requests are pending — is tracked because the paper uses it to explain the
multi-ejection-port speedups of Figure 19 (e.g. FWT going from 57 % to
65 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(frozen=True)
class DramTiming:
    """GDDR3 timing parameters in memory-clock cycles (Table II)."""

    tCL: int = 9
    tRP: int = 13
    tRC: int = 34
    tRAS: int = 21
    tRCD: int = 12
    tRRD: int = 8
    #: Data-bus bytes per memory clock (Section III-A footnote: 16 B/mclk).
    bytes_per_cycle: int = 16
    num_banks: int = 8
    row_bytes: int = 2048
    queue_capacity: int = 32

    def burst_cycles(self, size_bytes: int) -> int:
        return max(1, -(-size_bytes // self.bytes_per_cycle))


@dataclass
class DramRequest:
    addr: int
    is_write: bool
    size_bytes: int = 64
    arrival: int = 0
    payload: object = None
    # Filled in by the channel.
    bank: int = -1
    row: int = -1
    issue_time: int = -1
    complete_time: int = -1
    row_hit: bool = False


class _Bank:
    __slots__ = ("open_row", "busy_until", "last_activate")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.busy_until = -1
        self.last_activate = -(1 << 30)


class GddrChannel:
    """One GDDR3 channel; stepped once per memory clock."""

    def __init__(self, timing: DramTiming = DramTiming(),
                 on_complete: Optional[Callable[[DramRequest, int],
                                                None]] = None) -> None:
        self.timing = timing
        self.on_complete = on_complete
        self._queue: List[DramRequest] = []
        self._in_flight: List[DramRequest] = []
        self._banks = [_Bank() for _ in range(timing.num_banks)]
        self._bus_free_at = 0
        self._last_activate_any = -(1 << 30)
        # Statistics.
        self.requests_serviced = 0
        self.row_hits = 0
        self.row_misses = 0
        self.data_busy_cycles = 0
        self.pending_cycles = 0
        self.now = 0

    # -- interface used by the memory controller -----------------------------

    def can_accept(self) -> bool:
        return len(self._queue) < self.timing.queue_capacity

    @property
    def queue_occupancy(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return bool(self._queue or self._in_flight)

    def outstanding_requests(self) -> List[DramRequest]:
        """Every request not yet completed (queued or issued) — read-only
        introspection for the system invariant checker."""
        return list(self._queue) + list(self._in_flight)

    def enqueue(self, request: DramRequest, now: int) -> None:
        if not self.can_accept():
            raise RuntimeError("DRAM request queue full; check can_accept")
        request.arrival = now
        request.bank, request.row = self.map_address(request.addr)
        self._queue.append(request)

    def map_address(self, addr: int) -> tuple:
        """Bank and row of an address local to this channel."""
        t = self.timing
        row_id = addr // t.row_bytes
        return row_id % t.num_banks, row_id // t.num_banks

    # -- timing --------------------------------------------------------------

    def step(self, now: int) -> None:
        """Advance to memory-clock cycle ``now``."""
        self.now = now
        if self.busy:
            self.pending_cycles += 1
            if self._bus_free_at > now:
                self.data_busy_cycles += 1
        self._complete(now)
        self._issue(now)

    def _complete(self, now: int) -> None:
        if not self._in_flight:
            return
        still = []
        for request in self._in_flight:
            if request.complete_time <= now:
                self.requests_serviced += 1
                if self.on_complete is not None:
                    self.on_complete(request, now)
            else:
                still.append(request)
        self._in_flight = still

    def _issue(self, now: int) -> None:
        if not self._queue:
            return
        t = self.timing
        # FR-FCFS: oldest ready row hit first, otherwise the oldest request
        # whose bank can start a new row cycle.
        chosen = None
        for request in self._queue:
            bank = self._banks[request.bank]
            if bank.busy_until > now:
                continue
            if bank.open_row == request.row:
                chosen = request
                break
        if chosen is None:
            for request in self._queue:
                bank = self._banks[request.bank]
                if bank.busy_until > now:
                    continue
                chosen = request
                break
        if chosen is None:
            return

        bank = self._banks[chosen.bank]
        cas_time = now
        if bank.open_row == chosen.row:
            chosen.row_hit = True
            self.row_hits += 1
        else:
            self.row_misses += 1
            precharge = now
            if bank.open_row is not None:
                # tRAS: the row must have been open long enough to close.
                precharge = max(precharge, bank.last_activate + t.tRAS)
                activate = precharge + t.tRP
            else:
                activate = precharge
            # Activate-to-activate constraints delay the command rather
            # than block the scheduler: tRC within the bank, tRRD across
            # banks (commands to other banks may proceed meanwhile).
            activate = max(activate,
                           bank.last_activate + t.tRC,
                           self._last_activate_any + t.tRRD)
            bank.last_activate = activate
            self._last_activate_any = max(self._last_activate_any, activate)
            bank.open_row = chosen.row
            cas_time = activate + t.tRCD

        burst = t.burst_cycles(chosen.size_bytes)
        data_start = max(cas_time + t.tCL, self._bus_free_at)
        data_end = data_start + burst
        self._bus_free_at = data_end
        bank.busy_until = data_end
        chosen.issue_time = now
        chosen.complete_time = data_end
        self._queue.remove(chosen)
        self._in_flight.append(chosen)

    # -- stats ---------------------------------------------------------------

    def efficiency(self) -> float:
        """Data-pin utilisation while requests are pending (Section V-E)."""
        if not self.pending_cycles:
            return 0.0
        return self.data_busy_cycles / self.pending_cycles

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
