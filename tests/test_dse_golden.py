"""Exploration determinism goldens.

The engine's contract: an exploration's payload is bit-identical across
``jobs`` counts and cache states (cold or warm), and the ``figure2``
preset reproduces the throughput-effectiveness ordering the original
``examples/design_space_exploration.py`` printed at full windows.

The cross-jobs/cross-cache matrix runs the real figure2 space at small
windows to stay fast; the full-window ordering test runs the actual
preset (the expensive honest check — use a warm cache to make re-runs
free)."""

import dataclasses
import json

import pytest

from repro.dse import (CSV_COLUMNS, ExplorationResult, FidelityLadder,
                       explore, figure2)
from repro.parallel import ReportCollector

#: The head example's Figure 2 ordering, best throughput-effectiveness
#: first — the acceptance golden for `repro explore --preset figure2`.
FIGURE2_ORDERING = [
    "Throughput-Effective",
    "Double-CP-CR",
    "CP-CR-4VC",
    "CP-DOR",
    "2x-TB-DOR",
    "TB-DOR-1cyc",
    "TB-DOR",
]


def tiny_figure2():
    """The figure2 space and seed policy at test-sized windows/mix."""
    spec = figure2()
    return dataclasses.replace(
        spec, mix=("RD", "HSP", "BLK"),
        ladder=FidelityLadder(screen=False, halving_rounds=0,
                              confirm_warmup=60, confirm_measure=120,
                              min_survivors=7))


class TestBitIdenticalAcrossJobsAndCache:
    def test_jobs_and_cache_matrix(self, tmp_path):
        spec = tiny_figure2()
        runs = {}
        stats = {}
        # cache A: serial cold, then parallel warm;
        # cache B: parallel cold, then serial warm.
        for key, jobs, cache in (("serial-cold", 1, tmp_path / "a"),
                                 ("parallel-warm", 4, tmp_path / "a"),
                                 ("parallel-cold", 4, tmp_path / "b"),
                                 ("serial-warm", 1, tmp_path / "b")):
            collector = ReportCollector()
            result = explore(spec, jobs=jobs, cache=str(cache),
                             progress=collector)
            runs[key] = result.to_json()
            stats[key] = collector
        # the cache states are what the labels claim
        assert stats["serial-cold"].cached == 0
        assert stats["parallel-cold"].cached == 0
        assert stats["parallel-warm"].executed == 0
        assert stats["serial-warm"].executed == 0
        # ... and every payload is bit-identical
        golden = runs["serial-cold"]
        for key, payload in runs.items():
            assert payload == golden, f"{key} diverged from serial-cold"

    def test_host_stats_excluded_from_payload(self, tmp_path):
        result = explore(tiny_figure2(), jobs=1,
                         cache=str(tmp_path / "cache"))
        assert result.host is not None
        assert result.host["tasks"] > 0
        assert "host" not in result.to_json()

    def test_payload_round_trips_and_artifacts_pin_schema(self, tmp_path):
        result = explore(tiny_figure2(), jobs=1,
                         cache=str(tmp_path / "cache"))
        clone = ExplorationResult.from_json(result.to_json())
        assert clone.to_json() == result.to_json()
        assert clone == dataclasses.replace(result, host=None)

        written = result.write_artifacts(tmp_path / "out")
        assert sorted(written) == ["candidates.csv", "exploration.json",
                                   "frontier.csv", "host.json"]
        payload = json.loads(written["exploration.json"].read_text())
        assert payload["schema"] == 1
        assert ExplorationResult.from_json(payload).to_json() \
            == result.to_json()
        header = written["candidates.csv"].read_text().splitlines()[0]
        assert header == ",".join(CSV_COLUMNS)
        body = written["candidates.csv"].read_text().splitlines()[1:]
        assert len(body) == len(result.candidates)
        frontier_rows = written["frontier.csv"].read_text().splitlines()[1:]
        assert len(frontier_rows) == len(result.frontier)

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            ExplorationResult.from_json({"schema": 99})


class TestFigure2FullOrdering:
    def test_reproduces_head_example_ordering(self):
        # Full 400/1000-cycle windows over the 9-benchmark mix — the
        # honest acceptance check (~90 s cold; free on a warm cache).
        result = explore(figure2(), jobs=1, cache=True)
        assert result.ranking == FIGURE2_ORDERING
        assert result.rejected == []
        for c in result.candidates:
            assert c.fidelity == "confirm"
            assert c.hm_ipc is not None and c.hm_ipc > 0
            assert c.throughput_effectiveness \
                == pytest.approx(c.hm_ipc / c.chip_area_mm2)
        # Figure 2's frontier: the big-IPC point and the two
        # small-area/high-IPC points survive; plain meshes are dominated
        assert "Throughput-Effective" in result.frontier
        assert "TB-DOR" not in result.frontier
