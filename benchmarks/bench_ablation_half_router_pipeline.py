"""Ablation: half-router pipeline depth.

The paper models half-routers with a 3-stage pipeline and reports that one
stage more or less made a negligible difference (Section V-A).  This bench
verifies that on our reproduction."""

import dataclasses

from common import bench_profiles, fmt_pct, once, report, run_design
from repro.core.builder import CP_CR
from repro.system.metrics import harmonic_mean

CR_4STAGE = dataclasses.replace(CP_CR, name="CP-CR-half4",
                                half_router_latency=4)
CR_2STAGE = dataclasses.replace(CP_CR, name="CP-CR-half2",
                                half_router_latency=2)


def _experiment():
    rows = []
    base, slow, fast = {}, {}, {}
    for prof in bench_profiles():
        base[prof.abbr] = run_design(prof, CP_CR).ipc
        slow[prof.abbr] = run_design(prof, CR_4STAGE).ipc
        fast[prof.abbr] = run_design(prof, CR_2STAGE).ipc
    hm_base = harmonic_mean(list(base.values()))
    hm_slow = harmonic_mean(list(slow.values())) / hm_base - 1
    hm_fast = harmonic_mean(list(fast.values())) / hm_base - 1
    rows.append(f"HM vs 3-stage half-routers: 4-stage {fmt_pct(hm_slow)}, "
                f"2-stage {fmt_pct(hm_fast)}")
    rows.append("(paper: performance impact of one less stage was "
                "negligible)")
    assert abs(hm_slow) < 0.05 and abs(hm_fast) < 0.05
    return rows


def test_ablation_half_router_pipeline(benchmark):
    report("ablation_half_router_pipeline", once(benchmark, _experiment))
