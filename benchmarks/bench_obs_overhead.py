"""Observability overhead: the instrumented warm path vs the bare one.

Boots two :class:`repro.serve.ThreadedServer` instances over one shared
SHA-keyed result cache — one with observability enabled (metrics
registry, spans, structured logs), one with ``observability=False`` —
and submits the same pinned sweep to both, interleaved at
single-submission granularity, checking every warm payload is
bit-identical to the cold run and across modes.

Enforcing the ``< 2%`` overhead contract from DESIGN.md needs care: the
per-hit instrumentation cost is ~10–20 µs while socket round-trip
jitter on a shared CI box is easily ±100 µs, so *differencing* two
end-to-end latency distributions cannot resolve it — min-of-N, p50 and
trimmed means all flap by more than the quantity under test.  Instead
the enforced number is deterministic: the benchmark times the exact
gated instruction sequence a warm hit executes (span creation + marks,
counter incs, histogram observes — mirroring the sites in
``repro.serve.server``) in a tight loop, and divides by the measured
warm-hit p50.  The end-to-end distributions for both modes are still
recorded in the JSON for eyeballing; they are just not the gate.

Writes ``benchmarks/results/BENCH_obs.json``.

Environment knobs (see ``common``): ``REPRO_BENCH_WARMUP`` /
``REPRO_BENCH_MEASURE`` shape the simulated window,
``REPRO_BENCH_OBS_REPEATS`` the warm samples per mode (default 100),
``REPRO_BENCH_OBS_FLOOR_PCT`` the allowed overhead (default 2.0).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from common import MEASURE, RESULTS_DIR, WARMUP, once, report
from repro.obs import JobSpan, MetricsRegistry
from repro.serve import ServeClient, ServerConfig, ThreadedServer

BENCH_SCHEMA = 2
REPEATS = int(os.environ.get("REPRO_BENCH_OBS_REPEATS", "100"))
FLOOR_PCT = float(os.environ.get("REPRO_BENCH_OBS_FLOOR_PCT", "2.0"))
COST_LOOPS = 20000

SWEEP_JOB = {"kind": "sweep", "design": "CP-DOR",
             "rates": [0.005, 0.02, 0.04], "warmup": WARMUP,
             "measure": MEASURE}


def _p50(values):
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


def _instrumentation_cost_us():
    """Microseconds of gated work one warm hit adds with obs on.

    Replays the exact per-job instrumentation sequence from
    ``repro.serve.server`` (submit -> worker -> done) against a live
    registry; everything else on the serve path runs identically in
    both modes.  Min of 3 rounds, so a GC pause or scheduler
    preemption cannot inflate the enforced number.
    """
    reg = MetricsRegistry()
    jobs_submitted = reg.counter("repro_jobs_submitted_total", "B.",
                                 labels=("kind", "client"))
    jobs_completed = reg.counter("repro_jobs_completed_total", "B.",
                                 labels=("kind", "client"))
    queue_wait = reg.histogram("repro_queue_wait_seconds", "B.",
                               labels=("priority",))
    job_wall = reg.histogram("repro_job_wall_seconds", "B.",
                             labels=("kind",))
    worker_busy = reg.counter("repro_worker_busy_seconds_total", "B.")

    def one_job():
        span = JobSpan()
        span.mark("validate")
        jobs_submitted.inc(kind="sweep", client="bench")
        span.mark("enqueue")
        span.mark("dequeue")
        queue_wait.observe(span.duration_ns("dequeue") / 1e9, priority=0)
        span.mark("execute")
        jobs_completed.inc(kind="sweep", client="bench")
        job_wall.observe(0.001, kind="sweep")
        worker_busy.inc(0.001)
        span.mark("respond")

    rounds = []
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(COST_LOOPS):
            one_job()
        rounds.append((time.perf_counter() - start) / COST_LOOPS * 1e6)
    return min(rounds)


def _timed_submit(client, reference):
    start = time.perf_counter()
    warm = client.submit(SWEEP_JOB)
    elapsed = time.perf_counter() - start
    if warm != reference:
        raise AssertionError("warm result diverged from cold payload")
    return elapsed


def _experiment():
    with tempfile.TemporaryDirectory(prefix="obs-bench-cache-") as cache:
        on_config = ServerConfig(port=0, cache=cache, observability=True)
        off_config = ServerConfig(port=0, cache=cache, observability=False)
        with ThreadedServer(on_config) as on_server, \
                ThreadedServer(off_config) as off_server:
            with ServeClient(*on_server.address,
                             client_id="bench") as on_client, \
                    ServeClient(*off_server.address,
                                client_id="bench") as off_client:
                # Cold run once (obs on); both servers share the cache,
                # so every later submission is a warm hit.
                cold = on_client.submit(SWEEP_JOB)
                if off_client.submit(SWEEP_JOB) != cold:
                    raise AssertionError(
                        "obs-off payload differs from obs-on payload")

                on_lat, off_lat = [], []
                for i in range(REPEATS):
                    # Alternate which mode goes first per submission so
                    # drift cannot systematically favor one.
                    if i % 2 == 0:
                        on_lat.append(_timed_submit(on_client, cold))
                        off_lat.append(_timed_submit(off_client, cold))
                    else:
                        off_lat.append(_timed_submit(off_client, cold))
                        on_lat.append(_timed_submit(on_client, cold))

                scrape = on_client.metrics(format="json")["metrics"]

    cost_us = _instrumentation_cost_us()
    on_p50_ms = round(_p50(on_lat) * 1e3, 4)
    off_p50_ms = round(_p50(off_lat) * 1e3, 4)
    overhead_pct = round(cost_us / (off_p50_ms * 1e3) * 100.0, 3)

    payload = {
        "schema": BENCH_SCHEMA,
        "job": SWEEP_JOB,
        "repeats": REPEATS,
        "floor_pct": FLOOR_PCT,
        "instrumentation_cost_us": round(cost_us, 3),
        "warm_hit_p50_ms": {"obs_on": on_p50_ms, "obs_off": off_p50_ms},
        "warm_hit_min_ms": {"obs_on": round(min(on_lat) * 1e3, 4),
                            "obs_off": round(min(off_lat) * 1e3, 4)},
        "overhead_pct": overhead_pct,
        "bit_identical": True,
        "jobs_completed": scrape["repro_jobs_completed_total"]["series"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    if overhead_pct >= FLOOR_PCT:
        raise AssertionError(
            f"observability adds {cost_us:.1f} us to a "
            f"{off_p50_ms:.3f} ms warm hit = {overhead_pct:.2f}%, "
            f"over the {FLOOR_PCT}% floor")

    return [
        f"instrumentation cost   {cost_us:8.2f} us per job "
        f"(spans + counters + histograms, measured directly)",
        f"warm hit p50 (obs on)  {on_p50_ms:8.3f} ms   "
        f"(obs off) {off_p50_ms:8.3f} ms   "
        f"[{REPEATS} interleaved submissions each]",
        f"observability overhead {overhead_pct:+8.2f} % of a warm hit "
        f"(floor {FLOOR_PCT}%)",
        "payloads bit-identical across obs on / obs off / cold",
        "(distributions in results/BENCH_obs.json)",
    ]


def test_obs_overhead(benchmark):
    report("obs_overhead", once(benchmark, _experiment))
