"""Figure 9: scaling network bandwidth versus router latency.

Paper: doubling channel width (16B -> 32B) gives a 27 % HM speedup, while
replacing 4-cycle routers with aggressive 1-cycle routers gives only 2.3 %."""

from common import MEASURE, SEED, WARMUP, bench_profiles, fmt_pct, once, \
    report
from repro.core.builder import BASELINE, DOUBLE_BW, ONE_CYCLE
from repro.experiments import compare_designs


def _experiment():
    comp = compare_designs([BASELINE, DOUBLE_BW, ONE_CYCLE],
                           profiles=bench_profiles(),
                           warmup=WARMUP, measure=MEASURE, seed=SEED)
    bw = comp.speedups(DOUBLE_BW.name)
    cyc = comp.speedups(ONE_CYCLE.name)
    rows = [f"{abbr:4s} 2xBW={fmt_pct(bw[abbr])} "
            f"1-cycle={fmt_pct(cyc[abbr])}" for abbr in bw]
    rows.append(f"HM: 2x bandwidth {fmt_pct(comp.hm_speedup(DOUBLE_BW.name))} "
                f"(paper +27%), 1-cycle routers "
                f"{fmt_pct(comp.hm_speedup(ONE_CYCLE.name))} (paper +2.3%)")
    return rows


def test_fig09_bandwidth_vs_latency(benchmark):
    report("fig09_bandwidth_vs_latency", once(benchmark, _experiment))
