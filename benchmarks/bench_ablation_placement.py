"""Ablation: alternative checkerboard MC placements.

The paper picked its staggered placement as the best of several simulated
valid placements (Section V-B).  This ablation samples random valid
placements (all MCs on half-router tiles) and compares them with the
default, on the HH benchmarks where placement matters most."""

import dataclasses

from common import bench_profiles, fmt_pct, once, report, run_design
from repro.core.builder import CP_CR
from repro.core.placement import random_checkerboard_placements
from repro.noc.topology import Mesh
from repro.system.metrics import harmonic_mean

NUM_PLACEMENTS = 4


def _experiment():
    profiles = [p for p in bench_profiles() if p.expected_group == "HH"] \
        or bench_profiles()
    rows = []

    def hm_for(design):
        return harmonic_mean([run_design(p, design).ipc for p in profiles])

    default_hm = hm_for(CP_CR)
    rows.append(f"default staggered placement: HM IPC = {default_hm:.2f}")
    mesh = Mesh(6, 6)
    alternatives = []
    for i, mcs in enumerate(random_checkerboard_placements(
            mesh, 8, NUM_PLACEMENTS, seed=5)):
        design = dataclasses.replace(CP_CR, name=f"CP-CR-alt{i}",
                                     mc_coords=tuple(mcs))
        hm = hm_for(design)
        alternatives.append(hm)
        rows.append(f"placement {i} {sorted(mcs)}: HM IPC = {hm:.2f} "
                    f"({fmt_pct(hm/default_hm-1)})")
    best = max(alternatives + [default_hm])
    rows.append(f"default within {fmt_pct(default_hm/best-1)} of the best "
                "sampled placement (paper: default chosen as best of "
                "several simulated)")
    return rows


def test_ablation_placement(benchmark):
    report("ablation_placement", once(benchmark, _experiment))
