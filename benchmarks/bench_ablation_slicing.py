"""Ablation: dedicated versus balanced channel slicing.

Section IV-C describes a *dedicated* double network (one slice per traffic
class).  With read replies carrying ~8x the request bytes, dedicating one
half-width slice to replies halves the usable reply-path bandwidth; the
balanced variant (both slices carry both classes, packets split
round-robin) preserves it.  This ablation quantifies that difference —
it is why the named double designs default to balanced slicing (DESIGN.md)."""

from common import bench_profiles, fmt_pct, once, report, run_design
from repro.core.builder import CP_CR, DOUBLE_CP_CR, DOUBLE_CP_CR_DEDICATED
from repro.system.metrics import harmonic_mean
from repro.workloads.profiles import GROUPS


def _experiment():
    rows = []
    single, balanced, dedicated = {}, {}, {}
    profiles = bench_profiles()
    for prof in profiles:
        single[prof.abbr] = run_design(prof, CP_CR).ipc
        balanced[prof.abbr] = run_design(prof, DOUBLE_CP_CR).ipc
        dedicated[prof.abbr] = run_design(prof, DOUBLE_CP_CR_DEDICATED).ipc
        rows.append(
            f"{prof.abbr:4s} balanced={fmt_pct(balanced[prof.abbr]/single[prof.abbr]-1)} "
            f"dedicated={fmt_pct(dedicated[prof.abbr]/single[prof.abbr]-1)} "
            f"vs single 16B ({prof.expected_group})")
    hm_single = harmonic_mean(list(single.values()))
    rows.append(f"HM vs single: balanced "
                f"{fmt_pct(harmonic_mean(list(balanced.values()))/hm_single-1)}, "
                f"dedicated "
                f"{fmt_pct(harmonic_mean(list(dedicated.values()))/hm_single-1)}")
    hh = [p.abbr for p in profiles if p.expected_group == "HH"]
    if hh:
        hm_hh = harmonic_mean([single[a] for a in hh])
        rows.append(
            f"HM (HH only): balanced "
            f"{fmt_pct(harmonic_mean([balanced[a] for a in hh])/hm_hh-1)}, "
            f"dedicated "
            f"{fmt_pct(harmonic_mean([dedicated[a] for a in hh])/hm_hh-1)}")
    rows.append("(dedicated slicing throttles the byte-dominant reply "
                "class; balanced keeps Figure 18 ~neutral)")
    return rows


def test_ablation_slicing(benchmark):
    report("ablation_slicing", once(benchmark, _experiment))
