"""Runtime invariant checks of router micro-state under saturating load.

These tests drive the network hard and periodically audit every router:
credit counters never go negative or exceed the buffer depth, buffers never
exceed their depth, VC ownership is consistent with downstream routed
state, and body flits never appear at the head of an unrouted VC.
"""

import random

import pytest

from repro.core.builder import (BASELINE, CP_CR, THROUGHPUT_EFFECTIVE,
                                build, open_loop_variant)
from repro.noc.packet import read_reply, read_request
from repro.noc.topology import is_terminal_port


def audit(network) -> None:
    depth = network.params.vc_buffer_depth
    for coord, router in network.routers.items():
        for port_id, vcs in router.in_ports.items():
            for vc in vcs:
                assert len(vc.buffer) <= depth, (coord, port_id)
                if vc.buffer and not vc.buffer[0].is_head:
                    assert vc.out_port is not None, (coord, port_id)
        for port_id, out in router.out_ports.items():
            terminal = out.sink is not None
            for vc_idx, credits in enumerate(out.credits):
                if terminal:
                    assert credits >= 0
                else:
                    assert 0 <= credits <= depth, (coord, port_id, vc_idx)


def saturate(design, cycles=800, audit_every=40, seed=3):
    system = build(open_loop_variant(design), seed=seed)
    rng = random.Random(seed)
    for node in list(system.mesh.coords()):
        system.set_ejection_handler(node, lambda p, c: None)
    for _ in range(cycles):
        # Heavy request load plus replies from every MC each cycle.
        for core in rng.sample(system.compute_nodes, 8):
            system.try_inject(
                read_request(core, rng.choice(system.mc_nodes)),
                system.cycle)
        for mc in system.mc_nodes:
            system.try_inject(
                read_reply(mc, rng.choice(system.compute_nodes)),
                system.cycle)
        system.step()
        if system.cycle % audit_every == 0:
            for net in system.networks:
                audit(net)
    return system


@pytest.mark.parametrize("design",
                         [BASELINE, CP_CR, THROUGHPUT_EFFECTIVE],
                         ids=lambda d: d.name)
def test_invariants_hold_under_saturation(design):
    system = saturate(design)
    # And the network still drains afterwards (no leaked credits/locks).
    system.run_until_idle(max_cycles=200_000)
    for net in system.networks:
        audit(net)
        for router in net.routers.values():
            assert router.occupancy == 0
            for out in router.out_ports.values():
                assert all(owner is None for owner in out.owner)


def test_credits_restored_after_drain():
    system = saturate(BASELINE, cycles=300)
    system.run_until_idle(max_cycles=200_000)
    net = system.networks[0]
    depth = net.params.vc_buffer_depth
    for router in net.routers.values():
        for port_id, out in router.out_ports.items():
            if out.sink is None:
                assert all(c == depth for c in out.credits), port_id
