"""Tests for the GDDR3 channel model: timing, FR-FCFS, efficiency."""

import pytest

from repro.mem.dram import DramRequest, DramTiming, GddrChannel


def drain(channel, max_cycles=10_000):
    """Step until idle; returns completion order as payload list."""
    done = []
    channel.on_complete = lambda req, now: done.append(req)
    cycle = channel.now
    while channel.busy:
        cycle += 1
        if cycle > max_cycles:
            raise AssertionError("DRAM did not drain")
        channel.step(cycle)
    return done


class TestTiming:
    def test_paper_parameters(self):
        t = DramTiming()
        assert (t.tCL, t.tRP, t.tRC, t.tRAS, t.tRCD, t.tRRD) == \
            (9, 13, 34, 21, 12, 8)
        assert t.queue_capacity == 32

    def test_burst_cycles(self):
        t = DramTiming()
        assert t.burst_cycles(64) == 4
        assert t.burst_cycles(8) == 1

    def test_row_hit_latency(self):
        """Second access to an open row completes after ~tCL + burst."""
        ch = GddrChannel()
        ch.enqueue(DramRequest(0, False), 0)
        done = drain(ch)
        first_done = done[0].complete_time
        ch.enqueue(DramRequest(64, False), first_done + 1)
        done = drain(ch)
        latency = done[0].complete_time - done[0].issue_time
        assert latency == ch.timing.tCL + 4
        assert done[0].row_hit

    def test_row_miss_latency_includes_activate(self):
        ch = GddrChannel()
        ch.enqueue(DramRequest(0, False), 0)
        drain(ch)
        # Same bank, different row.
        other_row = ch.timing.row_bytes * ch.timing.num_banks
        ch.enqueue(DramRequest(other_row, False), 100)
        done = drain(ch)
        t = ch.timing
        latency = done[0].complete_time - done[0].issue_time
        assert latency >= t.tRP + t.tRCD + t.tCL + 4
        assert not done[0].row_hit

    def test_cold_bank_skips_precharge(self):
        ch = GddrChannel()
        ch.enqueue(DramRequest(0, False), 0)
        done = drain(ch)
        t = ch.timing
        assert done[0].complete_time - done[0].issue_time == \
            t.tRCD + t.tCL + 4


class TestFrFcfs:
    def test_row_hit_reordered_first(self):
        """A younger row-hit request bypasses an older row-miss one."""
        ch = GddrChannel()
        ch.enqueue(DramRequest(0, False, payload="open"), 0)
        drain(ch)                                   # row 0 of bank 0 open
        miss_addr = ch.timing.row_bytes * ch.timing.num_banks
        ch.enqueue(DramRequest(miss_addr, False, payload="miss"), 50)
        ch.enqueue(DramRequest(64, False, payload="hit"), 51)
        done = drain(ch)
        assert [r.payload for r in done] == ["hit", "miss"]

    def test_fcfs_among_equals(self):
        ch = GddrChannel()
        ch.enqueue(DramRequest(0, False, payload="a"), 0)
        ch.enqueue(DramRequest(64, False, payload="b"), 0)
        done = drain(ch)
        assert [r.payload for r in done] == ["a", "b"]

    def test_banks_overlap(self):
        """Accesses to distinct banks overlap; same-bank serialise."""
        t = DramTiming()
        same = GddrChannel(t)
        row_span = t.row_bytes * t.num_banks
        for i in range(4):
            same.enqueue(DramRequest(i * row_span, False), 0)
        same_done = drain(same)[-1].complete_time

        spread = GddrChannel(t)
        for i in range(4):
            spread.enqueue(DramRequest(i * t.row_bytes, False), 0)
        spread_done = drain(spread)[-1].complete_time
        assert spread_done < same_done

    def test_trrd_spaces_activates(self):
        ch = GddrChannel()
        for i in range(3):
            ch.enqueue(DramRequest(i * ch.timing.row_bytes, False), 0)
        done = drain(ch)
        # Activations to different banks are at least tRRD apart; with a
        # shared data bus the completions are at least burst cycles apart.
        times = sorted(r.complete_time for r in done)
        for a, b in zip(times, times[1:]):
            assert b - a >= 4


class TestQueue:
    def test_capacity(self):
        ch = GddrChannel(DramTiming(queue_capacity=2))
        ch.enqueue(DramRequest(0, False), 0)
        ch.enqueue(DramRequest(64, False), 0)
        assert not ch.can_accept()
        with pytest.raises(RuntimeError):
            ch.enqueue(DramRequest(128, False), 0)

    def test_occupancy_decreases_on_issue(self):
        ch = GddrChannel()
        ch.enqueue(DramRequest(0, False), 0)
        assert ch.queue_occupancy == 1
        drain(ch)
        assert ch.queue_occupancy == 0


class TestWritesAndStats:
    def test_write_completes_without_reply_semantics(self):
        ch = GddrChannel()
        ch.enqueue(DramRequest(0, True), 0)
        done = drain(ch)
        assert done[0].is_write

    def test_efficiency_high_for_streaming(self):
        ch = GddrChannel()
        cycle = 0
        served = 0
        line = 0
        while served < 200:
            cycle += 1
            if ch.can_accept():
                ch.enqueue(DramRequest(line, False), cycle)
                line += 64
            before = ch.requests_serviced
            ch.step(cycle)
            served = ch.requests_serviced
        assert ch.efficiency() > 0.7
        assert ch.row_hit_rate() > 0.8

    def test_efficiency_lower_for_random_rows(self):
        import random
        rng = random.Random(0)
        ch = GddrChannel()
        cycle = 0
        while ch.requests_serviced < 200:
            cycle += 1
            if ch.can_accept():
                addr = rng.randrange(1 << 24)
                ch.enqueue(DramRequest(addr - addr % 64, False), cycle)
            ch.step(cycle)
        assert ch.row_hit_rate() < 0.3

    def test_address_mapping(self):
        ch = GddrChannel()
        bank0, row0 = ch.map_address(0)
        bank1, row1 = ch.map_address(ch.timing.row_bytes)
        assert bank0 != bank1 or row0 != row1
        bank_again, row_again = ch.map_address(63)
        assert (bank_again, row_again) == (bank0, row0)
