"""Network-level tests of multi-port MC routers (Section IV-D)."""

import dataclasses

import pytest

from repro.core.builder import (CP_CR, DOUBLE_CP_CR, DOUBLE_CP_CR_2P, build,
                                open_loop_variant)
from repro.noc.packet import read_reply
from repro.noc.topology import injection_port

CP_CR_2P = dataclasses.replace(CP_CR, name="CP-CR-2P", mc_inject_ports=2)


def reply_flood(system, mc, count=40):
    """Queue many replies at one MC and measure drain time."""
    done = []
    for core in system.compute_nodes:
        system.set_ejection_handler(core, lambda p, c: done.append(c))
    for i in range(count):
        core = system.compute_nodes[i % len(system.compute_nodes)]
        system.try_inject(read_reply(mc, core), 0)
    system.run_until_idle(max_cycles=100_000)
    return max(done)


class TestInjectionBandwidth:
    def test_two_ports_drain_replies_faster(self):
        one = build(open_loop_variant(CP_CR))
        two = build(open_loop_variant(CP_CR_2P))
        mc1, mc2 = one.mc_nodes[0], two.mc_nodes[0]
        t1 = reply_flood(one, mc1)
        t2 = reply_flood(two, mc2)
        assert t2 < t1 * 0.75   # near-2x injection bandwidth

    def test_packets_alternate_ports(self):
        system = build(open_loop_variant(CP_CR_2P))
        mc = system.mc_nodes[0]
        net = system.networks[0]
        for i in range(6):
            system.try_inject(
                read_reply(mc, system.compute_nodes[i]), 0)
        ports = net._sources[mc]
        assert len(ports) == 2
        assert len(ports[0].fifo) == 3
        assert len(ports[1].fifo) == 3

    def test_non_mc_nodes_single_port(self):
        system = build(open_loop_variant(CP_CR_2P))
        core = system.compute_nodes[0]
        assert len(system.networks[0]._sources[core]) == 1

    def test_router_has_matching_injection_buffers(self):
        system = build(open_loop_variant(CP_CR_2P))
        router = system.networks[0].routers[system.mc_nodes[0]]
        assert injection_port(0) in router.in_ports
        assert injection_port(1) in router.in_ports

    def test_double_network_2p_in_both_slices(self):
        system = build(open_loop_variant(DOUBLE_CP_CR_2P))
        for net in system.networks:
            router = net.routers[system.mc_nodes[0]]
            assert router.spec.num_inject_ports == 2


class TestWormholeWithMultiport:
    def test_packets_remain_contiguous_per_port(self):
        """Each packet streams through one injection port; reassembly at
        the destination must still see whole packets."""
        system = build(open_loop_variant(CP_CR_2P))
        mc = system.mc_nodes[0]
        got = []
        dest = system.compute_nodes[0]
        system.set_ejection_handler(dest, lambda p, c: got.append(p))
        for _ in range(10):
            system.try_inject(read_reply(mc, dest), 0)
        system.run_until_idle(max_cycles=100_000)
        assert len(got) == 10
