"""Memory-access coalescing (the DD stage of Figure 4).

Coalescing merges the per-thread addresses of one warp memory instruction
into the minimal set of cache-line requests, following the CUDA programming
guide semantics the paper models: one request per distinct L1 line touched
by the warp.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def coalesce(addresses: Iterable[int], line_bytes: int = 64) -> List[int]:
    """Unique line addresses for a warp's thread addresses, in first-touch
    order (deterministic so request streams are reproducible)."""
    if line_bytes <= 0:
        raise ValueError("line size must be positive")
    seen = set()
    lines: List[int] = []
    for addr in addresses:
        line = addr - (addr % line_bytes)
        if line not in seen:
            seen.add(line)
            lines.append(line)
    return lines


def coalesced_stride_lines(base: int, stride: int, threads: int = 32,
                           line_bytes: int = 64) -> List[int]:
    """Lines touched by a strided access ``base + i * stride`` — the common
    regular patterns (unit-stride float loads coalesce into 2 lines for a
    32-thread warp with 64 B lines and 4 B elements)."""
    return coalesce((base + i * stride for i in range(threads)), line_bytes)


def degree_of_coalescing(addresses: Sequence[int],
                         line_bytes: int = 64) -> float:
    """Threads served per memory request; 32 is perfect, 1 is fully
    divergent."""
    if not addresses:
        raise ValueError("need at least one address")
    return len(addresses) / len(coalesce(addresses, line_bytes))
