"""Host-side observability for the serving and execution stack.

The simulator got its telemetry layer in PR 3 (exact packet-latency
decomposition, samplers, heatmaps); this package extends the same
discipline from flits to jobs — the serving path ``submit → validate →
queue → worker → executor → cache/simulate → respond`` decomposes,
counts, and logs the way packet latency does:

* :mod:`repro.obs.metrics` — a thread-safe metrics registry (counters,
  gauges, :class:`~repro.noc.histogram.StreamingHistogram`-backed
  percentile histograms) with deterministic Prometheus text exposition
  and a JSON snapshot; ``REPRO_OBS=0`` disables every library-level
  instrumentation site.
* :mod:`repro.obs.log` — structured one-line-JSON logging behind the
  ``REPRO_LOG_FORMAT=text|json`` escape hatch (text stays byte-stable
  with the legacy stderr prints) with contextvar-carried correlation
  ids threading one ``job_id`` from submission to response.
* :mod:`repro.obs.spans` — per-job stage spans in integer nanoseconds
  whose durations telescope *exactly* to the end-to-end latency,
  persisted per job and served by the ``status`` command.
* :mod:`repro.obs.top` — the ``repro top`` live dashboard over the
  ``stats``/``metrics`` protocol commands.

Contract (DESIGN.md §16): observability never changes served results —
with it disabled the serving path is a handful of attribute tests, and
payloads stay bit-identical either way.
"""

from .log import SCHEMA as LOG_SCHEMA
from .log import bind, context, emit, log_format
from .metrics import (REGISTRY, Counter, Gauge, Histogram,
                      MetricsRegistry, enabled, parse_exposition,
                      render_prometheus)
from .spans import SCHEMA as SPAN_SCHEMA
from .spans import STAGES, JobSpan
from .top import render_dashboard, run_top

__all__ = [
    "Counter", "Gauge", "Histogram", "JobSpan", "LOG_SCHEMA",
    "MetricsRegistry", "REGISTRY", "SPAN_SCHEMA", "STAGES", "bind",
    "context", "emit", "enabled", "log_format", "parse_exposition",
    "render_dashboard", "render_prometheus", "run_top",
]
