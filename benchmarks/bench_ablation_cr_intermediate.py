"""Ablation: CR two-phase intermediate selection — random (the paper's
choice, which spreads load like ROMM) versus deterministic first-candidate
(cheaper to implement, but concentrates two-phase traffic on fixed columns).
"""

import dataclasses

from common import bench_profiles, fmt_pct, once, report, run_design
from repro.core.builder import CP_CR
from repro.system.metrics import harmonic_mean

CR_FIRST = dataclasses.replace(CP_CR, name="CP-CR-first",
                               cr_intermediate="first")


def _experiment():
    rows = []
    rand, first = {}, {}
    for prof in bench_profiles():
        rand[prof.abbr] = run_design(prof, CP_CR).ipc
        first[prof.abbr] = run_design(prof, CR_FIRST).ipc
        rows.append(f"{prof.abbr:4s} deterministic-vs-random = "
                    f"{fmt_pct(first[prof.abbr]/rand[prof.abbr]-1)}")
    hm = harmonic_mean(list(first.values())) / \
        harmonic_mean(list(rand.values())) - 1
    rows.append(f"HM impact of deterministic intermediates = {fmt_pct(hm)}")
    return rows


def test_ablation_cr_intermediate(benchmark):
    report("ablation_cr_intermediate", once(benchmark, _experiment))
