"""Tests for memory-access coalescing."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu.coalescer import (coalesce, coalesced_stride_lines,
                                 degree_of_coalescing)


class TestCoalesce:
    def test_unit_stride_words_two_lines(self):
        """32 threads x 4 B unit stride = 128 B = two 64 B lines."""
        addrs = [i * 4 for i in range(32)]
        assert coalesce(addrs) == [0, 64]

    def test_single_line_fully_coalesced(self):
        addrs = [i for i in range(32)]          # within one line
        assert coalesce(addrs) == [0]

    def test_fully_divergent(self):
        addrs = [i * 4096 for i in range(32)]
        assert len(coalesce(addrs)) == 32

    def test_order_is_first_touch(self):
        assert coalesce([200, 10, 70]) == [192, 0, 64]

    def test_duplicates_merged(self):
        assert coalesce([0, 1, 2, 0, 63]) == [0]

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            coalesce([0], line_bytes=0)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=64))
    def test_lines_are_aligned_and_unique(self, addrs):
        lines = coalesce(addrs)
        assert len(set(lines)) == len(lines)
        assert all(line % 64 == 0 for line in lines)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=64))
    def test_every_address_covered(self, addrs):
        lines = set(coalesce(addrs))
        for a in addrs:
            assert a - a % 64 in lines


class TestStrideHelper:
    def test_float_stride(self):
        assert coalesced_stride_lines(0, 4) == [0, 64]

    def test_large_stride_diverges(self):
        assert len(coalesced_stride_lines(0, 64)) == 32

    def test_base_offset_spills_into_third_line(self):
        # 32 + 31*4 = 156, so the warp touches lines 0, 64 and 128.
        assert coalesced_stride_lines(32, 4) == [0, 64, 128]


class TestDegree:
    def test_perfect(self):
        assert degree_of_coalescing([0] * 32) == 32.0

    def test_worst(self):
        assert degree_of_coalescing([i * 64 for i in range(32)]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            degree_of_coalescing([])
