"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import AccessResult, CacheConfig, SetAssociativeCache


def small_cache(size=1024, line=64, assoc=2):
    return SetAssociativeCache(CacheConfig(size, line, assoc))


class TestConfig:
    def test_paper_l1(self):
        cfg = CacheConfig(16 * 1024, 64, 8)
        assert cfg.num_sets == 32

    def test_paper_l2(self):
        cfg = CacheConfig(128 * 1024, 64, 8)
        assert cfg.num_sets == 256

    def test_rejects_partial_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 64, 8)

    def test_line_address(self):
        cfg = CacheConfig(1024, 64, 2)
        assert cfg.line_address(130) == 128
        assert cfg.line_address(64) == 64

    def test_set_index_wraps(self):
        cfg = CacheConfig(1024, 64, 2)   # 8 sets
        assert cfg.set_index(0) == cfg.set_index(8 * 64)


class TestBasicOperation:
    def test_cold_miss(self):
        c = small_cache()
        assert not c.access(0).hit
        assert c.misses == 1

    def test_fill_then_hit(self):
        c = small_cache()
        c.fill(0)
        assert c.access(0).hit
        assert c.access(63).hit        # same line
        assert not c.access(64).hit    # next line

    def test_probe_does_not_allocate(self):
        c = small_cache()
        c.access(0)
        assert not c.contains(0)

    def test_lru_eviction(self):
        c = small_cache(size=256, line=64, assoc=2)   # 2 sets
        a, b, d = 0, 2 * 64, 4 * 64    # all map to set 0
        c.fill(a)
        c.fill(b)
        c.access(a)                     # make b the LRU
        result = c.fill(d)
        assert not c.contains(b)
        assert c.contains(a) and c.contains(d)
        assert result.writeback is None   # b was clean

    def test_dirty_eviction_reports_writeback(self):
        c = small_cache(size=256, line=64, assoc=2)
        a, b, d = 0, 2 * 64, 4 * 64
        c.fill(a, dirty=True)
        c.fill(b)
        c.access(b)
        result = c.fill(d)              # evicts dirty a
        assert result.writeback == a

    def test_write_hit_marks_dirty(self):
        c = small_cache(size=256, line=64, assoc=2)
        c.fill(0)
        c.access(0, is_write=True)
        c.fill(2 * 64)
        c.fill(4 * 64)                  # evict line 0
        # one of the fills must have reported line 0 as a writeback
        assert not c.contains(0)

    def test_write_allocate_no_fetch(self):
        c = small_cache()
        result = c.write_allocate_no_fetch(128)
        assert not result.hit
        assert c.contains(128)

    def test_refill_existing_line_keeps_dirty(self):
        c = small_cache()
        c.fill(0, dirty=True)
        c.fill(0, dirty=False)
        c.fill(2 * 64)
        # force eviction of line 0 from its set
        cfg = c.config
        sets = cfg.num_sets
        evictions = []
        for i in range(1, 4):
            r = c.fill(i * sets * 64)
            if r.writeback is not None:
                evictions.append(r.writeback)
        assert 0 in evictions           # still dirty

    def test_invalidate(self):
        c = small_cache()
        c.fill(0)
        assert c.invalidate(0)
        assert not c.contains(0)
        assert not c.invalidate(0)

    def test_hit_rate(self):
        c = small_cache()
        c.fill(0)
        c.access(0)
        c.access(64)
        assert c.hit_rate() == 0.5


class TestCapacity:
    def test_occupancy_bounded(self):
        c = small_cache(size=512, line=64, assoc=2)   # 8 lines
        for i in range(100):
            c.fill(i * 64)
        assert c.occupancy() == 8

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                    max_size=200))
    def test_against_reference_model(self, ops):
        """LRU cache vs a brute-force reference simulation."""
        cfg = CacheConfig(512, 64, 2)
        cache = SetAssociativeCache(cfg)
        # reference: per-set ordered dict of line -> dirty
        ref = [dict() for _ in range(cfg.num_sets)]
        for line_no, dirty in ops:
            line = line_no * 64
            s = cfg.set_index(line)
            result = cache.fill(line, dirty=dirty)
            if line in ref[s]:
                was = ref[s].pop(line)
                ref[s][line] = was or dirty
                assert result.hit
            else:
                assert not result.hit
                expected_wb = None
                if len(ref[s]) >= 2:
                    victim, victim_dirty = next(iter(ref[s].items()))
                    ref[s].pop(victim)
                    expected_wb = victim if victim_dirty else None
                ref[s][line] = dirty
                assert result.writeback == expected_wb
        for s in range(cfg.num_sets):
            for line in ref[s]:
                assert cache.contains(line)


class TestDirtyDrain:
    def test_drain_returns_dirty_lines_and_clears(self):
        c = small_cache()
        c.fill(0, dirty=True)
        c.fill(64 * 5, dirty=True)
        c.fill(64 * 9, dirty=False)
        drained = sorted(c.drain_dirty_lines())
        assert drained == [0, 64 * 5]
        assert c.drain_dirty_lines() == []      # idempotent

    def test_drained_lines_stay_resident(self):
        c = small_cache()
        c.fill(0, dirty=True)
        c.drain_dirty_lines()
        assert c.contains(0)
