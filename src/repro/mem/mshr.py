"""Miss-status holding registers.

Each compute core has a limited number of MSHRs (64, Table II).  An MSHR
entry tracks one outstanding cache-line fill; subsequent misses to the same
line merge into the entry instead of issuing duplicate requests.  When the
MSHR file is full the core can no longer issue global memory accesses —
this is one of the closed-loop feedback paths that couples compute
throughput to NoC and DRAM behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MshrEntry:
    line_addr: int
    #: Opaque waiter tokens (warp ids) released when the fill returns.
    waiters: List[object] = field(default_factory=list)
    issued: bool = False


class MshrFile:
    """A fixed-capacity MSHR file with merging."""

    def __init__(self, num_entries: int = 64,
                 max_merged: int = 32) -> None:
        if num_entries < 1:
            raise ValueError("need at least one MSHR entry")
        self.num_entries = num_entries
        self.max_merged = max_merged
        self._entries: Dict[int, MshrEntry] = {}
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Outstanding entries (telemetry-facing alias of ``len``)."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def lookup(self, line_addr: int) -> Optional[MshrEntry]:
        return self._entries.get(line_addr)

    def can_accept(self, line_addr: int) -> bool:
        entry = self._entries.get(line_addr)
        if entry is not None:
            return len(entry.waiters) < self.max_merged
        return not self.full

    def allocate(self, line_addr: int, waiter: object) -> MshrEntry:
        """Record a miss; returns the entry.  ``entry.issued`` tells the
        caller whether a memory request is already in flight for the line.
        Raises when ``can_accept`` is False."""
        entry = self._entries.get(line_addr)
        if entry is not None:
            if len(entry.waiters) >= self.max_merged:
                raise RuntimeError("merge limit exceeded; check can_accept")
            entry.waiters.append(waiter)
            self.merges += 1
            return entry
        if self.full:
            self.full_stalls += 1
            raise RuntimeError("MSHR file full; check can_accept")
        entry = MshrEntry(line_addr, [waiter])
        self._entries[line_addr] = entry
        self.allocations += 1
        return entry

    def complete(self, line_addr: int) -> List[object]:
        """A fill returned: free the entry and return its waiters."""
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            raise KeyError(f"no outstanding MSHR for line {line_addr:#x}")
        return entry.waiters

    def outstanding_lines(self) -> List[int]:
        return list(self._entries)

    def issued_lines(self) -> List[int]:
        """Lines with a memory request actually in flight (the invariant
        checker matches these one-to-one against in-flight packets)."""
        return [line for line, entry in self._entries.items()
                if entry.issued]
