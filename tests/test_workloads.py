"""Tests for benchmark profiles and the synthetic kernel generator."""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.instruction import InstrKind
from repro.noc.topology import Coord
from repro.workloads.generator import (LINE_BYTES, SyntheticKernel,
                                       expected_global_access_rate)
from repro.workloads.profiles import (BY_ABBR, GROUPS, PROFILES,
                                      BenchmarkProfile, profile, rodinia)

CORE = Coord(0, 0)


class TestProfiles:
    def test_thirty_one_benchmarks(self):
        assert len(PROFILES) == 31

    def test_groups_match_paper_counts(self):
        assert len(GROUPS["LL"]) == 11
        assert len(GROUPS["LH"]) == 11
        assert len(GROUPS["HH"]) == 9

    def test_paper_group_membership(self):
        assert "AES" in GROUPS["LL"]
        assert "NNC" in GROUPS["LH"]
        assert "MUM" in GROUPS["HH"]
        assert "RD" in GROUPS["HH"]

    def test_abbreviations_unique(self):
        assert len(BY_ABBR) == len(PROFILES)

    def test_lookup(self):
        assert profile("RD").name == "Parallel Reduction"
        with pytest.raises(KeyError):
            profile("XYZ")

    def test_rodinia_subset(self):
        names = {p.abbr for p in rodinia()}
        assert {"HSP", "BFS", "KM", "MUM"} <= names
        assert "AES" not in names

    def test_nnc_has_few_warps(self):
        """The paper singles NNC out for insufficient threads."""
        assert profile("NNC").warps_per_core < 16

    def test_validation_rejects_bad_values(self):
        base = profile("RD")
        with pytest.raises(ValueError):
            dataclasses.replace(base, mem_fraction=1.5)
        with pytest.raises(ValueError):
            dataclasses.replace(base, divergence=0)
        with pytest.raises(ValueError):
            dataclasses.replace(base, warps_per_core=0)
        with pytest.raises(ValueError):
            dataclasses.replace(base, expected_group="XX")

    def test_hh_more_memory_intensive_than_ll(self):
        hh = [expected_global_access_rate(profile(a)) for a in GROUPS["HH"]]
        ll = [expected_global_access_rate(profile(a)) for a in GROUPS["LL"]]
        assert min(hh) > max(ll)


class TestGenerator:
    def test_deterministic_across_instances(self):
        a = SyntheticKernel(profile("RD"), seed=3)
        b = SyntheticKernel(profile("RD"), seed=3)
        for _ in range(200):
            ia = a.next_instruction(CORE, 0)
            ib = b.next_instruction(CORE, 0)
            assert ia.kind == ib.kind and ia.line_addrs == ib.line_addrs

    def test_seed_changes_stream(self):
        a = SyntheticKernel(profile("RD"), seed=1)
        b = SyntheticKernel(profile("RD"), seed=2)
        streams_differ = any(
            a.next_instruction(CORE, 0).line_addrs
            != b.next_instruction(CORE, 0).line_addrs
            for _ in range(100))
        assert streams_differ

    def test_memory_fraction_statistics(self):
        p = profile("RD")
        kernel = SyntheticKernel(p, seed=0)
        n = 4000
        mem = sum(kernel.next_instruction(CORE, 0).kind is not InstrKind.ALU
                  for _ in range(n))
        assert abs(mem / n - p.mem_fraction) < 0.05

    def test_store_fraction_statistics(self):
        p = profile("FWT")
        kernel = SyntheticKernel(p, seed=0)
        loads = stores = 0
        for _ in range(6000):
            instr = kernel.next_instruction(CORE, 0)
            if instr.kind is InstrKind.GLOBAL_LOAD:
                loads += 1
            elif instr.kind is InstrKind.GLOBAL_STORE:
                stores += 1
        frac = stores / (loads + stores)
        assert abs(frac - p.store_fraction) < 0.06

    def test_divergence_bounds(self):
        kernel = SyntheticKernel(profile("MUM"), seed=0)
        for _ in range(500):
            instr = kernel.next_instruction(CORE, 0)
            if instr.is_global:
                assert 1 <= len(instr.line_addrs) <= 32

    def test_coalesced_benchmark_single_line(self):
        kernel = SyntheticKernel(profile("RD"), seed=0)
        for _ in range(500):
            instr = kernel.next_instruction(CORE, 0)
            if instr.is_global:
                assert len(instr.line_addrs) == 1

    def test_addresses_line_aligned(self):
        kernel = SyntheticKernel(profile("KM"), seed=0)
        for _ in range(500):
            instr = kernel.next_instruction(CORE, 0)
            for addr in instr.line_addrs:
                assert addr % LINE_BYTES == 0

    def test_cores_have_disjoint_regions(self):
        kernel = SyntheticKernel(profile("SCP"), seed=0)
        lines_a, lines_b = set(), set()
        for _ in range(2000):
            ia = kernel.next_instruction(Coord(0, 0), 0)
            ib = kernel.next_instruction(Coord(1, 0), 0)
            lines_a.update(ia.line_addrs)
            lines_b.update(ib.line_addrs)
        assert lines_a.isdisjoint(lines_b)

    def test_finite_kernel_ends(self):
        kernel = SyntheticKernel(profile("AES"), seed=0,
                                 instructions_per_warp=10)
        got = [kernel.next_instruction(CORE, 0) for _ in range(12)]
        assert all(i is not None for i in got[:10])
        assert got[10] is None and got[11] is None

    def test_finite_kernel_per_warp(self):
        kernel = SyntheticKernel(profile("AES"), seed=0,
                                 instructions_per_warp=5)
        for w in range(3):
            for _ in range(5):
                assert kernel.next_instruction(CORE, w) is not None
            assert kernel.next_instruction(CORE, w) is None

    def test_streaming_warps_interleave(self):
        """Grid-stride streaming: warps of one core share the region."""
        p = profile("RD")
        kernel = SyntheticKernel(
            dataclasses.replace(p, mem_fraction=1.0, reuse=0.0,
                                shared_fraction=0.0, streaming=1.0),
            seed=0)
        w0 = [kernel.next_instruction(CORE, 0).line_addrs[0]
              for _ in range(4)]
        w1 = [kernel.next_instruction(CORE, 1).line_addrs[0]
              for _ in range(4)]
        stride = p.warps_per_core * LINE_BYTES
        assert w0[1] - w0[0] == stride
        assert w1[0] - w0[0] == LINE_BYTES


class TestSimdEfficiency:
    def test_default_full_mask(self):
        kernel = SyntheticKernel(profile("RD"), seed=0)
        for _ in range(200):
            assert kernel.next_instruction(CORE, 0).active_threads == 32

    def test_divergent_benchmark_partial_masks(self):
        p = profile("MUM")
        assert p.simd_efficiency < 1.0
        kernel = SyntheticKernel(p, seed=0)
        masks = [kernel.next_instruction(CORE, 0).active_threads
                 for _ in range(600)]
        assert all(1 <= m <= 32 for m in masks)
        mean = sum(masks) / len(masks)
        assert abs(mean - 32 * p.simd_efficiency) < 4

    def test_validation_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            dataclasses.replace(profile("RD"), simd_efficiency=0.0)
        with pytest.raises(ValueError):
            dataclasses.replace(profile("RD"), simd_efficiency=1.5)
