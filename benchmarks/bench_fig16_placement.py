"""Figure 16: checkerboard (staggered) MC placement versus the top-bottom
baseline, both with DOR routing and 2 VCs.

Paper: HM speedup 13.2 %; LL/LH benchmarks mostly unaffected, HH gain the
most; WP loses ~6 % to global fairness effects."""

from common import MEASURE, SEED, WARMUP, bench_profiles, fmt_pct, once, \
    report
from repro.core.builder import BASELINE, CP_DOR
from repro.experiments import compare_designs
from repro.workloads.profiles import BY_ABBR


def _experiment():
    comp = compare_designs([BASELINE, CP_DOR], profiles=bench_profiles(),
                           warmup=WARMUP, measure=MEASURE, seed=SEED)
    rows = [f"{abbr:4s} CP speedup = {fmt_pct(speedup)} "
            f"({BY_ABBR[abbr].expected_group})"
            for abbr, speedup in comp.speedups(CP_DOR.name).items()]
    rows.append(f"HM speedup = {fmt_pct(comp.hm_speedup(CP_DOR.name))} "
                "(paper: +13.2%)")
    return rows


def test_fig16_placement(benchmark):
    report("fig16_placement", once(benchmark, _experiment))
