"""Cycle-core throughput: reference scan vs event-driven vs batched SoA.

Times the same pinned workloads under all three cycle cores — the
reference exhaustive scan (``use_reference_stepper``), the event-driven
stepper (wake-scheduled routers, allocation fast paths, idle-component
skipping) and the batched struct-of-arrays core (``use_batched_stepper``,
one vectorized screen over every (router, port, VC) cell per cycle) —
and writes ``benchmarks/results/BENCH_core.json`` with per-mode
cycles-per-second and flits-per-second plus each mode's speedup over the
reference:

* ``closed_loop_smoke`` — a finite BIN kernel on TB-DOR whose drained tail
  exercises the idle fast paths (cores finished, MCs idle, networks empty).
  The event core must be at least 2x the reference here.
* ``open_loop_light`` — 20x20 mesh at a light injection rate (informational;
  most routers idle, the wake heap stays nearly empty).
* ``open_loop_saturated`` — the same mesh driven past saturation, where the
  scan is genuinely busy: every router holds flits, but most are blocked
  upstream of the MC hot links.  This is the batched core's home regime —
  it must be at least 3x the reference here; the event core at least 1.3x.

All steppers must also produce bit-identical results (the determinism
contract pinned by ``tests/test_stepper_equivalence.py``), so the bench
doubles as a determinism canary.  Host timing on shared runners is noisy,
so each mode runs ``REPRO_BENCH_REPS`` times (default 3), interleaved,
and the per-mode minimum is compared — the minimum of a deterministic
workload is the stable estimator under scheduler noise.
"""

from __future__ import annotations

import json
import os
import time

from common import RESULTS_DIR, SEED, once, report
from repro.core.builder import build, design_by_name, open_loop_variant
from repro.noc.openloop import OpenLoopRunner
from repro.noc.topology import Mesh
from repro.noc.traffic import UniformManyToFew
from repro.system.accelerator import build_chip
from repro.workloads.profiles import profile

BENCH_SCHEMA = 2
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))

#: Measurement order within one interleaved round.  ``reference`` first so
#: every later mode compares against a same-round baseline sample.
MODES = ("reference", "event", "batched")

# Closed loop: finite kernel, measured to well past its drained tail.
CLOSED_PROFILE = "BIN"
CLOSED_DESIGN = "TB-DOR"
CLOSED_IPW = 16
CLOSED_WARMUP, CLOSED_MEASURE = 200, 4800
CLOSED_FLOORS = {"event": 2.0}

# Open loop: a mesh large enough that saturation leaves most routers
# blocked (occupied but unable to grant) rather than actively draining —
# with 8 MCs on 16x16, the ejection hot links cap per-node throughput at
# ~0.03 flits/cycle, so rate 0.30 is deep saturation and 0.01 is light.
OPEN_DESIGN = "TB-DOR"
OPEN_MESH = (20, 20)
OPEN_WARMUP, OPEN_MEASURE = 300, 800
LIGHT_RATE = 0.01
SATURATED_RATE = 0.30
SATURATED_FLOORS = {"event": 1.3, "batched": 3.0}
#: Extra interleaved rep rounds allowed when a floor check lands short —
#: per-mode minima only sharpen with more samples, so retries converge
#: to the clean-machine ratio instead of flaking on a noise burst.
EXTRA_REPS = max(0, int(os.environ.get("REPRO_BENCH_EXTRA_REPS", "4")))


def _flits_ejected(network) -> int:
    return sum(net.stats.flits_ejected
               for net in getattr(network, "networks", [network]))


def _select_stepper(system, mode: str) -> None:
    if mode == "reference":
        system.use_reference_stepper()
    elif mode == "batched":
        system.use_batched_stepper()
    elif mode != "event":
        raise ValueError(f"unknown stepper mode {mode!r}")


def _closed_run(mode: str):
    chip = build_chip(profile(CLOSED_PROFILE),
                      design=design_by_name(CLOSED_DESIGN), seed=SEED,
                      instructions_per_warp=CLOSED_IPW)
    _select_stepper(chip, mode)
    start = time.perf_counter()
    result = chip.run(warmup=CLOSED_WARMUP, measure=CLOSED_MEASURE)
    seconds = time.perf_counter() - start
    return seconds, chip.icnt_cycle, _flits_ejected(chip.network), \
        result.to_json()


def _open_run(rate: float, mode: str):
    system = build(open_loop_variant(design_by_name(OPEN_DESIGN)),
                   Mesh(*OPEN_MESH), num_mcs=8, seed=SEED)
    _select_stepper(system, mode)
    runner = OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                            UniformManyToFew(system.mc_nodes), rate,
                            seed=SEED)
    start = time.perf_counter()
    point = runner.run(warmup=OPEN_WARMUP, measure=OPEN_MEASURE)
    seconds = time.perf_counter() - start
    return seconds, OPEN_WARMUP + OPEN_MEASURE, _flits_ejected(system), \
        point.to_json()


def _measure(name: str, run, floors):
    """Interleave ``REPS`` rounds over all three modes; compare per-mode
    minima against the reference minimum.

    Also asserts the determinism contract: every rep of every mode must
    produce the same result payload, and every mode's payload must equal
    the reference payload bit for bit.
    """
    best = {}
    payloads = {}

    def one_round():
        for mode in MODES:
            seconds, cycles, flits, payload = run(mode)
            if mode not in best or seconds < best[mode][0]:
                best[mode] = (seconds, cycles, flits)
            expected = payloads.setdefault(mode, payload)
            if payload != expected:
                raise AssertionError(
                    f"{name}: {mode} stepper is not deterministic "
                    "across repetitions")

    def floors_met():
        ref = best["reference"][0]
        return all(ref / best[mode][0] >= floor
                   for mode, floor in floors.items())

    reps = REPS
    for _ in range(REPS):
        one_round()
    for _ in range(EXTRA_REPS):
        if floors_met():
            break
        one_round()
        reps += 1
    for mode in MODES:
        if payloads[mode] != payloads["reference"]:
            raise AssertionError(
                f"{name}: {mode} result differs from the reference "
                "exhaustive scan")

    def stats(mode):
        seconds, cycles, flits = best[mode]
        return {
            "best_seconds": round(seconds, 4),
            "cycles": cycles,
            "flits_ejected": flits,
            "cycles_per_second": round(cycles / seconds, 1),
            "flits_per_second": round(flits / seconds, 1),
        }

    ref_seconds = best["reference"][0]
    entry = {
        "reps": reps,
        "modes": {mode: stats(mode) for mode in MODES},
        "speedup": {mode: round(ref_seconds / best[mode][0], 3)
                    for mode in MODES if mode != "reference"},
        "identical": True,
    }
    if floors:
        entry["floors"] = floors
        for mode, floor in floors.items():
            if entry["speedup"][mode] < floor:
                raise AssertionError(
                    f"{name}: {mode} core speedup "
                    f"{entry['speedup'][mode]}x is below the {floor}x "
                    f"floor (reference {ref_seconds}s vs {mode} "
                    f"{best[mode][0]}s over {reps} interleaved rounds)")
    return entry


def _experiment():
    configs = {
        "closed_loop_smoke": _measure(
            "closed_loop_smoke", _closed_run, CLOSED_FLOORS),
        "open_loop_light": _measure(
            "open_loop_light",
            lambda mode: _open_run(LIGHT_RATE, mode), {}),
        "open_loop_saturated": _measure(
            "open_loop_saturated",
            lambda mode: _open_run(SATURATED_RATE, mode),
            SATURATED_FLOORS),
    }
    payload = {
        "schema": BENCH_SCHEMA,
        "reps": REPS,
        "workloads": {
            "closed_loop_smoke": {
                "profile": CLOSED_PROFILE, "design": CLOSED_DESIGN,
                "instructions_per_warp": CLOSED_IPW,
                "warmup": CLOSED_WARMUP, "measure": CLOSED_MEASURE,
            },
            "open_loop_light": {
                "design": OPEN_DESIGN, "mesh": list(OPEN_MESH),
                "rate": LIGHT_RATE,
                "warmup": OPEN_WARMUP, "measure": OPEN_MEASURE,
            },
            "open_loop_saturated": {
                "design": OPEN_DESIGN, "mesh": list(OPEN_MESH),
                "rate": SATURATED_RATE,
                "warmup": OPEN_WARMUP, "measure": OPEN_MEASURE,
            },
        },
        "configs": configs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_core.json"
    out.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    rows = [
        f"{'config':22s} {'ref s':>8s} {'event s':>8s} {'batch s':>8s} "
        f"{'event x':>8s} {'batch x':>8s} {'floors':>12s}",
    ]
    for name, entry in configs.items():
        modes = entry["modes"]
        floors = entry.get("floors", {})
        floor_text = ",".join(
            f"{mode[0]}:{floor:.1f}x" for mode, floor in floors.items()
        ) or "-"
        rows.append(
            f"{name:22s} {modes['reference']['best_seconds']:8.2f} "
            f"{modes['event']['best_seconds']:8.2f} "
            f"{modes['batched']['best_seconds']:8.2f} "
            f"{entry['speedup']['event']:7.2f}x "
            f"{entry['speedup']['batched']:7.2f}x "
            f"{floor_text:>12s}")
    rows.append(f"(min over {REPS}+ interleaved rounds per mode; all three "
                "steppers bit-identical; details in "
                "results/BENCH_core.json)")
    return rows


def test_core_throughput(benchmark):
    report("core_throughput", once(benchmark, _experiment))


if __name__ == "__main__":
    # Plain-script entry for CI (no pytest-benchmark dependency).
    report("core_throughput", _experiment())
