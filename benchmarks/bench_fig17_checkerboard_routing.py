"""Figure 17: checkerboard routing with half-routers versus DOR with full
routers (all with checkerboard placement).

Paper: relative to CP-DOR with 2 VCs, CP-DOR with 4 VCs is ~neutral and
CP-CR with 4 VCs (half of the routers being half-routers) costs only ~1.1 %
on average — while cutting router area by 14 %."""

from common import MEASURE, SEED, WARMUP, bench_profiles, fmt_pct, once, \
    report
from repro.core.builder import CP_CR, CP_DOR, CP_DOR_4VC
from repro.experiments import compare_designs


def _experiment():
    comp = compare_designs([CP_DOR, CP_DOR_4VC, CP_CR],
                           profiles=bench_profiles(),
                           warmup=WARMUP, measure=MEASURE, seed=SEED)
    dor4 = comp.speedups(CP_DOR_4VC.name)
    cr4 = comp.speedups(CP_CR.name)
    rows = [f"{abbr:4s} DOR-4VC={1 + dor4[abbr]:6.1%} "
            f"CR-4VC={1 + cr4[abbr]:6.1%} of CP-DOR-2VC" for abbr in dor4]
    rows.append(f"HM: CP-DOR-4VC {fmt_pct(comp.hm_speedup(CP_DOR_4VC.name))}, "
                f"CP-CR-4VC {fmt_pct(comp.hm_speedup(CP_CR.name))} "
                "(paper: CR costs ~-1.1%)")
    return rows


def test_fig17_checkerboard_routing(benchmark):
    report("fig17_checkerboard_routing", once(benchmark, _experiment))
