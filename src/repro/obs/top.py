"""``repro top`` — a live terminal dashboard over a running job server.

Polls the ``stats`` and ``metrics`` protocol commands and renders queue
depth, worker utilization, job/cache counters, and latency percentiles
as a compact text panel, redrawn in place each interval.  The renderer
(:func:`render_dashboard`) is a pure function of the two payloads, so
tests pin it without a terminal, and ``--iterations N`` bounds the loop
for CI smoke runs.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO

#: ANSI: clear screen + home.  Emitted between frames when redrawing.
CLEAR = "\x1b[2J\x1b[H"


def _fmt_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return (f"{count:.0f} {unit}" if unit == "B"
                    else f"{count:.1f} {unit}")
        count /= 1024
    return f"{count:.1f} GiB"    # unreachable; defensive


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def _histogram_rows(snapshot: Dict[str, Any], name: str,
                    label: str) -> List[str]:
    """One row per labeled series of a histogram metric."""
    rows: List[str] = []
    for entry in snapshot.get(name, {}).get("series", []):
        if not entry.get("count"):
            continue
        tag = entry["labels"].get(label, "")
        rows.append(f"{label} {tag:<8s} p50 {_fmt_ms(entry['p50']):>9s}"
                    f"  p95 {_fmt_ms(entry['p95']):>9s}"
                    f"  p99 {_fmt_ms(entry['p99']):>9s}"
                    f"  (n={entry['count']})")
    return rows


def render_dashboard(stats: Dict[str, Any],
                     snapshot: Optional[Dict[str, Any]] = None) -> str:
    """Render one dashboard frame from a ``stats`` payload and an
    optional ``metrics`` JSON snapshot."""
    snapshot = snapshot or {}
    counters = stats.get("counters", {})
    cache = stats.get("cache") or {}
    cache_counters = cache.get("counters") or {}
    estimator = stats.get("retry_estimator") or {}
    uptime = float(stats.get("uptime", 0.0))
    workers = int(stats.get("workers", 1)) or 1
    lines: List[str] = []

    obs = "on" if stats.get("observability", True) else "off"
    lines.append(f"repro top — uptime {uptime:.1f}s · "
                 f"workers {workers} ({stats.get('running', 0)} busy) · "
                 f"observability {obs}")

    samples = estimator.get("samples", 0)
    lines.append(f"queue      depth {stats.get('pending', 0)} / "
                 f"{stats.get('max_pending', '?')} max   "
                 f"retry_after {stats.get('retry_after', 0.0)}s "
                 f"(p90 of {samples} job walls)")
    by_client = stats.get("pending_by_client") or {}
    if by_client:
        pairs = ", ".join(f"{client} {count}"
                          for client, count in sorted(by_client.items()))
        lines.append(f"           waiting by client: {pairs}")

    lines.append(f"jobs       submitted {counters.get('submitted', 0)}   "
                 f"completed {counters.get('completed', 0)}   "
                 f"failed {counters.get('failed', 0)}   "
                 f"rejected {counters.get('rejected', 0)}   "
                 f"invalid {counters.get('invalid', 0)}")

    hits = cache_counters.get("hits", 0)
    misses = cache_counters.get("misses", 0)
    looked = hits + misses
    rate = f"{hits / looked:.1%} hit" if looked else "no lookups"
    lines.append(f"cache      entries {cache.get('entries', 0)} "
                 f"({_fmt_bytes(float(cache.get('bytes', 0)))})   "
                 f"hits {hits} / misses {misses} ({rate})   "
                 f"evictions {cache_counters.get('evictions', 0)}")

    busy_entry = snapshot.get("repro_worker_busy_seconds_total",
                              {}).get("series", [])
    if busy_entry and uptime > 0:
        busy = float(busy_entry[0].get("value", 0.0))
        lines.append(f"workers    busy "
                     f"{busy / (uptime * workers):.1%} of capacity "
                     f"({busy:.1f}s over {workers} worker(s))")

    wall = _histogram_rows(snapshot, "repro_job_wall_seconds", "kind")
    for i, row in enumerate(wall):
        lines.append(("job wall   " if i == 0 else "           ") + row)
    wait = _histogram_rows(snapshot, "repro_queue_wait_seconds",
                           "priority")
    for i, row in enumerate(wait):
        lines.append(("queue wait " if i == 0 else "           ") + row)
    return "\n".join(lines) + "\n"


def run_top(client: Any, interval: float = 2.0,
            iterations: Optional[int] = None,
            out: Optional[TextIO] = None, clear: bool = True) -> int:
    """Poll ``client`` (a :class:`repro.serve.ServeClient`) and redraw.

    ``iterations=None`` runs until interrupted; a finite count renders
    that many frames (the CI smoke path uses 1).  Returns 0.
    """
    stream = out if out is not None else sys.stdout
    frame = 0
    while iterations is None or frame < iterations:
        if frame and interval > 0:
            time.sleep(interval)
        stats = client.stats()
        snapshot: Optional[Dict[str, Any]] = None
        reply = client.metrics(format="json")
        if reply.get("enabled"):
            snapshot = reply.get("metrics", {})
        if clear:
            stream.write(CLEAR)
        stream.write(render_dashboard(stats, snapshot))
        stream.flush()
        frame += 1
    return 0
