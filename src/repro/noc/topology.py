"""2D mesh topology primitives.

The paper's baseline is a 6x6 2D mesh (36 nodes: 28 compute cores and 8
memory controllers).  This module provides coordinates, directions, and the
mesh geometry helpers shared by routing algorithms and network assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Tuple

#: Interning pool for :class:`Coord` (see ``Coord.__new__``).
_coord_pool: Dict[Tuple[int, int], "Coord"] = {}


class Direction(str, Enum):
    """Mesh port directions plus the generic terminal pseudo-ports.

    ``INJECT``/``EJECT`` are expanded into concrete per-router terminal
    ports (``("inj", k)`` / ``("ej", k)``) during network assembly so that
    multi-port memory-controller routers (Section IV-D) fit the same model.
    """

    NORTH = "N"
    SOUTH = "S"
    EAST = "E"
    WEST = "W"
    INJECT = "INJ"
    EJECT = "EJ"

    def opposite(self) -> "Direction":
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}

#: Port identifiers are either a Direction (mesh channels) or a tuple
#: ("inj"|"ej", index) for terminal ports.
PortId = object


def injection_port(index: int = 0) -> Tuple[str, int]:
    """Terminal port id for the ``index``-th injection port."""
    return ("inj", index)


def ejection_port(index: int = 0) -> Tuple[str, int]:
    """Terminal port id for the ``index``-th ejection port."""
    return ("ej", index)


def is_terminal_port(port: PortId) -> bool:
    """True for injection/ejection ports, False for mesh directions."""
    return isinstance(port, tuple)


@dataclass(frozen=True, order=True)
class Coord:
    """Mesh coordinate.  ``x`` is the column, ``y`` the row (0 = top)."""

    x: int
    y: int

    # Interning (see ``_coord_pool``): ``Coord(x, y)`` returns the one
    # canonical instance per coordinate, so the Coord-keyed dict lookups
    # all over the cycle loop hit the identity fast path instead of
    # calling ``__eq__``.  Bounded by the distinct coordinates ever
    # constructed (mesh-sized).
    def __new__(cls, x: int = 0, y: int = 0) -> "Coord":
        if cls is not Coord:
            return object.__new__(cls)
        self = _coord_pool.get((x, y))
        if self is None:
            self = object.__new__(cls)
            _coord_pool[(x, y)] = self
        return self

    def __post_init__(self) -> None:
        # Coords key every router/channel dict lookup on the hot path, so
        # the tuple hash is computed once.  Must equal the dataclass-
        # generated hash so dict/set iteration orders are unchanged.
        object.__setattr__(self, "_hash", hash((self.x, self.y)))

    # Interned + immutable: copies are the object itself, and pickling
    # reconstructs through ``__new__`` so unpickled coords are interned
    # too (never create a blank instance and fill its __dict__ — that
    # would mutate the canonical (0,0) instance).
    def __reduce__(self):
        return (Coord, (self.x, self.y))

    def __copy__(self) -> "Coord":
        return self

    def __deepcopy__(self, memo) -> "Coord":
        return self

    def neighbor(self, direction: Direction) -> "Coord":
        if direction is Direction.NORTH:
            return Coord(self.x, self.y - 1)
        if direction is Direction.SOUTH:
            return Coord(self.x, self.y + 1)
        if direction is Direction.EAST:
            return Coord(self.x + 1, self.y)
        if direction is Direction.WEST:
            return Coord(self.x - 1, self.y)
        raise ValueError(f"{direction} is not a mesh direction")

    def manhattan(self, other: "Coord") -> int:
        return abs(self.x - other.x) + abs(self.y - other.y)

    def parity(self) -> int:
        """Checkerboard parity: 0 for full-router tiles, 1 for half-router
        tiles under the checkerboard organization (Section IV-A)."""
        return (self.x + self.y) % 2

    def __repr__(self) -> str:  # compact, used in error messages and logs
        return f"({self.x},{self.y})"


def _cached_coord_hash(self: Coord) -> int:
    return self._hash


# ``dataclass(frozen=True)`` always installs its own ``__hash__``, so the
# cached variant has to be swapped in after class creation.
Coord.__hash__ = _cached_coord_hash  # type: ignore[method-assign]


class Mesh:
    """Geometry of a ``cols`` x ``rows`` 2D mesh."""

    def __init__(self, cols: int, rows: int) -> None:
        if cols < 1 or rows < 1:
            raise ValueError("mesh dimensions must be positive")
        self.cols = cols
        self.rows = rows

    @property
    def num_nodes(self) -> int:
        return self.cols * self.rows

    def contains(self, coord: Coord) -> bool:
        return 0 <= coord.x < self.cols and 0 <= coord.y < self.rows

    def coords(self) -> Iterator[Coord]:
        for y in range(self.rows):
            for x in range(self.cols):
                yield Coord(x, y)

    def index(self, coord: Coord) -> int:
        if not self.contains(coord):
            raise ValueError(f"{coord} outside {self.cols}x{self.rows} mesh")
        return coord.y * self.cols + coord.x

    def coord(self, index: int) -> Coord:
        if not 0 <= index < self.num_nodes:
            raise ValueError(f"node index {index} out of range")
        return Coord(index % self.cols, index // self.cols)

    def neighbors(self, coord: Coord) -> List[Tuple[Direction, Coord]]:
        result = []
        for direction in (Direction.NORTH, Direction.SOUTH,
                          Direction.EAST, Direction.WEST):
            n = coord.neighbor(direction)
            if self.contains(n):
                result.append((direction, n))
        return result

    def bisection_links(self) -> int:
        """Number of unidirectional channel pairs crossing the vertical
        bisection cut (the paper sizes channels from this: a 6x6 mesh has a
        12-link bisection, Section III-A footnote 3)."""
        return 2 * self.rows

    def direction_towards(self, src: Coord, dst: Coord, axis: str) -> Direction:
        """First-hop direction along one axis ("x" or "y")."""
        if axis == "x":
            if dst.x > src.x:
                return Direction.EAST
            if dst.x < src.x:
                return Direction.WEST
        elif axis == "y":
            if dst.y > src.y:
                return Direction.SOUTH
            if dst.y < src.y:
                return Direction.NORTH
        else:
            raise ValueError("axis must be 'x' or 'y'")
        raise ValueError(f"no {axis}-offset between {src} and {dst}")
