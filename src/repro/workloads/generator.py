"""Synthetic kernel generator.

Turns a :class:`~repro.workloads.profiles.BenchmarkProfile` into per-warp
instruction streams for the SIMT cores.  Address streams combine three
behaviours whose mix the profile controls:

* **reuse** — re-touching a line from the warp's recent-access window
  (produces L1 hits and models tiled/blocked kernels);
* **streaming** — grid-stride sequential lines within the core's working-set
  slice (produces DRAM row-buffer hits, models scans/reductions);
* **random** — uniform lines within the slice (models irregular access,
  poor row locality).

Streaming is organised the way real BSP kernels behave: the warps of a core
interleave through one shared region (warp ``w`` takes lines
``w, w+N, w+2N, ...`` of the region for ``N`` warps), so concurrently
executing warps touch neighbouring DRAM rows, and each core starts at a
random phase so cores do not sweep the address-interleaved MCs in lockstep.

Divergence controls how many distinct lines one warp memory instruction
touches after coalescing (1 = fully coalesced ... 32 = one line per
thread, as in MUMmerGPU/BFS pointer chasing).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..gpu.instruction import ALU, SHARED, WarpInstruction, load, store
from ..noc.topology import Coord
from ..parallel import derive_seed
from .profiles import BenchmarkProfile

LINE_BYTES = 64


class _CoreRegion:
    """The shared working-set slice of one core."""

    __slots__ = ("base_line", "num_lines", "phase")

    def __init__(self, base_line: int, num_lines: int, phase: int) -> None:
        self.base_line = base_line
        self.num_lines = num_lines
        self.phase = phase


class _WarpStream:
    """Address-stream state for one warp."""

    __slots__ = ("rng", "region", "warp_id", "stride", "cursor", "recent")

    def __init__(self, region: _CoreRegion, warp_id: int, stride: int,
                 seed: int, window: int) -> None:
        self.rng = random.Random(seed)
        self.region = region
        self.warp_id = warp_id
        self.stride = stride
        self.cursor = 0
        self.recent: Deque[int] = deque(maxlen=window)

    def next_line(self, reuse: float, streaming: float) -> int:
        rng = self.rng
        if self.recent and rng.random() < reuse:
            return self.recent[rng.randrange(len(self.recent))]
        region = self.region
        if rng.random() < streaming:
            # Grid-stride loop: this warp's cursor-th element.
            index = (region.phase + self.warp_id
                     + self.cursor * self.stride) % region.num_lines
            self.cursor += 1
        else:
            index = rng.randrange(region.num_lines)
        line = (region.base_line + index) * LINE_BYTES
        self.recent.append(line)
        return line


class SyntheticKernel:
    """Instruction source shared by all cores running one benchmark.

    Implements the ``program`` interface of :class:`repro.gpu.core.SimtCore`
    (``next_instruction(core_coord, warp_id)``).  Streams are infinite when
    ``instructions_per_warp`` is ``None`` (steady-state measurement runs) or
    finite otherwise (examples and drain tests).
    """

    def __init__(self, profile: BenchmarkProfile, seed: int = 11,
                 instructions_per_warp: Optional[int] = None,
                 reuse_window: int = 48) -> None:
        self.profile = profile
        self.seed = seed
        self.instructions_per_warp = instructions_per_warp
        self.reuse_window = reuse_window
        self._streams: Dict[Tuple[Coord, int], _WarpStream] = {}
        self._issued: Dict[Tuple[Coord, int], int] = {}
        self._regions: Dict[Coord, _CoreRegion] = {}

    # -- program interface ---------------------------------------------------

    def next_instruction(self, core: Coord,
                         warp_id: int) -> Optional[WarpInstruction]:
        key = (core, warp_id)
        if self.instructions_per_warp is not None:
            issued = self._issued.get(key, 0)
            if issued >= self.instructions_per_warp:
                return None
            self._issued[key] = issued + 1
        stream = self._streams.get(key)
        if stream is None:
            stream = self._make_stream(core, warp_id)
            self._streams[key] = stream
        return self._generate(stream)

    # -- generation ------------------------------------------------------------

    def _region(self, core: Coord) -> _CoreRegion:
        region = self._regions.get(core)
        if region is None:
            core_id = len(self._regions)
            p = self.profile
            num_lines = p.footprint_lines * p.warps_per_core
            # derive_seed, not hash(): tuple hashes over strings depend on
            # PYTHONHASHSEED, which would make runs differ across
            # interpreter invocations and break the parallel harness's
            # determinism contract (serial == process-pool == cached).
            rng = random.Random(derive_seed(self.seed, p.abbr, core_id,
                                            "region"))
            region = _CoreRegion(core_id * num_lines, num_lines,
                                 rng.randrange(num_lines))
            self._regions[core] = region
        return region

    def _make_stream(self, core: Coord, warp_id: int) -> _WarpStream:
        p = self.profile
        seed = derive_seed(self.seed, p.abbr, core.x, core.y, warp_id)
        return _WarpStream(self._region(core), warp_id, p.warps_per_core,
                           seed, self.reuse_window)

    def _generate(self, stream: _WarpStream) -> WarpInstruction:
        p = self.profile
        rng = stream.rng
        if rng.random() >= p.mem_fraction:
            if p.simd_efficiency >= 1.0:
                return ALU
            return WarpInstruction(ALU.kind,
                                   active_threads=self._sample_active_threads(rng))
        if rng.random() < p.shared_fraction:
            if p.simd_efficiency >= 1.0:
                return SHARED
            return WarpInstruction(SHARED.kind,
                                   active_threads=self._sample_active_threads(rng))
        num_lines = self._sample_divergence(rng)
        lines = tuple(stream.next_line(p.reuse, p.streaming)
                      for _ in range(num_lines))
        active = self._sample_active_threads(rng)
        if rng.random() < p.store_fraction:
            return store(lines, active_threads=active)
        return load(lines, active_threads=active)

    def _sample_active_threads(self, rng: random.Random) -> int:
        """SIMT mask width under control divergence: mean of
        32 * simd_efficiency, jittered uniformly."""
        eff = self.profile.simd_efficiency
        if eff >= 1.0:
            return 32
        mean = 32 * eff
        lo = max(1, int(mean * 0.5))
        hi = min(32, int(mean * 1.5) + 1)
        return rng.randint(lo, hi)

    def _sample_divergence(self, rng: random.Random) -> int:
        mean = self.profile.divergence
        if mean <= 1:
            return 1
        # Uniform on [1, 2*mean - 1]: integer mean of `mean`, bounded by the
        # warp size.
        return min(32, rng.randint(1, 2 * mean - 1))


def expected_global_access_rate(profile: BenchmarkProfile) -> float:
    """Expected global-memory instructions per issued instruction — a quick
    analytic sanity metric used in tests and docs."""
    return profile.mem_fraction * (1.0 - profile.shared_fraction)
