"""Legacy shim: enables `pip install -e .` on environments whose setuptools
lacks bundled wheel support (offline, no `wheel` package)."""
from setuptools import setup

setup()
