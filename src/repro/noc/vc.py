"""Virtual-channel configuration.

The VC space of a network is organized as ``num_classes`` protocol classes
(request / reply — needed for protocol deadlock avoidance when one physical
network carries both) times ``vcs_per_class`` routing VCs.  Checkerboard
routing needs two routing VCs per class (one for XY-routed, one for
YX-routed packets, Section IV-B); plain DOR treats all VCs of a class as
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .packet import RouteGroup, TrafficClass


@dataclass(frozen=True)
class VcConfig:
    """Describes how VC indices map to (protocol class, route group)."""

    vcs_per_class: int = 2
    #: Maps a packet's traffic class to a class index within this network.
    #: A shared network uses {REQUEST: 0, REPLY: 1}; a dedicated network in
    #: the channel-sliced design maps its single class to 0.
    class_map: Tuple[Tuple[TrafficClass, int], ...] = (
        (TrafficClass.REQUEST, 0),
        (TrafficClass.REPLY, 1),
    )
    #: When True, the first half of each class's VCs carries XY packets and
    #: the second half carries YX packets (checkerboard routing).
    route_split: bool = False

    def __post_init__(self) -> None:
        # Hot-path lookup tables.  ``class_index``/``allowed_vcs`` run on
        # every VC allocation and every injection attempt, so the linear
        # scan over ``class_map`` and the tuple rebuild are precomputed
        # once here.  The dataclass is frozen, hence ``object.__setattr__``;
        # non-field attributes do not participate in ``__eq__``/``__hash__``
        # or ``dataclasses.asdict``, so value semantics are unchanged.
        class_of: Dict[TrafficClass, int] = {}
        for klass, idx in self.class_map:
            class_of.setdefault(klass, idx)       # first entry wins
        n_classes = len(set(idx for _, idx in self.class_map))
        object.__setattr__(self, "_class_of", class_of)
        object.__setattr__(self, "_num_classes", n_classes)
        object.__setattr__(self, "_num_vcs",
                           n_classes * self.vcs_per_class)
        allowed: Dict[Tuple[TrafficClass, RouteGroup], Tuple[int, ...]] = {}
        for klass, idx in class_of.items():
            for group in RouteGroup:
                try:
                    allowed[(klass, group)] = \
                        self._dynamic_allowed_vcs(klass, group)
                except ValueError:
                    # Illegal combo (e.g. route_split with one VC per
                    # class): keep raising lazily, exactly as before.
                    pass
        object.__setattr__(self, "_allowed", allowed)

    @property
    def num_classes(self) -> int:
        return self._num_classes

    @property
    def num_vcs(self) -> int:
        return self._num_vcs

    def class_index(self, tclass: TrafficClass) -> int:
        idx = self._class_of.get(tclass)
        if idx is None:
            raise ValueError(f"this network does not carry {tclass!r}")
        return idx

    def carries(self, tclass: TrafficClass) -> bool:
        return tclass in self._class_of

    def allowed_vcs(self, tclass: TrafficClass,
                    group: RouteGroup) -> Tuple[int, ...]:
        """VC indices a packet of (class, route group) may occupy."""
        vcs = self._allowed.get((tclass, group))
        if vcs is None:
            # Unknown class/group or illegal split: the dynamic path
            # raises the same errors the precomputed tables skipped.
            return self._dynamic_allowed_vcs(tclass, group)
        return vcs

    def _dynamic_allowed_vcs(self, tclass: TrafficClass,
                             group: RouteGroup) -> Tuple[int, ...]:
        """Reference computation behind the precomputed ``allowed_vcs``
        tables (also the oracle for the table-pinning unit tests)."""
        base = self.class_index(tclass) * self.vcs_per_class
        vcs = tuple(range(base, base + self.vcs_per_class))
        if not self.route_split or group is RouteGroup.ANY:
            return vcs
        half = self.vcs_per_class // 2
        if half == 0:
            raise ValueError("route_split needs at least 2 VCs per class")
        if group is RouteGroup.XY:
            return vcs[:half]
        if group is RouteGroup.YX:
            return vcs[half:]
        raise ValueError(f"unknown route group {group!r}")

    # -- read-only introspection (telemetry labels) --------------------------

    def classes_of_vc(self, vc: int) -> Tuple[TrafficClass, ...]:
        """Traffic classes a VC index may carry (several for a shared class
        index, one for dedicated networks)."""
        if not 0 <= vc < self.num_vcs:
            raise ValueError(f"VC {vc} out of range 0..{self.num_vcs - 1}")
        idx = vc // self.vcs_per_class
        return tuple(klass for klass, i in self.class_map if i == idx)

    def route_group_of_vc(self, vc: int) -> RouteGroup:
        """Route group a VC index serves (``ANY`` without route splitting)."""
        if not self.route_split:
            return RouteGroup.ANY
        half = self.vcs_per_class // 2
        return (RouteGroup.XY if vc % self.vcs_per_class < half
                else RouteGroup.YX)

    def describe_vc(self, vc: int) -> str:
        """Human-readable VC label, e.g. ``"REQUEST/xy"`` — used by the
        telemetry sampler's per-VC occupancy breakdown."""
        classes = "+".join(k.name for k in self.classes_of_vc(vc))
        group = self.route_group_of_vc(vc)
        return f"{classes}/{group.value}"


def shared_vc_config(vcs_per_class: int = 1,
                     route_split: bool = False) -> VcConfig:
    """One physical network carrying both protocol classes (baseline)."""
    return VcConfig(vcs_per_class=vcs_per_class,
                    class_map=((TrafficClass.REQUEST, 0),
                               (TrafficClass.REPLY, 1)),
                    route_split=route_split)


def dedicated_vc_config(tclass: TrafficClass, num_vcs: int = 2,
                        route_split: bool = False) -> VcConfig:
    """A network dedicated to one protocol class (channel-sliced design,
    Section IV-C: no extra VCs needed for protocol deadlock)."""
    return VcConfig(vcs_per_class=num_vcs,
                    class_map=((tclass, 0),),
                    route_split=route_split)
