"""Closed-loop tests of the paper's traffic characterization claims
(Section III-D): many-to-few-to-many with byte-asymmetric packets."""

import pytest

from repro.core.builder import BASELINE, build
from repro.noc.packet import TrafficClass
from repro.system.accelerator import build_chip, perfect_chip
from repro.workloads.profiles import profile


@pytest.fixture(scope="module")
def hh_run():
    chip = build_chip(profile("SCP"), design=BASELINE)
    result = chip.run(warmup=400, measure=800)
    return chip, result


class TestManyToFewAsymmetry:
    def test_mc_injects_more_bytes_than_cores(self, hh_run):
        """Section III-D: average MC injection (bytes/cycle) is several
        times a compute core's (the paper measures 6.9x)."""
        chip, _ = hh_run
        stats = chip.network.stats
        mc_bytes = sum(stats.node_injected_flits.get(mc, 0)
                       for mc in chip.mc_coords) / len(chip.mc_coords)
        core_bytes = sum(stats.node_injected_flits.get(c, 0)
                         for c in chip.compute_coords) / \
            len(chip.compute_coords)
        assert mc_bytes / core_bytes > 3.0

    def test_request_packets_small_replies_large(self, hh_run):
        chip, _ = hh_run
        stats = chip.network.stats
        req = stats.per_class[TrafficClass.REQUEST]
        rep = stats.per_class[TrafficClass.REPLY]
        assert req.packets > 0 and rep.packets > 0
        assert req.flits / req.packets < rep.flits / rep.packets

    def test_reply_count_tracks_read_count(self, hh_run):
        chip, _ = hh_run
        reads = sum(mc.reads for mc in chip.mcs)
        replies = sum(mc.replies_sent for mc in chip.mcs)
        # Steady state: replies lag reads only by the in-flight window.
        assert replies <= reads
        assert replies > 0.5 * reads

    def test_hotspot_free_under_interleaving(self, hh_run):
        """256 B low-order interleaving spreads requests over the MCs."""
        chip, _ = hh_run
        counts = [mc.requests_received for mc in chip.mcs]
        assert min(counts) > 0
        assert max(counts) / max(1, min(counts)) < 2.0


class TestPlacementCongestion:
    def test_staggering_raises_mc_injection_throughput(self):
        """Figure 16's mechanism: with MCs side by side on the top/bottom
        rows their reply traffic shares the same row links, capping each
        MC's achieved injection rate; staggering (CP) removes the sharing.
        Both placements saturate their hottest link, but CP converts that
        utilization into more delivered reply flits per MC."""
        from repro.core.builder import CP_DOR
        rates = {}
        for design in (BASELINE, CP_DOR):
            chip = build_chip(profile("SCP"), design=design)
            result = chip.run(warmup=300, measure=600)
            rates[design.name] = result.mc_injection_rate_flits
        assert rates["CP-DOR"] > rates["TB-DOR"] * 1.1

    def test_hot_links_exist_under_saturation(self):
        chip = build_chip(profile("SCP"), design=BASELINE)
        chip.run(warmup=300, measure=600)
        assert chip.network.networks[0].peak_channel_utilization() > 0.5
