"""Multi-fidelity exploration engine: screen → halve → confirm → rank.

The evaluator climbs a :class:`FidelityLadder`:

1. **screen** (optional) — one cheap open-loop run per candidate at a
   fixed offered load; the accepted-throughput-per-mm² proxy drops the
   clearly bandwidth-starved points before any closed-loop cycle runs;
2. **successive halving** — each round runs the survivors closed-loop on
   a small benchmark mix with short measurement windows (doubling every
   round) and keeps the better half by throughput-effectiveness;
3. **confirm** — the finalists run the full mix at full windows.

Every evaluation is an independent :class:`repro.parallel.SimTask` fanned
out through :func:`repro.parallel.run_tasks`, so ``jobs=N`` parallelism,
deterministic per-task seeds and the on-disk result cache all apply;
results are bit-identical across jobs counts and cache states because
ranking consumes only the task payloads, never host-side timing.

Ranking and the Pareto frontier come last: candidates order by the
highest fidelity they reached, then the stage metric, then name; the
frontier is exact over (harmonic-mean IPC max, NoC mm² min) among
every candidate with a closed-loop measurement.  A final analytic pass
prices each such candidate in watts from its activity counters
(:mod:`repro.power`) at every node in ``spec.tech_nodes`` and computes
the exact (IPC, mm², W) frontier at the base node — no extra cycle runs,
so the (IPC, mm²) projection is bit-identical to a power-free
exploration of the same space.
"""

from __future__ import annotations

import dataclasses
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..area.chip import design_chip_area_mm2, design_noc_area
from ..experiments import closed_task, open_loop_task
from ..noc.traffic import UniformManyToFew
from ..parallel import (ReportCollector, resolve_fleet, resolve_jobs,
                        run_tasks)
from ..power import ActivityCounts, design_power, tech_node
from ..system.accelerator import SimulationResult
from ..system.metrics import harmonic_mean
from ..telemetry.profiler import HostProfiler
from ..workloads.profiles import profile
from .pareto import (ParetoPoint, ParetoPoint3, pareto_frontier,
                     pareto_frontier3)
from .result import CandidateResult, ExplorationResult, StageOutcome
from .space import Candidate, SearchSpace

#: ``seed_policy`` values: ``"derived"`` gives every task its own
#: :func:`repro.parallel.derive_seed` stream (statistically independent
#: points — the default); ``"fixed"`` reuses the base seed for every task
#: (the protocol of the original Figure 2 walk, which the ``figure2``
#: preset must reproduce number-for-number).
SEED_POLICIES = ("derived", "fixed")


@dataclass(frozen=True)
class FidelityLadder:
    """Evaluation stages and their budgets (cycles are per stage run)."""

    screen: bool = True
    screen_rate: float = 0.35          # offered flits/cycle/node
    screen_warmup: int = 300
    screen_measure: int = 600
    screen_keep: float = 0.5           # fraction kept past the screen
    halving_rounds: int = 1
    round_warmup: int = 100            # doubled every halving round
    round_measure: int = 200
    confirm_warmup: int = 400
    confirm_measure: int = 1000
    min_survivors: int = 3             # floor under every cut

    def __post_init__(self) -> None:
        if not 0.0 < self.screen_keep <= 1.0:
            raise ValueError("screen_keep must be in (0, 1]")
        if self.halving_rounds < 0:
            raise ValueError("halving_rounds must be >= 0")
        if self.min_survivors < 1:
            raise ValueError("min_survivors must be >= 1")


@dataclass(frozen=True)
class ExplorationSpec:
    """One exploration: a space, a mix, a ladder and a seed policy."""

    name: str
    space: SearchSpace
    mix: Tuple[str, ...]               # confirm-stage benchmark abbrs
    round_mix: Tuple[str, ...]         # halving-round abbrs (small)
    ladder: FidelityLadder = FidelityLadder()
    seed: int = 11
    seed_policy: str = "derived"
    #: Technology nodes the power model prices every candidate at; the
    #: first entry is the base node for the W objective and the 3-D
    #: frontier.  Power is analytic over the same simulations, so extra
    #: nodes cost no cycle runs.
    tech_nodes: Tuple[int, ...] = (65,)

    def __post_init__(self) -> None:
        if self.seed_policy not in SEED_POLICIES:
            raise ValueError(f"seed_policy {self.seed_policy!r} not in "
                             f"{SEED_POLICIES}")
        if not self.mix:
            raise ValueError("mix must name at least one benchmark")
        if not self.tech_nodes:
            raise ValueError("tech_nodes must name at least one node")
        for nm in self.tech_nodes:
            tech_node(nm)              # raises on unknown nodes
        for abbr in (*self.mix, *self.round_mix):
            profile(abbr)              # raises on unknown abbreviations


@dataclass(frozen=True)
class StageReport:
    """Host-side tally of one ladder stage (not part of the result's
    bit-identical payload — lands in ``host.json``)."""

    stage: str
    evaluated: int                     # candidates entering the stage
    kept: int                          # candidates promoted
    tasks: int
    executed: int                      # cache misses actually simulated
    cached: int
    seconds: float                     # summed task wall-clock

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def _rank_stage(stage: str, metrics: Dict[str, float], keep: int,
                hm_ipc: Optional[Dict[str, float]] = None
                ) -> Dict[str, StageOutcome]:
    """Order one stage's cohort (metric desc, then name) and mark the top
    ``keep`` as promoted."""
    ordered = sorted(metrics, key=lambda name: (-metrics[name], name))
    return {
        name: StageOutcome(
            stage=stage, metric=metrics[name],
            hm_ipc=None if hm_ipc is None else hm_ipc[name],
            rank=rank, kept=rank <= keep)
        for rank, name in enumerate(ordered, start=1)
    }


def _keep_count(evaluated: int, target: int, floor: int) -> int:
    """Survivor count for a cut: ``target`` but at least ``floor`` and
    never more than the cohort."""
    return min(evaluated, max(floor, target))


def _merged_activity(runs: Sequence[SimulationResult]) -> ActivityCounts:
    """One activity window spanning a candidate's whole benchmark mix:
    cycles and counters sum exactly (the mix runs are independent
    simulations, so their windows concatenate)."""
    return ActivityCounts(
        cycles=sum(r.icnt_cycles for r in runs),
        crossbar_traversals=sum(r.crossbar_traversals for r in runs),
        buffer_reads=sum(r.buffer_reads for r in runs),
        buffer_writes=sum(r.buffer_writes for r in runs),
        link_flit_hops=sum(r.link_flit_hops for r in runs),
        flits_ejected=sum(r.flits_ejected for r in runs),
    )


def explore_preset(name: str, seed: Optional[int] = None,
                   jobs: Optional[int] = None, cache=None,
                   progress=None,
                   fleet: Optional[int] = None) -> ExplorationResult:
    """Run a named preset exploration (``figure2``/``smoke``/...).

    The single submission entry point shared by ``repro explore`` and the
    job server: both resolve the preset, apply an optional seed override
    and call :func:`explore`, so a served exploration is evaluated
    exactly as a direct CLI run and its payload (which excludes host-side
    timing) is bit-identical.  Unknown names raise ``KeyError`` with a
    did-you-mean hint.
    """
    from .presets import preset
    spec = preset(name)
    if seed is not None:
        spec = dataclasses.replace(spec, seed=seed)
    return explore(spec, jobs=jobs, cache=cache, progress=progress,
                   fleet=fleet)


def explore(spec: ExplorationSpec, jobs: Optional[int] = None,
            cache=None, progress=None,
            fleet: Optional[int] = None) -> ExplorationResult:
    """Run ``spec`` and return the ranked, Pareto-annotated result.

    ``jobs``/``cache``/``progress`` pass straight to
    :func:`repro.parallel.run_tasks` for every stage, which with
    ``jobs=N`` share one process pool across the whole ladder (workers
    warm up once, not once per stage).  ``fleet`` enables lockstep
    multi-simulation batching of compatible open-loop tasks (DESIGN.md
    §18); results are bit-identical either way.  The returned result's
    ``host`` field carries wall-clock, per-stage tallies and cache-hit
    rates; everything else is bit-identical across hosts, jobs counts,
    fleet widths and cache states.
    """
    ladder = spec.ladder
    jobs = resolve_jobs(jobs)
    fleet = resolve_fleet(fleet)
    fixed = spec.seed_policy == "fixed"
    profiler = HostProfiler()
    stage_reports: List[StageReport] = []
    history: Dict[str, List[StageOutcome]] = {}
    #: Per candidate: the full mix's SimulationResults at the *latest*
    #: closed-loop stage it reached — the activity window the power
    #: model prices (each stage overwrites the one before).
    closed_results: Dict[str, List[SimulationResult]] = {}

    with profiler.section("enumerate"):
        candidates, rejected_points = spec.space.enumerate()
        by_name = {c.name: c for c in candidates}
        noc_area = {c.name: design_noc_area(c.design, c.mesh,
                                            c.num_mcs).noc_total
                    for c in candidates}
        chip_area = {c.name: design_chip_area_mm2(c.design, c.mesh,
                                                  c.num_mcs)
                     for c in candidates}
    for name in by_name:
        history[name] = []
    survivors: List[Candidate] = list(candidates)

    # One process pool serves every ladder stage (screen → halving →
    # confirm): workers warm up once, and the fail-fast
    # cancel-then-harvest contract inside run_tasks still applies per
    # stage because each call owns only its own futures.
    pool = ProcessPoolExecutor(max_workers=jobs) if jobs > 1 else None

    def run_stage(stage: str, tasks, collect) -> None:
        """Run one stage's tasks, apply ``collect(payloads)`` → metric
        dicts, record outcomes and cut the survivor list."""
        nonlocal survivors
        collector = ReportCollector(chain=progress)
        with profiler.section(stage):
            payloads = run_tasks(tasks, jobs=jobs, cache=cache,
                                 progress=collector, fleet=fleet,
                                 pool=pool)
            metrics, hm_ipc, keep = collect(payloads)
            outcomes = _rank_stage(stage, metrics, keep, hm_ipc)
        for name, outcome in outcomes.items():
            history[name].append(outcome)
        survivors = [c for c in survivors if outcomes[c.name].kept]
        stage_reports.append(StageReport(
            stage=stage, evaluated=len(outcomes), kept=len(survivors),
            tasks=collector.total, executed=collector.executed,
            cached=collector.cached, seconds=collector.seconds))

    try:
        # -- stage 1: open-loop saturation-throughput screen -----------------
        if ladder.screen and len(survivors) > ladder.min_survivors:
            cohort = list(survivors)
            tasks = [
                open_loop_task(c.design, UniformManyToFew, "uniform",
                               ladder.screen_rate, base_seed=spec.seed,
                               warmup=ladder.screen_warmup,
                               measure=ladder.screen_measure,
                               config=c.chip_config(), fixed_seed=fixed)
                for c in cohort
            ]

            def collect_screen(payloads):
                metrics = {}
                for c, payload in zip(cohort, payloads):
                    accepted = payload["result"]["accepted_flits_per_cycle"]
                    # Throughput-effectiveness proxy: accepted NoC
                    # throughput per chip mm² (no IPC yet at this fidelity).
                    metrics[c.name] = accepted / chip_area[c.name]
                keep = _keep_count(
                    len(cohort),
                    math.ceil(len(cohort) * ladder.screen_keep),
                    ladder.min_survivors)
                return metrics, None, keep

            run_stage("screen", tasks, collect_screen)

        # -- stage 2: successive-halving closed-loop rounds ------------------
        for round_index in range(ladder.halving_rounds):
            if len(survivors) <= ladder.min_survivors:
                break
            scale = 2 ** round_index
            cohort = list(survivors)
            mix = spec.round_mix or spec.mix
            tasks = [
                closed_task(c.design, profile(abbr), base_seed=spec.seed,
                            warmup=ladder.round_warmup * scale,
                            measure=ladder.round_measure * scale,
                            config=c.chip_config(), fixed_seed=fixed)
                for c in cohort for abbr in mix
            ]

            def collect_round(payloads, cohort=cohort, mix=mix):
                metrics, hm_ipc = {}, {}
                it = iter(payloads)
                for c in cohort:
                    runs = [SimulationResult.from_json(next(it)["result"])
                            for _ in mix]
                    closed_results[c.name] = runs
                    hm_ipc[c.name] = harmonic_mean([r.ipc for r in runs])
                    metrics[c.name] = hm_ipc[c.name] / chip_area[c.name]
                keep = _keep_count(len(cohort), math.ceil(len(cohort) / 2),
                                   ladder.min_survivors)
                return metrics, hm_ipc, keep

            run_stage(f"round{round_index + 1}", tasks, collect_round)

        # -- stage 3: confirm finalists on the full mix ----------------------
        if survivors:
            cohort = list(survivors)
            tasks = [
                closed_task(c.design, profile(abbr), base_seed=spec.seed,
                            warmup=ladder.confirm_warmup,
                            measure=ladder.confirm_measure,
                            config=c.chip_config(), fixed_seed=fixed)
                for c in cohort for abbr in spec.mix
            ]

            def collect_confirm(payloads, cohort=cohort):
                metrics, hm_ipc = {}, {}
                it = iter(payloads)
                for c in cohort:
                    runs = [SimulationResult.from_json(next(it)["result"])
                            for _ in spec.mix]
                    closed_results[c.name] = runs
                    hm_ipc[c.name] = harmonic_mean([r.ipc for r in runs])
                    metrics[c.name] = hm_ipc[c.name] / chip_area[c.name]
                return metrics, hm_ipc, len(cohort)   # confirm cuts nobody

            run_stage("confirm", tasks, collect_confirm)
    finally:
        if pool is not None:
            pool.shutdown()

    # -- rank, frontier, result ----------------------------------------------
    with profiler.section("rank"):
        results: List[CandidateResult] = []
        for c in candidates:
            stages = history[c.name]
            closed = [s for s in stages if s.hm_ipc is not None]
            final = stages[-1] if stages else None
            hm_ipc = closed[-1].hm_ipc if closed else None
            results.append(CandidateResult(
                name=c.name,
                design=dataclasses.asdict(c.design),
                mesh=[c.mesh_cols, c.mesh_rows],
                num_mcs=c.num_mcs,
                noc_area_mm2=noc_area[c.name],
                chip_area_mm2=chip_area[c.name],
                stages=list(stages),
                fidelity=final.stage if final else "enumerated",
                hm_ipc=hm_ipc,
                throughput_effectiveness=(
                    None if hm_ipc is None
                    else hm_ipc / chip_area[c.name]),
            ))

        # Rank: fidelity reached (stage count) desc, then the final
        # stage's metric desc, then name — fully deterministic.
        def rank_key(r: CandidateResult):
            depth = len(r.stages)
            metric = r.stages[-1].metric if r.stages else 0.0
            return (-depth, -metric, r.name)

        ranking = [r.name for r in sorted(results, key=rank_key)]

        closed_points = [ParetoPoint(r.name, r.hm_ipc, r.noc_area_mm2)
                         for r in results if r.hm_ipc is not None]
        frontier = pareto_frontier(closed_points)
        for r in results:
            r.on_frontier = r.name in frontier.frontier
            r.dominated_by = frontier.dominated_by.get(r.name)

    # -- power: price every closed-loop candidate at each node ---------------
    with profiler.section("power"):
        points3: List[ParetoPoint3] = []
        for r in results:
            runs = closed_results.get(r.name)
            if r.hm_ipc is None or not runs:
                continue
            c = by_name[r.name]
            activity = _merged_activity(runs)
            reports = [design_power(c.design, activity, mesh=c.mesh,
                                    num_mcs=c.num_mcs, node=nm,
                                    ipc=r.hm_ipc)
                       for nm in spec.tech_nodes]
            base = reports[0]
            r.noc_power_w = base.total_w
            r.ipc_per_watt = base.ipc_per_watt
            r.power_by_node = [report.to_json() for report in reports]
            points3.append(ParetoPoint3(r.name, r.hm_ipc,
                                        r.noc_area_mm2, base.total_w))
        frontier3 = pareto_frontier3(points3)
        for r in results:
            r.on_frontier3d = r.name in frontier3.frontier
            r.dominated_by_3d = frontier3.dominated_by.get(r.name)

    host = {
        "wall_seconds": sum(profiler.sections.values()),
        "phases": dict(profiler.sections),
        "stages": [s.to_json() for s in stage_reports],
        "tasks": sum(s.tasks for s in stage_reports),
        "executed": sum(s.executed for s in stage_reports),
        "cached": sum(s.cached for s in stage_reports),
    }
    return ExplorationResult(
        preset=spec.name, seed=spec.seed, seed_policy=spec.seed_policy,
        mix=list(spec.mix), round_mix=list(spec.round_mix),
        candidates=results,
        rejected=[{"name": p.name,
                   "violations": [{"rule": v.rule, "reason": v.reason}
                                  for v in p.violations]}
                  for p in rejected_points],
        ranking=ranking,
        frontier=list(frontier.frontier),
        tech_nodes=list(spec.tech_nodes),
        frontier3d=list(frontier3.frontier),
        host=host,
    )
