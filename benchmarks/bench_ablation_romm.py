"""Ablation: checkerboard routing versus ROMM (Section VI).

CR is "similar to 2-phase ROMM" but restricts the intermediate to a
full-router and runs on the cheaper checkerboard mesh.  This bench compares
CP-CR (half-routers) against CP-ROMM (same VC budget, full routers
everywhere): similar performance at ~14 % more router area is the expected
outcome."""

from common import bench_profiles, fmt_pct, once, report, run_design
from repro.area.chip import design_noc_area
from repro.core.builder import CP_CR, CP_ROMM
from repro.system.metrics import harmonic_mean


def _experiment():
    rows = []
    cr, romm = {}, {}
    for prof in bench_profiles():
        cr[prof.abbr] = run_design(prof, CP_CR).ipc
        romm[prof.abbr] = run_design(prof, CP_ROMM).ipc
        rows.append(f"{prof.abbr:4s} ROMM-vs-CR = "
                    f"{fmt_pct(romm[prof.abbr]/cr[prof.abbr]-1)}")
    hm = harmonic_mean(list(romm.values())) / \
        harmonic_mean(list(cr.values())) - 1
    area_cr = design_noc_area(CP_CR).router_sum
    area_romm = design_noc_area(CP_ROMM).router_sum
    rows.append(f"HM: ROMM vs CR = {fmt_pct(hm)}; router area "
                f"{area_romm:.1f} vs {area_cr:.1f} mm2 "
                f"({fmt_pct(area_romm/area_cr-1)})")
    rows.append("(CR trades full-router flexibility it does not need for "
                "a large area saving)")
    return rows


def test_ablation_romm(benchmark):
    report("ablation_romm", once(benchmark, _experiment))
