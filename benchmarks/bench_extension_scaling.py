"""Extension: mesh scaling (the paper's motivation is *future* manycore
accelerators — more cores, the same few MCs).

Scale the chip to an 8x8 mesh (56 compute cores, 8 MCs; the many-to-few
ratio grows from 3.5 to 7) and compare the baseline against the combined
throughput-effective design.  The paper's argument predicts the gap to
*widen* with scale."""

from common import MEASURE, SEED, WARMUP, fmt_pct, once, report
from repro.core.builder import BASELINE, THROUGHPUT_EFFECTIVE
from repro.system.accelerator import build_chip
from repro.system.config import paper_config, scaled_config
from repro.system.metrics import harmonic_mean
from repro.workloads.profiles import profile

SCALE_SET = ("RD", "SCP", "KM", "MUM", "CON", "AES")


def _hm(config, design):
    ipcs = []
    for abbr in SCALE_SET:
        chip = build_chip(profile(abbr), design=design, config=config,
                          seed=SEED)
        ipcs.append(chip.run(WARMUP, MEASURE).ipc)
    return harmonic_mean(ipcs)


def _experiment():
    rows = []
    small = paper_config()
    big = scaled_config(56, 8, 8, 8)
    for label, config in (("6x6 (28 cores / 8 MCs)", small),
                          ("8x8 (56 cores / 8 MCs)", big)):
        base = _hm(config, BASELINE)
        te = _hm(config, THROUGHPUT_EFFECTIVE)
        rows.append(f"{label}: baseline HM IPC {base:7.2f}, "
                    f"throughput-effective {te:7.2f} "
                    f"({fmt_pct(te/base-1)})")
    rows.append("(the many-to-few argument predicts the advantage persists "
                "at scale; compare the two rows)")
    return rows


def test_extension_scaling(benchmark):
    report("extension_scaling", once(benchmark, _experiment))
