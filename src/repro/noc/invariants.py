"""Runtime invariant checking and deadlock diagnosis.

The paper's results rest on cycle-accurate credit-based VC wormhole flow
control; a single silent credit-accounting or VC-ownership error skews every
latency and throughput figure the harness regenerates.  This module is the
simulator's self-check layer, in the spirit of the conservation-style audits
that NoC models use to earn trust:

* **Flit conservation** — every flit a network has accepted is accounted
  for: still streaming out of a source port, buffered in a router, in
  flight on a channel, partially reassembled at ejection, or ejected.
* **Credit conservation** — for every (mesh channel, VC): downstream buffer
  occupancy + sender credits + credits in flight + flits in flight equals
  ``vc_buffer_depth`` exactly.
* **VC discipline** — output-VC ownership and input-VC routing state point
  at each other one-to-one, body flits never lead an unrouted VC, and a
  packet's flits stay contiguous and in order within each VC buffer.
* **Deadlock watchdog** — if a non-idle network moves no flit for K
  consecutive cycles, raise :class:`DeadlockError` with a full
  human-readable state dump (buffers, routes, owners, credits, source
  queues, and the oldest stuck packet with its planned route) instead of a
  bare "failed to drain".

All audits are read-only: enabling them never changes simulation results
(see ``tests/test_invariant_checker.py`` for the bit-for-bit golden test),
and when disabled the hot path pays a single attribute test per cycle.

The closed-loop system adds one more conservation law on top
(:func:`audit_accelerator`): every issued-and-outstanding MSHR line
corresponds to exactly one read-request/reply in flight — in a core's
outbound queue, in the NoC, queued at a memory controller, inside the DRAM
scheduler, or waiting in an MC's reply backlog.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Tuple

from .packet import Flit, Packet, TrafficClass
from .router import NEVER
from .topology import Direction


class InvariantViolation(RuntimeError):
    """An audit found simulator state that breaks a conservation law."""


class DeadlockError(RuntimeError):
    """The network (or chip) stopped making forward progress."""


# ---------------------------------------------------------------------------
# Network audits (read-only)
# ---------------------------------------------------------------------------


def _iter_networks(network) -> List[object]:
    """The physical :class:`MeshNetwork` slices behind ``network`` (a
    MeshNetwork itself, a NetworkSystem, or an ideal network with none)."""
    slices = getattr(network, "networks", None)
    if slices is not None:
        return list(slices)
    if hasattr(network, "routers"):
        return [network]
    return []


def _source_flit_split(net) -> Tuple[int, int, int]:
    """(flits still queued in source FIFOs, flits of partially drained
    packets, packets still queued in source FIFOs) across all nodes."""
    width = net.params.channel_width
    fifo_flits = 0
    fifo_packets = 0
    partial = 0
    for ports in net._sources.values():
        for port in ports:
            fifo_packets += len(port.fifo)
            fifo_flits += sum(p.num_flits(width) for p in port.fifo)
            if port.flits is not None:
                partial += len(port.flits)
    return fifo_flits, partial, fifo_packets


def audit_flit_conservation(net) -> List[str]:
    """Flits offered == queued + injected; injected == draining + buffered
    + in flight + reassembling + ejected."""
    problems: List[str] = []
    stats = net.stats
    fifo_flits, partial, fifo_packets = _source_flit_split(net)

    buffered = 0
    for coord, router in net.routers.items():
        actual = sum(len(vc.buffer) for vcs in router.in_ports.values()
                     for vc in vcs)
        if actual != router.occupancy:
            problems.append(
                f"router {coord}: occupancy counter {router.occupancy} != "
                f"{actual} flits actually buffered")
        buffered += actual

    in_flight = sum(ch.flits_in_flight() for ch in net.channels)
    reassembling = sum(net._reassembly.values())

    accounted = (partial + buffered + in_flight + reassembling
                 + stats.flits_ejected)
    if stats.flits_injected != accounted:
        problems.append(
            f"flit conservation broken: injected={stats.flits_injected} != "
            f"draining={partial} + buffered={buffered} + "
            f"in-flight={in_flight} + reassembling={reassembling} + "
            f"ejected={stats.flits_ejected} (= {accounted})")
    if stats.flits_offered != fifo_flits + stats.flits_injected:
        problems.append(
            f"offered/injected skew: offered={stats.flits_offered} != "
            f"source-queued={fifo_flits} + injected={stats.flits_injected}")
    if stats.packets_offered != fifo_packets + stats.packets_injected:
        problems.append(
            f"offered/injected packet skew: offered={stats.packets_offered}"
            f" != source-queued={fifo_packets} + "
            f"injected={stats.packets_injected}")
    if net._source_flits != fifo_flits + partial:
        problems.append(
            f"source-flit counter {net._source_flits} != queued "
            f"{fifo_flits} + draining {partial}")
    occupancy_sum = sum(net._source_occupancy.values())
    if occupancy_sum != net._source_flits:
        problems.append(
            f"per-node source occupancy sums to {occupancy_sum}, counter "
            f"says {net._source_flits}")
    if net._buffered_flits != buffered:
        problems.append(
            f"buffered-flit counter {net._buffered_flits} != {buffered} "
            f"flits actually buffered across routers")

    # The power model's activity counters (DESIGN.md §17) obey exact
    # mid-run identities: every switch grant reads one buffered flit;
    # writes minus reads is precisely what is still buffered; and every
    # link delivery was first sent (the gap is the flits in flight).
    if stats.crossbar_traversals != stats.buffer_reads:
        problems.append(
            f"activity counter skew: crossbar_traversals="
            f"{stats.crossbar_traversals} != buffer_reads="
            f"{stats.buffer_reads}")
    if stats.buffer_writes - stats.buffer_reads != buffered:
        problems.append(
            f"activity counter skew: buffer_writes={stats.buffer_writes} "
            f"- buffer_reads={stats.buffer_reads} != {buffered} flits "
            f"buffered")
    carried = sum(ch.flits_carried for ch in net.channels)
    if stats.link_flit_hops != carried - in_flight:
        problems.append(
            f"activity counter skew: link_flit_hops="
            f"{stats.link_flit_hops} != carried={carried} - "
            f"in-flight={in_flight}")
    return problems


def audit_event_scheduling(net) -> List[str]:
    """Event-core bookkeeping: the per-input VC bitmasks mirror buffer
    occupancy exactly; under the event stepper every occupied router is
    scheduled in the wake heap no later than it could next make progress;
    under the batched stepper the struct-of-arrays mirrors
    (``head_ready``/``va_ok``/``va_need``) match the authoritative object
    state cell for cell — the vectorized screen derives its schedule from
    them, so exact mirrors imply no actionable cell can be skipped."""
    problems: List[str] = []
    batched = getattr(net, "_batched", None)
    for coord, router in net.routers.items():
        progress_now = False
        future_readies: List[int] = []
        for pos, port_id in enumerate(router._input_order):
            mask = router._vc_masks[pos]
            for vc_idx, vc_state in enumerate(router.in_ports[port_id]):
                bit = mask >> vc_idx & 1
                if bit != (1 if vc_state.buffer else 0):
                    problems.append(
                        f"{coord}: VC mask bit for ({port_id}, {vc_idx}) is "
                        f"{bit} but buffer holds {len(vc_state.buffer)} "
                        f"flits")
                if batched is not None:
                    ci = router._soa_base + pos * router.num_vcs + vc_idx
                    cell = f"({port_id}, {vc_idx})"
                    want_ready = (vc_state.buffer[0].ready
                                  if vc_state.buffer else NEVER)
                    if int(batched.head_ready[ci]) != want_ready:
                        problems.append(
                            f"{coord}: SoA head_ready for {cell} is "
                            f"{int(batched.head_ready[ci])}, object state "
                            f"says {want_ready}")
                    want_need = bool(vc_state.buffer) \
                        and vc_state.out_vc is None
                    if bool(batched.va_need[ci]) != want_need:
                        problems.append(
                            f"{coord}: SoA va_need for {cell} is "
                            f"{bool(batched.va_need[ci])}, object state "
                            f"says {want_need}")
                    want_ok = vc_state.out_vc is not None and (
                        router.out_ports[vc_state.out_port]
                        .credits[vc_state.out_vc] > 0)
                    if bool(batched.va_ok[ci]) != want_ok:
                        problems.append(
                            f"{coord}: SoA va_ok for {cell} is "
                            f"{bool(batched.va_ok[ci])}, object state "
                            f"says {want_ok}")
                    if bool(batched.va_blocked[ci]):
                        # A blocked cell must be a va_need head whose VC
                        # allocation provably still fails: every allowed VC
                        # of its output port is owned.  (Exact, not just
                        # conservative: any release on that port flushes
                        # the per-port blocked list.)
                        if not want_need:
                            problems.append(
                                f"{coord}: SoA va_blocked for {cell} set "
                                f"but cell is not awaiting VC allocation")
                        elif len(router._eject_ids) > 1 and \
                                vc_state.out_port is Direction.EJECT:
                            problems.append(
                                f"{coord}: SoA va_blocked for {cell} set "
                                f"on a multi-eject router's eject head")
                        elif vc_state.out_port is not None:
                            if vc_state.out_port is Direction.EJECT:
                                out = router.out_ports[router._eject_ids[0]]
                            else:
                                out = router.out_ports[vc_state.out_port]
                            head = vc_state.buffer[0]
                            allowed = router.vc_config.allowed_vcs(
                                head.packet.traffic_class, head.packet.group)
                            free = [vc for vc in allowed
                                    if out.owner[vc] is None]
                            if free:
                                problems.append(
                                    f"{coord}: SoA va_blocked for {cell} "
                                    f"set but VCs {free} are free on "
                                    f"{out.port_id}")
                if vc_state.buffer:
                    ready = vc_state.buffer[0].ready
                    if ready > net.cycle:
                        future_readies.append(ready)
                    elif vc_state.out_vc is not None and (
                            router.out_ports[vc_state.out_port]
                            .credits[vc_state.out_vc] > 0):
                        # An eligible head with a VC and credits can make
                        # progress next cycle with no external event.
                        progress_now = True
        if net._scan_stepper or batched is not None:
            continue
        if not router.occupancy:
            continue
        # A sleeping occupied router must wake by the earliest cycle it
        # could make progress *without* an external event; heads blocked on
        # credits or on an output-VC release may sleep indefinitely (the
        # unblocking credit/flit arrival re-wakes the router).
        if progress_now:
            deadline = net.cycle + 1
        elif future_readies:
            deadline = min(future_readies)
        else:
            continue
        if router.wake > deadline:
            problems.append(
                f"{coord}: occupied router sleeps until {router.wake}, "
                f"past its progress deadline {deadline}")
        elif (not any(entry == (router.wake, router.net_index)
                      for entry in net._wake_heap)
              and router.net_index not in net._due_next):
            problems.append(
                f"{coord}: occupied router's wake {router.wake} has no "
                f"live heap or due-next entry")
    return problems


def audit_credit_conservation(net) -> List[str]:
    """Per (channel, VC): occupancy + credits + credits/flits in flight
    must equal the buffer depth; terminal ejection credits never go
    negative."""
    problems: List[str] = []
    depth = net.params.vc_buffer_depth
    for ch in net.channels:
        out = ch.src_router.out_ports[ch.src_port]
        in_vcs = ch.dst_router.in_ports[ch.dst_port]
        for vc in range(len(in_vcs)):
            total = (len(in_vcs[vc].buffer) + out.credits[vc]
                     + ch.credits_in_flight(vc) + ch.flits_in_flight(vc))
            if total != depth:
                problems.append(
                    f"credit conservation broken on "
                    f"{ch.src_router.coord}->{ch.dst_router.coord} vc {vc}: "
                    f"buffered={len(in_vcs[vc].buffer)} + "
                    f"credits={out.credits[vc]} + "
                    f"credits-in-flight={ch.credits_in_flight(vc)} + "
                    f"flits-in-flight={ch.flits_in_flight(vc)} = {total}, "
                    f"expected {depth}")
            if not 0 <= out.credits[vc] <= depth:
                problems.append(
                    f"credit counter out of range on "
                    f"{ch.src_router.coord} port {ch.src_port} vc {vc}: "
                    f"{out.credits[vc]} not in [0, {depth}]")
    for coord, router in net.routers.items():
        for port_id, out in router.out_ports.items():
            if out.sink is not None:
                for vc, credits in enumerate(out.credits):
                    if credits < 0:
                        problems.append(
                            f"terminal credit underflow at {coord} port "
                            f"{port_id} vc {vc}: {credits}")
    return problems


def _audit_vc_buffer(coord, port_id, vc_idx, buffer) -> List[str]:
    """Flits in one VC buffer must form contiguous in-order runs: only the
    first run may start mid-packet (its head already departed downstream);
    a new packet may begin only after the previous one's tail."""
    problems: List[str] = []
    where = f"{coord} port {port_id} vc {vc_idx}"
    prev: Optional[Flit] = None
    for flit in buffer:
        if prev is None:
            pass                         # first run may be a continuation
        elif flit.packet.pid == prev.packet.pid:
            if flit.index != prev.index + 1:
                problems.append(
                    f"out-of-order flits at {where}: {prev!r} then {flit!r}")
        else:
            if not prev.is_tail:
                problems.append(
                    f"interleaved packets at {where}: {flit!r} follows "
                    f"non-tail {prev!r}")
            if not flit.is_head:
                problems.append(
                    f"new packet starts mid-buffer without head at "
                    f"{where}: {flit!r}")
        prev = flit
    return problems


def audit_vc_discipline(net) -> List[str]:
    """Ownership/routing cross-consistency, body-flit discipline, buffer
    bounds, and per-VC packet contiguity."""
    problems: List[str] = []
    depth = net.params.vc_buffer_depth
    for coord, router in net.routers.items():
        # Output ownership -> input routing state.
        owners: Dict[Tuple[object, int], Tuple[object, int]] = {}
        for port_id, out in router.out_ports.items():
            for vc, owner in enumerate(out.owner):
                if owner is None:
                    continue
                in_port, in_vc = owner
                owners[(in_port, in_vc)] = (port_id, vc)
                state = router.in_ports.get(in_port, [None] * 0)
                if in_vc >= len(state) or state[in_vc] is None:
                    problems.append(
                        f"{coord}: output {port_id} vc {vc} owned by "
                        f"nonexistent input ({in_port}, {in_vc})")
                    continue
                vc_state = state[in_vc]
                if vc_state.out_port != port_id or vc_state.out_vc != vc:
                    problems.append(
                        f"{coord}: output {port_id} vc {vc} owner "
                        f"({in_port}, {in_vc}) points elsewhere "
                        f"(out_port={vc_state.out_port}, "
                        f"out_vc={vc_state.out_vc})")
        # Input routing state -> output ownership, plus flit discipline.
        for port_id, vcs in router.in_ports.items():
            for vc_idx, vc_state in enumerate(vcs):
                if len(vc_state.buffer) > depth:
                    problems.append(
                        f"buffer overflow at {coord} port {port_id} vc "
                        f"{vc_idx}: {len(vc_state.buffer)} > {depth}")
                if vc_state.out_vc is not None:
                    expected = owners.get((port_id, vc_idx))
                    if expected != (vc_state.out_port, vc_state.out_vc):
                        problems.append(
                            f"{coord}: input ({port_id}, {vc_idx}) claims "
                            f"output ({vc_state.out_port}, "
                            f"{vc_state.out_vc}) but ownership says "
                            f"{expected}")
                if (vc_state.buffer and not vc_state.buffer[0].is_head
                        and vc_state.out_port is None):
                    problems.append(
                        f"body flit leads unrouted VC at {coord} port "
                        f"{port_id} vc {vc_idx}: {vc_state.buffer[0]!r}")
                problems.extend(_audit_vc_buffer(
                    coord, port_id, vc_idx, vc_state.buffer))
    return problems


def audit_network(net) -> List[str]:
    """Run every audit on one physical network; returns problem strings."""
    return (audit_flit_conservation(net)
            + audit_credit_conservation(net)
            + audit_vc_discipline(net)
            + audit_event_scheduling(net))


def check_network(net) -> None:
    """Raise :class:`InvariantViolation` (with a state dump) on any audit
    failure."""
    problems = audit_network(net)
    if problems:
        raise InvariantViolation(
            f"invariant violation in network {net.name!r} at cycle "
            f"{net.cycle}:\n  - " + "\n  - ".join(problems)
            + "\n" + format_network_state(net))


def audit_system(system) -> List[str]:
    """Audit every physical slice of a network system."""
    problems = []
    for net in _iter_networks(system):
        problems.extend(f"[{net.name}] {p}" for p in audit_network(net))
    return problems


# ---------------------------------------------------------------------------
# State dumps
# ---------------------------------------------------------------------------


def _fmt_flits(buffer: Iterable[Flit], limit: int = 12) -> str:
    flits = list(buffer)
    body = ", ".join(repr(f) for f in flits[:limit])
    if len(flits) > limit:
        body += f", ... +{len(flits) - limit}"
    return f"[{body}]"


def planned_route(net, packet: Packet, start) -> List[object]:
    """The hop sequence the routing algorithm would send ``packet`` on from
    ``start``.  Walks a copy of the packet so stateful algorithms (e.g.
    two-phase ROMM) are not perturbed — dumps stay read-only."""
    probe = copy.copy(packet)
    route: List[object] = []
    coord = start
    for _ in range(4 * net.mesh.num_nodes):
        try:
            direction = net.routing.next_port(coord, probe)
        except Exception as exc:                       # diagnostic only
            route.append(f"<route error: {exc}>")
            return route
        if direction is Direction.EJECT:
            route.append("EJECT")
            return route
        coord = coord.neighbor(direction)
        route.append(coord)
    route.append("<route does not terminate>")
    return route


def _oldest_stuck_packet(net):
    """(packet, location string, coord to plan the rest of the route from)
    for the oldest flit-carrying packet still inside the network, or
    (None, '', None)."""
    oldest: Optional[Packet] = None
    where = ""
    origin = None

    def consider(packet, location, coord):
        nonlocal oldest, where, origin
        if oldest is None or (packet.created, packet.pid) < (
                oldest.created, oldest.pid):
            oldest, where, origin = packet, location, coord
    for coord, router in net.routers.items():
        for port_id, vcs in router.in_ports.items():
            for vc_idx, vc_state in enumerate(vcs):
                if vc_state.buffer:
                    consider(vc_state.buffer[0].packet,
                             f"router {coord} in-port {port_id} vc {vc_idx}",
                             coord)
    for ch in net.channels:
        for flit, vc in ch.peek_flits():
            consider(flit.packet,
                     f"channel {ch.src_router.coord}->"
                     f"{ch.dst_router.coord} vc {vc}",
                     ch.dst_router.coord)
    for coord, ports in net._sources.items():
        for port in ports:
            if port.flits:
                consider(port.flits[0].packet,
                         f"source {coord} (draining, vc {port.vc})", coord)
            elif port.fifo:
                consider(port.fifo[0], f"source {coord} (queued)", coord)
    return oldest, where, origin


def format_network_state(net, max_flits: int = 12) -> str:
    """Human-readable dump of every non-empty piece of network state."""
    lines = [f"=== state of network {net.name!r} at cycle {net.cycle} ==="]
    stats = net.stats
    lines.append(
        f"offered {stats.packets_offered} pkt / {stats.flits_offered} flit"
        f"; injected {stats.packets_injected} / {stats.flits_injected}"
        f"; ejected {stats.packets_ejected} / {stats.flits_ejected}"
        f"; source-queued {net._source_flits} flits")
    for coord, router in sorted(net.routers.items(),
                                key=lambda kv: (kv[0].y, kv[0].x)):
        port_lines = []
        for port_id in sorted(router.in_ports, key=str):
            for vc_idx, vc_state in enumerate(router.in_ports[port_id]):
                if not (vc_state.buffer or vc_state.out_port is not None):
                    continue
                port_lines.append(
                    f"  in  {port_id} vc{vc_idx}: "
                    f"route={vc_state.out_port} out_vc={vc_state.out_vc} "
                    f"flits={_fmt_flits(vc_state.buffer, max_flits)}")
        for port_id in sorted(router.out_ports, key=str):
            out = router.out_ports[port_id]
            if out.sink is not None and all(o is None for o in out.owner):
                continue
            port_lines.append(
                f"  out {port_id}: credits={out.credits} "
                f"owners={out.owner}")
        if port_lines or router.occupancy:
            kind = "half" if router.spec.half else "full"
            lines.append(f"router {coord} [{kind}] "
                         f"occupancy={router.occupancy}")
            lines.extend(port_lines)
    for ch in net.channels:
        if ch.busy:
            lines.append(
                f"channel {ch.src_router.coord}->{ch.dst_router.coord}: "
                f"{ch.flits_in_flight()} flits / "
                f"{ch.credits_in_flight()} credits in flight")
    for coord, ports in sorted(net._sources.items(),
                               key=lambda kv: (kv[0].y, kv[0].x)):
        for port in ports:
            if port.fifo or port.flits:
                draining = (f", draining p{port.flits[0].packet.pid} "
                            f"({len(port.flits)} flits left on vc {port.vc})"
                            if port.flits else "")
                lines.append(
                    f"source {coord} port {port.port_id}: "
                    f"{len(port.fifo)} packets queued{draining}")
    packet, where, origin = _oldest_stuck_packet(net)
    if packet is not None:
        lines.append(
            f"oldest stuck packet: p{packet.pid} "
            f"{packet.traffic_class.name} {packet.src}->{packet.dest} "
            f"group={packet.group.value} phase={packet.phase} "
            f"created={packet.created} injected={packet.injected} "
            f"at {where}")
        # Plan the rest of the route from wherever the packet is stuck.
        hops = planned_route(net, packet, origin)
        lines.append(f"  planned route from {origin}: "
                     + " -> ".join(str(h) for h in hops))
    return "\n".join(lines)


def format_system_state(system) -> str:
    """Dump every physical network slice of a system."""
    return "\n".join(format_network_state(net)
                     for net in _iter_networks(system))


# ---------------------------------------------------------------------------
# Per-network checker (periodic audit + deadlock watchdog)
# ---------------------------------------------------------------------------


class InvariantChecker:
    """Opt-in runtime checker attached to one :class:`MeshNetwork`.

    ``check_interval`` > 0 runs the full audit every that many cycles;
    ``watchdog_cycles`` > 0 arms the deadlock watchdog: if the network is
    non-idle and no flit moves for that many consecutive cycles, a
    :class:`DeadlockError` is raised with a full state dump.  Both paths
    are read-only, so enabling them cannot change simulation results.
    """

    def __init__(self, network, check_interval: int = 0,
                 watchdog_cycles: int = 0) -> None:
        if check_interval < 0 or watchdog_cycles < 0:
            raise ValueError("check intervals must be non-negative")
        self.network = network
        self.check_interval = check_interval
        self.watchdog_cycles = watchdog_cycles
        self.audits_run = 0
        self._stalled_cycles = 0
        self._last_motion = -1

    # A monotone counter that advances whenever any flit moves: pops off a
    # source FIFO or drains into a router (injected - draining), traverses
    # a switch into a channel (flits_carried), or ejects (ejected +
    # partial reassembly).  Channel *delivery* is not counted, but it
    # always follows a send within channel-latency cycles, so a stalled
    # counter with a non-idle network means no flit is moving at all.
    def _motion(self) -> int:
        net = self.network
        stats = net.stats
        _fifo, partial, _pkts = _source_flit_split(net)
        carried = sum(ch.flits_carried for ch in net.channels)
        reassembling = sum(net._reassembly.values())
        return (stats.flits_injected - partial + carried
                + stats.flits_ejected + reassembling)

    def audit(self) -> None:
        """Run the full audit now; raises on violation."""
        self.audits_run += 1
        check_network(self.network)

    def on_cycle(self, cycle: int) -> None:
        """Called by the network at the end of every cycle when enabled."""
        if self.watchdog_cycles:
            motion = self._motion()
            if motion != self._last_motion:
                self._last_motion = motion
                self._stalled_cycles = 0
            elif not self.network.idle:
                self._stalled_cycles += 1
                if self._stalled_cycles >= self.watchdog_cycles:
                    raise DeadlockError(
                        f"no flit moved in network "
                        f"{self.network.name!r} for "
                        f"{self._stalled_cycles} non-idle cycles "
                        f"(deadlock)\n"
                        + format_network_state(self.network))
        if self.check_interval and cycle % self.check_interval == 0:
            self.audit()


# ---------------------------------------------------------------------------
# System-level (closed-loop) conservation audit
# ---------------------------------------------------------------------------


def _is_read_request(packet: Packet) -> bool:
    return (packet.traffic_class is TrafficClass.REQUEST
            and packet.size_bytes <= 8)


def _token_key(packet: Packet):
    token = packet.payload
    core = getattr(token, "core", None)
    line = getattr(token, "line_addr", None)
    if core is None or line is None:
        return None
    return (core, line)


def _network_packets(net) -> Dict[int, Packet]:
    """Every distinct packet with at least one flit inside ``net``
    (source queues, router buffers, channels)."""
    packets: Dict[int, Packet] = {}
    for ports in net._sources.values():
        for port in ports:
            for pkt in port.fifo:
                packets[pkt.pid] = pkt
            if port.flits:
                pkt = port.flits[0].packet
                packets[pkt.pid] = pkt
    for router in net.routers.values():
        for vcs in router.in_ports.values():
            for vc_state in vcs:
                for flit in vc_state.buffer:
                    packets[flit.packet.pid] = flit.packet
    for ch in net.channels:
        for flit, _vc in ch.peek_flits():
            packets[flit.packet.pid] = flit.packet
    return packets


def audit_accelerator(accel) -> List[str]:
    """Closed-loop conservation: every issued-and-outstanding MSHR line has
    exactly one read request/reply in flight, and vice versa."""
    problems: List[str] = []

    expected: Dict[Tuple[object, int], int] = {}
    for core in accel.cores:
        for line in core.mshrs.issued_lines():
            key = (core.coord, line)
            expected[key] = expected.get(key, 0) + 1
            if expected[key] > 1:
                problems.append(
                    f"core {core.coord}: duplicate MSHR entry for line "
                    f"{line:#x}")

    found: Dict[Tuple[object, int], int] = {}
    def record(packet: Packet, location: str) -> None:
        key = _token_key(packet)
        if key is None:
            problems.append(
                f"{location}: packet p{packet.pid} carries no memory token")
            return
        found[key] = found.get(key, 0) + 1

    for core in accel.cores:
        for packet in core.outbound:
            if _is_read_request(packet):
                record(packet, f"core {core.coord} outbound")
    for net in _iter_networks(accel.network):
        for packet in _network_packets(net).values():
            if _is_read_request(packet):
                record(packet, f"network {net.name}")
            elif packet.traffic_class is TrafficClass.REPLY:
                record(packet, f"network {net.name} (reply)")
    for mc in accel.mcs:
        for packet in mc.pending_request_packets():
            if _is_read_request(packet):
                record(packet, f"MC {mc.coord} input queue")
        for request in mc.dram.outstanding_requests():
            if not request.is_write and request.payload is not None:
                record(request.payload, f"MC {mc.coord} DRAM queue")
        for packet in mc.queued_replies():
            record(packet, f"MC {mc.coord} reply backlog")

    for key, count in expected.items():
        got = found.get(key, 0)
        if got != count:
            coord, line = key
            problems.append(
                f"request conservation broken: core {coord} line "
                f"{line:#x} has {count} issued MSHR entr"
                f"{'y' if count == 1 else 'ies'} but {got} packets in "
                f"flight")
    for key, count in found.items():
        if key not in expected:
            coord, line = key
            problems.append(
                f"orphan in-flight request: core {coord} line {line:#x} "
                f"({count} packet(s)) has no outstanding MSHR entry")

    problems.extend(audit_system(accel.network))
    return problems


def check_accelerator(accel) -> None:
    """Raise :class:`InvariantViolation` on any closed-loop audit failure."""
    problems = audit_accelerator(accel)
    if problems:
        raise InvariantViolation(
            f"system invariant violation at interconnect cycle "
            f"{accel.icnt_cycle}:\n  - " + "\n  - ".join(problems)
            + "\n" + format_system_state(accel.network))
