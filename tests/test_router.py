"""Unit tests for the VC wormhole router."""

import pytest

from repro.noc.channel import Channel
from repro.noc.packet import TrafficClass, read_reply, read_request
from repro.noc.router import (Router, RouterSpec, RoutingViolation,
                              full_connectivity, half_connectivity)
from repro.noc.routing import DorXY
from repro.noc.topology import (Coord, Direction, Mesh, ejection_port,
                                injection_port)
from repro.noc.vc import shared_vc_config

MESH = Mesh(6, 6)


class TestConnectivity:
    def test_full_allows_turns(self):
        assert full_connectivity(Direction.WEST, Direction.NORTH)
        assert full_connectivity(Direction.SOUTH, Direction.EAST)

    def test_full_allows_straight_through(self):
        assert full_connectivity(Direction.WEST, Direction.EAST)
        assert full_connectivity(Direction.NORTH, Direction.SOUTH)

    def test_full_forbids_uturn(self):
        for d in (Direction.NORTH, Direction.SOUTH, Direction.EAST,
                  Direction.WEST):
            assert not full_connectivity(d, d)

    def test_full_terminals(self):
        assert full_connectivity(injection_port(), Direction.EAST)
        assert full_connectivity(Direction.EAST, ejection_port())
        assert not full_connectivity(Direction.EAST, injection_port())

    def test_half_straight_through_only(self):
        assert half_connectivity(Direction.EAST, Direction.WEST)
        assert half_connectivity(Direction.WEST, Direction.EAST)
        assert half_connectivity(Direction.NORTH, Direction.SOUTH)
        assert half_connectivity(Direction.SOUTH, Direction.NORTH)

    def test_half_forbids_dimension_change(self):
        assert not half_connectivity(Direction.EAST, Direction.NORTH)
        assert not half_connectivity(Direction.EAST, Direction.SOUTH)
        assert not half_connectivity(Direction.NORTH, Direction.EAST)
        assert not half_connectivity(Direction.SOUTH, Direction.WEST)

    def test_half_injection_fully_connected(self):
        for d in (Direction.NORTH, Direction.SOUTH, Direction.EAST,
                  Direction.WEST):
            assert half_connectivity(injection_port(), d)
        assert half_connectivity(injection_port(), ejection_port())

    def test_half_ejection_reachable_from_all(self):
        for d in (Direction.NORTH, Direction.SOUTH, Direction.EAST,
                  Direction.WEST):
            assert half_connectivity(d, ejection_port())


def make_router(coord=Coord(2, 2), half=False, latency=4, inj=1, ej=1,
                vcs_per_class=1, depth=8):
    spec = RouterSpec(coord, half=half, pipeline_latency=latency,
                      num_inject_ports=inj, num_eject_ports=ej)
    router = Router(spec, shared_vc_config(vcs_per_class), depth, DorXY(MESH))
    router.attach_ejection(sink=object())
    for direction, neighbor in MESH.neighbors(coord):
        out = Channel()
        out.connect(router, direction, _NullRouter(), direction.opposite())
        router.attach_output_channel(direction, out)
        inc = Channel()
        router.attach_input_channel(direction.opposite().opposite()
                                    if False else direction, inc)
    router.finalize()
    return router


class _NullRouter:
    def deliver_flit(self, port, vc, flit, cycle):
        self.last = (port, vc, flit, cycle)

    def deliver_credit(self, port, vc):
        pass


class TestRouterBasics:
    def test_idle_router_does_nothing(self):
        router = make_router()
        assert router.step(1) == []
        assert router.occupancy == 0

    def test_local_delivery_via_ejection(self):
        router = make_router()
        packet = read_request(Coord(2, 2), Coord(2, 2), created=0)
        packet.group = packet.group  # plan not needed for DOR ANY
        (flit,) = packet.make_flits(16)
        router.deliver_flit(injection_port(), 0, flit, 0)
        ejected = []
        for cycle in range(1, 12):
            ejected += router.step(cycle)
        assert len(ejected) == 1
        assert ejected[0][0] is flit

    def test_pipeline_latency_respected(self):
        router = make_router(latency=4)
        packet = read_request(Coord(2, 2), Coord(2, 2), created=0)
        (flit,) = packet.make_flits(16)
        router.deliver_flit(injection_port(), 0, flit, 0)
        # ready = 0 + 4, so steps 1..3 must not eject.
        for cycle in range(1, 4):
            assert router.step(cycle) == []
        assert len(router.step(4)) == 1

    def test_one_cycle_router_is_faster(self):
        router = make_router(latency=1)
        packet = read_request(Coord(2, 2), Coord(2, 2), created=0)
        (flit,) = packet.make_flits(16)
        router.deliver_flit(injection_port(), 0, flit, 0)
        assert len(router.step(1)) == 1

    def test_buffer_overflow_detected(self):
        router = make_router(depth=2)
        packet = read_reply(Coord(0, 2), Coord(5, 2), created=0)
        flits = packet.make_flits(16)
        router.deliver_flit(Direction.WEST, 0, flits[0], 0)
        router.deliver_flit(Direction.WEST, 0, flits[1], 0)
        with pytest.raises(RuntimeError):
            router.deliver_flit(Direction.WEST, 0, flits[2], 0)

    def test_occupancy_tracking(self):
        router = make_router()
        packet = read_reply(Coord(2, 2), Coord(2, 2), created=0)
        for flit in packet.make_flits(16):
            router.deliver_flit(injection_port(), 0, flit, 0)
        assert router.occupancy == 4
        for cycle in range(1, 20):
            router.step(cycle)
        assert router.occupancy == 0


class TestHalfRouterEnforcement:
    def test_illegal_turn_raises(self):
        router = make_router(coord=Coord(2, 3), half=True)  # parity 1
        # Packet arriving from the WEST heading NORTH would need a turn.
        packet = read_request(Coord(0, 3), Coord(2, 0), created=0)
        (flit,) = packet.make_flits(16)
        router.deliver_flit(Direction.WEST, 0, flit, 0)
        with pytest.raises(RoutingViolation):
            for cycle in range(1, 10):
                router.step(cycle)

    def test_straight_through_allowed(self):
        router = make_router(coord=Coord(2, 3), half=True)
        packet = read_request(Coord(0, 3), Coord(5, 3), created=0)
        (flit,) = packet.make_flits(16)
        router.deliver_flit(Direction.WEST, 0, flit, 0)
        for cycle in range(1, 10):
            router.step(cycle)
        assert router.occupancy == 0   # forwarded out the EAST channel


class TestMultiPortEjection:
    def test_two_ejection_ports_double_bandwidth(self):
        """Two packets destined locally can eject in parallel."""
        router1 = make_router(ej=1, vcs_per_class=2)
        router2 = make_router(ej=2, vcs_per_class=2)
        counts = {}
        for router in (router1, router2):
            for port, src in ((Direction.WEST, Coord(0, 2)),
                              (Direction.EAST, Coord(5, 2))):
                packet = read_request(src, Coord(2, 2), created=0)
                (flit,) = packet.make_flits(16)
                router.deliver_flit(port, 0, flit, 0)
            first = None
            for cycle in range(1, 10):
                out = router.step(cycle)
                if out and first is None:
                    first = len(out)
            counts[router] = first
        assert counts[router1] == 1
        assert counts[router2] == 2


class TestFreeVcFairness:
    """Regression tests for the shared-rotation-pointer bug: one pointer
    reused modulo different ``allowed`` tuples biased the pick and could
    starve a VC whenever two classes allocated through the same port."""

    @staticmethod
    def out_port(num_vcs=4):
        from repro.noc.router import _OutputPort
        return _OutputPort(Direction.EAST, num_vcs, buffer_depth=8,
                           channel=Channel())

    def test_rotates_within_one_class(self):
        port = self.out_port()
        picks = [port.free_vc((0, 1)) for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_classes_rotate_independently(self):
        port = self.out_port()
        picks = [port.free_vc(allowed)
                 for allowed in ((0, 1), (2, 3), (0, 1), (2, 3))]
        # The buggy shared pointer produced [0, 3, 0, 3], starving VCs
        # 1 and 2 whenever the classes interleaved like this.
        assert picks == [0, 2, 1, 3]

    def test_skips_busy_vcs(self):
        port = self.out_port()
        port.owner[0] = (Direction.WEST, 0)
        assert port.free_vc((0, 1)) == 1
        assert port.free_vc((0, 1)) == 1     # 0 still busy, keep serving 1
        port.owner[1] = (Direction.WEST, 1)
        assert port.free_vc((0, 1)) is None

    def test_both_vcs_of_each_class_used_under_contention(self):
        """Drive requests and replies down one path; every VC of both
        classes must see traffic (the starved-VC symptom of the old bug)."""
        from repro.noc.network import MeshNetwork, NocParams

        mesh = Mesh(4, 1)
        params = NocParams(channel_width=16, source_queue_flits=None)
        specs = {c: RouterSpec(c, pipeline_latency=1)
                 for c in mesh.coords()}
        net = MeshNetwork(mesh, specs, params, shared_vc_config(2),
                          DorXY(mesh), seed=1)
        dest = Coord(3, 0)
        net.set_ejection_handler(dest, lambda p, c: None)
        seen = set()
        watched = net.routers[Coord(2, 0)].in_ports[Direction.WEST]
        for i in range(60):
            net.try_inject(read_request(Coord(0, 0), dest), net.cycle)
            net.try_inject(read_reply(Coord(0, 0), dest), net.cycle)
            net.step()
            seen.update(vc for vc, state in enumerate(watched)
                        if state.buffer)
        net.run_until_idle()
        assert seen == {0, 1, 2, 3}
