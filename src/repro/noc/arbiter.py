"""Round-robin arbiters and the separable (iSLIP-style) switch allocator.

The baseline router uses an iSLIP allocator (Table III).  We implement a
single-iteration separable input-first allocator with the iSLIP pointer
update rule: a round-robin pointer only advances past a requester when that
requester is granted, which gives the allocator its fairness and
desynchronization properties.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple


class RoundRobinArbiter:
    """Round-robin arbiter over an arbitrary, stable set of client keys."""

    def __init__(self, clients: Sequence[Hashable]) -> None:
        self._clients: List[Hashable] = list(clients)
        self._pointer = 0

    @property
    def clients(self) -> Sequence[Hashable]:
        return tuple(self._clients)

    def arbitrate(self, requests: Iterable[Hashable],
                  advance: bool = True) -> Optional[Hashable]:
        """Grant one of ``requests``.

        ``requests`` must be a subset of the client set.  With ``advance``
        (the iSLIP rule) the pointer moves one past the winner.
        """
        request_set = set(requests)
        if not request_set:
            return None
        n = len(self._clients)
        for offset in range(n):
            candidate = self._clients[(self._pointer + offset) % n]
            if candidate in request_set:
                if advance:
                    self._pointer = (self._pointer + offset + 1) % n
                return candidate
        raise ValueError(f"requests {request_set!r} not among clients")


class SeparableAllocator:
    """Single-iteration input-first separable allocator.

    Stage 1 (input arbitration): each input port picks one of its requesting
    VCs.  Stage 2 (output arbitration): each output port picks one winning
    input among the stage-1 survivors that target it.  Pointers follow the
    iSLIP update rule: they advance only on a stage-2 grant, so an input VC
    that won stage 1 but lost stage 2 keeps priority.
    """

    def __init__(self, input_ports: Sequence[Hashable],
                 vcs_per_input: int,
                 output_ports: Sequence[Hashable]) -> None:
        self._input_arbiters: Dict[Hashable, RoundRobinArbiter] = {
            port: RoundRobinArbiter(range(vcs_per_input))
            for port in input_ports
        }
        self._output_arbiters: Dict[Hashable, RoundRobinArbiter] = {
            port: RoundRobinArbiter(list(input_ports)) for port in output_ports
        }

    def allocate(
        self,
        requests: Dict[Hashable, Dict[int, Hashable]],
    ) -> List[Tuple[Hashable, int, Hashable]]:
        """Allocate the crossbar for one cycle.

        ``requests`` maps input port -> {vc index -> requested output port}.
        Returns a list of (input port, vc, output port) grants such that each
        input port and each output port appears at most once.
        """
        # Stage 1: per-input VC selection (do not advance pointers yet; the
        # iSLIP rule updates pointers only on a full grant).
        stage1: Dict[Hashable, Tuple[int, Hashable]] = {}
        for in_port, vc_requests in requests.items():
            if not vc_requests:
                continue
            arbiter = self._input_arbiters[in_port]
            vc = arbiter.arbitrate(vc_requests.keys(), advance=False)
            if vc is not None:
                stage1[in_port] = (vc, vc_requests[vc])

        # Stage 2: per-output arbitration among stage-1 survivors.
        by_output: Dict[Hashable, List[Hashable]] = {}
        for in_port, (_vc, out_port) in stage1.items():
            by_output.setdefault(out_port, []).append(in_port)

        grants: List[Tuple[Hashable, int, Hashable]] = []
        for out_port, contenders in by_output.items():
            winner = self._output_arbiters[out_port].arbitrate(contenders)
            if winner is None:
                continue
            vc, _ = stage1[winner]
            # Advance the winner's input pointer past the granted VC.
            self._input_arbiters[winner].arbitrate([vc], advance=True)
            grants.append((winner, vc, out_port))
        return grants
