"""Tests for open-loop measurement details (LoadLatencyPoint, sweep)."""

import pytest

from repro.core import BASELINE, build, open_loop_variant
from repro.noc.openloop import OpenLoopRunner, sweep_load
from repro.noc.traffic import UniformManyToFew


def fresh_system():
    return build(open_loop_variant(BASELINE))


class TestMeasurement:
    def test_warmup_packets_excluded(self):
        """Only packets created during the measurement window count."""
        system = fresh_system()
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes,
                                UniformManyToFew(system.mc_nodes), 0.02)
        point = runner.run(warmup=300, measure=400)
        # Request+reply pairs: measured count is bounded by what 400 cycles
        # of injection can create (28 nodes x rate x cycles x 2 packets).
        upper = 28 * 0.02 * 400 * 2 * 1.3
        assert point.packets_measured <= upper

    def test_request_latency_below_reply_latency(self):
        """Replies are 4-flit packets with serialization latency."""
        system = fresh_system()
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes,
                                UniformManyToFew(system.mc_nodes), 0.015)
        point = runner.run(warmup=300, measure=700)
        assert point.mean_reply_latency > point.mean_request_latency

    def test_zero_rate_produces_no_packets(self):
        system = fresh_system()
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes,
                                UniformManyToFew(system.mc_nodes), 0.0)
        point = runner.run(warmup=50, measure=100)
        assert point.packets_measured == 0
        assert point.mean_latency == float("inf")
        assert point.saturated   # degenerate: nothing measured

    def test_offered_rate_recorded(self):
        system = fresh_system()
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes,
                                UniformManyToFew(system.mc_nodes), 0.03)
        assert runner.run(warmup=50, measure=100).offered_rate == 0.03


class TestSweep:
    def test_sweep_builds_fresh_networks(self):
        points = sweep_load(
            fresh_system,
            fresh_system().compute_nodes,
            fresh_system().mc_nodes,
            UniformManyToFew,
            rates=[0.005, 0.02],
            warmup=150, measure=300)
        assert len(points) == 2
        assert points[0].offered_rate == 0.005
        assert points[1].mean_latency >= points[0].mean_latency * 0.8
