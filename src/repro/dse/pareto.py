"""Exact Pareto frontier over (throughput, area).

The paper's Figure 2 is a two-objective trade-off: maximize harmonic-mean
IPC, minimize chip area (the ratio being throughput-effectiveness).  This
module computes the exact non-dominated frontier of a finite point set,
with deterministic tie handling and per-point dominated-by bookkeeping —
the properties pinned by ``tests/test_dse_pareto.py``:

* no frontier member is dominated by any point;
* every non-frontier point is dominated by some frontier member (its
  recorded ``dominated_by``);
* points with identical objectives are all on the frontier;
* the result is independent of input order (points are keyed by name).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate in objective space: ``ipc`` is maximized, ``area``
    minimized."""

    name: str
    ipc: float
    area: float


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both objectives and
    strictly better on at least one."""
    return (a.ipc >= b.ipc and a.area <= b.area
            and (a.ipc > b.ipc or a.area < b.area))


def _strength(point: ParetoPoint) -> Tuple[float, float, str]:
    """Deterministic total order: higher IPC first, then smaller area,
    then name (the tie-breaker that keeps results stable)."""
    return (-point.ipc, point.area, point.name)


@dataclass(frozen=True)
class ParetoResult:
    """Frontier membership and dominance bookkeeping for one point set."""

    #: Frontier member names, strongest first (by IPC desc, area asc, name).
    frontier: Tuple[str, ...]
    #: For every dominated point: the strongest frontier member that
    #: dominates it.  Frontier members are absent from this mapping.
    dominated_by: Dict[str, str]


def pareto_frontier(points: Sequence[ParetoPoint]) -> ParetoResult:
    """Exact frontier of ``points`` (exhaustive pairwise check; spaces are
    at most a few hundred points, so clarity beats an O(n log n) sweep).

    Point names must be unique — they are the keys the exploration result
    uses for bookkeeping."""
    names = [p.name for p in points]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate point names {dupes}")
    ordered = sorted(points, key=_strength)
    frontier: List[str] = []
    dominated_by: Dict[str, str] = {}
    for point in ordered:
        # The strongest dominator ranks before `point` in `ordered`: it has
        # IPC >= point's, and among those the sort puts small areas first.
        dominator = next((other for other in ordered
                          if dominates(other, point)), None)
        if dominator is None:
            frontier.append(point.name)
        else:
            dominated_by[point.name] = dominator.name
    return ParetoResult(tuple(frontier), dominated_by)


# -- three objectives: (IPC max, mm² min, W min) ----------------------------


@dataclass(frozen=True)
class ParetoPoint3:
    """One candidate in (IPC, mm², W) objective space: ``ipc`` is
    maximized, ``area`` and ``watts`` minimized."""

    name: str
    ipc: float
    area: float
    watts: float


def dominates3(a: ParetoPoint3, b: ParetoPoint3) -> bool:
    """True when ``a`` is at least as good as ``b`` on all three
    objectives and strictly better on at least one."""
    return (a.ipc >= b.ipc and a.area <= b.area and a.watts <= b.watts
            and (a.ipc > b.ipc or a.area < b.area or a.watts < b.watts))


def _strength3(point: ParetoPoint3) -> Tuple[float, float, float, str]:
    """Deterministic total order: higher IPC first, then smaller area,
    then smaller watts, then name."""
    return (-point.ipc, point.area, point.watts, point.name)


def pareto_frontier3(points: Sequence[ParetoPoint3]) -> ParetoResult:
    """Exact (IPC, mm², W) frontier with the same dominance/bookkeeping
    contract as :func:`pareto_frontier`: a 2-D frontier's invariants hold
    objective-for-objective, and any point on the 3-D frontier whose
    watts are ignored projects onto or above the 2-D frontier (a superset
    — adding an objective can only *add* non-dominated points)."""
    names = [p.name for p in points]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate point names {dupes}")
    ordered = sorted(points, key=_strength3)
    frontier: List[str] = []
    dominated_by: Dict[str, str] = {}
    for point in ordered:
        dominator = next((other for other in ordered
                          if dominates3(other, point)), None)
        if dominator is None:
            frontier.append(point.name)
        else:
            dominated_by[point.name] = dominator.name
    return ParetoResult(tuple(frontier), dominated_by)
