"""Checkerboard routing (CR), Section IV-B.

The checkerboard organization alternates full- and half-routers; half-routers
cannot turn (change dimension).  Dimension-ordered routes are still possible
for most source/destination pairs by choosing the dimension order whose turn
lands on a full-router; the remaining case — half-router to half-router an
even number of columns away and not in the same row — needs a two-phase
route through a random intermediate full-router: YX to the intermediate,
then XY to the destination.  Because the intermediate lies inside the
minimal quadrant, CR remains a minimal routing algorithm.

Route-group selection is a single header bit, as in the paper; the group
also selects the routing virtual channel (one VC for XY packets, one for YX
packets per protocol class, like O1Turn) which keeps the algorithm deadlock
free: the only group transition is YX -> XY at the intermediate node, so the
VC dependence graph is acyclic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..noc.packet import Packet, RouteGroup, TrafficClass
from ..noc.routing import RoutingAlgorithm
from ..noc.topology import Coord, Direction, Mesh
from .placement import HALF_ROUTER_PARITY


class UnroutableError(RuntimeError):
    """A full-router to full-router pair an odd number of columns (or rows)
    apart cannot be routed in the checkerboard network (Figure 12(a)).
    The architecture avoids this by placing MCs and L2 banks at
    half-routers so full-routers never talk to each other."""


class RouteCase(Enum):
    """Classification of a source/destination pair under CR."""

    LOCAL = "local"              # src == dest
    STRAIGHT = "straight"        # same row or column: no turn needed
    XY = "xy"                    # XY turn node is a full-router
    YX = "yx"                    # YX turn node is a full-router (Case 1)
    TWO_PHASE = "two_phase"      # both turn nodes are half-routers (Case 2)
    UNROUTABLE = "unroutable"    # full-to-full with both turns at halves


def is_half_router(coord: Coord) -> bool:
    """True on the (odd-parity) tiles that get half-routers."""
    return coord.parity() == HALF_ROUTER_PARITY


def classify(src: Coord, dest: Coord) -> RouteCase:
    """Classify the pair according to Section IV-B."""
    if src == dest:
        return RouteCase.LOCAL
    if src.x == dest.x or src.y == dest.y:
        return RouteCase.STRAIGHT
    xy_turn = Coord(dest.x, src.y)
    yx_turn = Coord(src.x, dest.y)
    if not is_half_router(xy_turn):
        return RouteCase.XY
    if not is_half_router(yx_turn):
        return RouteCase.YX
    if not is_half_router(src) and not is_half_router(dest):
        return RouteCase.UNROUTABLE
    return RouteCase.TWO_PHASE


def intermediate_candidates(mesh: Mesh, src: Coord,
                            dest: Coord) -> List[Coord]:
    """Valid intermediate full-routers for a two-phase route: inside the
    minimal quadrant, an even number of columns from the source, and located
    so that both the YX turn of phase one and the XY turn of phase two land
    on full-routers.  (The parity algebra reduces all of that to
    ``ix ≡ sx (mod 2)`` and ``iy ≡ sx (mod 2)``.)"""
    xs = range(min(src.x, dest.x), max(src.x, dest.x) + 1)
    ys = range(min(src.y, dest.y), max(src.y, dest.y) + 1)
    out = []
    for ix in xs:
        if (ix - src.x) % 2:
            continue
        for iy in ys:
            if (iy + src.x) % 2:
                continue
            cand = Coord(ix, iy)
            if cand in (src, dest):
                continue
            out.append(cand)
    return out


class CheckerboardRouting(RoutingAlgorithm):
    """The paper's CR algorithm, implementing the common routing interface."""

    required_route_vcs = 2

    def __init__(self, mesh: Mesh, intermediate_policy: str = "random"
                 ) -> None:
        super().__init__(mesh)
        if intermediate_policy not in ("random", "first"):
            raise ValueError(
                f"unknown intermediate policy {intermediate_policy!r}")
        self.intermediate_policy = intermediate_policy
        self._fallback_rng = random.Random(0xC4)

    def plan(self, packet: Packet,
             rng: Optional[random.Random] = None) -> None:
        rng = rng if rng is not None else self._fallback_rng
        case = classify(packet.src, packet.dest)
        packet.intermediate = None
        packet.phase = 1
        if case in (RouteCase.LOCAL, RouteCase.STRAIGHT, RouteCase.XY):
            packet.group = RouteGroup.XY
        elif case is RouteCase.YX:
            packet.group = RouteGroup.YX
        elif case is RouteCase.TWO_PHASE:
            candidates = intermediate_candidates(
                self.mesh, packet.src, packet.dest)
            if not candidates:
                raise UnroutableError(
                    f"no intermediate full-router for "
                    f"{packet.src}->{packet.dest}")
            if self.intermediate_policy == "first":
                packet.intermediate = candidates[0]
            else:
                packet.intermediate = rng.choice(candidates)
            packet.group = RouteGroup.YX
            packet.phase = 0
        else:
            raise UnroutableError(
                f"{packet.src}->{packet.dest}: full-router pair with both "
                "DOR turn nodes at half-routers")

    def next_port(self, coord: Coord, packet: Packet) -> Direction:
        if packet.phase == 0:
            if coord == packet.intermediate:
                # Second phase begins: switch to the XY group (and VC).
                packet.phase = 1
                packet.group = RouteGroup.XY
            else:
                return self._dor_step(coord, packet.intermediate, "yx")
        order = "yx" if packet.group is RouteGroup.YX else "xy"
        return self._dor_step(coord, packet.dest, order)


@dataclass
class TracedRoute:
    """A fully enumerated route for analysis and testing."""

    path: List[Coord]
    groups: List[RouteGroup]   # group in effect when *leaving* path[i]

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def trace_route(mesh: Mesh, routing: RoutingAlgorithm, src: Coord,
                dest: Coord, rng: Optional[random.Random] = None,
                max_hops: int = 200) -> TracedRoute:
    """Walk a packet hop by hop without simulating the network."""
    packet = Packet(src, dest, 8, traffic_class=TrafficClass.REQUEST)
    routing.plan(packet, rng)
    path = [src]
    groups = []
    coord = src
    for _ in range(max_hops):
        port = routing.next_port(coord, packet)
        groups.append(packet.group)
        if port is Direction.EJECT:
            if coord != dest:
                raise RuntimeError(f"ejected at {coord}, expected {dest}")
            return TracedRoute(path, groups)
        coord = coord.neighbor(port)
        if not mesh.contains(coord):
            raise RuntimeError(f"route left the mesh at {coord}")
        path.append(coord)
    raise RuntimeError(f"route {src}->{dest} exceeded {max_hops} hops")
