#!/usr/bin/env python3
"""Design-space exploration (Figure 2): walk the paper's NoC design points,
simulate a benchmark mix closed-loop on each, and rank the designs by
throughput-effectiveness (IPC/mm²).

Run:  python examples/design_space_exploration.py [--full]

By default a representative 9-benchmark mix (3 per class) keeps the run
under a couple of minutes; --full uses all 31 benchmarks of Table I.
"""

import sys

from repro.area.chip import compute_area_mm2, design_noc_area
from repro.core.builder import (BASELINE, CP_CR, CP_DOR, DOUBLE_BW,
                                DOUBLE_CP_CR, ONE_CYCLE,
                                THROUGHPUT_EFFECTIVE)
from repro.system.accelerator import build_chip, perfect_chip
from repro.system.metrics import harmonic_mean
from repro.workloads.profiles import PROFILES, profile

QUICK_MIX = ("AES", "HSP", "SLA", "CON", "BLK", "TRA", "RD", "MUM", "KM")
DESIGNS = (BASELINE, ONE_CYCLE, DOUBLE_BW, CP_DOR, CP_CR, DOUBLE_CP_CR,
           THROUGHPUT_EFFECTIVE)


def main() -> None:
    full = "--full" in sys.argv
    profiles = list(PROFILES) if full else [profile(a) for a in QUICK_MIX]
    print(f"evaluating {len(DESIGNS)} designs on {len(profiles)} benchmarks "
          "(closed loop)\n")

    rows = []
    for design in DESIGNS:
        ipcs = [build_chip(p, design=design).run(400, 1000).ipc
                for p in profiles]
        hm = harmonic_mean(ipcs)
        area = design_noc_area(design).total_chip
        rows.append((design.name, hm, area, hm / area))
    ideal = harmonic_mean([perfect_chip(p).run(400, 1000).ipc
                           for p in profiles])
    rows.append(("Ideal-NoC", ideal, compute_area_mm2(),
                 ideal / compute_area_mm2()))

    base_te = rows[0][3]
    print(f"{'design':22s} {'HM IPC':>8s} {'chip mm2':>9s} "
          f"{'IPC/mm2':>8s} {'vs baseline':>12s}")
    for name, hm, area, te in sorted(rows, key=lambda r: -r[3]):
        print(f"{name:22s} {hm:8.1f} {area:9.1f} {te:8.4f} "
              f"{te / base_te - 1:+11.1%}")
    print("\nreading the table: designs above the baseline row are "
          "throughput-effective improvements; '2x-TB-DOR' buys IPC with "
          "disproportionate area, 'TB-DOR-1cyc' buys latency nobody needs.")


if __name__ == "__main__":
    main()
