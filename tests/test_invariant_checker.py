"""Tests for the runtime invariant checker and deadlock watchdog.

Three kinds of coverage:

* clean runs — the audits hold under load for every named design, open and
  closed loop, and enabling them never changes results (golden test);
* seeded fault injection — corrupting a credit, a counter, or VC ownership
  is detected and reported with a useful message;
* forced deadlock — a routing cycle on a tiny ring trips the watchdog,
  whose dump names the oldest stuck packet and its planned route.
"""

import random

import pytest

from repro.core.builder import (BASELINE, NAMED_DESIGNS, build,
                                checked_variant, design_by_name)
from repro.noc.invariants import (DeadlockError, InvariantChecker,
                                  InvariantViolation, audit_accelerator,
                                  audit_network, check_network,
                                  format_network_state)
from repro.noc.network import MeshNetwork, NocParams
from repro.noc.packet import RouteGroup, read_reply, read_request
from repro.noc.router import RouterSpec
from repro.noc.routing import DorXY, RoutingAlgorithm
from repro.noc.topology import Coord, Direction, Mesh
from repro.noc.vc import shared_vc_config
from repro.system.accelerator import build_chip
from repro.workloads.profiles import profile


def make_network(cols=4, rows=4, vcs_per_class=2, depth=8, width=16,
                 check_interval=0, watchdog_cycles=0, routing=None,
                 latency=1):
    mesh = Mesh(cols, rows)
    params = NocParams(channel_width=width, vc_buffer_depth=depth,
                       source_queue_flits=None,
                       check_interval=check_interval,
                       watchdog_cycles=watchdog_cycles)
    specs = {c: RouterSpec(c, pipeline_latency=latency)
             for c in mesh.coords()}
    routing = routing or DorXY(mesh)
    net = MeshNetwork(mesh, specs, params, shared_vc_config(vcs_per_class),
                      routing, seed=3)
    for node in mesh.coords():
        net.set_ejection_handler(node, lambda p, c: None)
    return net


def drive_random_traffic(net, packets=120, seed=5):
    rng = random.Random(seed)
    nodes = list(net.mesh.coords())
    for i in range(packets):
        src, dst = rng.sample(nodes, 2)
        p = read_reply(src, dst) if i % 3 else read_request(src, dst)
        net.try_inject(p, net.cycle)
        if i % 4 == 0:
            net.step()


class TestCleanAudits:
    def test_audits_pass_under_load(self):
        net = make_network(check_interval=8)
        drive_random_traffic(net)
        net.run_until_idle()
        assert net.checker.audits_run > 0
        assert audit_network(net) == []

    def test_midflight_audit_every_cycle(self):
        """The conservation laws hold at *every* cycle, not just at drain."""
        net = make_network(check_interval=1, watchdog_cycles=1000)
        drive_random_traffic(net)
        net.run_until_idle()
        assert net.checker.audits_run >= net.cycle

    def test_audits_pass_for_all_named_designs(self):
        prof = profile("RD")
        for name in sorted(NAMED_DESIGNS):
            design = checked_variant(design_by_name(name),
                                     check_interval=32,
                                     watchdog_cycles=20_000)
            chip = build_chip(prof, design=design, seed=11)
            chip.run(warmup=60, measure=120)
            assert chip.audit() == [], name

    def test_network_system_audit_covers_both_slices(self):
        design = checked_variant(design_by_name("Double-CP-CR"),
                                 check_interval=16)
        system = build(design)
        assert len(system.networks) == 2
        for net in system.networks:
            assert net.checker is not None
        assert system.audit() == []


class TestGoldenBitIdentical:
    def test_closed_loop_results_identical_with_checks(self):
        prof = profile("RD")
        base = build_chip(prof, design=BASELINE, seed=11)
        plain = base.run(warmup=80, measure=160)
        checked = build_chip(
            prof, design=checked_variant(BASELINE, check_interval=16,
                                         watchdog_cycles=10_000),
            seed=11)
        audited = checked.run(warmup=80, measure=160)
        assert audited.as_dict() == plain.as_dict()

    def test_open_loop_stats_identical_with_checks(self):
        def run(check_interval):
            net = make_network(check_interval=check_interval)
            drive_random_traffic(net)
            net.run_until_idle()
            return net
        plain, checked = run(0), run(4)
        assert plain.checker is None
        assert checked.checker.audits_run > 0
        for attr in ("cycles", "packets_offered", "flits_offered",
                     "packets_injected", "flits_injected",
                     "packets_ejected", "flits_ejected"):
            assert getattr(checked.stats, attr) == getattr(plain.stats, attr)
        assert (checked.stats.mean_packet_latency()
                == plain.stats.mean_packet_latency())
        assert checked.stats.node_ejected_flits == plain.stats.node_ejected_flits


def quiesced_network():
    net = make_network(check_interval=8)
    drive_random_traffic(net, packets=40)
    net.run_until_idle()
    assert audit_network(net) == []
    return net


def mesh_out_port(net):
    """Some router output port that feeds a mesh channel."""
    router = net.routers[Coord(1, 1)]
    return router.out_ports[Direction.EAST]


class TestFaultInjection:
    def test_stolen_credit_detected(self):
        net = quiesced_network()
        mesh_out_port(net).credits[0] -= 1
        problems = audit_network(net)
        assert any("credit conservation broken" in p for p in problems)
        with pytest.raises(InvariantViolation) as err:
            check_network(net)
        assert "credit conservation broken" in str(err.value)

    def test_counterfeit_credit_detected(self):
        net = quiesced_network()
        mesh_out_port(net).credits[1] += 1
        problems = audit_network(net)
        assert any("credit conservation broken" in p for p in problems)
        assert any("vc 1" in p for p in problems)

    def test_corrupt_flit_counter_detected(self):
        net = quiesced_network()
        net.stats.flits_injected += 1
        problems = audit_network(net)
        assert any("flit conservation broken" in p for p in problems)

    def test_offered_injected_skew_detected(self):
        net = quiesced_network()
        net.stats.flits_offered += 2
        problems = audit_network(net)
        assert any("offered/injected skew" in p for p in problems)

    def test_phantom_vc_owner_detected(self):
        net = quiesced_network()
        mesh_out_port(net).owner[0] = (Direction.WEST, 0)
        problems = audit_network(net)
        assert any("points elsewhere" in p for p in problems)

    def test_corrupt_occupancy_counter_detected(self):
        net = quiesced_network()
        net.routers[Coord(0, 0)].occupancy += 1
        problems = audit_network(net)
        assert any("occupancy counter" in p for p in problems)

    def test_checker_audit_raises_with_dump(self):
        net = quiesced_network()
        mesh_out_port(net).credits[0] -= 1
        with pytest.raises(InvariantViolation) as err:
            net.checker.audit()
        assert "=== state of network" in str(err.value)


class ClockwiseRing(RoutingAlgorithm):
    """Routes every packet clockwise around the 2x2 perimeter; a textbook
    cyclic channel dependency with no VC escape — guaranteed deadlock."""

    _STEP = {
        Coord(0, 0): Direction.EAST,
        Coord(1, 0): Direction.SOUTH,
        Coord(1, 1): Direction.WEST,
        Coord(0, 1): Direction.NORTH,
    }

    def plan(self, packet, rng=None):
        packet.group = RouteGroup.ANY
        packet.intermediate = None
        packet.phase = 1

    def next_port(self, coord, packet):
        if coord == packet.dest:
            return Direction.EJECT
        return self._STEP[coord]


def deadlocked_ring(watchdog_cycles=0):
    """2x2 ring, depth-2 buffers, one 4-flit packet per corner, each headed
    three hops clockwise: every worm holds one channel VC while waiting for
    the next — a hold-and-wait cycle."""
    mesh = Mesh(2, 2)
    net = make_network(cols=2, rows=2, vcs_per_class=1, depth=2,
                       watchdog_cycles=watchdog_cycles,
                       routing=ClockwiseRing(mesh))
    ring = [Coord(0, 0), Coord(1, 0), Coord(1, 1), Coord(0, 1)]
    for i, src in enumerate(ring):
        dest = ring[(i + 3) % 4]      # three clockwise hops away
        net.try_inject(read_reply(src, dest), 0)
    return net


class TestDeadlockWatchdog:
    def test_routing_cycle_trips_watchdog(self):
        net = deadlocked_ring(watchdog_cycles=64)
        with pytest.raises(DeadlockError) as err:
            for _ in range(5_000):
                net.step()
        message = str(err.value)
        assert "no flit moved" in message
        assert "oldest stuck packet" in message
        assert "planned route" in message

    def test_dump_names_the_stuck_packet(self):
        net = deadlocked_ring(watchdog_cycles=64)
        pids = {p.pid for ports in net._sources.values()
                for port in ports for p in port.fifo}
        with pytest.raises(DeadlockError) as err:
            for _ in range(5_000):
                net.step()
        oldest = min(pids)
        assert f"p{oldest}" in str(err.value)

    def test_run_until_idle_dumps_state(self):
        net = deadlocked_ring()
        with pytest.raises(DeadlockError) as err:
            net.run_until_idle(max_cycles=500)
        message = str(err.value)
        assert "failed to drain" in message
        assert "oldest stuck packet" in message

    def test_watchdog_quiet_on_live_traffic(self):
        net = make_network(watchdog_cycles=32)
        drive_random_traffic(net)
        net.run_until_idle()          # must not raise
        assert net.idle

    def test_checker_rejects_negative_intervals(self):
        net = make_network()
        with pytest.raises(ValueError):
            InvariantChecker(net, check_interval=-1)


class TestSystemAudit:
    @staticmethod
    def chip_with_outstanding_requests():
        design = checked_variant(BASELINE, check_interval=32)
        chip = build_chip(profile("RD"), design=design, seed=11)
        for _ in range(400):
            chip.step()
            if any(core.mshrs.issued_lines() for core in chip.cores):
                break
        assert any(core.mshrs.issued_lines() for core in chip.cores)
        return chip

    def test_request_conservation_holds_midflight(self):
        chip = self.chip_with_outstanding_requests()
        assert audit_accelerator(chip) == []

    def test_vanished_request_detected(self):
        chip = self.chip_with_outstanding_requests()
        core = next(c for c in chip.cores if c.mshrs.issued_lines())
        line = core.mshrs.issued_lines()[0]
        entry = core.mshrs._entries.pop(line)
        problems = audit_accelerator(chip)
        assert any("orphan in-flight request" in p for p in problems)
        core.mshrs._entries[line] = entry
        assert audit_accelerator(chip) == []

    def test_phantom_mshr_detected(self):
        chip = self.chip_with_outstanding_requests()
        core = chip.cores[0]
        entry = core.mshrs.allocate(0xDEAD000, waiter=0)
        entry.issued = True
        problems = audit_accelerator(chip)
        assert any("request conservation broken" in p for p in problems)

    def test_periodic_system_check_runs_clean(self):
        design = checked_variant(BASELINE, check_interval=16)
        chip = build_chip(profile("RD"), design=design, seed=11)
        for _ in range(300):
            chip.step()               # check_accelerator runs inline
        assert chip.audit() == []


class TestStateDump:
    def test_dump_shows_traffic(self):
        net = make_network()
        net.try_inject(read_reply(Coord(0, 0), Coord(3, 3)), 0)
        for _ in range(4):
            net.step()
        dump = format_network_state(net)
        assert "=== state of network" in dump
        assert "oldest stuck packet" in dump
        assert "planned route" in dump

    def test_dump_route_is_read_only(self):
        """Planning the dump's route must not advance ROMM phase state."""
        net = make_network()
        p = read_reply(Coord(0, 0), Coord(3, 3))
        net.try_inject(p, 0)
        for _ in range(4):
            net.step()
        phase_before = p.phase
        format_network_state(net)
        assert p.phase == phase_before


class TestActivityCounterConservation:
    """The power model's always-on counters cross-checked against two
    independent accountings: the per-link flit tracer and the per-packet
    hop traces (DESIGN.md §17)."""

    def traced_drained_network(self):
        from repro.telemetry.trace import PacketTracer
        net = make_network(check_interval=8)
        tracer = PacketTracer()
        net.enable_tracer(tracer)
        drive_random_traffic(net)
        net.run_until_idle()
        assert audit_network(net) == []
        return net, tracer

    def test_link_hops_match_tracer_per_link_counts(self):
        # The tracer counts every flit crossing every channel on its own
        # event hook — fully independent of the stats counter.
        net, tracer = self.traced_drained_network()
        traced = sum(sum(counts) for counts in tracer.link_flits.values())
        assert net.stats.link_flit_hops == traced > 0

    def test_link_hops_match_flits_times_hops_from_traces(self):
        # Per packet: hop records count router arrivals, so link
        # traversals are (hops - 1); each moves the packet's every flit.
        net, tracer = self.traced_drained_network()
        width = net.params.channel_width
        assert tracer.incomplete == 0 and tracer.dropped_traces == 0
        expected = sum(
            (trace.num_hops - 1) * max(1, -(-trace.size_bytes // width))
            for trace in tracer.completed)
        assert net.stats.link_flit_hops == expected

    def test_drained_counters_telescope(self):
        net, _ = self.traced_drained_network()
        stats = net.stats
        # at drain nothing is buffered or staged: reads caught up with
        # writes, and every write was an injection or a link delivery
        assert stats.crossbar_traversals == stats.buffer_reads
        assert stats.buffer_writes == stats.buffer_reads
        assert stats.buffer_writes \
            == stats.flits_injected + stats.link_flit_hops

    def test_corrupt_activity_counter_detected(self):
        net = quiesced_network()
        net.stats.buffer_writes += 1
        problems = audit_network(net)
        assert any("activity counter skew" in p for p in problems)

    def test_corrupt_link_hop_counter_detected(self):
        net = quiesced_network()
        net.stats.link_flit_hops -= 1
        problems = audit_network(net)
        assert any("link_flit_hops" in p for p in problems)
