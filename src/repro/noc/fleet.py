"""Fleet stepper: lockstep multi-simulation batching (DESIGN.md §18).

The batched SoA core (``repro.noc.batched``) vectorizes the per-cycle
screen *within* one network, but a sweep or DSE screen stage runs
hundreds of small independent simulations and each one still pays the
fixed per-cycle interpreter cost alone: four numpy ufunc dispatches, a
``flatnonzero``, and the surrounding Python frames.  On the small meshes
the paper's figures are built from, that fixed cost rivals the useful
per-cell work.

:class:`FleetCore` amortizes it B ways.  It adopts the state arrays of B
member networks into one concatenated buffer — member cores keep numpy
*views* into the fleet buffer, so the router-side mirror writes
(``router._soa``) land in shared state with no copying — and steps the
whole fleet in lockstep: one global ``(head_ready <= now) & (va_ok |
(va_need & ~va_blocked))`` screen over every cell of every member, one
``flatnonzero``, then each member's slice of the candidate vector is
dispatched to its own :meth:`BatchedCore.process_cells` grant pass.

Per-member results are **bit-identical** to solo runs (pinned by the
four-way matrix in ``tests/test_stepper_equivalence.py``): members share
no mutable state, and within a member the fleet phase order differs from
the solo order only by hoisting channel delivery ahead of the screen —
channel delivery touches only its own slice's cells and draws no RNG, so
every cell's screen inputs and every RNG draw keep their solo order.
The invariant checker, tracer and deadlock watchdog run per member,
unchanged.

Lockstep requires equal (warmup, measure) windows and freshly built
(cycle-0) members; :class:`FleetRunner` enforces this, and the packing
pass in ``repro.parallel.run_tasks`` only fleets tasks whose windows and
topology shape agree (seed, rate, pattern and design may differ).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .openloop import LoadLatencyPoint, OpenLoopRunner


class FleetCore:
    """One concatenated SoA state pool over the slices of B member systems.

    ``systems`` are :class:`repro.core.builder.NetworkSystem` instances
    whose slices all run the batched stepper.  Construction re-points each
    member :class:`BatchedCore`'s four state arrays at views of the fleet
    buffer; the member cores stay fully functional solo (their private
    ``_elig``/``_cand`` scratch is untouched), which keeps drain steps and
    post-fleet use working.
    """

    def __init__(self, systems: Sequence) -> None:
        self.systems = list(systems)
        nets = [net for system in self.systems for net in system.networks]
        cores = []
        for net in nets:
            core = net._batched
            if core is None:
                raise ValueError(
                    f"fleet members must run the batched stepper; "
                    f"network {net.name!r} runs {net.stepper_backend!r}")
            cores.append(core)
        self.nets = nets
        self.cores = cores
        sizes = [core.num_cells for core in cores]
        total = sum(sizes)
        self.num_cells = total
        #: First fleet-cell index of each member slice, and the exclusive
        #: end bounds (ascending) used to split the global candidate
        #: vector per slice.
        self.offsets: List[int] = []
        bounds: List[int] = []
        off = 0
        for n in sizes:
            self.offsets.append(off)
            off += n
            bounds.append(off)
        self.bounds = np.asarray(bounds, dtype=np.int64)
        self.head_ready = np.empty(total, dtype=np.int64)
        self.va_ok = np.empty(total, dtype=bool)
        self.va_need = np.empty(total, dtype=bool)
        self.va_blocked = np.empty(total, dtype=bool)
        self._elig = np.empty(total, dtype=bool)
        self._cand = np.empty(total, dtype=bool)
        for k, core in enumerate(cores):
            lo, hi = self.offsets[k], bounds[k]
            for name in ("head_ready", "va_ok", "va_need", "va_blocked"):
                pool = getattr(self, name)
                pool[lo:hi] = getattr(core, name)
                # Basic slices are views: router mirror writes and the
                # member core's own in-place updates land in the pool.
                setattr(core, name, pool[lo:hi])

    def step(self, now: int) -> None:
        """Advance every member one cycle in lockstep.

        Twin of the solo ``NetworkSystem.step`` -> ``_step_batched`` path;
        per member the phase order is channel delivery, grant pass, source
        drain, checker — identical to solo except that *all* slices'
        channel phases run before the shared screen (see module docstring
        for why that preserves bit-identity).
        """
        for system in self.systems:
            system.cycle = now
        nets = self.nets
        for net in nets:
            net.cycle = now
            net.stats.cycles = now
            # Inlined guard (the method re-checks): most low-rate cycles
            # have nothing in flight, and the skipped call frames are the
            # kind of fixed cost the fleet exists to shave.
            if net._active_channels:
                net._batched_channels(now)
        np.less_equal(self.head_ready, now, out=self._elig)
        np.greater(self.va_need, self.va_blocked, out=self._cand)
        np.logical_or(self._cand, self.va_ok, out=self._cand)
        np.logical_and(self._cand, self._elig, out=self._cand)
        idx = np.flatnonzero(self._cand)
        if idx.size:
            splits = np.searchsorted(idx, self.bounds).tolist()
            cores = self.cores
            offsets = self.offsets
            pos = 0
            for k, net in enumerate(nets):
                end = splits[k]
                if end > pos:
                    off = offsets[k]
                    cells = (idx[pos:end].tolist() if off == 0
                             else (idx[pos:end] - off).tolist())
                    cores[k].process_cells(now, cells)
                    pos = end
                if net._source_flits:
                    net._batched_sources(now)
                checker = net.checker
                if checker is not None:
                    checker.on_cycle(now)
        else:
            for net in nets:
                if net._source_flits:
                    net._batched_sources(now)
                checker = net.checker
                if checker is not None:
                    checker.on_cycle(now)

    def detach(self) -> None:
        """Give every member core back private copies of its state arrays
        (the fleet buffer is dropped; members keep working solo either
        way, this just cuts the shared-memory tie)."""
        for core in self.cores:
            for name in ("head_ready", "va_ok", "va_need", "va_blocked"):
                setattr(core, name, getattr(core, name).copy())


class FleetRunner:
    """Drives B :class:`OpenLoopRunner` members in lockstep.

    Members must be freshly built (cycle 0, nothing in flight), share the
    same (warmup, measure) windows — enforced at :meth:`run` — and carry
    no telemetry (the instrumented cycle body is solo-only; the packing
    pass falls back to solo execution for telemetry tasks).  Any member
    not already on the batched stepper is switched to it.
    """

    def __init__(self, runners: Sequence[OpenLoopRunner]) -> None:
        if not runners:
            raise ValueError("empty fleet")
        for runner in runners:
            if runner.telemetry is not None:
                raise ValueError(
                    "fleet members cannot carry telemetry; run solo")
            if runner.network.cycle != 0:
                raise ValueError(
                    "fleet members must be freshly built (cycle 0)")
        for runner in runners:
            if runner.network.stepper_backend != "batched":
                runner.network.use_batched_stepper()
        self.runners = list(runners)
        self.core = FleetCore([r.network for r in runners])

    def run(self, warmup: int = 2_000, measure: int = 6_000,
            drain: int = 0) -> List[LoadLatencyPoint]:
        """Run all members through the shared clock; returns one
        :class:`LoadLatencyPoint` per member, in member order,
        bit-identical to ``member.run(warmup, measure, drain)`` solo."""
        runners = self.runners
        step = self.core.step
        now = 0
        for _ in range(warmup):
            for runner in runners:
                runner._inject_cycle(None)
            now += 1
            step(now)
        for runner in runners:
            runner._measuring = True
            runner._measure_start = runner.network.cycle
        for _ in range(measure):
            for runner in runners:
                runner._inject_cycle("measured")
            now += 1
            step(now)
        for _ in range(drain):
            # Members fall out of lockstep only here, at the very end;
            # solo steps on the adopted views are still exact.
            for runner in runners:
                runner.network.step()
        points = []
        for runner in runners:
            runner._final_audit()
            points.append(runner._summarize(measure))
        return points
