"""Figure 21: open-loop latency versus offered load under many-to-few-to-
many traffic (uniform and 20 %-hotspot), for TB-DOR, CP-DOR, CP-CR,
CP-CR-2P and 2x-TB-DOR.

Compute nodes inject 1-flit read requests, MCs answer with 4-flit replies
(read traffic only), on a single network with two logical (VC) networks.
Paper: placement (CP) and extra MC injection ports (2P) raise saturation
throughput; under hotspot traffic the 2P gain dominates."""

import dataclasses
import os

from common import SEED, once, report
from repro.core.builder import (BASELINE, CP_CR, CP_DOR, DOUBLE_BW, build,
                                open_loop_variant)
from repro.noc.openloop import OpenLoopRunner
from repro.noc.traffic import HotspotManyToFew, UniformManyToFew

CP_CR_2P = dataclasses.replace(CP_CR, name="CP-CR-2P", mc_inject_ports=2)
CONFIGS = (BASELINE, CP_DOR, CP_CR, CP_CR_2P, DOUBLE_BW)
RATES = [float(r) for r in os.environ.get(
    "REPRO_FIG21_RATES", "0.005,0.015,0.025,0.035,0.045,0.06,0.08").split(",")]
OL_WARMUP = int(os.environ.get("REPRO_FIG21_WARMUP", "1000"))
OL_MEASURE = int(os.environ.get("REPRO_FIG21_MEASURE", "3000"))


def _curve(design, pattern_factory):
    points = []
    for rate in RATES:
        system = build(open_loop_variant(design), seed=SEED)
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes,
                                pattern_factory(system.mc_nodes), rate,
                                seed=SEED)
        points.append(runner.run(warmup=OL_WARMUP, measure=OL_MEASURE))
    return points


def _experiment():
    rows = []
    for label, factory in (
            ("uniform", UniformManyToFew),
            ("hotspot-20%", lambda mcs: HotspotManyToFew(mcs, 0.2))):
        rows.append(f"--- {label} many-to-few-to-many ---")
        header = "rate      " + "".join(f"{d.name:>14s}" for d in CONFIGS)
        rows.append(header)
        curves = {d.name: _curve(d, factory) for d in CONFIGS}
        for i, rate in enumerate(RATES):
            cells = []
            for d in CONFIGS:
                p = curves[d.name][i]
                cells.append("     saturated" if p.saturated
                             else f"{p.mean_latency:14.1f}")
            rows.append(f"{rate:8.3f}  " + "".join(cells))
        sat = {d.name: next((RATES[i] for i, p in
                             enumerate(curves[d.name]) if p.saturated),
                            float("inf"))
               for d in CONFIGS}
        rows.append("saturation onset: " + ", ".join(
            f"{k}@{v:g}" for k, v in sat.items()))
    rows.append("(paper: CP-CR-2P and 2x-TB-DOR saturate last; "
                "TB-DOR first)")
    return rows


def test_fig21_openloop(benchmark):
    report("fig21_openloop", once(benchmark, _experiment))
