"""Mesh network assembly and the cycle loop.

A :class:`MeshNetwork` owns routers, channels, per-node injection source
queues and packet reassembly at ejection.  The closed-loop accelerator model
and the open-loop harness both drive it through the same small interface:

* ``try_inject(packet, cycle)`` — queue a packet at its source node's
  network interface; fails (returns ``False``) when the bounded source queue
  is full, which is how memory-controller stalls (Figure 11) arise.
* ``set_ejection_handler(coord, fn)`` — callback invoked with each fully
  reassembled packet.
* ``step(cycle)`` — advance one interconnect clock.
"""

from __future__ import annotations

import os
import random
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .channel import Channel
from .invariants import DeadlockError, InvariantChecker, format_network_state
from .packet import Flit, Packet
from .router import NEVER, Router, RouterSpec
from .routing import RoutingAlgorithm
from .stats import NetworkStats
from .topology import Coord, Direction, Mesh, injection_port
from .vc import VcConfig


@dataclass(frozen=True)
class NocParams:
    """Physical parameters of one network (Table III)."""

    channel_width: int = 16          # bytes per flit
    vc_buffer_depth: int = 8         # flits per VC
    channel_latency: int = 1
    credit_delay: int = 1
    #: Capacity of each node's injection source queue in flits.  ``None``
    #: means unbounded (open-loop convention: queueing time is part of
    #: packet latency).  Closed-loop runs use a small bound so that a backed
    #: up reply network stalls the memory controller.
    source_queue_flits: Optional[int] = 16
    #: Run the full invariant audit every this many cycles (0 = off).
    #: Audits are read-only, so results are bit-identical with or without.
    check_interval: int = 0
    #: Raise :class:`~repro.noc.invariants.DeadlockError` with a state dump
    #: if no flit moves for this many consecutive non-idle cycles (0 = off).
    watchdog_cycles: int = 0


class _SourcePort:
    """Injection state machine for one injection port of a node.

    Writes at most one flit per cycle into the router's injection buffer,
    keeping each packet contiguous within its chosen VC.
    """

    __slots__ = ("port_id", "fifo", "flits", "vc")

    def __init__(self, port_id) -> None:
        self.port_id = port_id
        self.fifo: Deque[Packet] = deque()
        self.flits: Optional[Deque[Flit]] = None
        self.vc: Optional[int] = None


class MeshNetwork:
    """A single physical 2D-mesh network."""

    def __init__(self, mesh: Mesh, specs: Dict[Coord, RouterSpec],
                 params: NocParams, vc_config: VcConfig,
                 routing: RoutingAlgorithm, seed: int = 1,
                 name: str = "net") -> None:
        self.mesh = mesh
        self.params = params
        self.vc_config = vc_config
        self.routing = routing
        self.name = name
        self.cycle = 0
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._handlers: Dict[Coord, Callable[[Packet, int], None]] = {}
        self._reassembly: Dict[int, int] = {}

        #: Channels with flits or credits in flight (insertion-ordered so
        #: traversal stays deterministic); idle channels are never touched
        #: by the cycle loop.
        self._active_channels: Dict[Channel, None] = {}
        #: True while any router may hold buffered flits; cleared by a full
        #: scan that finds every router empty (reference stepper only).
        self._routers_active = False
        #: Total flits queued across all source ports (all nodes).
        self._source_flits = 0
        #: Total flits buffered inside routers (maintained by both steppers;
        #: makes ``idle`` O(1)).
        self._buffered_flits = 0
        #: Lazy-deletion min-heap of ``(wake_cycle, router_index)`` driving
        #: the event-driven router phase; a heap entry is genuine iff it
        #: equals the router's current ``wake`` (see DESIGN.md §13).
        self._wake_heap: List[Tuple[int, int]] = []
        #: Reused per-cycle scratch (drained channels / due router indices).
        self._channel_scratch: List[Channel] = []
        self._due_scratch: List[int] = []
        #: Routers re-armed for exactly the next cycle (heap bypass).
        self._due_next: List[int] = []
        #: Debug escape hatch: run the reference exhaustive-scan stepper
        #: instead of the event-driven one (also flippable at idle via
        #: ``use_reference_stepper``/``use_event_stepper``).
        self._scan_stepper = os.environ.get(
            "REPRO_REFERENCE_STEPPER") == "1"

        self.routers: Dict[Coord, Router] = {}
        self.channels: List[Channel] = []
        for coord in mesh.coords():
            spec = specs.get(coord, RouterSpec(coord))
            if spec.coord != coord:
                raise ValueError(f"spec coord {spec.coord} placed at {coord}")
            router = Router(spec, vc_config, params.vc_buffer_depth, routing)
            router.attach_ejection(sink=self)
            self.routers[coord] = router

        for coord, router in self.routers.items():
            for direction, neighbor in mesh.neighbors(coord):
                channel = Channel(params.channel_latency, params.credit_delay)
                dst = self.routers[neighbor]
                dst_port = direction.opposite()
                channel.connect(router, direction, dst, dst_port)
                channel.watch = self._wake_channel
                router.attach_output_channel(direction, channel)
                dst.attach_input_channel(dst_port, channel)
                self.channels.append(channel)

        self._router_list: Tuple[Router, ...] = tuple(self.routers.values())
        for idx, router in enumerate(self._router_list):
            router.net_index = idx
            router.finalize()

        self._sources: Dict[Coord, List[_SourcePort]] = {}
        self._source_occupancy: Dict[Coord, int] = {}
        self._source_rr: Dict[Coord, int] = {}
        for coord in mesh.coords():
            ports = [
                _SourcePort(injection_port(k))
                for k in range(self.routers[coord].spec.num_inject_ports)
            ]
            self._sources[coord] = ports
            self._source_occupancy[coord] = 0
            self._source_rr[coord] = 0

        #: Opt-in invariant checker; ``None`` keeps the hot path at a
        #: single attribute test per cycle.
        self.checker: Optional[InvariantChecker] = None
        #: Opt-in packet tracer (``repro.telemetry``); attached via
        #: :meth:`enable_tracer`, ``None`` keeps each event site at a
        #: single attribute test.
        self.tracer = None
        if params.check_interval or params.watchdog_cycles:
            self.enable_checks(params.check_interval,
                               params.watchdog_cycles)

    # -- public interface ---------------------------------------------------

    def set_ejection_handler(self, coord: Coord,
                             handler: Callable[[Packet, int], None]) -> None:
        self._handlers[coord] = handler

    def enable_checks(self, check_interval: int = 64,
                      watchdog_cycles: int = 0) -> InvariantChecker:
        """Attach (or retune) the runtime invariant checker."""
        self.checker = InvariantChecker(self, check_interval,
                                        watchdog_cycles)
        return self.checker

    def enable_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) a read-only per-hop packet
        tracer to this network, its routers and its channels.  Tracing
        never mutates simulation state, so results are bit-identical with
        it on or off."""
        self.tracer = tracer
        for router in self.routers.values():
            router.tracer = tracer
        for channel in self.channels:
            channel.tracer = tracer

    def carries(self, packet: Packet) -> bool:
        return self.vc_config.carries(packet.traffic_class)

    def source_queue_occupancy(self, coord: Coord) -> int:
        return self._source_occupancy[coord]

    def try_inject(self, packet: Packet, cycle: int) -> bool:
        """Queue ``packet`` at its source network interface."""
        num_flits = packet.num_flits(self.params.channel_width)
        cap = self.params.source_queue_flits
        occupancy = self._source_occupancy[packet.src]
        if cap is not None and occupancy + num_flits > cap:
            return False
        self.routing.plan(packet, self._rng)
        ports = self._sources[packet.src]
        rr = self._source_rr[packet.src]
        self._source_rr[packet.src] = (rr + 1) % len(ports)
        ports[rr].fifo.append(packet)
        self._source_occupancy[packet.src] = occupancy + num_flits
        self._source_flits += num_flits
        self.stats.record_offer(packet, num_flits)
        if self.tracer is not None:
            self.tracer.on_offer(packet, self.name, cycle)
        return True

    def step(self, cycle: Optional[int] = None) -> None:
        """Advance one interconnect cycle (event-driven).

        Only channels with traffic in flight are delivered, only routers
        whose wake time is due are stepped (in ascending router-index order,
        i.e. exactly the mesh order the reference scan walks), and the
        source drain runs only for nodes with queued flits.  A fully idle
        network reduces to a cycle-counter bump.  The scheduling is
        deterministic, so results are bit-identical to the exhaustive scan
        (``_step_scan``, its twin — semantic changes must land in both; the
        golden tests in tests/test_event_core.py compare them).
        """
        self.cycle = self.cycle + 1 if cycle is None else cycle
        now = self.cycle
        self.stats.cycles = now
        if self._scan_stepper:
            self._step_scan(now)
            return
        heap = self._wake_heap
        if self._active_channels:
            # ``deliver`` never activates or deactivates other channels, so
            # iterate the dict directly; drained channels are collected into
            # a reused scratch list instead of copying the dict every cycle.
            scratch = self._channel_scratch
            for channel in self._active_channels:
                n = channel.deliver(now)
                if n:
                    self._buffered_flits += n
                    dst = channel.dst_router
                    # The arriving flits sleep through the pipeline; any
                    # earlier obligation is already in ``dst.wake``.
                    wake = now + dst.pipeline_latency
                    if wake < dst.wake:
                        dst.wake = wake
                        heappush(heap, (wake, dst.net_index))
                if channel.delivered_credits:
                    # Credits can unblock the receiving router this very
                    # cycle (the channel phase precedes the router phase,
                    # exactly as the scan sees it).
                    src = channel.src_router
                    if src.occupancy and now < src.wake:
                        src.wake = now
                        heappush(heap, (now, src.net_index))
                if not channel.busy:
                    scratch.append(channel)
            if scratch:
                for channel in scratch:
                    del self._active_channels[channel]
                del scratch[:]
        due_next = self._due_next
        if due_next or (heap and heap[0][0] <= now):
            routers = self._router_list
            due = self._due_scratch
            if due_next:
                # Routers that re-armed for exactly the next cycle bypass
                # the heap (the common case under load: a blocked router
                # re-arms every cycle).  Nothing can schedule them earlier,
                # so every entry is a valid claim.
                for idx in due_next:
                    router = routers[idx]
                    if router.wake == now:
                        router.wake = NEVER
                        due.append(idx)
                del due_next[:]
            while heap and heap[0][0] <= now:
                wake, idx = heappop(heap)
                router = routers[idx]
                if router.wake == wake:     # genuine entry, not superseded
                    router.wake = NEVER
                    due.append(idx)
            # Ascending index = mesh coords order = reference scan order, so
            # ejection handlers (and thus RNG draws) fire in the same order.
            due.sort()
            next_cycle = now + 1
            for idx in due:
                router = routers[idx]
                before = router.occupancy
                for flit, _port in router.step(now):
                    self._eject(flit, now)
                self._buffered_flits += router.occupancy - before
                wake = router.next_wake(now)
                if wake != NEVER:
                    router.wake = wake
                    if wake == next_cycle:
                        due_next.append(idx)
                    else:
                        heappush(heap, (wake, idx))
            del due[:]
        if self._source_flits:
            occupancy = self._source_occupancy
            for coord, ports in self._sources.items():
                if occupancy[coord]:
                    router = self.routers[coord]
                    for port in ports:
                        self._drain_source(coord, router, port, now)
        checker = self.checker
        if checker is not None:
            checker.on_cycle(now)

    def _step_scan(self, now: int) -> None:
        """Reference exhaustive-scan cycle body (the pre-event-core loop).

        Twin of the event-driven body in ``step``; kept as the bit-identity
        oracle and the benchmark baseline (``REPRO_REFERENCE_STEPPER=1``).
        """
        flits_arrived = False
        if self._active_channels:
            scratch = self._channel_scratch
            for channel in self._active_channels:
                n = channel.deliver(now)
                if n:
                    flits_arrived = True
                    self._buffered_flits += n
                if not channel.busy:
                    scratch.append(channel)
            if scratch:
                for channel in scratch:
                    del self._active_channels[channel]
                del scratch[:]
        if self._routers_active or flits_arrived:
            busy = False
            for router in self._router_list:
                if router.occupancy:
                    before = router.occupancy
                    for flit, _port in router.step_reference(now):
                        self._eject(flit, now)
                    self._buffered_flits += router.occupancy - before
                    if router.occupancy:
                        busy = True
            self._routers_active = busy
        if self._source_flits:
            occupancy = self._source_occupancy
            for coord, ports in self._sources.items():
                if occupancy[coord]:
                    router = self.routers[coord]
                    for port in ports:
                        self._drain_source(coord, router, port, now)
        checker = self.checker
        if checker is not None:
            checker.on_cycle(now)

    def use_reference_stepper(self) -> None:
        """Switch to the exhaustive-scan stepper (debug/benchmark oracle).

        Only legal while idle: the event scheduler's per-router anchors are
        meaningless to the scan and vice versa.
        """
        if not self.idle:
            raise RuntimeError(
                f"network {self.name!r}: stepper can only be switched while "
                "idle")
        self._scan_stepper = True
        del self._wake_heap[:]
        del self._due_next[:]

    def use_event_stepper(self) -> None:
        """Switch (back) to the event-driven stepper.  Idle-only."""
        if not self.idle:
            raise RuntimeError(
                f"network {self.name!r}: stepper can only be switched while "
                "idle")
        self._scan_stepper = False
        del self._wake_heap[:]
        del self._due_next[:]
        for router in self._router_list:
            router.wake = NEVER

    def channel_utilization(self) -> Dict[Tuple[Coord, Coord], float]:
        """Flits carried per cycle for every directed mesh link — the
        congestion map that exposes e.g. the top/bottom-row hotspots of the
        baseline MC placement."""
        if not self.cycle:
            return {}
        return {
            (ch.src_router.coord, ch.dst_router.coord):
                ch.flits_carried / self.cycle
            for ch in self.channels
        }

    def peak_channel_utilization(self) -> float:
        util = self.channel_utilization()
        return max(util.values()) if util else 0.0

    @property
    def idle(self) -> bool:
        """True when no flit is buffered, in flight, or waiting at a source.

        O(1): ``_source_flits`` mirrors the per-node source occupancy,
        ``_buffered_flits`` the per-router occupancy, and a channel is in
        ``_active_channels`` exactly while it has flits or credits in
        flight.
        """
        return not (self._source_flits or self._buffered_flits
                    or self._active_channels)

    def run_until_idle(self, max_cycles: int = 1_000_000) -> int:
        """Drain all traffic; returns the cycle count.  Test helper."""
        start = self.cycle
        while not self.idle:
            if self.cycle - start > max_cycles:
                raise DeadlockError(
                    f"network {self.name!r} failed to drain within "
                    f"{max_cycles} cycles (deadlock?)\n"
                    + format_network_state(self))
            self.step()
        return self.cycle - start

    # -- internals ----------------------------------------------------------

    def _wake_channel(self, channel: Channel) -> None:
        """Channel watch hook: mark ``channel`` as carrying traffic."""
        self._active_channels[channel] = None

    def _drain_source(self, coord: Coord, router: Router,
                      port: _SourcePort, now: int) -> None:
        if port.flits is None:
            if not port.fifo:
                return
            packet = port.fifo[0]
            vc = self._pick_injection_vc(router, port.port_id, packet)
            if vc is None:
                return
            port.fifo.popleft()
            port.flits = deque(packet.make_flits(self.params.channel_width))
            port.vc = vc
            packet.injected = now
            self.stats.record_injection(packet, len(port.flits))
        if router.injection_space(port.port_id, port.vc) > 0:
            flit = port.flits.popleft()
            router.deliver_flit(port.port_id, port.vc, flit, now)
            self._source_occupancy[coord] -= 1
            self._source_flits -= 1
            self._buffered_flits += 1
            self._routers_active = True
            if not self._scan_stepper:
                # The injected flit sleeps through the pipeline; schedule
                # the router for the flit's ready time.
                wake = now + router.pipeline_latency
                if wake < router.wake:
                    router.wake = wake
                    heappush(self._wake_heap, (wake, router.net_index))
            if not port.flits:
                port.flits = None
                port.vc = None

    def _pick_injection_vc(self, router: Router, port_id,
                           packet: Packet) -> Optional[int]:
        allowed = self.vc_config.allowed_vcs(packet.traffic_class,
                                             packet.group)
        best_vc = None
        best_space = 0
        for vc in allowed:
            space = router.injection_space(port_id, vc)
            if space > best_space:
                best_vc, best_space = vc, space
        # Require room for the head flit now; the rest streams in over the
        # following cycles as the VC drains.
        return best_vc if best_space > 0 else None

    def _eject(self, flit: Flit, now: int) -> None:
        packet = flit.packet
        total = packet.num_flits(self.params.channel_width)
        got = self._reassembly.get(packet.pid, 0) + 1
        if got < total:
            self._reassembly[packet.pid] = got
            return
        self._reassembly.pop(packet.pid, None)
        packet.ejected = now
        self.stats.record_ejection(packet, total)
        if self.tracer is not None:
            self.tracer.on_eject(packet, now)
        handler = self._handlers.get(packet.dest)
        if handler is not None:
            handler(packet, now)
