"""Compute-node substrate: SIMT cores, warps, coalescing."""

from .coalescer import coalesce, coalesced_stride_lines, degree_of_coalescing
from .core import CoreConfig, MemoryToken, SimtCore
from .instruction import (ALU, SHARED, InstrKind, WarpInstruction, load,
                          store)
from .warp import RoundRobinWarpScheduler, Warp

__all__ = [
    "ALU", "CoreConfig", "InstrKind", "MemoryToken",
    "RoundRobinWarpScheduler", "SHARED", "SimtCore", "Warp",
    "WarpInstruction", "coalesce", "coalesced_stride_lines",
    "degree_of_coalescing", "load", "store",
]
