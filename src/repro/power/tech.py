"""Technology-node scaling table (65/45/32/22 nm).

The paper's cost numbers are anchored at 65 nm (GTX 280, Table VI); the
power model projects the same design to smaller nodes with classical
constant-field-flavoured scaling factors.  Every factor is relative to
the 65 nm anchor row, which is pinned exactly:

* **vdd** — supply voltage; dynamic energy carries a ``(vdd/vdd65)²``
  factor (E = C·V²).
* **freq_scale** — interconnect clock speedup; the 65 nm anchor clock is
  Table II's 602 MHz interconnect domain.
* **cap_scale** — switched capacitance per unit datapath width, shrinking
  roughly with the feature size (C ∝ L at constant wire/gate topology).
* **leak_scale** — leakage power *per mm²*, rising steeply as thresholds
  drop (the well-known leakage wall: ~1.6x per node).
* **area_scale** — layout area, shrinking with the square of the feature
  size; leakage of a migrated design is
  ``area65 · area_scale · leak_scale``.

The non-65 rows are predictions of these documented forms, not
calibration inputs — exactly the discipline ``repro.area.orion`` applies
to Table VI (anchor rows exact, everything else a prediction the tests
check against tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Table II interconnect clock at the 65 nm anchor node (GHz).
F65_GHZ = 0.602

#: 65 nm anchor supply voltage (V).
VDD65 = 1.1


@dataclass(frozen=True)
class TechNode:
    """One row of the technology-scaling table."""

    nm: int
    vdd: float           # supply voltage (V)
    freq_scale: float    # interconnect clock multiplier vs 65 nm
    cap_scale: float     # switched capacitance per unit width vs 65 nm
    leak_scale: float    # leakage power per mm² vs 65 nm
    area_scale: float    # layout area vs 65 nm

    @property
    def frequency_ghz(self) -> float:
        """Interconnect clock at this node (GHz)."""
        return F65_GHZ * self.freq_scale

    @property
    def dynamic_scale(self) -> float:
        """Per-event dynamic energy multiplier vs the 65 nm anchor:
        ``cap_scale · (vdd/vdd65)²``."""
        return self.cap_scale * (self.vdd / VDD65) ** 2

    @property
    def leakage_area_scale(self) -> float:
        """Leakage multiplier for a migrated layout: the area shrinks
        (``area_scale``) while leakage per mm² rises (``leak_scale``)."""
        return self.area_scale * self.leak_scale


#: The supported nodes.  65 nm is the calibration anchor (all factors
#: exactly 1); the others follow the documented scaling forms:
#: vdd steps ~0.1 V per node, frequency grows ~25 % per node,
#: capacitance shrinks linearly with feature size (45/65 = 0.692, ...),
#: leakage per mm² grows ~1.6x per node and area shrinks with the square
#: of the feature size ((45/65)² = 0.479, ...).
TECH_NODES: Dict[int, TechNode] = {
    node.nm: node for node in (
        TechNode(nm=65, vdd=1.1, freq_scale=1.0,
                 cap_scale=1.0, leak_scale=1.0, area_scale=1.0),
        TechNode(nm=45, vdd=1.0, freq_scale=1.25,
                 cap_scale=45 / 65, leak_scale=1.6,
                 area_scale=(45 / 65) ** 2),
        TechNode(nm=32, vdd=0.9, freq_scale=1.5625,
                 cap_scale=32 / 65, leak_scale=2.56,
                 area_scale=(32 / 65) ** 2),
        TechNode(nm=22, vdd=0.8, freq_scale=1.953125,
                 cap_scale=22 / 65, leak_scale=4.096,
                 area_scale=(22 / 65) ** 2),
    )
}

#: Default node sweep, largest feature size first.
DEFAULT_NODES: Tuple[int, ...] = (65, 45, 32, 22)


def tech_node(nm: int) -> TechNode:
    """Look up a node by feature size with an actionable error."""
    try:
        return TECH_NODES[nm]
    except KeyError:
        raise KeyError(f"unknown technology node {nm!r} nm; known: "
                       f"{sorted(TECH_NODES)}") from None
