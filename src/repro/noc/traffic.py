"""Synthetic open-loop traffic patterns.

The paper's open-loop evaluation (Figure 21) uses many-to-few-to-many
traffic: every compute node sends 1-flit read requests to the 8 MC nodes —
uniformly, or with a hotspot where 20 % of requests target one MC — and
each MC answers every request with a 4-flit read reply.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .topology import Coord

#: ``Random.choice(seq)`` is exactly ``seq[self._randbelow(len(seq))]``,
#: and ``_randbelow(n)`` is the rejection loop inlined below (draws
#: ``getrandbits(n.bit_length())`` until the value lands under ``n``).
#: Replicating it here — skipping the method binding and two wrapper
#: frames per draw — consumes the identical bits from the identical RNG
#: state, so traces stay bit-for-bit reproducible.  Pinned by
#: ``test_pick_matches_random_choice``-style draw-identity assertions.
_randbelow = random.Random._randbelow


class DestinationPattern:
    """Chooses a destination for each generated packet."""

    def pick(self, src: Coord, rng: random.Random) -> Coord:
        raise NotImplementedError


class UniformManyToFew(DestinationPattern):
    """Uniform-random choice over the memory-controller nodes."""

    def __init__(self, mc_nodes: Sequence[Coord]) -> None:
        if not mc_nodes:
            raise ValueError("need at least one MC node")
        self.mc_nodes = list(mc_nodes)
        self._n = len(self.mc_nodes)
        self._k = self._n.bit_length()

    def pick(self, src: Coord, rng: random.Random) -> Coord:
        if type(rng) is random.Random:
            n = self._n
            getrandbits = rng.getrandbits
            r = getrandbits(self._k)
            while r >= n:
                r = getrandbits(self._k)
            return self.mc_nodes[r]
        return rng.choice(self.mc_nodes)  # subclass / test double


class HotspotManyToFew(DestinationPattern):
    """Hotspot traffic: ``hotspot_fraction`` of requests go to one MC (the
    paper uses 20 % versus the uniform 1/8 = 12.5 %), the rest uniformly to
    the other MCs."""

    def __init__(self, mc_nodes: Sequence[Coord],
                 hotspot_fraction: float = 0.2,
                 hotspot: Optional[Coord] = None) -> None:
        if not 0.0 < hotspot_fraction <= 1.0:
            raise ValueError("hotspot fraction must be in (0, 1]")
        self.mc_nodes = list(mc_nodes)
        self.hotspot = hotspot if hotspot is not None else self.mc_nodes[0]
        if self.hotspot not in self.mc_nodes:
            raise ValueError("hotspot must be one of the MC nodes")
        self.hotspot_fraction = hotspot_fraction
        self._others = [m for m in self.mc_nodes if m != self.hotspot]

    def pick(self, src: Coord, rng: random.Random) -> Coord:
        if not self._others or rng.random() < self.hotspot_fraction:
            return self.hotspot
        return rng.choice(self._others)


class UniformRandom(DestinationPattern):
    """Uniform-random all-to-all over a node set (excluding the source);
    used for substrate validation rather than paper experiments."""

    def __init__(self, nodes: Sequence[Coord]) -> None:
        if len(nodes) < 2:
            raise ValueError("need at least two nodes")
        self.nodes = list(nodes)

    def pick(self, src: Coord, rng: random.Random) -> Coord:
        dest = rng.choice(self.nodes)
        while dest == src:
            dest = rng.choice(self.nodes)
        return dest


#: The destination patterns addressable by name — the vocabulary shared
#: by the ``repro sweep`` CLI and job-server sweep submissions, so a
#: pattern name on the wire resolves to the exact factory a direct
#: harness call would use (``hotspot`` pins the paper's 20 % fraction).
#: Every factory here must stay picklable for process-pool fan-out.
NAMED_PATTERNS = ("uniform", "hotspot")


def named_pattern_factory(name: str):
    """Resolve a pattern name to its picklable factory; raises
    ``KeyError`` for unknown names."""
    if name == "uniform":
        return UniformManyToFew
    if name == "hotspot":
        import functools
        return functools.partial(HotspotManyToFew, hotspot_fraction=0.2)
    raise KeyError(f"unknown traffic pattern {name!r}; "
                   f"known: {list(NAMED_PATTERNS)}")


class BernoulliInjector:
    """Per-node Bernoulli injection process at a given packet rate."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self.rate = rate
        self._rng = rng

    def fires(self) -> bool:
        return self._rng.random() < self.rate
